package stash

import (
	"testing"
	"testing/quick"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/workload"
)

// These tests exercise the system end to end across package boundaries:
// black-box properties any user of the library can rely on.

func integrationProfiler() *core.Profiler {
	return core.New(core.WithIterations(5))
}

func mustJob(t *testing.T, m *dnn.Model, batch int) workload.Job {
	t.Helper()
	j, err := workload.NewJob(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// Property: for every zoo model that fits, every stall measurement is
// non-negative and the derived percentages are consistent with the raw
// times.
func TestEveryZooModelProfilesConsistently(t *testing.T) {
	p := integrationProfiler()
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dnn.Zoo() {
		batch := 32
		if e.Model.Family == "bert" {
			batch = 4
		}
		job := mustJob(t, e.Model, batch)
		ic, err := p.InterconnectStall(job, it)
		if err != nil {
			t.Fatalf("%s: %v", e.Model.Name, err)
		}
		if ic.Stall < 0 {
			t.Errorf("%s: negative I/C stall %v", e.Model.Name, ic.Stall)
		}
		wantPct := 100 * ic.Stall.Seconds() / ic.SingleGPU.Seconds()
		if diff := ic.Pct - wantPct; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: Pct %v inconsistent with times (%v)", e.Model.Name, ic.Pct, wantPct)
		}
		ds, err := p.DataStallAnalysis(job, it)
		if err != nil {
			t.Fatalf("%s: %v", e.Model.Name, err)
		}
		if ds.PrepStall < 0 || ds.FetchStall < 0 {
			t.Errorf("%s: negative data stall %+v", e.Model.Name, ds)
		}
		// Step ordering: synthetic <= warm <= cold (each adds a pipeline
		// stage that can only slow things down).
		if ds.WarmCache < ds.Synthetic || ds.ColdCache < ds.WarmCache {
			t.Errorf("%s: step times out of order: %v / %v / %v",
				e.Model.Name, ds.Synthetic, ds.WarmCache, ds.ColdCache)
		}
	}
}

// Property: epoch cost equals price x time x nodes for any configuration.
func TestEpochCostArithmetic(t *testing.T) {
	p := integrationProfiler()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	job := mustJob(t, m, 64)
	for _, name := range []string{"p2.8xlarge", "p3.8xlarge", "p3.16xlarge"} {
		it, err := cloud.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2} {
			est, err := p.Epoch(job, it, nodes)
			if err != nil {
				t.Fatalf("%s x%d: %v", name, nodes, err)
			}
			want := it.PricePerHour * est.Time.Hours() * float64(nodes)
			if diff := est.Cost - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s x%d: cost %v != price x time (%v)", name, nodes, est.Cost, want)
			}
			if est.WorldSize != it.NGPUs*nodes {
				t.Errorf("%s x%d: world %d", name, nodes, est.WorldSize)
			}
		}
	}
}

// Property: the profiler is a pure function of its configuration — two
// independently constructed profilers agree bit-for-bit on every
// measurement of a full report.
func TestEndToEndDeterminism(t *testing.T) {
	m, err := dnn.VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	job := mustJob(t, m, 32)
	r1, err := integrationProfiler().Profile(job, it)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := integrationProfiler().Profile(job, it)
	if err != nil {
		t.Fatal(err)
	}
	if *r1.NW != *r2.NW || r1.IC != r2.IC || r1.Data != r2.Data || r1.Epoch != r2.Epoch {
		t.Errorf("profiles differ:\n%v\n%v", r1, r2)
	}
}

// Property: MaxBatch and the OOM check agree — any batch at or below
// MaxBatch profiles, anything above it errors.
func TestQuickMaxBatchMatchesOOM(t *testing.T) {
	p := integrationProfiler()
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	bert := dnn.BERTLarge()
	maxBatch := bert.MaxBatch(it.GPUMemPerGPU())
	f := func(delta uint8) bool {
		batch := maxBatch + int(delta%8) - 4
		if batch < 1 {
			return true
		}
		job, err := workload.NewJob(bert, batch)
		if err != nil {
			return false
		}
		_, err = p.InterconnectStall(job, it)
		if batch <= maxBatch {
			return err == nil
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}

// Property: stall percentages fall monotonically with batch size
// (communication amortizes over more compute), the trend every batch
// sweep in the paper shows.
func TestStallsAmortizeWithBatch(t *testing.T) {
	p := integrationProfiler()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.ByName("p2.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, batch := range workload.SmallBatchSizes() {
		s, err := p.InterconnectStall(mustJob(t, m, batch), it)
		if err != nil {
			t.Fatal(err)
		}
		if s.Pct >= prev {
			t.Errorf("batch %d: stall %.1f%% not below previous %.1f%%", batch, s.Pct, prev)
		}
		prev = s.Pct
	}
}

// Property: adding a faster interconnect never hurts. For the same
// model, instances ordered by interconnect quality order their stall
// times.
func TestInterconnectQualityOrdersStalls(t *testing.T) {
	p := integrationProfiler()
	m, err := dnn.ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	job := mustJob(t, m, 32)
	stall := func(name string) time.Duration {
		it, err := cloud.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.InterconnectStall(job, it)
		if err != nil {
			t.Fatal(err)
		}
		return s.Stall
	}
	pcie := stall("p2.8xlarge")       // shared PCIe
	nvlink := stall("p3.16xlarge")    // whole crossbar
	nvswitch := stall("p4d.24xlarge") // NVSwitch
	if !(nvswitch <= nvlink && nvlink < pcie) {
		t.Errorf("stall times not ordered by fabric: NVSwitch %v, NVLink %v, PCIe %v",
			nvswitch, nvlink, pcie)
	}
}

// The network-bandwidth monotonicity property: a job split over two
// nodes can never beat the same world size inside one machine, for any
// instance with at least two GPUs.
func TestNetworkNeverHelps(t *testing.T) {
	p := integrationProfiler()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	job := mustJob(t, m, 32)
	for _, name := range []string{"p2.8xlarge", "p3.8xlarge", "p3.16xlarge"} {
		it, err := cloud.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NetworkStall(job, it, 2)
		if err != nil {
			t.Fatal(err)
		}
		if s.Stall < 0 {
			t.Errorf("%s: splitting across the network sped training up (%v)", name, s.Stall)
		}
	}
}

// Sanity anchor: absolute simulated throughputs stay within a factor of
// ~2 of published real-hardware numbers, so the cost model's dollars are
// meaningful.
func TestAbsoluteThroughputAnchors(t *testing.T) {
	p := integrationProfiler()
	anchors := []struct {
		model    func() (*dnn.Model, error)
		batch    int
		instance string
		minIPS   float64 // images/sec per GPU
		maxIPS   float64
	}{
		{func() (*dnn.Model, error) { return dnn.ResNet(50) }, 32, "p3.2xlarge", 180, 720},   // real V100 ~360
		{func() (*dnn.Model, error) { return dnn.ResNet(50) }, 32, "p2.xlarge", 25, 110},     // real K80 ~50
		{func() (*dnn.Model, error) { return dnn.BERTLarge(), nil }, 4, "p3.2xlarge", 5, 25}, // real V100 ~10
	}
	for _, a := range anchors {
		m, err := a.model()
		if err != nil {
			t.Fatal(err)
		}
		it, err := cloud.ByName(a.instance)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.InterconnectStall(mustJob(t, m, a.batch), it)
		if err != nil {
			t.Fatal(err)
		}
		ips := float64(a.batch) / s.SingleGPU.Seconds()
		if ips < a.minIPS || ips > a.maxIPS {
			t.Errorf("%s on %s: %.0f samples/s per GPU, want [%.0f, %.0f]",
				m.Name, a.instance, ips, a.minIPS, a.maxIPS)
		}
	}
}

// The catalog's bandwidth hierarchy that drives the whole paper.
func TestFabricHierarchy(t *testing.T) {
	if !(hw.PCIeGen3x16.Bandwidth < hw.NVLink2.Bandwidth) {
		t.Error("PCIe should be slower than NVLink")
	}
	for _, gbps := range []float64{10, 25, 100} {
		if hw.NetworkLink(gbps).Bandwidth >= hw.PCIeGen3x16.Bandwidth {
			t.Errorf("%v Gbps network should be the slowest link class", gbps)
		}
	}
}
