// Instance selection: sweep the P2/P3 catalog for a model and rank the
// configurations by epoch cost, the decision the paper's characterization
// is meant to inform (§V recommendations).
//
//	go run ./examples/instance-selection [model]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/workload"
)

// candidate is one purchasable configuration.
type candidate struct {
	label    string
	instance string
	count    int
}

func main() {
	modelName := "resnet18"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	model, err := dnn.ByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	job, err := workload.NewJob(model, 32)
	if err != nil {
		log.Fatal(err)
	}

	candidates := []candidate{
		{"p2.xlarge", "p2.xlarge", 1},
		{"p2.8xlarge", "p2.8xlarge", 1},
		{"p2.8xlarge*2", "p2.8xlarge", 2},
		{"p2.16xlarge", "p2.16xlarge", 1},
		{"p3.2xlarge", "p3.2xlarge", 1},
		{"p3.8xlarge", "p3.8xlarge", 1},
		{"p3.8xlarge*2", "p3.8xlarge", 2},
		{"p3.16xlarge", "p3.16xlarge", 1},
		{"p3.24xlarge", "p3.24xlarge", 1},
	}

	type ranked struct {
		candidate
		est core.EpochEstimate
	}
	profiler := core.New()
	var results []ranked
	for _, c := range candidates {
		it, err := cloud.ByName(c.instance)
		if err != nil {
			log.Fatal(err)
		}
		est, err := profiler.Epoch(job, it, c.count)
		if err != nil {
			log.Printf("skipping %s: %v", c.label, err)
			continue
		}
		results = append(results, ranked{c, est})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].est.Cost < results[j].est.Cost })

	t := report.NewTable(
		fmt.Sprintf("Epoch cost ranking for %s (batch 32/GPU)", model.Name),
		"rank", "configuration", "GPUs", "epoch time", "epoch cost")
	for i, r := range results {
		t.AddRow(fmt.Sprintf("%d", i+1), r.label, fmt.Sprintf("%d", r.est.WorldSize),
			report.Dur(r.est.Time), report.Money(r.est.Cost))
	}
	fmt.Print(t.String())

	best, fastest := results[0], results[0]
	for _, r := range results {
		if r.est.Time < fastest.est.Time {
			fastest = r
		}
	}
	fmt.Printf("\ncheapest: %s (%s/epoch); fastest: %s (%s/epoch)\n",
		best.label, report.Money(best.est.Cost), fastest.label, report.Dur(fastest.est.Time))
	fmt.Println("(the cheapest configuration is rarely the fastest -- pick by deadline, pay the difference)")

	// The same decision as a single library call, with constraints: what
	// is the cheapest way to finish an epoch inside 20 minutes?
	rec, err := profiler.Recommend(job, core.Constraints{MaxEpochTime: 20 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	pick := rec.Candidates[rec.Cheapest]
	fmt.Printf("\nunder a 20-minute deadline: %d feasible configs, %d rejected\n",
		len(rec.Candidates), len(rec.Rejected))
	fmt.Printf("recommendation: %dx %s at %s/epoch (%v)\n",
		pick.Nodes, pick.Instance, report.Money(pick.Estimate.Cost), report.Dur(pick.Estimate.Time))
	fmt.Println(rec.ModelAdvice)
}
