// Parameter server vs ring all-reduce: the paper's §III/IV premise that
// collective all-reduce strictly outperforms a parameter server, measured
// with Stash on the same simulated hardware.
//
//	go run ./examples/ps-vs-allreduce
package main

import (
	"fmt"
	"log"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/workload"
)

func main() {
	ring := core.New(core.WithIterations(10))
	ps := core.New(core.WithIterations(10),
		core.WithCollectiveOptions(collective.WithAlgorithm(collective.ParameterServer)))

	models := []string{"resnet18", "vgg11"}
	instances := []string{"p3.16xlarge", "p2.8xlarge"}

	t := report.NewTable("Gradient exchange: ring all-reduce vs parameter server (batch 32)",
		"model", "instance", "ring iter", "PS iter", "PS slowdown")
	for _, mi := range models {
		model, err := dnn.ByName(mi)
		if err != nil {
			log.Fatal(err)
		}
		job, err := workload.NewJob(model, 32)
		if err != nil {
			log.Fatal(err)
		}
		for _, ii := range instances {
			instance, err := cloud.ByName(ii)
			if err != nil {
				log.Fatal(err)
			}
			r, err := ring.InterconnectStall(job, instance)
			if err != nil {
				log.Fatal(err)
			}
			s, err := ps.InterconnectStall(job, instance)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(model.Name, instance.Name,
				report.Dur(r.AllGPU), report.Dur(s.AllGPU),
				fmt.Sprintf("%.2fx", s.AllGPU.Seconds()/r.AllGPU.Seconds()))
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nevery gradient byte converges on the server's links, so PS scales with")
	fmt.Println("world size while the ring's per-rank traffic stays constant -- the reason")
	fmt.Println("the paper profiles all-reduce and treats PS as strictly worse (§III).")
}
