// Trace timeline: look inside an epoch that Stash, by design, only
// measures from the outside. Runs a short distributed training window
// with the execution-trace recorder attached, prints the per-kind time
// accounting, and writes a Chrome trace (chrome://tracing / Perfetto)
// of every worker's timeline.
//
//	go run ./examples/trace-timeline [out.json]
package main

import (
	"fmt"
	"log"
	"os"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/trace"
	"stash/internal/train"
	"stash/internal/workload"
)

func main() {
	out := "trace.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	model, err := dnn.ResNet(50)
	if err != nil {
		log.Fatal(err)
	}
	job, err := workload.NewJob(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	instance, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	net := simnet.New(eng)
	top, err := cloud.NewProvisioner(cloud.SliceDegraded, 1).Provision(net, instance, 1)
	if err != nil {
		log.Fatal(err)
	}

	recorder := trace.New()
	res, err := train.Run(eng, net, train.Config{
		Job:        job,
		Topology:   top,
		Iterations: 5,
		Synthetic:  true,
		Trace:      recorder,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s: %d iterations in %v (%.0f samples/s)\n\n",
		model.Name, instance.Name, res.Iterations, res.Elapsed, res.SamplesPerSecond)
	fmt.Println("time by activity (all workers):")
	fmt.Print(recorder.Summary())

	busy := recorder.WorkerBusy(0)
	denom := res.Elapsed.Seconds()
	// Backward spans cover only the compute segments between sync
	// points; hooks and blocking comm-waits are recorded as their own
	// non-overlapping kinds, so the kinds sum without double counting.
	fmt.Printf("\nworker 0 breakdown: forward %.0f%%, backward %.0f%%, hooks %.0f%%, comm wait %.0f%%\n",
		100*busy[trace.KindForward].Seconds()/denom,
		100*busy[trace.KindBackward].Seconds()/denom,
		100*busy[trace.KindHook].Seconds()/denom,
		100*busy[trace.KindCommWait].Seconds()/denom)

	raw, err := recorder.ChromeTrace()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d spans to %s -- open it in chrome://tracing or https://ui.perfetto.dev\n",
		recorder.Len(), out)
}
