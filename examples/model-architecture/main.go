// Model architecture study: how a DNN's shape drives its communication
// stalls (the paper's §VI micro characterization).
//
// Deep models with many small parameter layers (ResNet-152) pay a
// per-layer synchronization latency and stall on fast interconnects;
// shallow models with huge gradients (VGG-19) sail over NVLink but
// drown a 10 Gbps network link. Removing batch norm halves the sync
// points; removing residual connections changes nothing (they carry no
// parameters).
//
//	go run ./examples/model-architecture
package main

import (
	"fmt"
	"log"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/workload"
)

func main() {
	instance, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		log.Fatal(err)
	}
	profiler := core.New(core.WithIterations(10))

	variants := []struct {
		label string
		build func() (*dnn.Model, error)
	}{
		{"resnet18", func() (*dnn.Model, error) { return dnn.ResNet(18) }},
		{"resnet152", func() (*dnn.Model, error) { return dnn.ResNet(152) }},
		{"resnet152 w/o batch norm", func() (*dnn.Model, error) {
			return dnn.ResNet(152, dnn.ResNetWithoutBatchNorm())
		}},
		{"resnet152 w/o residuals", func() (*dnn.Model, error) {
			return dnn.ResNet(152, dnn.ResNetWithoutResidual())
		}},
		{"vgg11", func() (*dnn.Model, error) { return dnn.VGG(11) }},
		{"vgg19", func() (*dnn.Model, error) { return dnn.VGG(19) }},
	}

	t := report.NewTable("Architecture vs communication stalls (p3.16xlarge, batch 32)",
		"variant", "param layers", "gradients (MB)", "I/C stall", "N/W stall (2 nodes)")
	for _, v := range variants {
		model, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		job, err := workload.NewJob(model, 32)
		if err != nil {
			log.Fatal(err)
		}
		ic, err := profiler.InterconnectStall(job, instance)
		if err != nil {
			log.Fatal(err)
		}
		nw, err := profiler.NetworkStall(job, instance, 2)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(v.label,
			fmt.Sprintf("%d", model.NumParamLayers()),
			fmt.Sprintf("%.0f", model.GradientBytes()/1e6),
			report.Pct(ic.Pct), report.Pct(nw.Pct))
	}
	fmt.Print(t.String())
	fmt.Println("\ntakeaways (paper §VI-A4):")
	fmt.Println("  - deep nets stall on per-layer latency even on NVLink: run them on the best interconnect money buys, or coalesce buckets")
	fmt.Println("  - fat shallow nets stall on bytes: never split them across a slow network link")
	fmt.Println("  - batch norm doubles the sync points; residual connections are free")
}
