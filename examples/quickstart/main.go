// Quickstart: profile one model on one cloud instance with Stash.
//
// This is the smallest useful program against the public API: build a
// job, pick an instance from the Table I catalog, run the profiler, and
// read the four stalls plus the epoch cost estimate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

func main() {
	// The workload: ResNet18 on ImageNet at batch 32 per GPU, the
	// paper's bread-and-butter configuration.
	model, err := dnn.ResNet(18)
	if err != nil {
		log.Fatal(err)
	}
	job, err := workload.NewJob(model, 32)
	if err != nil {
		log.Fatal(err)
	}

	// The hardware: an 8xV100 NVLink instance.
	instance, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		log.Fatal(err)
	}

	// Profile: Stash runs its five steps (single-GPU synthetic, all-GPU
	// synthetic, cold-cache real, warm-cache real, multi-node synthetic)
	// and derives the stalls from elapsed-time differences alone.
	profiler := core.New()
	reportCard, err := profiler.Profile(job, instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(reportCard)

	fmt.Printf("\nwhat the stalls mean:\n")
	fmt.Printf("  interconnect: +%v per iteration lost to intra-machine gradient sync\n", reportCard.IC.Stall)
	if reportCard.NW != nil {
		fmt.Printf("  network:      +%v per iteration if split across %d machines\n",
			reportCard.NW.Stall, reportCard.NW.Nodes)
	}
	fmt.Printf("  prep (CPU):   +%v per iteration waiting on pre-processing\n", reportCard.Data.PrepStall)
	fmt.Printf("  fetch (disk): +%v per iteration waiting on storage (first epoch)\n", reportCard.Data.FetchStall)
}
