// Package stash is a Go reproduction of "Stash: A comprehensive
// stall-centric characterization of public cloud VMs for distributed
// deep learning" (Sharma et al., IEEE ICDCS 2023).
//
// # The idea
//
// Stash answers "which cloud GPU instances should I pay for?" by
// measuring the four stalls of a distributed-training pipeline as
// black-box elapsed-time differences between carefully chosen runs:
//
//   - interconnect (I/C) stall: intra-machine gradient all-reduce over
//     PCIe/NVLink — all-GPU synthetic run minus single-GPU synthetic run;
//   - network (N/W) stall: inter-machine all-reduce over the VPC —
//     multi-node run minus single-node run;
//   - CPU (prep) stall: host-side decode/augment — warm-cache real run
//     minus synthetic run;
//   - disk (fetch) stall: reading mini-batches from storage — cold-cache
//     real run minus warm-cache run.
//
// The original tool drives PyTorch DDP on real AWS P2/P3 fleets. None
// of that exists here, so this module builds the entire stack in pure
// Go (stdlib only) and runs Stash against it as a black box. Because
// the substrate is a deterministic simulator on a virtual clock,
// results are bit-identical across runs, machines and parallelism
// settings — which is what lets the docs embed verified outputs and the
// paper's thousands of GPU-hours re-run in about a minute.
//
// # Layers
//
// From the ground up:
//
//   - internal/sim: deterministic discrete-event engine (the virtual
//     clock everything runs on);
//   - internal/simnet: max-min fair fluid-flow network model;
//   - internal/hw: GPU, link and storage datasheets;
//   - internal/topo: PCIe trees, NVLink crossbars, multi-node clusters;
//   - internal/cloud: the AWS P-family catalog (Table I) and its
//     provisioning quirks — the p3.8xlarge NVLink slice lottery, VPC
//     QoS jitter;
//   - internal/dnn: layer-level model zoo matching the paper's Table II
//     plus synthetic architectures; internal/workload: datasets and job
//     specs;
//   - internal/pipeline: disk/cache/CPU input pipeline;
//     internal/collective: ring all-reduce and parameter-server
//     gradient synchronization;
//   - internal/train: the DDP-style training loop with per-layer
//     compute and bucketed communication overlap;
//   - internal/core: the Stash profiler itself (the paper's
//     contribution) — steps 1-5, the stall arithmetic, the epoch
//     time/cost model, and a recommendation engine ranking purchasable
//     configurations under deadline/budget constraints. The profiler
//     memoizes scenarios behind a single-flight cache, so concurrent
//     and repeated measurements of the same scenario simulate once;
//   - internal/experiments: one runner per table/figure of the paper's
//     evaluation (25 artifacts), executing on a parallel scenario
//     scheduler that shares the profiler cache;
//   - internal/report: plain-text and JSON table rendering;
//     internal/trace: the per-worker execution timeline Stash
//     deliberately never looks at, exportable to chrome://tracing.
//
// # Entry points
//
//   - cmd/stash: profile one workload or rank configurations
//     (-recommend);
//   - cmd/characterize: regenerate any or all paper artifacts;
//   - cmd/stashd: the same capabilities as a long-running HTTP service
//     with a versioned JSON API — synchronous /v1 calls plus async
//     /v2 jobs with SSE progress and per-tenant fair queueing
//     (internal/api; contract in docs/API.md, operator guide in
//     docs/OPERATIONS.md);
//   - cmd/microbench, cmd/bwtest: Fig 16 and Fig 7 probes;
//   - examples/: runnable walkthroughs of the public API.
//
// The benchmarks in bench_test.go regenerate each paper artifact; see
// EXPERIMENTS.md for measured-vs-paper results and DESIGN.md for the
// real-world-to-simulation substitution table.
package stash
