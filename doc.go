// Package stash is a Go reproduction of "Stash: A comprehensive
// stall-centric characterization of public cloud VMs for distributed
// deep learning" (Sharma et al., IEEE ICDCS 2023).
//
// The repository contains:
//
//   - internal/core: the Stash profiler (the paper's contribution),
//     measuring interconnect, network, CPU (prep) and disk (fetch) stalls
//     of distributed DNN training from black-box elapsed times;
//   - internal/{sim,simnet,hw,topo,cloud,dnn,workload,pipeline,
//     collective,train}: the simulated substrate replacing the paper's
//     AWS GPU fleet (see DESIGN.md for the substitution table);
//   - internal/experiments: runners regenerating every table and figure
//     of the paper's evaluation;
//   - cmd/{stash,characterize,microbench,bwtest}: command-line tools;
//   - examples/: runnable walkthroughs of the public API.
//
// The benchmarks in bench_test.go regenerate each paper artifact; see
// EXPERIMENTS.md for measured-vs-paper results.
package stash
