package stash

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// userDocs are the documents the repository owns and ships; ci.sh runs
// this checker so a renamed package, deleted example or moved file
// can't leave dangling references behind.
var userDocs = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"docs/API.md",
	"docs/OPERATIONS.md",
}

var (
	mdLink    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	goRunPath = regexp.MustCompile(`go (?:run|test)[^\n]*?(\./[\w./-]+)`)
)

// TestDocsRelativeLinksResolve verifies that every relative markdown
// link in the user-facing docs points at a file or directory that
// exists.
func TestDocsRelativeLinksResolve(t *testing.T) {
	for _, doc := range userDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			// Drop any #fragment; a bare fragment links within the file.
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			p := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(p); err != nil {
				t.Errorf("%s: broken link %q (%v)", doc, m[1], err)
			}
		}
	}
}

// TestDocsGoCommandsResolve verifies that every `go run` / `go test`
// package path quoted in the user-facing docs exists, so documented
// commands can't silently rot when a directory moves.
func TestDocsGoCommandsResolve(t *testing.T) {
	for _, doc := range userDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for _, m := range goRunPath.FindAllStringSubmatch(string(data), -1) {
			path := m[1]
			if strings.Contains(path, "...") {
				continue // wildcard patterns like ./... always resolve
			}
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: documented command references %q which does not exist", doc, path)
			}
		}
	}
}
