package stash

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"stash/internal/experiments"
	"stash/internal/report"
)

// benchCfg returns a per-iteration configuration. Distinct seeds defeat
// the shared result cache so every bench iteration performs the full
// simulation work.
func benchCfg(i int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Seed = int64(i + 1)
	return cfg
}

// runExperiment executes a registered experiment b.N times and reports
// the total number of regenerated table cells per run. Only the last
// iteration's tables are returned (and retained): keeping all b.N table
// sets alive made the bench's memory footprint grow with N.
func runExperiment(b *testing.B, id string) []*report.Table {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out []*report.Table
	cells := 0
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchCfg(i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		cells = 0
		for _, t := range tables {
			cells += t.NumRows() * len(t.Columns)
		}
		out = tables
	}
	b.ReportMetric(float64(cells), "cells")
	return out
}

// maxPct scans a table column set for the largest "NN.N%" cell.
func maxPct(tables []*report.Table) float64 {
	best := 0.0
	for _, t := range tables {
		for _, row := range t.Rows() {
			for _, cell := range row {
				s, ok := strings.CutSuffix(cell, "%")
				if !ok {
					continue
				}
				if v, err := strconv.ParseFloat(s, 64); err == nil && v > best {
					best = v
				}
			}
		}
	}
	return best
}

func BenchmarkTableI(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFig4(b *testing.B) {
	out := runExperiment(b, "fig4")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkFig5(b *testing.B) {
	out := runExperiment(b, "fig5")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

func BenchmarkFig8(b *testing.B) {
	out := runExperiment(b, "fig8")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkFig9(b *testing.B) {
	out := runExperiment(b, "fig9")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkFig11(b *testing.B) {
	out := runExperiment(b, "fig11")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkFig13(b *testing.B) {
	out := runExperiment(b, "fig13")
	// The headline: network stalls reaching the paper's "up to 500%".
	b.ReportMetric(maxPct(out), "max-nw-stall-%")
}

func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

func BenchmarkFig15(b *testing.B) {
	out := runExperiment(b, "fig15")
	b.ReportMetric(maxPct(out), "max-mem-util-%")
}

func BenchmarkFig16(b *testing.B) {
	out := runExperiment(b, "fig16")
	b.ReportMetric(maxPct(out), "max-stall-%")
}

func BenchmarkLargeModelOnP2(b *testing.B) {
	out := runExperiment(b, "large-on-p2")
	b.ReportMetric(maxPct(out), "max-ic-stall-%")
}

func BenchmarkBERT24xl(b *testing.B) { runExperiment(b, "bert-24xl") }

func BenchmarkPSvsAllreduce(b *testing.B) {
	out := runExperiment(b, "ps-vs-allreduce")
	b.ReportMetric(maxPct(out), "max-ps-stall-%")
}

// Extension benches: the ablations and studies beyond the paper's
// figures (see EXPERIMENTS.md "Extensions").

func BenchmarkAblateOverlap(b *testing.B)     { runExperiment(b, "ablate-overlap") }
func BenchmarkAblateBucketSize(b *testing.B)  { runExperiment(b, "ablate-bucket") }
func BenchmarkAblateCompression(b *testing.B) { runExperiment(b, "ablate-compression") }
func BenchmarkSliceLottery(b *testing.B)      { runExperiment(b, "slice-lottery") }
func BenchmarkMultiEpoch(b *testing.B)        { runExperiment(b, "multi-epoch") }
func BenchmarkP4Preview(b *testing.B)         { runExperiment(b, "p4-preview") }
func BenchmarkNetworkVariance(b *testing.B)   { runExperiment(b, "network-variance") }

// BenchmarkClaims re-verifies every SVIII conclusion and reports how many
// hold.
func BenchmarkClaims(b *testing.B) {
	out := runExperiment(b, "claims")
	holds := 0
	for _, row := range out[0].Rows() {
		if row[3] == "HOLDS" {
			holds++
		}
	}
	b.ReportMetric(float64(holds), "claims-hold")
}

// benchSuite runs the full registry through the parallel scheduler at a
// fixed worker-pool size. Comparing BenchmarkSuiteSerial against
// BenchmarkSuiteParallel measures the wall-clock win of the scenario
// scheduler on the whole evaluation; bench.sh distils their steady-state
// ratio into the BENCH_*.json parallel_speedup field. The scheduler
// dispatches contiguous per-worker batches (core.ForEachCtx), so each
// worker's simulate calls hit the same per-P pooled simContext — engine,
// network and provisioner scratch recycled across cells instead of
// reallocated. Each variant gets its own seed space: the shared profiler
// is keyed by {iterations, seed} and lives for the whole process, so
// reusing seeds would hand the second bench a warm scenario cache and
// fake the comparison.
func benchSuite(b *testing.B, parallelism int, seedBase int64) {
	b.Helper()
	reg := experiments.Registry()
	cells := 0
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Seed = seedBase + int64(i)
		cfg.Parallelism = parallelism
		cells = 0
		for _, r := range experiments.RunMany(cfg, reg) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
			for _, t := range r.Tables {
				cells += t.NumRows() * len(t.Columns)
			}
		}
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkSuiteSerial is the full evaluation at Parallelism=1 — the
// pre-scheduler serial path.
func BenchmarkSuiteSerial(b *testing.B) { benchSuite(b, 1, 1<<20) }

// BenchmarkSuiteParallel is the full evaluation at Parallelism=NumCPU.
// At equal seeds its table output is byte-identical to the serial run
// (TestParallelOutputByteIdentical); here the seed spaces are disjoint
// so neither bench inherits the other's scenario cache.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runtime.NumCPU(), 2<<20) }
