package report

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
	"unsafe"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "model", "stall")
	tb.AddRow("resnet18", "12.5%")
	tb.AddRow("vgg11", "3.1%")
	s := tb.String()
	for _, want := range []string{"== Demo ==", "model", "resnet18", "vgg11", "3.1%"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("x", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator widths differ:\n%s", tb.String())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only")
	s := tb.String()
	if !strings.Contains(s, "only") {
		t.Errorf("short row lost: %s", s)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("has,comma", `has"quote`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"has,comma","has""quote"` {
		t.Errorf("escaped row = %q", lines[2])
	}
}

func TestRowsReturnsCopy(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("v")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "v" {
		t.Error("Rows exposed internal state")
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(12.34); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Money(5.678); got != "$5.68" {
		t.Errorf("Money = %q", got)
	}
	if got := GBps(2.5e9); got != "2.50 GB/s" {
		t.Errorf("GBps = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.5000" {
		t.Errorf("Seconds = %q", got)
	}
	cases := map[time.Duration]string{
		90 * time.Minute:        "1h30m0s",
		90 * time.Second:        "1m30s",
		1234 * time.Millisecond: "1.23s",
		123 * time.Microsecond:  "120µs",
	}
	for d, want := range cases {
		if got := Dur(d); got != want {
			t.Errorf("Dur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tb := NewTable("Demo", "model", "stall")
	tb.AddRow("resnet18", "12.5%")
	tb.AddRow("vgg11") // short row pads to column count
	got, err := json.Marshal(tb)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"title":"Demo","columns":["model","stall"],"rows":[["resnet18","12.5%"],["vgg11",""]]}`
	if string(got) != want {
		t.Errorf("JSON = %s, want %s", got, want)
	}
}

func TestTableMarshalJSONEmpty(t *testing.T) {
	got, err := json.Marshal(&Table{})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"title":"","columns":[],"rows":[]}`
	if string(got) != want {
		t.Errorf("empty table JSON = %s, want %s", got, want)
	}
}

func TestTableJSONMatchesTextCells(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("v1", "v2")
	var dec struct {
		Rows [][]string `json:"rows"`
	}
	b, _ := json.Marshal(tb)
	if err := json.Unmarshal(b, &dec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i, row := range tb.Rows() {
		for j, cell := range row {
			if dec.Rows[i][j] != cell {
				t.Errorf("cell (%d,%d): JSON %q != table %q", i, j, dec.Rows[i][j], cell)
			}
		}
	}
}

func TestAddRowCopiesArgumentSlice(t *testing.T) {
	tb := NewTable("t", "a", "b")
	cells := []string{"x", "y"}
	tb.AddRow(cells...)
	cells[0] = "mutated"
	if got := tb.Rows()[0][0]; got != "x" {
		t.Errorf("AddRow aliased caller slice: cell = %q", got)
	}
}

func TestAddRowArenaGrowthKeepsEarlierRows(t *testing.T) {
	tb := NewTable("t", "i", "sq")
	want := make([][]string, 0, 200)
	for i := 0; i < 200; i++ { // far past the initial arena capacity
		row := []string{strconv.Itoa(i), strconv.Itoa(i * i)}
		tb.AddRow(row...)
		want = append(want, row)
	}
	got := tb.Rows()
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d corrupted after arena growth: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestInternDedupsFormatterOutput(t *testing.T) {
	a, b := Pct(12.5), Pct(12.5)
	if a != b {
		t.Fatalf("Pct unstable: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("repeated Pct values not interned to shared storage")
	}
	h1 := NewTable("x", "gpu_util").Columns[0]
	h2 := NewTable("y", "gpu_util").Columns[0]
	if unsafe.StringData(h1) != unsafe.StringData(h2) {
		t.Error("repeated headers not interned to shared storage")
	}
}

func TestInternSkipsLongStrings(t *testing.T) {
	long := strings.Repeat("x", internMaxLen+1)
	if got := intern(long); got != long {
		t.Errorf("intern changed value: %q", got)
	}
	if _, ok := interned.Load(long); ok {
		t.Error("intern retained an over-length string")
	}
}
