// Package report renders experiment results as aligned plain-text
// tables, CSV, and JSON — the textual and machine-readable equivalents
// of the paper's figures. Every encoder works from the same Table, so
// the aligned dump a human reads, the CSV a spreadsheet ingests, and
// the JSON stashd serves all carry identical cell values.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error surfaced at render time.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the table body.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(escapeCSV(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func escapeCSV(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// MarshalJSON encodes the table as
//
//	{"title": ..., "columns": [...], "rows": [[...], ...]}
//
// Rows are padded (or truncated) to the column count so every row array
// has the same length as "columns"; cell values stay the rendered
// strings of the text table, so JSON consumers see exactly the numbers
// a human reads (including "OOM" cells). Rows always encodes as an
// array, never null, and the field order is fixed, so the output is
// byte-stable — stashd's /v1/experiments responses golden-test against
// it.
func (t *Table) MarshalJSON() ([]byte, error) {
	columns := t.Columns
	if columns == nil {
		columns = []string{}
	}
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, len(t.Columns))
		copy(row, r)
		rows[i] = row
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: columns, Rows: rows})
}

// UnmarshalJSON is MarshalJSON's inverse, letting API clients (and the
// server's own tests) round-trip tables through the wire format.
func (t *Table) UnmarshalJSON(b []byte) error {
	var dec struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &dec); err != nil {
		return err
	}
	t.Title, t.Columns, t.rows = dec.Title, dec.Columns, dec.Rows
	return nil
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Money formats a dollar amount.
func Money(v float64) string { return fmt.Sprintf("$%.2f", v) }

// Dur formats a duration rounded for display.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return d.Round(time.Minute).String()
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(10 * time.Microsecond).String()
	}
}

// Seconds formats a duration as raw seconds (for CSV post-processing).
func Seconds(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// GBps formats a bandwidth in GB/s.
func GBps(bytesPerSec float64) string { return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9) }
