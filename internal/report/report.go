// Package report renders experiment results as aligned plain-text
// tables, CSV, and JSON — the textual and machine-readable equivalents
// of the paper's figures. Every encoder works from the same Table, so
// the aligned dump a human reads, the CSV a spreadsheet ingests, and
// the JSON stashd serves all carry identical cell values.
package report

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	// arena is the shared backing store row slices point into, so a
	// 64-row table costs one or two cell allocations instead of 64.
	// Rows never mutate after AddRow, so older rows referencing an
	// earlier backing array after growth stay correct.
	arena []string
}

// NewTable creates a table with the given title and column headers.
// Headers are interned: the same column set across the hundreds of
// tables a sweep renders shares one string per header.
func NewTable(title string, columns ...string) *Table {
	interned := make([]string, len(columns))
	for i, c := range columns {
		interned[i] = intern(c)
	}
	return &Table{Title: title, Columns: interned}
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error surfaced at render time. Cells are copied into the table's
// arena, so the caller may reuse its argument slice.
func (t *Table) AddRow(cells ...string) {
	if t.arena == nil {
		n := 16 * len(cells)
		if n < 64 {
			n = 64
		}
		t.arena = make([]string, 0, n)
	}
	start := len(t.arena)
	t.arena = append(t.arena, cells...)
	end := len(t.arena)
	t.rows = append(t.rows, t.arena[start:end:end])
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the table body.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// pad supplies alignment spaces and separator dashes in chunks instead
// of a byte at a time (or a strings.Repeat allocation per column).
const pad = "                                                                "
const dashes = "----------------------------------------------------------------"

// writeN writes s's first n bytes, repeating s for widths beyond one
// chunk (only pathological header widths need more than one).
func writeN(b *strings.Builder, s string, n int) {
	for n > len(s) {
		b.WriteString(s)
		n -= len(s)
	}
	b.WriteString(s[:n])
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	lineWidth := 0
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, w := range widths {
		if i > 0 {
			lineWidth += 2
		}
		lineWidth += w
	}
	lineWidth++ // trailing newline
	var b strings.Builder
	b.Grow(len(t.Title) + 8 + (len(t.rows)+2)*lineWidth)
	if t.Title != "" {
		b.WriteString("== ")
		b.WriteString(t.Title)
		b.WriteString(" ==\n")
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if len(c) < w {
				writeN(&b, pad, w-len(c))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		writeN(&b, dashes, w)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	size := 0
	for _, c := range t.Columns {
		size += len(c) + 1
	}
	var b strings.Builder
	b.Grow(size * (len(t.rows) + 1) * 2)
	writeRow := func(cells []string) {
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(escapeCSV(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func escapeCSV(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// MarshalJSON encodes the table as
//
//	{"title": ..., "columns": [...], "rows": [[...], ...]}
//
// Rows are padded (or truncated) to the column count so every row array
// has the same length as "columns"; cell values stay the rendered
// strings of the text table, so JSON consumers see exactly the numbers
// a human reads (including "OOM" cells). Rows always encodes as an
// array, never null, and the field order is fixed, so the output is
// byte-stable — stashd's /v1/experiments responses golden-test against
// it.
func (t *Table) MarshalJSON() ([]byte, error) {
	columns := t.Columns
	if columns == nil {
		columns = []string{}
	}
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, len(t.Columns))
		copy(row, r)
		rows[i] = row
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: columns, Rows: rows})
}

// UnmarshalJSON is MarshalJSON's inverse, letting API clients (and the
// server's own tests) round-trip tables through the wire format.
func (t *Table) UnmarshalJSON(b []byte) error {
	var dec struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &dec); err != nil {
		return err
	}
	t.Title, t.Columns, t.rows = dec.Title, dec.Columns, dec.Rows
	return nil
}

// interned deduplicates the formatter outputs and column headers that
// repeat across every table of a sweep ("12.5%", "gpu_util", "OOM"):
// each distinct short string is stored once and every table shares it.
// Only short strings are interned — cell values here are formatted
// numbers with bounded cardinality, so the map stays small — and the
// table is append-only for the process lifetime, like a string constant
// pool.
var interned sync.Map // string -> string

// internMaxLen bounds what the pool accepts; anything longer is almost
// certainly a one-off (a title, a long label) not worth retaining.
const internMaxLen = 32

func intern(s string) string {
	if len(s) > internMaxLen {
		return s
	}
	if v, ok := interned.Load(s); ok {
		return v.(string)
	}
	v, _ := interned.LoadOrStore(s, s)
	return v.(string)
}

// internAppend finishes a formatter: the scratch bytes become a string
// exactly once per distinct value; repeats return the pooled copy.
func internAppend(b []byte) string { return intern(string(b)) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string {
	var buf [24]byte
	b := strconv.AppendFloat(buf[:0], v, 'f', 1, 64)
	b = append(b, '%')
	return internAppend(b)
}

// Money formats a dollar amount.
func Money(v float64) string {
	var buf [24]byte
	b := append(buf[:0], '$')
	b = strconv.AppendFloat(b, v, 'f', 2, 64)
	return internAppend(b)
}

// Dur formats a duration rounded for display.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		d = d.Round(time.Minute)
	case d >= time.Minute:
		d = d.Round(time.Second)
	case d >= time.Second:
		d = d.Round(10 * time.Millisecond)
	default:
		d = d.Round(10 * time.Microsecond)
	}
	return intern(d.String())
}

// Seconds formats a duration as raw seconds (for CSV post-processing).
func Seconds(d time.Duration) string {
	var buf [24]byte
	return internAppend(strconv.AppendFloat(buf[:0], d.Seconds(), 'f', 4, 64))
}

// GBps formats a bandwidth in GB/s.
func GBps(bytesPerSec float64) string {
	var buf [32]byte
	b := strconv.AppendFloat(buf[:0], bytesPerSec/1e9, 'f', 2, 64)
	b = append(b, " GB/s"...)
	return internAppend(b)
}
