package report

import (
	"testing"
	"time"
)

// buildBenchTable builds a representative figure-sized table: interned
// unit-style cells (Pct/Dur/GBps) across 12 columns and 64 rows, the
// shape the experiment suite renders hundreds of times per sweep.
func buildBenchTable() *Table {
	tb := NewTable("Bench: stall breakdown by configuration",
		"instance", "gpus", "model", "batch", "gpu_util",
		"stall_total", "fetch", "prep", "comm", "ckpt", "epoch", "bw")
	for i := 0; i < 64; i++ {
		tb.AddRow(
			"p3.8xlarge", "4", "resnet50", "256",
			Pct(float64(i%100)),
			Pct(float64((i*7)%100)/3),
			Pct(12.5), Pct(3.1), Pct(22.0), Pct(1.0),
			Dur(time.Duration(i+1)*731*time.Millisecond),
			GBps(float64(i+1)*1.7e8),
		)
	}
	return tb
}

// BenchmarkTableRender is the report-layer hot path: build a
// figure-sized table from formatter output, then render every encoding
// (text, CSV, JSON) exactly as a /v1/experiments response does.
func BenchmarkTableRender(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := buildBenchTable()
		if tb.String() == "" || tb.CSV() == "" {
			b.Fatal("empty render")
		}
		if _, err := tb.MarshalJSON(); err != nil {
			b.Fatal(err)
		}
	}
}
