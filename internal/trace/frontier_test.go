package trace

import (
	"fmt"
	"testing"
	"time"
)

const ms = time.Millisecond

// straggledTimeline builds a two-barrier timeline where rank 2 arrives
// last at both barriers and ranks 0/1 wait on it.
func straggledTimeline() *Recorder {
	r := New()
	// Barrier op0: ranks 0,1 arrive at 10ms, rank 2 at 30ms; completes 35ms.
	r.Add(Span{Worker: 0, Kind: KindBarrier, Name: "op0", Start: 10 * ms, End: 35 * ms})
	r.Add(Span{Worker: 1, Kind: KindBarrier, Name: "op0", Start: 10 * ms, End: 35 * ms})
	r.Add(Span{Worker: 2, Kind: KindBarrier, Name: "op0", Start: 30 * ms, End: 35 * ms})
	// Matching comm-wait spans (blocking mode: wait = arrival..completion).
	r.Add(Span{Worker: 0, Kind: KindCommWait, Name: "bucket0", Start: 10 * ms, End: 35 * ms})
	r.Add(Span{Worker: 1, Kind: KindCommWait, Name: "bucket0", Start: 10 * ms, End: 35 * ms})
	r.Add(Span{Worker: 2, Kind: KindCommWait, Name: "bucket0", Start: 30 * ms, End: 35 * ms})
	// Barrier op1: ranks 0,1 arrive at 40ms, rank 2 at 50ms; completes 55ms.
	r.Add(Span{Worker: 0, Kind: KindBarrier, Name: "op1", Start: 40 * ms, End: 55 * ms})
	r.Add(Span{Worker: 1, Kind: KindBarrier, Name: "op1", Start: 40 * ms, End: 55 * ms})
	r.Add(Span{Worker: 2, Kind: KindBarrier, Name: "op1", Start: 50 * ms, End: 55 * ms})
	r.Add(Span{Worker: 0, Kind: KindCommWait, Name: "bucket0", Start: 40 * ms, End: 55 * ms})
	r.Add(Span{Worker: 1, Kind: KindCommWait, Name: "bucket0", Start: 40 * ms, End: 55 * ms})
	r.Add(Span{Worker: 2, Kind: KindCommWait, Name: "bucket0", Start: 50 * ms, End: 55 * ms})
	return r
}

func TestAttributeStragglerRanksFirst(t *testing.T) {
	a := straggledTimeline().Attribute()
	if a.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", a.Barriers)
	}
	if a.TiedBarriers != 0 {
		t.Errorf("TiedBarriers = %d, want 0", a.TiedBarriers)
	}
	if got := a.Workers[0].Worker; got != 2 {
		t.Fatalf("top blamed worker = %d, want the straggler 2", got)
	}
	// All wait ends at barriers rank 2 fronted, so everything is blamed
	// on it: 25+15 (ranks 0,1, twice each is 25+15 per rank) plus its own
	// 5+5.
	want := 2*(25+15)*ms + 10*ms
	if a.Workers[0].Blamed != want {
		t.Errorf("straggler blame = %v, want %v", a.Workers[0].Blamed, want)
	}
	if a.Workers[0].FrontierCount != 2 {
		t.Errorf("straggler FrontierCount = %d, want 2", a.Workers[0].FrontierCount)
	}
	if a.Workers[0].SelfWait != 10*ms {
		t.Errorf("straggler SelfWait = %v, want 10ms", a.Workers[0].SelfWait)
	}
}

func TestAttributeConservation(t *testing.T) {
	a := straggledTimeline().Attribute()
	if a.Attributed+a.Unattributed != a.TotalCommWait {
		t.Errorf("Attributed %v + Unattributed %v != TotalCommWait %v",
			a.Attributed, a.Unattributed, a.TotalCommWait)
	}
	if a.Unattributed != 0 {
		t.Errorf("Unattributed = %v, want 0 (every wait ends at a barrier)", a.Unattributed)
	}
	var sum time.Duration
	for _, w := range a.Workers {
		sum += w.Blamed
	}
	if sum != a.Attributed {
		t.Errorf("per-worker blame sums to %v, want Attributed %v", sum, a.Attributed)
	}
	if want := 2*(25+15)*ms + 10*ms; a.TotalCommWait != want {
		t.Errorf("TotalCommWait = %v, want %v", a.TotalCommWait, want)
	}
}

func TestAttributeTieBreaksToLowestRank(t *testing.T) {
	r := New()
	for w := 0; w < 3; w++ {
		r.Add(Span{Worker: w, Kind: KindBarrier, Name: "op0", Start: 10 * ms, End: 20 * ms})
		r.Add(Span{Worker: w, Kind: KindCommWait, Name: "bucket0", Start: 10 * ms, End: 20 * ms})
	}
	a := r.Attribute()
	if a.TiedBarriers != 1 {
		t.Errorf("TiedBarriers = %d, want 1", a.TiedBarriers)
	}
	if a.Workers[0].Worker != 0 || a.Workers[0].Blamed != 30*ms {
		t.Errorf("tied barrier blamed %v on rank %d, want 30ms on rank 0",
			a.Workers[0].Blamed, a.Workers[0].Worker)
	}
}

func TestAttributeUnattributedWait(t *testing.T) {
	r := New()
	// A comm-wait with no barrier inside it at all (group-level tracing
	// only, the pre-per-rank-span world) stays unattributed instead of
	// being charged to an arbitrary rank.
	r.Add(Span{Worker: 0, Kind: KindCommWait, Name: "iter0", Start: 10 * ms, End: 30 * ms})
	// And a wait that extends past its last barrier keeps the tail
	// unattributed.
	r.Add(Span{Worker: 1, Kind: KindBarrier, Name: "op0", Start: 40 * ms, End: 45 * ms})
	r.Add(Span{Worker: 1, Kind: KindCommWait, Name: "iter0", Start: 40 * ms, End: 50 * ms})
	a := r.Attribute()
	if a.Unattributed != 20*ms+5*ms {
		t.Errorf("Unattributed = %v, want 25ms", a.Unattributed)
	}
	if a.Attributed != 5*ms {
		t.Errorf("Attributed = %v, want 5ms", a.Attributed)
	}
	if a.Attributed+a.Unattributed != a.TotalCommWait {
		t.Errorf("conservation broken: %v + %v != %v", a.Attributed, a.Unattributed, a.TotalCommWait)
	}
}

func TestAttributeEmptyAndNil(t *testing.T) {
	var nilRec *Recorder
	for _, r := range []*Recorder{nilRec, New()} {
		a := r.Attribute()
		if a.Barriers != 0 || len(a.Workers) != 0 || a.TotalCommWait != 0 {
			t.Errorf("empty attribution = %+v", a)
		}
	}
}

// BenchmarkBlameAttribute is the enforced micro-benchmark for the
// frontier pass: 8 workers, 240 barriers, one comm-wait per worker per
// barrier.
func BenchmarkBlameAttribute(b *testing.B) {
	const workers, barriers = 8, 240
	r := New()
	for bi := 0; bi < barriers; bi++ {
		base := time.Duration(bi) * 10 * ms
		end := base + 8*ms
		name := fmt.Sprintf("op%d", bi)
		for w := 0; w < workers; w++ {
			arrive := base + time.Duration(w)*ms/2
			r.Add(Span{Worker: w, Kind: KindBarrier, Name: name, Start: arrive, End: end})
			r.Add(Span{Worker: w, Kind: KindCommWait, Name: "bucket0", Start: arrive, End: end})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Attribute()
	}
}
