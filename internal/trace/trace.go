// Package trace records per-worker execution timelines of simulated
// training runs: compute spans, gradient-hook costs, communication waits,
// data waits and optimizer steps. Timelines can be summarized (time by
// kind, per worker) or exported in the Chrome trace-event format for
// visual inspection in chrome://tracing or Perfetto.
//
// The recorder is how a user of this library looks *inside* an epoch
// that Stash, by design, only measures from the outside.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Kind classifies a span.
type Kind int

// Span kinds.
const (
	KindDataWait Kind = iota + 1
	KindForward
	KindBackward
	KindHook
	KindCommWait
	KindOptimizer
	KindCollective

	// KindBarrier marks one worker's passage through a synchronization
	// barrier: Start is the instant the rank arrived (issued the
	// collective), End the instant the collective completed globally.
	// Barrier spans annotate the same intervals the worker's KindCommWait
	// spans cover, so exclude them when summing exclusive busy time.
	KindBarrier
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindDataWait:
		return "data-wait"
	case KindForward:
		return "forward"
	case KindBackward:
		return "backward"
	case KindHook:
		return "hook"
	case KindCommWait:
		return "comm-wait"
	case KindOptimizer:
		return "optimizer"
	case KindCollective:
		return "collective"
	case KindBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one timed interval on a worker's (or the collective engine's)
// timeline.
type Span struct {
	// Worker is the GPU rank, or -1 for group-level spans (collectives).
	Worker int

	Kind Kind

	// Name carries detail (bucket index, iteration number).
	Name string

	Start, End time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Recorder accumulates spans. The zero value is invalid; use New. A nil
// *Recorder is safe to call (no-ops), so instrumented code does not need
// nil checks.
type Recorder struct {
	spans []Span
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends a span. Safe on a nil recorder.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	if s.End < s.Start {
		s.Start, s.End = s.End, s.Start
	}
	r.spans = append(r.spans, s)
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Spans returns a copy of all spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return append([]Span(nil), r.spans...)
}

// WorkerSpans returns the spans of one worker, in recording order.
func (r *Recorder) WorkerSpans(worker int) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for _, s := range r.spans {
		if s.Worker == worker {
			out = append(out, s)
		}
	}
	return out
}

// TotalByKind sums span durations per kind across all workers.
func (r *Recorder) TotalByKind() map[Kind]time.Duration {
	out := make(map[Kind]time.Duration)
	if r == nil {
		return out
	}
	for _, s := range r.spans {
		out[s.Kind] += s.Duration()
	}
	return out
}

// WorkerBusy returns the sum of a worker's span durations by kind.
func (r *Recorder) WorkerBusy(worker int) map[Kind]time.Duration {
	out := make(map[Kind]time.Duration)
	if r == nil {
		return out
	}
	for _, s := range r.spans {
		if s.Worker == worker {
			out[s.Kind] += s.Duration()
		}
	}
	return out
}

// Summary is a human-readable per-kind accounting.
func (r *Recorder) Summary() string {
	totals := r.TotalByKind()
	kinds := make([]Kind, 0, len(totals))
	for k := range totals {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := ""
	for _, k := range kinds {
		out += fmt.Sprintf("%-10s %v\n", k, totals[k].Round(10*time.Microsecond))
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event ("catapult") format.
type chromeEvent struct {
	Name      string            `json:"name"`
	Category  string            `json:"cat,omitempty"`
	Phase     string            `json:"ph"`
	TsMicros  float64           `json:"ts"`
	DurMicros float64           `json:"dur"`
	PID       int               `json:"pid"`
	TID       int               `json:"tid"`
	Args      map[string]string `json:"args,omitempty"`
}

// groupTID is the reserved thread ID group-level (Worker < 0) spans are
// exported on: negative tids confuse Perfetto's track sorting, so the
// group timeline gets its own named row instead.
const groupTID = 1000

// ChromeTrace serializes the timeline as a Chrome trace-event JSON array
// loadable in chrome://tracing or https://ui.perfetto.dev. Workers map to
// thread IDs; group-level spans go to the reserved groupTID row. Each row
// carries a thread_name metadata event so the viewer shows "worker N" and
// "collective group" instead of bare tids.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	if r == nil {
		return []byte("[]"), nil
	}
	seen := make(map[int]bool)
	group := false
	for _, s := range r.spans {
		if s.Worker < 0 {
			group = true
		} else {
			seen[s.Worker] = true
		}
	}
	workers := make([]int, 0, len(seen))
	for w := range seen {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	events := make([]chromeEvent, 0, len(r.spans)+len(workers)+1)
	for _, w := range workers {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   w,
			Args:  map[string]string{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	if group {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   groupTID,
			Args:  map[string]string{"name": "collective group"},
		})
	}
	for _, s := range r.spans {
		tid := s.Worker
		if tid < 0 {
			tid = groupTID
		}
		name := s.Kind.String()
		if s.Name != "" {
			name += ":" + s.Name
		}
		events = append(events, chromeEvent{
			Name:      name,
			Category:  s.Kind.String(),
			Phase:     "X",
			TsMicros:  float64(s.Start) / float64(time.Microsecond),
			DurMicros: float64(s.Duration()) / float64(time.Microsecond),
			PID:       0,
			TID:       tid,
		})
	}
	return json.Marshal(events)
}
