package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAddAndQuery(t *testing.T) {
	r := New()
	r.Add(Span{Worker: 0, Kind: KindForward, Name: "iter0", Start: 0, End: 10 * time.Millisecond})
	r.Add(Span{Worker: 0, Kind: KindBackward, Name: "iter0", Start: 10 * time.Millisecond, End: 30 * time.Millisecond})
	r.Add(Span{Worker: 1, Kind: KindForward, Name: "iter0", Start: 0, End: 12 * time.Millisecond})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := len(r.WorkerSpans(0)); got != 2 {
		t.Errorf("worker 0 spans = %d, want 2", got)
	}
	if got := len(r.WorkerSpans(1)); got != 1 {
		t.Errorf("worker 1 spans = %d, want 1", got)
	}
	totals := r.TotalByKind()
	if totals[KindForward] != 22*time.Millisecond {
		t.Errorf("forward total = %v", totals[KindForward])
	}
	if totals[KindBackward] != 20*time.Millisecond {
		t.Errorf("backward total = %v", totals[KindBackward])
	}
	busy := r.WorkerBusy(0)
	if busy[KindForward] != 10*time.Millisecond {
		t.Errorf("worker 0 forward = %v", busy[KindForward])
	}
}

func TestInvertedSpanNormalized(t *testing.T) {
	r := New()
	r.Add(Span{Kind: KindHook, Start: 5 * time.Millisecond, End: 2 * time.Millisecond})
	s := r.Spans()[0]
	if s.Duration() != 3*time.Millisecond {
		t.Errorf("normalized duration = %v, want 3ms", s.Duration())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Span{Kind: KindForward, End: time.Second}) // must not panic
	if r.Len() != 0 || r.Spans() != nil || r.WorkerSpans(0) != nil {
		t.Error("nil recorder leaked state")
	}
	if len(r.TotalByKind()) != 0 || len(r.WorkerBusy(0)) != 0 {
		t.Error("nil recorder totals non-empty")
	}
	if b, err := r.ChromeTrace(); err != nil || string(b) != "[]" {
		t.Errorf("nil ChromeTrace = %s, %v", b, err)
	}
}

func TestSpansReturnsCopy(t *testing.T) {
	r := New()
	r.Add(Span{Worker: 3, Kind: KindForward})
	spans := r.Spans()
	spans[0].Worker = 99
	if r.Spans()[0].Worker != 3 {
		t.Error("Spans exposed internal state")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDataWait:   "data-wait",
		KindForward:    "forward",
		KindBackward:   "backward",
		KindHook:       "hook",
		KindCommWait:   "comm-wait",
		KindOptimizer:  "optimizer",
		KindCollective: "collective",
		KindBarrier:    "barrier",
		Kind(99):       "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestSummary(t *testing.T) {
	r := New()
	r.Add(Span{Kind: KindForward, End: time.Second})
	r.Add(Span{Kind: KindCommWait, End: 250 * time.Millisecond})
	s := r.Summary()
	if !strings.Contains(s, "forward") || !strings.Contains(s, "comm-wait") {
		t.Errorf("Summary = %q", s)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	r := New()
	r.Add(Span{Worker: 2, Kind: KindForward, Name: "iter0", Start: time.Millisecond, End: 3 * time.Millisecond})
	r.Add(Span{Worker: -1, Kind: KindCollective, Name: "bucket1", Start: 0, End: time.Millisecond})
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 span events plus 2 thread_name metadata events (worker 2, group).
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	var spans, meta []map[string]any
	for _, e := range events {
		switch e["ph"] {
		case "X":
			spans = append(spans, e)
		case "M":
			meta = append(meta, e)
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if len(spans) != 2 || len(meta) != 2 {
		t.Fatalf("spans = %d, meta = %d, want 2 and 2", len(spans), len(meta))
	}
	first := spans[0]
	if first["ts"].(float64) != 1000 {
		t.Errorf("ts = %v, want 1000 us", first["ts"])
	}
	if first["dur"].(float64) != 2000 {
		t.Errorf("dur = %v, want 2000 us", first["dur"])
	}
	if first["name"] != "forward:iter0" {
		t.Errorf("name = %v", first["name"])
	}
	// Group-level spans land on the reserved tid, never a negative one.
	if spans[1]["tid"].(float64) != 1000 {
		t.Errorf("group tid = %v, want 1000", spans[1]["tid"])
	}
	for _, e := range events {
		if e["tid"].(float64) < 0 {
			t.Errorf("event %v on negative tid", e["name"])
		}
	}
}

// TestChromeTraceThreadNames pins the regression where group-level
// (Worker = -1) spans landed on an anonymous row: every row present in
// the export must carry a thread_name metadata event.
func TestChromeTraceThreadNames(t *testing.T) {
	r := New()
	r.Add(Span{Worker: 0, Kind: KindForward, Name: "iter0", End: time.Millisecond})
	r.Add(Span{Worker: 3, Kind: KindBarrier, Name: "op0", End: time.Millisecond})
	r.Add(Span{Worker: -1, Kind: KindCollective, Name: "op0", End: time.Millisecond})
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	names := map[float64]string{} // tid -> thread name
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			names[e["tid"].(float64)] = args["name"].(string)
		}
	}
	want := map[float64]string{0: "worker 0", 3: "worker 3", 1000: "collective group"}
	for tid, name := range want {
		if names[tid] != name {
			t.Errorf("tid %v named %q, want %q", tid, names[tid], name)
		}
	}
	if len(names) != len(want) {
		t.Errorf("named rows = %d, want %d", len(names), len(want))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		if _, ok := names[e["tid"].(float64)]; !ok {
			t.Errorf("span %v on unnamed tid %v", e["name"], e["tid"])
		}
	}
}
