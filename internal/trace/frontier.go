// Frontier-style blame attribution (after StageFrontier): for every
// synchronization barrier the last-arriving rank — the frontier — is the
// one every other rank was actually waiting for, so each slice of
// recorded comm-wait time is charged to the frontier of the barrier that
// ended it. Summed across iterations this turns "how much time went to
// communication waits" into "whose fault they were": a persistent
// straggler (or the rank behind a degraded link) accumulates blame.
package trace

import (
	"sort"
	"time"
)

// WorkerBlame is one worker's row of an Attribution.
type WorkerBlame struct {
	// Worker is the GPU rank.
	Worker int

	// Blamed is the comm-wait time (this worker's own and everyone
	// else's) attributed to this worker being the frontier — the last
	// arrival — of the barrier that the wait ended at.
	Blamed time.Duration

	// SelfWait is the worker's own recorded comm-wait time, for
	// contrast: a culprit has high Blamed and low SelfWait.
	SelfWait time.Duration

	// FrontierCount is the number of barriers this worker arrived last
	// at.
	FrontierCount int
}

// Attribution is the result of the frontier blame pass.
type Attribution struct {
	// Barriers is the number of distinct barriers seen.
	Barriers int

	// TiedBarriers counts barriers where every rank arrived at the same
	// instant. Their blame falls to rank 0 (the deterministic
	// lowest-rank tie-break), so on a perfectly lockstep run the table
	// measures barrier wait, not a culprit; a high tie share says
	// "no straggler to name".
	TiedBarriers int

	// Workers is the blame table, sorted by Blamed descending (ties by
	// rank ascending).
	Workers []WorkerBlame

	// TotalCommWait is the sum of all recorded KindCommWait span
	// durations; Attributed is the portion charged to some frontier and
	// Unattributed the remainder (comm-wait time not ending at any
	// recorded barrier). Attribution is conservative:
	//
	//	Attributed + Unattributed == TotalCommWait
	//
	// and on a timeline with per-worker barrier spans (KindBarrier)
	// recorded by the collective layer, Unattributed is zero — the
	// audit's blame-conservation family enforces both.
	TotalCommWait time.Duration
	Attributed    time.Duration
	Unattributed  time.Duration
}

// Attribute runs the frontier blame pass over the recorded timeline.
//
// For each barrier (KindBarrier spans sharing a Name), the frontier is
// the rank with the latest Start (arrival); ties resolve to the lowest
// rank. Each worker's KindCommWait spans are then partitioned at that
// worker's own barrier departures (span Ends) falling inside them, and
// every slice is charged to the frontier of the barrier it ends at.
// Safe on a nil or empty recorder (returns an empty attribution).
func (r *Recorder) Attribute() *Attribution {
	a := &Attribution{}
	if r == nil {
		return a
	}

	// Pass 1: resolve each barrier's frontier and arrival spread.
	type barrier struct {
		frontier   int
		maxArrival time.Duration
		minArrival time.Duration
	}
	bars := make(map[string]*barrier)
	var order []*barrier // creation order, so no map iteration below
	maxRank := -1
	for _, s := range r.spans {
		if s.Worker < 0 {
			continue
		}
		if (s.Kind == KindBarrier || s.Kind == KindCommWait) && s.Worker > maxRank {
			maxRank = s.Worker
		}
		if s.Kind != KindBarrier {
			continue
		}
		b := bars[s.Name]
		if b == nil {
			b = &barrier{frontier: s.Worker, maxArrival: s.Start, minArrival: s.Start}
			bars[s.Name] = b
			order = append(order, b)
			continue
		}
		if s.Start > b.maxArrival || (s.Start == b.maxArrival && s.Worker < b.frontier) {
			b.frontier = s.Worker
			b.maxArrival = s.Start
		}
		if s.Start < b.minArrival {
			b.minArrival = s.Start
		}
	}
	if maxRank < 0 {
		return a
	}
	n := maxRank + 1
	a.Barriers = len(bars)

	blamed := make([]time.Duration, n)
	self := make([]time.Duration, n)
	fcount := make([]int, n)
	for _, b := range order {
		fcount[b.frontier]++
		if b.maxArrival == b.minArrival {
			a.TiedBarriers++
		}
	}

	// Pass 2: per worker, its barrier departures and comm-wait spans.
	type departure struct {
		at       time.Duration
		frontier int
	}
	depts := make([][]departure, n)
	comm := make([][]Span, n)
	for _, s := range r.spans {
		if s.Worker < 0 || s.Worker >= n {
			continue
		}
		switch s.Kind {
		case KindBarrier:
			depts[s.Worker] = append(depts[s.Worker], departure{at: s.End, frontier: bars[s.Name].frontier})
		case KindCommWait:
			comm[s.Worker] = append(comm[s.Worker], s)
		}
	}

	// Pass 3: partition each worker's comm-wait spans at its own barrier
	// departures. A departure exactly at a span's start contributed
	// nothing to it (half-open slices), and a worker's comm-wait spans
	// never overlap, so the departure cursor advances monotonically.
	for w := 0; w < n; w++ {
		d := depts[w]
		sort.SliceStable(d, func(i, j int) bool { return d[i].at < d[j].at })
		cs := comm[w]
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		i := 0
		for _, c := range cs {
			a.TotalCommWait += c.Duration()
			self[w] += c.Duration()
			for i < len(d) && d[i].at <= c.Start {
				i++
			}
			prev := c.Start
			for i < len(d) && d[i].at <= c.End {
				blamed[d[i].frontier] += d[i].at - prev
				prev = d[i].at
				i++
			}
			a.Unattributed += c.End - prev
		}
	}

	for _, b := range blamed {
		a.Attributed += b
	}
	a.Workers = make([]WorkerBlame, n)
	for w := 0; w < n; w++ {
		a.Workers[w] = WorkerBlame{Worker: w, Blamed: blamed[w], SelfWait: self[w], FrontierCount: fcount[w]}
	}
	sort.SliceStable(a.Workers, func(i, j int) bool {
		if a.Workers[i].Blamed != a.Workers[j].Blamed {
			return a.Workers[i].Blamed > a.Workers[j].Blamed
		}
		return a.Workers[i].Worker < a.Workers[j].Worker
	})
	return a
}
