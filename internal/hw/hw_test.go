package hw

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUtilizationMonotonicInWork(t *testing.T) {
	for _, g := range []GPUSpec{K80, V100, A100} {
		prev := 0.0
		for _, w := range []float64{1e8, 1e9, 1e10, 1e11, 1e12} {
			u := g.Utilization(w)
			if u <= prev {
				t.Errorf("%s: utilization not increasing at work %v: %v <= %v", g.Name, w, u, prev)
			}
			if u >= g.MaxUtilization {
				t.Errorf("%s: utilization %v >= max %v", g.Name, u, g.MaxUtilization)
			}
			prev = u
		}
	}
}

func TestUtilizationZeroWork(t *testing.T) {
	if got := V100.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v, want 0", got)
	}
	if got := V100.Utilization(-5); got != 0 {
		t.Errorf("Utilization(-5) = %v, want 0", got)
	}
}

func TestUtilizationHalfSaturation(t *testing.T) {
	for _, g := range []GPUSpec{K80, V100} {
		got := g.Utilization(g.HalfUtilWork)
		want := g.MaxUtilization / 2
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: Utilization(HalfUtilWork) = %v, want %v", g.Name, got, want)
		}
	}
}

func TestV100FasterThanK80OnLargeModels(t *testing.T) {
	// ResNet50-scale iteration: 4.1 GFLOPs/sample x batch 32 forward work.
	work := 32 * 4.1e9
	tv := V100.LayerTime(3*work, 0, V100.EffectiveFLOPS(work))
	tk := K80.LayerTime(3*work, 0, K80.EffectiveFLOPS(work))
	if ratio := float64(tk) / float64(tv); ratio < 4 {
		t.Errorf("K80/V100 ratio for large model = %v, want >= 4 (V100 dominant)", ratio)
	}
}

func TestSmallModelCannotExploitV100(t *testing.T) {
	// ShuffleNet-scale iteration: 0.15 GFLOPs/sample x batch 32.
	work := 32 * 0.15e9
	tv := V100.LayerTime(3*work, 0, V100.EffectiveFLOPS(work))
	tk := K80.LayerTime(3*work, 0, K80.EffectiveFLOPS(work))
	ratio := float64(tk) / float64(tv)
	// The speedup must be below the ~1.7x P3/P2 price ratio so that small
	// models are cheaper on P2 (paper §V-C, Fig 14).
	if ratio > 1.7 {
		t.Errorf("K80/V100 ratio for small model = %v, want <= 1.7", ratio)
	}
	if ratio < 1 {
		t.Errorf("K80/V100 ratio = %v: V100 should never be slower", ratio)
	}
}

func TestLayerTimeIncludesKernelOverhead(t *testing.T) {
	got := V100.LayerTime(0, 0, V100.EffectiveFLOPS(1e9))
	if got != V100.KernelOverhead {
		t.Errorf("zero-work layer time = %v, want kernel overhead %v", got, V100.KernelOverhead)
	}
}

func TestLayerTimeMemoryBound(t *testing.T) {
	// Tiny FLOPs, huge memory traffic: time set by bandwidth.
	bytes := 90.0 * GB // 100 ms at 900 GB/s on V100
	got := V100.LayerTime(1, bytes, V100.EffectiveFLOPS(1e12))
	want := 100*time.Millisecond + V100.KernelOverhead
	if got < want || got > want+time.Millisecond {
		t.Errorf("memory-bound layer time = %v, want ~%v", got, want)
	}
}

func TestLayerTimeComputeBound(t *testing.T) {
	eff := V100.EffectiveFLOPS(1e12)
	got := V100.LayerTime(eff, 1, eff) // exactly 1 second of work
	want := time.Second + V100.KernelOverhead
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("compute-bound layer time = %v, want ~%v", got, want)
	}
}

func TestLayerTimeZeroEffFLOPS(t *testing.T) {
	got := V100.LayerTime(1e9, 8*GB, 0)
	// With no compute throughput the memory term still applies.
	wantMem := time.Duration(8 * GB / V100.MemBandwidth * float64(time.Second))
	if got != wantMem+V100.KernelOverhead {
		t.Errorf("LayerTime with eff=0 = %v, want %v", got, wantMem+V100.KernelOverhead)
	}
}

func TestNetworkLinkConversion(t *testing.T) {
	l := NetworkLink(10)
	if want := 10 * GbpsBytes * NetworkGoodput; l.Bandwidth != want {
		t.Errorf("10 Gbps = %v B/s, want %v (goodput-derated)", l.Bandwidth, want)
	}
	if l.Class != LinkNetwork {
		t.Errorf("class = %v, want Network", l.Class)
	}
}

func TestLinkClassString(t *testing.T) {
	cases := map[LinkClass]string{
		LinkPCIe:     "PCIe",
		LinkNVLink:   "NVLink",
		LinkNVSwitch: "NVSwitch",
		LinkNetwork:  "Network",
		LinkClass(0): "LinkClass(0)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(c), got, want)
		}
	}
}

func TestInterconnectBandwidthOrdering(t *testing.T) {
	if !(PCIeGen3x16.Bandwidth < NVLink2.Bandwidth && NVLink2.Bandwidth < NVSwitchLink.Bandwidth) {
		t.Error("interconnect bandwidths not ordered PCIe < NVLink < NVSwitch")
	}
	if net := NetworkLink(25); net.Bandwidth >= PCIeGen3x16.Bandwidth {
		t.Error("25 Gbps network should be slower than PCIe gen3 x16")
	}
}

func TestV100x32HasDoubleMemory(t *testing.T) {
	if V100x32.MemBytes != 2*V100.MemBytes {
		t.Errorf("V100-32GB memory = %v, want %v", V100x32.MemBytes, 2*V100.MemBytes)
	}
	if V100x32.PeakFLOPS != V100.PeakFLOPS {
		t.Error("V100-32GB should have same FLOPS as V100")
	}
}

func TestXeonScalesWithVCPUs(t *testing.T) {
	small, big := Xeon(8), Xeon(96)
	if small.VCPUs != 8 || big.VCPUs != 96 {
		t.Fatalf("vCPU counts wrong: %d, %d", small.VCPUs, big.VCPUs)
	}
	if small.PrepRate != big.PrepRate {
		t.Error("per-vCPU prep rate should be identical across sizes")
	}
}

// Property: layer time is monotonically non-decreasing in FLOPs and in
// memory bytes.
func TestQuickLayerTimeMonotone(t *testing.T) {
	eff := V100.EffectiveFLOPS(1e11)
	f := func(f1Raw, f2Raw uint32, bytesRaw uint32) bool {
		f1, f2 := float64(f1Raw)*1e3, float64(f2Raw)*1e3
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		bytes := float64(bytesRaw)
		return V100.LayerTime(f1, bytes, eff) <= V100.LayerTime(f2, bytes, eff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: effective FLOPS never exceeds peak for any workload size.
func TestQuickEffectiveBelowPeak(t *testing.T) {
	f := func(workRaw uint32) bool {
		work := float64(workRaw) * 1e6
		for _, g := range []GPUSpec{K80, V100, V100x32, A100} {
			if g.EffectiveFLOPS(work) >= g.PeakFLOPS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
