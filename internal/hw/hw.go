// Package hw defines the hardware building blocks of the simulated cloud:
// GPU models, interconnect link classes, storage devices and host CPUs,
// plus the roofline-style model that converts DNN layer work into compute
// time on a given GPU.
//
// The specs are calibrated to the public datasheets of the devices the
// paper's AWS P2/P3 instances use (NVIDIA K80 and V100, PCIe gen3,
// NVLink 2.0, EBS gp2 SSD), with utilization factors fit so that absolute
// per-model throughputs land near published training numbers. Stash only
// depends on the *relative* balance of compute, interconnect and network
// speeds, which these numbers set.
package hw

import (
	"fmt"
	"time"
)

// Byte-size and rate helpers used across the simulator.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9

	// GbpsBytes converts gigabits/sec to bytes/sec.
	GbpsBytes = 1e9 / 8
)

// GPUSpec describes a GPU model.
type GPUSpec struct {
	Name string

	// PeakFLOPS is the peak single-precision throughput (FLOP/s).
	PeakFLOPS float64

	// MemBytes is the device memory capacity.
	MemBytes float64

	// MemBandwidth is the device memory bandwidth (bytes/s).
	MemBandwidth float64

	// KernelOverhead is the fixed launch+sync cost charged per layer per
	// pass; it dominates for tiny layers and grows training time of very
	// deep networks.
	KernelOverhead time.Duration

	// MaxUtilization is the fraction of peak FLOPS a well-tuned dense
	// workload achieves when fully saturated.
	MaxUtilization float64

	// HalfUtilWork is the per-iteration forward-pass work (FLOPs, i.e.
	// per-GPU batch size x model forward FLOPs per sample) at which
	// utilization reaches half of MaxUtilization. Wider GPUs need more
	// work in flight to saturate, which is why small models such as
	// ShuffleNet cannot exploit a V100 (paper Fig. 15 / §V-C).
	HalfUtilWork float64
}

// Predefined GPU models used by the AWS P-family.
var (
	// K80 is one GK210 die of a Tesla K80 board (AWS exposes each die as
	// one GPU: p2.xlarge has 1, p2.16xlarge has 16).
	K80 = GPUSpec{
		Name:           "K80",
		PeakFLOPS:      4.37e12,
		MemBytes:       12 * GB,
		MemBandwidth:   240 * GB,
		KernelOverhead: 18 * time.Microsecond,
		MaxUtilization: 0.30,
		HalfUtilWork:   10e9,
	}

	// V100 is the Tesla V100-SXM2-16GB used by p3.2x/8x/16xlarge.
	V100 = GPUSpec{
		Name:           "V100",
		PeakFLOPS:      15.7e12,
		MemBytes:       16 * GB,
		MemBandwidth:   900 * GB,
		KernelOverhead: 7 * time.Microsecond,
		MaxUtilization: 0.70,
		HalfUtilWork:   90e9,
	}

	// V100x32 is the 32 GB variant used by p3dn.24xlarge.
	V100x32 = func() GPUSpec {
		s := V100
		s.Name = "V100-32GB"
		s.MemBytes = 32 * GB
		return s
	}()

	// A100 is included for the P4 catalog row; the paper does not
	// characterize P4 (single dedicated offering).
	A100 = GPUSpec{
		Name:           "A100",
		PeakFLOPS:      19.5e12,
		MemBytes:       40 * GB,
		MemBandwidth:   1555 * GB,
		KernelOverhead: 5 * time.Microsecond,
		MaxUtilization: 0.75,
		HalfUtilWork:   150e9,
	}
)

// Utilization returns the fraction of peak FLOPS achieved when each
// iteration's forward pass performs iterFwdFLOPs of work.
func (g GPUSpec) Utilization(iterFwdFLOPs float64) float64 {
	if iterFwdFLOPs <= 0 {
		return 0
	}
	x := iterFwdFLOPs / g.HalfUtilWork
	return g.MaxUtilization * x / (1 + x)
}

// EffectiveFLOPS returns achieved FLOP/s for a workload whose forward
// pass performs iterFwdFLOPs per iteration.
func (g GPUSpec) EffectiveFLOPS(iterFwdFLOPs float64) float64 {
	return g.PeakFLOPS * g.Utilization(iterFwdFLOPs)
}

// LayerTime returns the roofline execution time of one layer pass that
// performs flops floating-point operations and moves memBytes through
// device memory, given the effective FLOP/s the workload sustains
// (from EffectiveFLOPS).
func (g GPUSpec) LayerTime(flops, memBytes, effFLOPS float64) time.Duration {
	var t float64
	if effFLOPS > 0 {
		t = flops / effFLOPS
	}
	if memory := memBytes / g.MemBandwidth; memory > t {
		t = memory
	}
	return time.Duration(t*float64(time.Second)) + g.KernelOverhead
}

// LinkClass enumerates the interconnect families in the P instances.
type LinkClass int

// Link classes, ordered roughly by bandwidth.
const (
	LinkPCIe LinkClass = iota + 1
	LinkNVLink
	LinkNVSwitch
	LinkNetwork
)

// String returns the class name.
func (c LinkClass) String() string {
	switch c {
	case LinkPCIe:
		return "PCIe"
	case LinkNVLink:
		return "NVLink"
	case LinkNVSwitch:
		return "NVSwitch"
	case LinkNetwork:
		return "Network"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// LinkSpec describes one interconnect hop.
type LinkSpec struct {
	Class     LinkClass
	Bandwidth float64 // bytes/s
	Latency   time.Duration
}

// Interconnect hop specs.
var (
	// PCIeGen3x16 is a single device's PCIe 3.0 x16 attachment
	// (~12 GB/s effective).
	PCIeGen3x16 = LinkSpec{Class: LinkPCIe, Bandwidth: 12 * GB, Latency: 5 * time.Microsecond}

	// NVLink2 is the effective NVLink path between a directly connected
	// V100 pair in the p3 hybrid cube mesh. NCCL stripes a collective
	// across all six bricks' rings, so the effective pairwise path
	// bandwidth during an all-reduce is well above a single brick pair;
	// 120 GB/s reproduces measured DGX-1 ring bus bandwidth.
	NVLink2 = LinkSpec{Class: LinkNVLink, Bandwidth: 120 * GB, Latency: 2 * time.Microsecond}

	// NVSwitchLink is one A100 NVSwitch port (P4 only).
	NVSwitchLink = LinkSpec{Class: LinkNVSwitch, Bandwidth: 300 * GB, Latency: 2 * time.Microsecond}
)

// NetworkGoodput is the fraction of an instance's headline network rating
// that gradient traffic achieves in practice (TCP/ENA framing, congestion
// control and NCCL socket overheads).
const NetworkGoodput = 0.67

// NetworkLink returns a VPC network hop for an instance with the given
// headline Gbps rating, derated to achievable goodput. The latency covers
// TCP/ENA per-transfer overhead inside one all-reduce step.
func NetworkLink(gbps float64) LinkSpec {
	return LinkSpec{Class: LinkNetwork, Bandwidth: gbps * GbpsBytes * NetworkGoodput, Latency: 60 * time.Microsecond}
}

// StorageSpec describes the volume the training dataset lives on.
type StorageSpec struct {
	Name string

	// Throughput is the sustained sequential read rate (bytes/s) of the
	// whole volume; concurrent readers share it.
	Throughput float64

	// IOPS is the volume's random-read operation budget; reading many
	// small training files (an ImageNet JPEG is ~100 KB) is IOPS-bound
	// long before it is throughput-bound, which is what creates the
	// 16xlarge disk stalls of Figs 4b/8b.
	IOPS float64

	// RequestLatency is the per-read-request overhead.
	RequestLatency time.Duration
}

// Storage volumes used in the experiments.
var (
	// GP2SSD is the AWS general-purpose EBS volume the paper's instances
	// read training data from; its modest throughput is what makes the
	// 16xlarge disk stalls dominate (Figs 4b, 8b, 9b).
	GP2SSD = StorageSpec{Name: "gp2-ssd", Throughput: 250 * MB, IOPS: 1600, RequestLatency: 500 * time.Microsecond}

	// LocalNVMe is the p3dn.24xlarge dedicated local NVMe storage.
	LocalNVMe = StorageSpec{Name: "local-nvme", Throughput: 2 * GB, IOPS: 200000, RequestLatency: 80 * time.Microsecond}
)

// CPUSpec describes host pre-processing capacity.
type CPUSpec struct {
	Name string

	// VCPUs is the number of hardware threads.
	VCPUs int

	// PrepRate is the per-vCPU pre-processing throughput in samples/sec
	// for a standard ImageNet-style decode+augment stage.
	PrepRate float64
}

// Xeon returns the host CPU spec for an instance with n vCPUs. The AWS
// P-family uses Broadwell/Skylake Xeons; ~400 images/s/vCPU is what a
// tuned decode+augment stage (libjpeg-turbo / pillow-simd) sustains,
// which is why the paper finds AWS vCPUs sufficient and CPU stalls
// negligible (SV-A1), unlike DS-Analyzer's 3-vCPU-per-GPU cluster.
func Xeon(vcpus int) CPUSpec {
	return CPUSpec{Name: fmt.Sprintf("xeon-%dvcpu", vcpus), VCPUs: vcpus, PrepRate: 400}
}
