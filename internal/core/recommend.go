package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"stash/internal/cloud"
	"stash/internal/workload"
)

// Constraints bound the configurations a recommendation may propose.
type Constraints struct {
	// MaxEpochTime is the deadline per epoch; zero means none.
	MaxEpochTime time.Duration

	// MaxCostPerEpoch is the budget per epoch in USD; zero means none.
	MaxCostPerEpoch float64

	// Families restricts instance families ("P2", "P3", "P4"); nil
	// allows the paper's P2 and P3.
	Families []string

	// MaxNodes caps how many instances may be tied over the network;
	// zero means 2 (the paper's step-5 shape).
	MaxNodes int
}

func (c Constraints) families() map[string]bool {
	out := make(map[string]bool)
	if len(c.Families) == 0 {
		out["P2"], out["P3"] = true, true
		return out
	}
	for _, f := range c.Families {
		out[f] = true
	}
	return out
}

// Candidate is one purchasable configuration with its measured profile.
type Candidate struct {
	Instance string
	Nodes    int
	Estimate EpochEstimate

	// ICStallPct is the interconnect (plus network, for multi-node
	// configurations) stall relative to a single GPU.
	ICStallPct float64

	// Notes explain what dominates this configuration's behavior.
	Notes []string
}

// Recommendation ranks feasible configurations for a job.
type Recommendation struct {
	// Candidates are the feasible configurations, cheapest first.
	Candidates []Candidate

	// Cheapest and Fastest index into Candidates.
	Cheapest, Fastest int

	// Rejected maps configuration labels to the reason they were
	// excluded (OOM, over deadline, over budget).
	Rejected map[string]string

	// ModelAdvice is the §VI-A4 architecture-level guidance for this
	// model: whether it is latency-bound (deep, few gradients per layer)
	// or bandwidth-bound (shallow, fat layers).
	ModelAdvice string
}

// ErrNoFeasibleConfig is returned when every configuration violates the
// constraints.
var ErrNoFeasibleConfig = errors.New("stash: no configuration satisfies the constraints")

// label names a configuration.
func label(instance string, nodes int) string {
	if nodes == 1 {
		return instance
	}
	return fmt.Sprintf("%s*%d", instance, nodes)
}

// Recommend profiles the job on every allowed configuration and ranks the
// feasible ones by epoch cost, reproducing the paper's recommendation
// methodology (§V-A2, §V-B3, §V-C1, §VI-A4) as a library call.
func (p *Profiler) Recommend(job workload.Job, cons Constraints) (*Recommendation, error) {
	return p.RecommendContext(context.Background(), job, cons)
}

// RecommendContext is Recommend honoring ctx: the candidate sweep stops
// dispatching new configurations once ctx is done (ForEachCtx) and the
// call returns ctx.Err(). Candidates already being measured run to
// completion, so a timed-out recommendation never leaves a partially
// simulated scenario in the profiler's cache.
func (p *Profiler) RecommendContext(ctx context.Context, job workload.Job, cons Constraints) (*Recommendation, error) {
	if cons.MaxNodes == 0 {
		cons.MaxNodes = 2
	}
	if cons.MaxNodes < 1 {
		return nil, fmt.Errorf("stash: MaxNodes %d < 1", cons.MaxNodes)
	}
	allowed := cons.families()

	type config struct {
		it    cloud.InstanceType
		nodes int
	}
	var configs []config
	for _, it := range cloud.Catalog() {
		if !allowed[it.Family] {
			continue
		}
		configs = append(configs, config{it, 1})
		// Multi-node variants only make sense for multi-GPU instances
		// that are not already the family's largest dedicated offering.
		if it.NGPUs > 1 && it.NGPUs < 16 && cons.MaxNodes >= 2 {
			configs = append(configs, config{it, 2})
		}
	}

	// Every candidate is measured independently, so the ranking fans out
	// on a worker pool; outcomes land in per-config slots and are
	// assembled in catalog order, keeping the ranking deterministic.
	type outcome struct {
		cand   *Candidate
		reject string
	}
	outs := make([]outcome, len(configs))
	err := ForEachCtx(ctx, p.parallelism, len(configs), func(i int) error {
		c := configs[i]
		lbl := label(c.it.Name, c.nodes)
		est, err := p.EpochContext(ctx, job, c.it, c.nodes)
		if err != nil {
			var oom *OOMError
			if errors.As(err, &oom) {
				outs[i].reject = "does not fit GPU memory"
				return nil
			}
			return fmt.Errorf("recommend %s: %w", lbl, err)
		}
		if cons.MaxEpochTime > 0 && est.Time > cons.MaxEpochTime {
			outs[i].reject = fmt.Sprintf("epoch %v over deadline %v", est.Time.Round(time.Second), cons.MaxEpochTime)
			return nil
		}
		if cons.MaxCostPerEpoch > 0 && est.Cost > cons.MaxCostPerEpoch {
			outs[i].reject = fmt.Sprintf("epoch $%.2f over budget $%.2f", est.Cost, cons.MaxCostPerEpoch)
			return nil
		}
		cand := Candidate{
			Instance: c.it.Name,
			Nodes:    c.nodes,
			Estimate: est,
		}
		if c.it.NGPUs*c.nodes > 1 {
			stall, err := p.clusterCommStall(ctx, job, c.it, c.nodes)
			if err != nil {
				return fmt.Errorf("recommend %s: %w", lbl, err)
			}
			cand.ICStallPct = stall.Pct
			switch {
			case c.nodes > 1:
				cand.Notes = append(cand.Notes, "network link in the all-reduce ring")
			case stall.Pct > 50:
				cand.Notes = append(cand.Notes, "interconnect-bound on this instance")
			}
		}
		if frac := est.ColdIteration.Seconds() / est.WarmIteration.Seconds(); frac > 1.3 {
			cand.Notes = append(cand.Notes, "first epoch disk-bound; DRAM caching absorbs later epochs")
		}
		outs[i].cand = &cand
		return nil
	})
	if err != nil {
		return nil, err
	}

	rec := &Recommendation{Rejected: make(map[string]string)}
	for i, o := range outs {
		switch {
		case o.reject != "":
			rec.Rejected[label(configs[i].it.Name, configs[i].nodes)] = o.reject
		case o.cand != nil:
			rec.Candidates = append(rec.Candidates, *o.cand)
		}
	}
	if len(rec.Candidates) == 0 {
		return nil, ErrNoFeasibleConfig
	}

	sort.SliceStable(rec.Candidates, func(i, j int) bool {
		a, b := rec.Candidates[i], rec.Candidates[j]
		//lint:allow floatcmp tie-break comparator; a tolerance would break the strict weak ordering sort requires
		if a.Estimate.Cost != b.Estimate.Cost {
			return a.Estimate.Cost < b.Estimate.Cost
		}
		return a.Estimate.Time < b.Estimate.Time
	})
	rec.Cheapest = 0
	for i, c := range rec.Candidates {
		if c.Estimate.Time < rec.Candidates[rec.Fastest].Estimate.Time {
			rec.Fastest = i
		}
	}
	rec.ModelAdvice = modelAdvice(job)
	return rec, nil
}

// modelAdvice classifies the model per §VI-A4: deep models with few
// gradients per layer are latency-bound (any decent interconnect will
// do); shallow models with fat layers are bandwidth-bound (buy the best
// interconnect, never cross a network link).
func modelAdvice(job workload.Job) string {
	m := job.Model
	layers := m.NumParamLayers()
	if layers == 0 {
		return ""
	}
	bytesPerLayer := m.GradientBytes() / float64(layers)
	switch {
	case bytesPerLayer > 8e6:
		return fmt.Sprintf(
			"%s is bandwidth-bound (%d layers averaging %.1f MB of gradients each): "+
				"run it on the best interconnect available and avoid network-connected instances",
			m.Name, layers, bytesPerLayer/1e6)
	case layers > 100:
		return fmt.Sprintf(
			"%s is latency-bound (%d sync points, only %.2f MB each): "+
				"a premium interconnect buys little; mid-tier instances and even network links carry a reduced penalty",
			m.Name, layers, bytesPerLayer/1e6)
	default:
		return fmt.Sprintf(
			"%s is balanced (%d sync points, %.2f MB each): choose by price",
			m.Name, layers, bytesPerLayer/1e6)
	}
}
