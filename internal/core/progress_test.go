package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// progressRecorder is a thread-safe ProgressFunc capturing cumulative
// done/total counts and asserting monotonicity.
type progressRecorder struct {
	mu          sync.Mutex
	done, total int64
	violations  []string
}

func (r *progressRecorder) fn(doneDelta, totalDelta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if doneDelta < 0 || totalDelta < 0 {
		r.violations = append(r.violations, "negative delta")
	}
	r.done += int64(doneDelta)
	r.total += int64(totalDelta)
	if r.done > r.total {
		r.violations = append(r.violations, "done overtook total")
	}
}

func (r *progressRecorder) snapshot() (done, total int64, violations []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total, append([]string(nil), r.violations...)
}

func TestForEachCtxReportsProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := &progressRecorder{}
		ctx := WithProgress(context.Background(), rec.fn)
		err := ForEachCtx(ctx, workers, 9, func(i int) error { return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		done, total, violations := rec.snapshot()
		if done != 9 || total != 9 {
			t.Errorf("workers=%d: progress = %d/%d, want 9/9", workers, done, total)
		}
		if len(violations) > 0 {
			t.Errorf("workers=%d: monotonicity violations: %v", workers, violations)
		}
	}
}

// TestForEachCtxCancelledProgress pins the cancellation contract: cells
// that never start are not reported, so a cancelled sweep's done count
// stays strictly below its announced total.
func TestForEachCtxCancelledProgress(t *testing.T) {
	rec := &progressRecorder{}
	ctx, cancel := context.WithCancel(WithProgress(context.Background(), rec.fn))
	cancel()
	err := ForEachCtx(ctx, 1, 5, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done, total, _ := rec.snapshot()
	if total != 5 {
		t.Errorf("total = %d, want 5 (announced before the cut)", total)
	}
	if done != 0 {
		t.Errorf("done = %d, want 0 (no cell started)", done)
	}
}

// TestForEachCtxNoHookNoOverhead just pins that sweeps run fine with no
// hook attached (the CLI path).
func TestForEachCtxNoHook(t *testing.T) {
	n := 0
	if err := ForEachCtx(context.Background(), 1, 3, func(i int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("ran %d cells, want 3", n)
	}
}

// TestProfileContextProgress pins the stage accounting: a multi-GPU
// instance with an even GPU count announces 4 stages (interconnect,
// data, network, epoch), a single-GPU instance announces 3.
func TestProfileContextProgress(t *testing.T) {
	cases := []struct {
		instance string
		stages   int64
	}{
		{"p3.16xlarge", 4},
		{"p3.2xlarge", 3},
	}
	for _, c := range cases {
		rec := &progressRecorder{}
		ctx := WithProgress(context.Background(), rec.fn)
		p := fastProfiler()
		if _, err := p.ProfileContext(ctx, job(t, resnet18(t), 32), instance(t, c.instance)); err != nil {
			t.Fatalf("%s: %v", c.instance, err)
		}
		done, total, violations := rec.snapshot()
		if done != c.stages || total != c.stages {
			t.Errorf("%s: progress = %d/%d, want %d/%d", c.instance, done, total, c.stages, c.stages)
		}
		if len(violations) > 0 {
			t.Errorf("%s: monotonicity violations: %v", c.instance, violations)
		}
	}
}

func TestWithTenantRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != "" {
		t.Errorf("bare context tenant = %q, want empty", got)
	}
	if got := TenantFrom(WithTenant(ctx, "acme")); got != "acme" {
		t.Errorf("tenant = %q, want acme", got)
	}
	// Empty names attach nothing (the CLI path stays unattributed).
	if got := TenantFrom(WithTenant(ctx, "")); got != "" {
		t.Errorf("empty tenant = %q, want empty", got)
	}
}

// TestProfilerTenantStatsConservation runs the same workload under two
// tenants: each tenant's counters obey the conservation law
// independently, and the global counters equal the per-tenant sum here
// because every request in this test is attributed.
func TestProfilerTenantStatsConservation(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.2xlarge")
	for _, tenant := range []string{"acme", "acme", "globex"} {
		ctx := WithTenant(context.Background(), tenant)
		if _, err := p.ProfileContext(ctx, j, it); err != nil {
			t.Fatalf("tenant %s: %v", tenant, err)
		}
	}
	ts := p.TenantStats()
	if len(ts) != 2 {
		t.Fatalf("tenants = %v, want acme and globex", ts)
	}
	var sum Stats
	for name, s := range ts {
		if s.Balance() != 0 {
			t.Errorf("tenant %s leaks: %+v (balance %d)", name, s, s.Balance())
		}
		if s.Requests == 0 {
			t.Errorf("tenant %s recorded no requests", name)
		}
		sum.Requests += s.Requests
		sum.Simulated += s.Simulated
		sum.CacheHits += s.CacheHits
		sum.Waits += s.Waits
		sum.Cancelled += s.Cancelled
	}
	global := p.Stats()
	if global != sum {
		t.Errorf("global %+v != per-tenant sum %+v", global, sum)
	}
	// The second acme profile repeats the first: its scenarios must be
	// cache hits attributed to acme, not re-simulations.
	if ts["acme"].CacheHits == 0 {
		t.Errorf("acme repeat produced no cache hits: %+v", ts["acme"])
	}
	// globex ran the same scenarios after acme populated the cache:
	// nothing it did requires new simulation.
	if ts["globex"].Simulated != 0 {
		t.Errorf("globex re-simulated cached scenarios: %+v", ts["globex"])
	}
}
