package core

import (
	"sync"
	"testing"
)

// TestSingleFlightConcurrentStress hammers one scenario pair from many
// goroutines: the single-flight cache must simulate each scenario
// exactly once, give every caller the identical result, and account for
// every request in the scheduler counters.
func TestSingleFlightConcurrentStress(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")

	const goroutines = 32
	results := make([]ICStall, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = p.InterconnectStall(j, it)
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Errorf("goroutine %d: %+v != %+v", g, results[g], results[0])
		}
	}
	st := p.Stats()
	// InterconnectStall needs two scenarios (steps 1 and 2); every other
	// request must have been served by the cache or a single-flight wait.
	if st.Simulated != 2 {
		t.Errorf("Simulated = %d, want 2 (work was duplicated)", st.Simulated)
	}
	if got := st.CacheHits + st.Waits; got != 2*goroutines-2 {
		t.Errorf("CacheHits+Waits = %d, want %d", got, 2*goroutines-2)
	}
}

// TestStatsCounters checks the serial accounting: a repeated
// measurement is all cache hits, never a re-simulation.
func TestStatsCounters(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")
	if _, err := p.InterconnectStall(j, it); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Simulated != 2 || st.CacheHits != 0 || st.Waits != 0 {
		t.Errorf("after first call: %+v", st)
	}
	if _, err := p.InterconnectStall(j, it); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Simulated != 2 || st.CacheHits != 2 || st.Waits != 0 {
		t.Errorf("after second call: %+v", st)
	}
	if s := st.String(); s == "" {
		t.Error("Stats.String empty")
	}
}

// TestSingleFlightErrorPropagates makes every concurrent waiter see the
// one simulation's error (count=0 fails inside the simulate path, after
// the single-flight entry is claimed).
func TestSingleFlightErrorPropagates(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")

	const goroutines = 8
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = p.Epoch(j, it, 0)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: expected provision error", g)
		}
		if err.Error() != errs[0].Error() {
			t.Errorf("goroutine %d saw %v, goroutine 0 saw %v", g, err, errs[0])
		}
	}
	if st := p.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (error should be shared, not retried)", st.Simulated)
	}
}

// TestForEach covers the pool primitive: full coverage of indices, the
// serial path, and deterministic lowest-index error selection.
func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		seen := make([]bool, 37)
		var mu sync.Mutex
		if err := ForEach(workers, len(seen), func(i int) error {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
	if err := ForEach(4, 0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errAt := func(fail map[int]error) error {
		return ForEach(8, 16, func(i int) error { return fail[i] })
	}
	e3 := &OOMError{Model: "three"}
	e9 := &OOMError{Model: "nine"}
	for trial := 0; trial < 10; trial++ {
		if err := errAt(map[int]error{9: e9, 3: e3}); err != e3 {
			t.Fatalf("trial %d: got %v, want lowest-index error %v", trial, err, e3)
		}
	}
}
