package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"stash/internal/dnn"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCancelledWaiterCountsAsCancelled: a requester blocked on another
// goroutine's in-flight scenario whose own context expires must be
// charged to Cancelled, not Waits — it never received the result it was
// waiting for. The pre-fix scheduler folded these into Waits, breaking
// conservation the moment anyone reasoned "Waits = results delivered by
// another goroutine's simulation".
func TestCancelledWaiterCountsAsCancelled(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")

	// Manufacture an in-flight single-flight entry for the scenario the
	// measurement requests first (step 2: one instance, all GPUs,
	// synthetic), so the requester blocks on it.
	key := scenarioKey{model: j.Model.Name, batch: j.BatchPerGPU, instance: it.Name, count: 1, mode: modeSynthetic}
	e := &cacheEntry{done: make(chan struct{})}
	p.mu.Lock()
	p.cache[key] = e
	p.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := p.NetworkStallContext(ctx, j, it, 2)
		errc <- err
	}()
	// The requester is admitted (Requests ticks) before it blocks on the
	// manufactured entry.
	waitUntil(t, func() bool { return p.Stats().Requests == 1 }, "requester admission")
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	st := p.Stats()
	if st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Waits != 0 {
		t.Errorf("Waits = %d, want 0 (the waiter never got a result)", st.Waits)
	}
	if st.Balance() != 0 {
		t.Errorf("counters leak: %v (balance %d)", st, st.Balance())
	}

	// Release the manufactured entry and verify a later requester is a
	// normal cache hit against the conserved counters.
	e.err = errors.New("manufactured entry, never simulated")
	close(e.done)
	if _, err := p.NetworkStallContext(context.Background(), j, it, 2); err == nil {
		t.Fatal("expected the manufactured entry's error")
	}
	if st := p.Stats(); st.Balance() != 0 {
		t.Errorf("counters leak after release: %v (balance %d)", st, st.Balance())
	}
}

// TestPreCancelledRequestCountsCancelled: a request arriving with an
// already-expired context is admitted, charged to Cancelled, and never
// simulates.
func TestPreCancelledRequestCountsCancelled(t *testing.T) {
	p := fastProfiler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.ProfileContext(ctx, job(t, resnet18(t), 32), instance(t, "p3.16xlarge"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	st := p.Stats()
	if st.Requests != 1 || st.Cancelled != 1 || st.Simulated != 0 {
		t.Errorf("stats after pre-cancelled request: %v", st)
	}
	if st.Balance() != 0 {
		t.Errorf("counters leak: %v (balance %d)", st, st.Balance())
	}
}

// TestOOMRejectionNotAdmitted: a request the fit check rejects never
// enters the scheduler, so the conservation law stays exact without a
// rejected-outcome counter.
func TestOOMRejectionNotAdmitted(t *testing.T) {
	p := fastProfiler()
	bert, err := dnn.ByName("bert-large")
	if err != nil {
		t.Fatal(err)
	}
	_, perr := p.Profile(job(t, bert, 64), instance(t, "p3.2xlarge"))
	var oom *OOMError
	if !errors.As(perr, &oom) {
		t.Fatalf("got %v, want OOMError", perr)
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Errorf("rejected request moved scheduler counters: %v", st)
	}
}
