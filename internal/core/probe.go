package core

import (
	"fmt"
	"time"

	"stash/internal/cloud"
	"stash/internal/hw"
	"stash/internal/simnet"
	"stash/internal/workload"
)

// BandwidthProbe is the Fig-7 measurement: the host-to-device bandwidth
// each GPU achieves when every GPU on the machine transfers concurrently
// (the CUDA bandwidthTest methodology of §V-A1).
type BandwidthProbe struct {
	Instance string

	// PerGPU is the achieved bandwidth of each GPU, bytes/sec.
	PerGPU []float64
}

// MinPerGPU returns the slowest GPU's measured bandwidth.
func (b BandwidthProbe) MinPerGPU() float64 {
	if len(b.PerGPU) == 0 {
		return 0
	}
	m := b.PerGPU[0]
	for _, v := range b.PerGPU[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// PCIeBandwidthProbe measures per-GPU PCIe bandwidth on an instance with
// all GPUs transferring in parallel.
func (p *Profiler) PCIeBandwidthProbe(it cloud.InstanceType) (BandwidthProbe, error) {
	c := acquireSimContext()
	defer releaseSimContext(c)
	top, err := c.world(p.slicePolicy, p.seed, it, 1)
	if err != nil {
		return BandwidthProbe{}, err
	}
	eng, net := c.eng, c.net
	m := top.Machines[0]
	const probeBytes = 1 * hw.GB
	flows := make([]*simnet.Flow, len(m.GPUs))
	for i, g := range m.GPUs {
		route, err := top.Route(m.Host, g)
		if err != nil {
			return BandwidthProbe{}, err
		}
		flows[i] = net.StartFlow(probeBytes, route)
	}
	if err := eng.Run(); err != nil {
		return BandwidthProbe{}, fmt.Errorf("stash: bandwidth probe: %w", err)
	}
	probe := BandwidthProbe{Instance: it.Name, PerGPU: make([]float64, len(flows))}
	for i, f := range flows {
		probe.PerGPU[i] = f.Throughput()
	}
	return probe, nil
}

// MemoryUtilization returns the percentage of per-GPU device memory the
// job occupies on the instance (Fig 15), capped at 100.
func MemoryUtilization(job workload.Job, it cloud.InstanceType) float64 {
	pct := 100 * job.Model.TrainingMemoryBytes(job.BatchPerGPU) / it.GPUMemPerGPU()
	if pct > 100 {
		pct = 100
	}
	return pct
}

// String renders an ICStall compactly.
func (s ICStall) String() string {
	return fmt.Sprintf("I/C stall %.1f%% (1-GPU %v, all-GPU %v)", s.Pct, round(s.SingleGPU), round(s.AllGPU))
}

// String renders an NWStall compactly.
func (s NWStall) String() string {
	return fmt.Sprintf("N/W stall %.1f%% over %d nodes (1-node %v, %d-node %v)",
		s.Pct, s.Nodes, round(s.SingleInstance), s.Nodes, round(s.MultiInstance))
}

// String renders DataStalls compactly.
func (s DataStalls) String() string {
	return fmt.Sprintf("prep stall %.1f%%, fetch stall %.1f%% of training time", s.PrepPct, s.FetchPct)
}

// String renders an EpochEstimate compactly.
func (e EpochEstimate) String() string {
	return fmt.Sprintf("epoch on %dx %s: %v ($%.2f)", e.Nodes, e.Instance, round(e.Time), e.Cost)
}

// String renders the full report.
func (r *Report) String() string {
	s := fmt.Sprintf("%s on %s (batch %d):\n  %v\n  %v\n", r.Model, r.Instance, r.Batch, r.IC, r.Data)
	if r.NW != nil {
		s += fmt.Sprintf("  %v\n", *r.NW)
	}
	s += fmt.Sprintf("  %v\n", r.Epoch)
	if r.Blame != nil {
		s += r.Blame.String()
	}
	return s
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
