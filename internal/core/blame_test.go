package core

import (
	"strings"
	"testing"

	"stash/internal/cloud"
	"stash/internal/workload"
)

func blameFixture(t *testing.T) (workload.Job, cloud.InstanceType) {
	t.Helper()
	return job(t, resnet18(t), 32), instance(t, "p3.8xlarge")
}

func TestBlameNamesInjectedStraggler(t *testing.T) {
	job, it := blameFixture(t)
	p := New(WithIterations(4))
	rep, err := p.Blame(job, it, BlameOptions{StragglerRank: it.NGPUs - 1, StragglerScale: 1.5})
	if err != nil {
		t.Fatalf("Blame: %v", err)
	}
	if len(rep.Workers) != it.NGPUs {
		t.Fatalf("blame table has %d rows, want %d", len(rep.Workers), it.NGPUs)
	}
	if rep.Workers[0].Rank != it.NGPUs-1 {
		t.Errorf("top blamed rank = %d, want the straggler %d", rep.Workers[0].Rank, it.NGPUs-1)
	}
	if rep.Attributed+rep.Unattributed != rep.TotalCommWait || rep.Unattributed != 0 {
		t.Errorf("conservation: attributed %v + unattributed %v vs total %v",
			rep.Attributed, rep.Unattributed, rep.TotalCommWait)
	}
	if !strings.Contains(rep.String(), "injected straggler: rank 3") {
		t.Errorf("rendering lacks straggler line:\n%s", rep)
	}
}

func TestBlameValidation(t *testing.T) {
	job, it := blameFixture(t)
	p := New(WithIterations(2))
	for _, opt := range []BlameOptions{
		{StragglerRank: -1, StragglerScale: 2},       // rank out of range
		{StragglerRank: it.NGPUs, StragglerScale: 2}, // rank out of range
		{StragglerRank: 0, StragglerScale: 0.5},      // scale below 1
		{Nodes: 3},                                   // 4 GPUs not divisible by 3
	} {
		if _, err := p.Blame(job, it, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

func TestBlameDeterministicAcrossRuns(t *testing.T) {
	job, it := blameFixture(t)
	opt := BlameOptions{StragglerRank: 1, StragglerScale: 1.5}
	mk := func(par int) string {
		rep, err := New(WithIterations(4), WithParallelism(par)).Blame(job, it, opt)
		if err != nil {
			t.Fatalf("Blame: %v", err)
		}
		return rep.String()
	}
	a, b, c := mk(1), mk(1), mk(8)
	if a != b {
		t.Errorf("run vs rerun differ:\n%s\nvs\n%s", a, b)
	}
	if a != c {
		t.Errorf("serial vs parallel profiler differ:\n%s\nvs\n%s", a, c)
	}
}

func TestProfileWithBlameAttribution(t *testing.T) {
	job, it := blameFixture(t)
	rep, err := New(WithIterations(4), WithBlameAttribution(true)).Profile(job, it)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if rep.Blame == nil {
		t.Fatal("Report.Blame not populated under WithBlameAttribution")
	}
	if rep.Blame.StragglerScale > 1 {
		t.Errorf("profile blame injected a straggler: %+v", rep.Blame)
	}
	if !strings.Contains(rep.String(), "blame:") {
		t.Error("Report rendering lacks the blame table")
	}
	if base, err := New(WithIterations(4)).Profile(job, it); err != nil || base.Blame != nil {
		t.Errorf("default profile has Blame %+v, err %v", base.Blame, err)
	}
}
