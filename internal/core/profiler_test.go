package core

import (
	"errors"
	"strings"
	"testing"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/workload"
)

func job(t *testing.T, m *dnn.Model, batch int) workload.Job {
	t.Helper()
	j, err := workload.NewJob(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func resnet18(t *testing.T) *dnn.Model {
	t.Helper()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func vgg11(t *testing.T) *dnn.Model {
	t.Helper()
	m, err := dnn.VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func instance(t *testing.T, name string) cloud.InstanceType {
	t.Helper()
	it, err := cloud.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func fastProfiler(opts ...Option) *Profiler {
	return New(append([]Option{WithIterations(6)}, opts...)...)
}

func TestInterconnectStallPositiveOnMultiGPU(t *testing.T) {
	p := fastProfiler()
	s, err := p.InterconnectStall(job(t, resnet18(t), 32), instance(t, "p3.16xlarge"))
	if err != nil {
		t.Fatalf("InterconnectStall: %v", err)
	}
	if s.Stall <= 0 || s.Pct <= 0 {
		t.Errorf("I/C stall = %v (%.2f%%), want positive", s.Stall, s.Pct)
	}
	if s.AllGPU <= s.SingleGPU {
		t.Errorf("all-GPU time %v not above single-GPU %v", s.AllGPU, s.SingleGPU)
	}
}

func TestP2ContentionOrdering(t *testing.T) {
	// Fig 5a: p2.16xlarge has the worst interconnect stalls.
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	s8, err := p.InterconnectStall(j, instance(t, "p2.8xlarge"))
	if err != nil {
		t.Fatalf("8xlarge: %v", err)
	}
	s16, err := p.InterconnectStall(j, instance(t, "p2.16xlarge"))
	if err != nil {
		t.Fatalf("16xlarge: %v", err)
	}
	if s16.Pct <= s8.Pct {
		t.Errorf("p2.16xlarge stall %.1f%% not above p2.8xlarge %.1f%%", s16.Pct, s8.Pct)
	}
	if s16.Pct < 2*s8.Pct {
		t.Errorf("p2.16xlarge stall %.1f%% not dramatically above 8xlarge %.1f%%", s16.Pct, s8.Pct)
	}
}

func TestP3SlicingAnomaly(t *testing.T) {
	// §V-B1: the degraded p3.8xlarge has higher I/C stalls than the
	// p3.16xlarge despite having half the GPUs; a clean 8xlarge does not.
	j := job(t, resnet18(t), 32)
	p := fastProfiler()
	s16, err := p.InterconnectStall(j, instance(t, "p3.16xlarge"))
	if err != nil {
		t.Fatalf("16xlarge: %v", err)
	}
	s8deg, err := p.InterconnectStall(j, instance(t, "p3.8xlarge"))
	if err != nil {
		t.Fatalf("8xlarge degraded: %v", err)
	}
	s8clean, err := fastProfiler(WithSlicePolicy(cloud.SliceClean)).InterconnectStall(j, instance(t, "p3.8xlarge"))
	if err != nil {
		t.Fatalf("8xlarge clean: %v", err)
	}
	if s8deg.Pct <= s16.Pct {
		t.Errorf("degraded 8xlarge stall %.1f%% not above 16xlarge %.1f%%", s8deg.Pct, s16.Pct)
	}
	if s8clean.Pct >= s8deg.Pct {
		t.Errorf("clean 8xlarge stall %.1f%% not below degraded %.1f%%", s8clean.Pct, s8deg.Pct)
	}
}

func TestP3StallsLowerThanP2(t *testing.T) {
	// §V-B1: NVLink stalls are lower than PCIe stalls.
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	p2, err := p.InterconnectStall(j, instance(t, "p2.8xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p.InterconnectStall(j, instance(t, "p3.16xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.Pct >= p2.Pct {
		t.Errorf("P3 stall %.1f%% not below P2 %.1f%%", p3.Pct, p2.Pct)
	}
}

func TestNetworkStallLarge(t *testing.T) {
	// Fig 13: splitting a p3.8xlarge's world across two network-connected
	// instances produces triple-digit network stall percentages.
	p := fastProfiler()
	s, err := p.NetworkStall(job(t, resnet18(t), 32), instance(t, "p3.8xlarge"), 2)
	if err != nil {
		t.Fatalf("NetworkStall: %v", err)
	}
	if s.Pct < 50 {
		t.Errorf("network stall = %.1f%%, expected large (paper: up to 500%%)", s.Pct)
	}
	if s.MultiInstance <= s.SingleInstance {
		t.Error("multi-instance run not slower")
	}
}

func TestNetworkStallValidation(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	if _, err := p.NetworkStall(j, instance(t, "p3.8xlarge"), 1); err == nil {
		t.Error("nodes=1 should fail")
	}
	if _, err := p.NetworkStall(j, instance(t, "p3.8xlarge"), 3); err == nil {
		t.Error("non-divisible split should fail")
	}
}

func TestVGGvsResNetStallContrast(t *testing.T) {
	// §VI-A: VGG (few layers, many gradients) has lower I/C stall but
	// much higher N/W stall than ResNet (many layers, few gradients).
	p := fastProfiler()
	it16 := instance(t, "p3.16xlarge")
	it8 := instance(t, "p3.8xlarge")

	resIC, err := p.InterconnectStall(job(t, resnet18(t), 32), it16)
	if err != nil {
		t.Fatal(err)
	}
	vggIC, err := p.InterconnectStall(job(t, vgg11(t), 32), it16)
	if err != nil {
		t.Fatal(err)
	}
	if vggIC.Stall >= resIC.Stall {
		t.Errorf("VGG I/C stall time %v not below ResNet %v", vggIC.Stall, resIC.Stall)
	}

	resNW, err := p.NetworkStall(job(t, resnet18(t), 32), it8, 2)
	if err != nil {
		t.Fatal(err)
	}
	vggNW, err := p.NetworkStall(job(t, vgg11(t), 32), it8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vggNW.Stall <= resNW.Stall {
		t.Errorf("VGG N/W stall time %v not above ResNet %v", vggNW.Stall, resNW.Stall)
	}
}

func TestDataStalls(t *testing.T) {
	// Fig 8: CPU stalls negligible on AWS, disk stalls high on 16xlarge
	// (8 loader workers on one gp2 volume) and low on 8xlarge.
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	d16, err := p.DataStallAnalysis(j, instance(t, "p3.16xlarge"))
	if err != nil {
		t.Fatalf("16xlarge: %v", err)
	}
	if d16.PrepPct > 5 {
		t.Errorf("prep stall = %.1f%%, paper finds it negligible on AWS", d16.PrepPct)
	}
	if d16.FetchPct < 5 {
		t.Errorf("fetch stall = %.1f%% on 16xlarge, want substantial", d16.FetchPct)
	}
	d8, err := p.DataStallAnalysis(j, instance(t, "p3.8xlarge"))
	if err != nil {
		t.Fatalf("8xlarge: %v", err)
	}
	if d8.FetchPct >= d16.FetchPct {
		t.Errorf("8xlarge fetch stall %.1f%% not below 16xlarge %.1f%%", d8.FetchPct, d16.FetchPct)
	}
}

func TestEpochCostP2Ordering(t *testing.T) {
	// Fig 6: cost grows with P2 instance size; 16xlarge is least
	// cost-optimal, and 2x 8xlarge beats 1x 16xlarge on time.
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	eXL, err := p.Epoch(j, instance(t, "p2.xlarge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := p.Epoch(j, instance(t, "p2.8xlarge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	e16, err := p.Epoch(j, instance(t, "p2.16xlarge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	e8x2, err := p.Epoch(j, instance(t, "p2.8xlarge"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(eXL.Cost < e8.Cost && e8.Cost < e16.Cost) {
		t.Errorf("P2 epoch costs not increasing: xl=%.2f 8xl=%.2f 16xl=%.2f", eXL.Cost, e8.Cost, e16.Cost)
	}
	if e8x2.Time >= e16.Time {
		t.Errorf("2x 8xlarge epoch %v not faster than 16xlarge %v (§V-A2)", e8x2.Time, e16.Time)
	}
}

func TestEpochIterationsScaleWithWorldSize(t *testing.T) {
	p := fastProfiler()
	j := job(t, resnet18(t), 32)
	e1, err := p.Epoch(j, instance(t, "p3.2xlarge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := p.Epoch(j, instance(t, "p3.16xlarge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Iterations != 8*e8.Iterations && e1.Iterations != 8*e8.Iterations+e1.Iterations%8 {
		// Allow drop_last rounding.
		ratio := float64(e1.Iterations) / float64(e8.Iterations)
		if ratio < 7.9 || ratio > 8.1 {
			t.Errorf("iteration ratio = %.2f, want ~8", ratio)
		}
	}
	if e8.Time >= e1.Time {
		t.Errorf("8-GPU epoch %v not faster than 1-GPU %v", e8.Time, e1.Time)
	}
}

func TestPCIeBandwidthProbe(t *testing.T) {
	// Fig 7: per-GPU bandwidth collapses on p2.16xlarge, below the
	// instance's network rating.
	p := fastProfiler()
	probe := func(name string) BandwidthProbe {
		b, err := p.PCIeBandwidthProbe(instance(t, name))
		if err != nil {
			t.Fatalf("probe %s: %v", name, err)
		}
		return b
	}
	xl, x8, x16 := probe("p2.xlarge"), probe("p2.8xlarge"), probe("p2.16xlarge")
	if len(x16.PerGPU) != 16 {
		t.Fatalf("16xlarge probe has %d GPUs", len(x16.PerGPU))
	}
	if !(xl.MinPerGPU() > x8.MinPerGPU() && x8.MinPerGPU() > x16.MinPerGPU()) {
		t.Errorf("per-GPU bandwidth not degrading: %.2g > %.2g > %.2g",
			xl.MinPerGPU(), x8.MinPerGPU(), x16.MinPerGPU())
	}
	network := instance(t, "p2.16xlarge").NetworkGbps * hw.GbpsBytes
	if x16.MinPerGPU() >= network {
		t.Errorf("16xlarge per-GPU PCIe %.2g not below network %.2g (§V-A1)", x16.MinPerGPU(), network)
	}
}

func TestMemoryUtilization(t *testing.T) {
	// Fig 15: ShuffleNet barely uses a V100's memory; utilization is
	// higher on the smaller K80.
	shuffle := job(t, dnn.ShuffleNetV2(), 32)
	p3 := MemoryUtilization(shuffle, instance(t, "p3.16xlarge"))
	p2 := MemoryUtilization(shuffle, instance(t, "p2.16xlarge"))
	if p3 >= 25 {
		t.Errorf("ShuffleNet V100 memory util = %.1f%%, want low", p3)
	}
	if p2 <= p3 {
		t.Errorf("K80 util %.1f%% not above V100 %.1f%%", p2, p3)
	}
	res := job(t, resnet18(t), 128)
	if u := MemoryUtilization(res, instance(t, "p3.16xlarge")); u <= p3 {
		t.Errorf("ResNet18 bs128 util %.1f%% not above ShuffleNet %.1f%%", u, p3)
	}
}

func TestOOMDetection(t *testing.T) {
	p := fastProfiler()
	bert := job(t, dnn.BERTLarge(), 16)
	_, err := p.InterconnectStall(bert, instance(t, "p3.16xlarge"))
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if oom.Model != "bert-large" || oom.Batch != 16 {
		t.Errorf("OOM fields = %+v", oom)
	}
	if msg := oom.Error(); !strings.Contains(msg, "bert-large") {
		t.Errorf("OOM message = %q", msg)
	}
	// Batch 4 fits (the paper's setting).
	if _, err := p.InterconnectStall(job(t, dnn.BERTLarge(), 4), instance(t, "p3.16xlarge")); err != nil {
		t.Errorf("BERT batch 4 should fit: %v", err)
	}
}

func TestFullProfileReport(t *testing.T) {
	p := fastProfiler()
	r, err := p.Profile(job(t, resnet18(t), 32), instance(t, "p3.16xlarge"))
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if r.NW == nil {
		t.Fatal("NW stall missing for 8-GPU instance")
	}
	if r.Epoch.Cost <= 0 || r.Epoch.Time <= 0 {
		t.Errorf("epoch estimate empty: %+v", r.Epoch)
	}
	s := r.String()
	for _, want := range []string{"resnet18", "p3.16xlarge", "I/C stall", "N/W stall", "fetch stall", "epoch"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestProfileSingleGPUInstanceSkipsNW(t *testing.T) {
	p := fastProfiler()
	r, err := p.Profile(job(t, dnn.ShuffleNetV2(), 32), instance(t, "p2.xlarge"))
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if r.NW != nil {
		t.Error("single-GPU instance should have no NW measurement")
	}
	if r.IC.Pct > 1 {
		t.Errorf("single-GPU I/C stall = %.2f%%, want ~0", r.IC.Pct)
	}
}

func TestDeterminism(t *testing.T) {
	j := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")
	a, err := fastProfiler().InterconnectStall(j, it)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastProfiler().InterconnectStall(j, it)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("profiling not deterministic: %+v vs %+v", a, b)
	}
}
