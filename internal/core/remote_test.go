package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// donorResolver builds a RemoteResolver that computes every spec on its
// own private profiler — a stand-in for a cluster peer that owns the
// scenario. calls counts resolver invocations.
func donorResolver(donor *Profiler, calls *atomic.Int64) RemoteResolver {
	return func(ctx context.Context, spec ScenarioSpec) (*RemoteResult, bool) {
		calls.Add(1)
		j, it, err := SpecJob(spec)
		if err != nil {
			return nil, false
		}
		res, err := donor.RunLocalScenario(ctx, j, it, spec.Count, spec.GPUsPer, spec.Mode)
		return &RemoteResult{Res: res, Err: err}, true
	}
}

// TestRemoteFillCountsRemoteHitNotSimulated is the satellite-3
// regression test: a scenario filled from a peer must count as a
// RemoteHits outcome — never increment Simulated — and the conservation
// identity Requests == Simulated + CacheHits + RemoteHits + Waits +
// Cancelled must hold at quiescence, globally and per tenant. A naive
// fill that charges the remote result to Simulated fails here.
func TestRemoteFillCountsRemoteHitNotSimulated(t *testing.T) {
	donor := fastProfiler()
	p := fastProfiler()
	var calls atomic.Int64
	p.SetRemote(donorResolver(donor, &calls))

	ctx := WithTenant(context.Background(), "acme")
	s, err := p.NetworkStallContext(ctx, job(t, resnet18(t), 32), instance(t, "p3.8xlarge"), 2)
	if err != nil {
		t.Fatalf("NetworkStallContext: %v", err)
	}
	if s.Stall <= 0 {
		t.Fatalf("remote-filled network stall = %v, want > 0", s.Stall)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("resolver calls = %d, want 2 (one per scenario)", got)
	}

	st := p.Stats()
	if st.Requests != 2 || st.RemoteHits != 2 {
		t.Fatalf("stats = %+v, want Requests=2 RemoteHits=2", st)
	}
	if st.Simulated != 0 {
		t.Fatalf("remote fill incremented Simulated (%d); peer results must count as RemoteHits only", st.Simulated)
	}
	if b := st.Balance(); b != 0 {
		t.Fatalf("Balance() = %d at quiescence, want 0 (stats %+v)", b, st)
	}
	ten := p.TenantStats()["acme"]
	if ten.RemoteHits != 2 || ten.Simulated != 0 || ten.Balance() != 0 {
		t.Fatalf("tenant mirror = %+v, want RemoteHits=2 Simulated=0 Balance=0", ten)
	}

	// The donor did the real work, on its own counters.
	if ds := donor.Stats(); ds.Simulated != 2 {
		t.Fatalf("donor stats = %+v, want Simulated=2", ds)
	}

	// A repeat of the same measurement is served from the local cache:
	// the remote fill populated it, so no second resolver round-trip.
	if _, err := p.NetworkStallContext(ctx, job(t, resnet18(t), 32), instance(t, "p3.8xlarge"), 2); err != nil {
		t.Fatalf("cached replay: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("resolver calls after replay = %d, want still 2", got)
	}
	st = p.Stats()
	if st.CacheHits != 2 || st.Balance() != 0 {
		t.Fatalf("stats after replay = %+v, want CacheHits=2 Balance=0", st)
	}
}

// TestRemoteDeclineFallsBackToLocalSimulation: a resolver that declines
// (ok == false — not the key's owner, or the owner is unreachable) must
// leave the scenario to the local engine, counted as Simulated.
func TestRemoteDeclineFallsBackToLocalSimulation(t *testing.T) {
	p := fastProfiler()
	var calls atomic.Int64
	p.SetRemote(func(ctx context.Context, spec ScenarioSpec) (*RemoteResult, bool) {
		calls.Add(1)
		return nil, false
	})
	if _, err := p.InterconnectStall(job(t, resnet18(t), 32), instance(t, "p3.16xlarge")); err != nil {
		t.Fatalf("InterconnectStall: %v", err)
	}
	st := p.Stats()
	if calls.Load() != 2 || st.Simulated != 2 || st.RemoteHits != 0 {
		t.Fatalf("decline path: calls=%d stats=%+v, want 2 local simulations, 0 remote hits", calls.Load(), st)
	}
	if st.Balance() != 0 {
		t.Fatalf("Balance() = %d, want 0", st.Balance())
	}
}

// TestRemoteErrorResultIsCachedLikeLocalError: an owner-side simulation
// error travels back as the entry's error, is charged as a RemoteHits
// outcome (the request did resolve — to an error), and poisons the
// cache entry exactly like a local simulation error would, so
// latecomers share it as cache hits without new resolver traffic.
func TestRemoteErrorResultIsCachedLikeLocalError(t *testing.T) {
	p := fastProfiler()
	remoteErr := errors.New("owner ran out of budget")
	var calls atomic.Int64
	p.SetRemote(func(ctx context.Context, spec ScenarioSpec) (*RemoteResult, bool) {
		calls.Add(1)
		return &RemoteResult{Err: remoteErr}, true
	})
	it := instance(t, "p3.16xlarge")
	j := job(t, resnet18(t), 32)
	if _, err := p.InterconnectStall(j, it); !errors.Is(err, remoteErr) {
		t.Fatalf("InterconnectStall error = %v, want %v", err, remoteErr)
	}
	if _, err := p.InterconnectStall(j, it); !errors.Is(err, remoteErr) {
		t.Fatalf("cached replay error = %v, want %v", err, remoteErr)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("resolver calls = %d, want 1 (error cached)", got)
	}
	st := p.Stats()
	if st.RemoteHits != 1 || st.Simulated != 0 || st.Balance() != 0 {
		t.Fatalf("stats = %+v, want RemoteHits=1 Simulated=0 Balance=0", st)
	}
}

// TestRemoteFillSnapshotOrdering hammers a remote-resolving profiler
// from many goroutines while concurrently scraping Stats, asserting the
// CheckStatsLive property: Balance() never goes negative mid-flight.
// The RemoteHits increment must follow its request's admission
// increment, like every other outcome counter.
func TestRemoteFillSnapshotOrdering(t *testing.T) {
	donor := fastProfiler()
	p := fastProfiler()
	var calls atomic.Int64
	p.SetRemote(donorResolver(donor, &calls))

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := p.Stats().Balance(); b < 0 {
				t.Errorf("mid-flight Balance() = %d, want >= 0", b)
				return
			}
			for _, ten := range p.TenantStats() {
				if b := ten.Balance(); b < 0 {
					t.Errorf("mid-flight tenant Balance() = %d, want >= 0", b)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	ctx := WithTenant(context.Background(), "acme")
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := p.NetworkStallContext(ctx, job(t, resnet18(t), 32), instance(t, "p3.8xlarge"), 2); err != nil {
					t.Errorf("NetworkStallContext: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	st := p.Stats()
	if st.Balance() != 0 {
		t.Fatalf("quiesced Balance() = %d, want 0 (stats %+v)", st.Balance(), st)
	}
	if st.Simulated != 0 {
		t.Fatalf("Simulated = %d, want 0 (all fills remote)", st.Simulated)
	}
	if st.RemoteHits == 0 || st.RemoteHits > 2 {
		t.Fatalf("RemoteHits = %d, want 1..2 (single-flight across goroutines)", st.RemoteHits)
	}
}
