package core

import "context"

// ProgressFunc observes sweep progress as deltas: totalDelta announces
// newly known work (a sweep about to dispatch n cells), doneDelta
// reports completed cells. The cumulative done count is monotonically
// non-decreasing and never exceeds the cumulative total at quiescence.
// Implementations must be safe for concurrent use: parallel sweeps
// report completions from multiple worker goroutines.
type ProgressFunc func(doneDelta, totalDelta int)

type progressKey struct{}

// WithProgress returns a context carrying fn. Every sweep that runs
// under the returned context — ForEachCtx cell grids, RecommendContext
// candidate rankings, experiment panels — announces its cell count
// before dispatching and reports each completed cell, and
// ProfileContext reports its measurement stages the same way. This is
// what feeds the stashd v2 job API's cells_done/cells_total progress
// stream; CLI paths run without a hook and pay nothing.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the progress hook, nil when none is attached.
func progressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

type tenantKey struct{}

// WithTenant returns a context attributing all scenario-scheduler
// activity under it to the named tenant: the profiler mirrors its
// admission/outcome counters into a per-tenant Stats (TenantStats), so
// the conservation law Requests == Simulated + CacheHits + Waits +
// Cancelled holds per tenant exactly as it does globally. An empty
// name means unattributed (the CLI paths).
func WithTenant(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, name)
}

// TenantFrom returns the tenant attached by WithTenant, "" when none.
func TenantFrom(ctx context.Context) string {
	name, _ := ctx.Value(tenantKey{}).(string)
	return name
}
