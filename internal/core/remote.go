// Remote scenario resolution: the hook that lets a cluster layer fill
// this profiler's single-flight cache from a peer that owns the
// scenario's key on a consistent-hash ring, instead of simulating
// locally.
//
// The contract is deliberately narrow so the profiler stays ignorant of
// transports and membership:
//
//   - Before starting a local simulation for a cache miss, the profiler
//     offers the scenario to the installed RemoteResolver.
//   - The resolver either resolves it (ok == true, returning the owner's
//     result or the owner's simulation error) or declines (ok == false:
//     this replica owns the key, there is no cluster, or the owner is
//     unreachable — "owner death falls back to local compute").
//   - A resolved scenario fills the local cache entry exactly like a
//     local simulation would — latecomers were already parked on the
//     entry's done channel — but is charged to the RemoteHits counter,
//     never to Simulated, so cluster-wide Simulated stays ≤ the number
//     of unique scenarios.
//
// Transport failures must be reported by declining, not by returning an
// error result: an error result is cached (it is indistinguishable from
// the owner's deterministic simulation failing), while a decline costs
// only a local simulation.
package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/train"
	"stash/internal/workload"
)

// ScenarioSpec is the wire form of a scenario cache key: everything a
// peer needs to re-resolve the job and instance by name and run the
// identical simulation. Mode carries the runMode wire values
// (SpecModeSynthetic and friends).
type ScenarioSpec struct {
	Model    string `json:"model"`
	Batch    int    `json:"batch"`
	Instance string `json:"instance"`
	Count    int    `json:"count"`
	GPUsPer  int    `json:"gpus_per"`
	Mode     int    `json:"mode"`
}

// Wire values for ScenarioSpec.Mode, mirroring the profiler's internal
// run modes.
const (
	SpecModeSynthetic = int(modeSynthetic)
	SpecModeRealCold  = int(modeRealCold)
	SpecModeRealWarm  = int(modeRealWarm)
)

// Key renders the spec's canonical placement string: the value hashed
// onto the cluster's consistent-hash ring. Two specs describe the same
// scenario iff their Keys are equal.
func (s ScenarioSpec) Key() string {
	var b strings.Builder
	b.Grow(len(s.Model) + len(s.Instance) + 24)
	b.WriteString(s.Model)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Batch))
	b.WriteByte('|')
	b.WriteString(s.Instance)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Count))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.GPUsPer))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Mode))
	return b.String()
}

// SpecJob resolves a spec's model and instance names back to the
// objects RunLocalScenario needs. Names round-trip through the zoo and
// catalogue deterministically, so the owner reconstructs exactly the
// job the requester hashed. An unresolvable spec (a name this build
// does not know) is an error the caller should treat as "decline", not
// as a cacheable result.
func SpecJob(spec ScenarioSpec) (workload.Job, cloud.InstanceType, error) {
	m, err := dnn.Resolve(spec.Model)
	if err != nil {
		return workload.Job{}, cloud.InstanceType{}, err
	}
	j, err := workload.NewJob(m, spec.Batch)
	if err != nil {
		return workload.Job{}, cloud.InstanceType{}, err
	}
	it, err := cloud.ByName(spec.Instance)
	if err != nil {
		return workload.Job{}, cloud.InstanceType{}, err
	}
	return j, it, nil
}

// RemoteResult is a peer-resolved scenario outcome: the owner's result,
// or the owner's deterministic simulation error.
type RemoteResult struct {
	Res *train.Result
	Err error
}

// RemoteResolver is the cluster hook consulted on every scenario cache
// miss (see the package comment above for the resolve/decline
// contract). It runs outside the profiler's locks; local waiters for
// the same scenario are already parked on the single-flight entry while
// it executes.
type RemoteResolver func(ctx context.Context, spec ScenarioSpec) (*RemoteResult, bool)

// SetRemote installs the resolver consulted on cache misses. Passing
// nil uninstalls it. Safe for concurrent use with in-flight requests;
// requests that already missed keep the resolver they observed.
func (p *Profiler) SetRemote(r RemoteResolver) {
	if r == nil {
		p.remote.Store(nil)
		return
	}
	p.remote.Store(&r)
}

// remoteResolver returns the installed resolver, or nil.
func (p *Profiler) remoteResolver() RemoteResolver {
	if rp := p.remote.Load(); rp != nil {
		return *rp
	}
	return nil
}

// RunLocalScenario executes one scenario on this profiler without
// consulting the remote resolver: the owner-side entry point a cluster
// scenario server calls, so ownership disagreement between gossip views
// can never forward a scenario in a loop. It shares the local
// single-flight cache and counters with every other path — a scenario
// this replica already simulated is a cache hit here too. Mode must be
// one of the SpecMode wire values.
func (p *Profiler) RunLocalScenario(ctx context.Context, j workload.Job, it cloud.InstanceType, count, gpusPer, mode int) (*train.Result, error) {
	m := runMode(mode)
	if m != modeSynthetic && m != modeRealCold && m != modeRealWarm {
		return nil, fmt.Errorf("stash: unknown scenario mode %d", mode)
	}
	if count < 1 {
		return nil, fmt.Errorf("stash: scenario needs >= 1 instance, got %d", count)
	}
	return p.runLocal(ctx, j, scenario{instance: it, count: count, gpusPer: gpusPer, mode: m})
}
