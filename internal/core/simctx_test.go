package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/train"
)

// runCellOn provisions a world on the given engine/network and runs one
// synthetic training cell on it, the way the pooled simulate path does.
func runCellOn(t *testing.T, eng *sim.Engine, net *simnet.Network, instName string, model *dnn.Model, batch, count int) *train.Result {
	t.Helper()
	top, err := cloud.NewProvisioner(cloud.SliceDegraded, 1).Provision(net, instance(t, instName), count)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Run(eng, net, train.Config{
		Job:            job(t, model, batch),
		Topology:       top,
		Iterations:     4,
		Warmup:         2,
		Synthetic:      true,
		DisableOverlap: !top.SupportsAsyncCollectives(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResetEngineByteIdentity is the engine-reuse guarantee the pool
// rests on: a cell simulated on a Reset() engine that previously ran a
// different scenario (different model, instance type, and world size)
// reports a Result deeply equal to the same cell on a fresh engine.
func TestResetEngineByteIdentity(t *testing.T) {
	//lint:allow hotpath the test builds a private engine precisely to compare fresh against recycled construction
	fresh := sim.NewEngine()
	freshNet := simnet.New(fresh)
	want := runCellOn(t, fresh, freshNet, "p3.16xlarge", resnet18(t), 32, 1)

	vgg, err := dnn.VGG(16)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow hotpath the test builds a private engine precisely to compare fresh against recycled construction
	used := sim.NewEngine()
	usedNet := simnet.New(used)
	runCellOn(t, used, usedNet, "p3.8xlarge", vgg, 16, 2)
	used.Reset()
	usedNet.Reset()
	got := runCellOn(t, used, usedNet, "p3.16xlarge", resnet18(t), 32, 1)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("recycled engine diverges from fresh:\n got %+v\nwant %+v", got, want)
	}
}

// TestWarmPrefixForkByteIdentity pins the forking contract at the API
// level (the audit family re-checks it end to end): profiles computed
// with and without warm-prefix forking are deeply equal, CommBusy
// included.
func TestWarmPrefixForkByteIdentity(t *testing.T) {
	jb := job(t, resnet18(t), 32)
	it := instance(t, "p3.16xlarge")
	forked, err := fastProfiler(WithSeed(7)).Profile(jb, it)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fastProfiler(WithSeed(7), WithWarmPrefixFork(false)).Profile(jb, it)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, full) {
		t.Errorf("forked profile diverges from full run:\n got %+v\nwant %+v", forked, full)
	}
}

// TestSimContextPoolCancellationStress hammers the worker-affine context
// pool from many goroutines while their contexts are cancelled mid
// flight. Run under -race in CI, it proves pooled engines are never
// shared between concurrent requests and that cancelled single-flight
// waiters (the accounting fixed in the conservation audit) keep the
// counters conserving.
func TestSimContextPoolCancellationStress(t *testing.T) {
	p := fastProfiler()
	jb := job(t, resnet18(t), 32)
	names := []string{"p2.xlarge", "p3.2xlarge", "p3.8xlarge", "p3.16xlarge"}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ctx, cancel := context.WithCancel(context.Background())
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_, err := p.ProfileContext(ctx, jb, instance(t, names[(g+i)%len(names)]))
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("goroutine %d: %v", g, err)
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			cancel() // races the profile calls: some die on admission, some mid-wait
		}()
	}
	wg.Wait()
	if bal := p.Stats().Balance(); bal != 0 {
		t.Errorf("scheduler counters leak under cancellation: balance = %d, want 0", bal)
	}
}
