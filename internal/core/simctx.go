package core

import (
	"sync"

	"stash/internal/cloud"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
)

// A simContext is one scheduler worker's private simulation arena: a
// long-lived engine and network reused across every scenario the worker
// runs, plus a cache of provisioned topologies keyed by everything that
// determines their shape. Routing each per-cell simulation through a
// pooled context replaces the old fresh-everything construction
// (engine + network + provisioner + topology per scenario) with an
// Engine.Reset/Network.Reset pair, which the sim layer guarantees is
// byte-identical to building from scratch.
//
// Contexts live in a process-wide sync.Pool rather than per-Profiler so
// the experiments that deliberately build fresh profilers (seed sweeps,
// clean-allocation comparisons) still reuse engines: correctness comes
// from the world key, which carries the slice policy and seed, not from
// which profiler asked.
type simContext struct {
	eng    *sim.Engine
	net    *simnet.Network
	worlds map[worldKey]*topo.Topology
}

// worldKey identifies a provisioned topology: provisioning is a pure
// function of (policy, seed, instance, count) because core always rolls a
// fresh Provisioner per provision call.
type worldKey struct {
	policy   cloud.SlicePolicy
	seed     int64
	instance string
	count    int
}

// maxWorldsPerContext bounds the topology cache. Links can only be added
// to a network, never removed, so evicting a single world would strand
// its links on the shared network forever; instead, hitting the cap
// rebuilds the whole context (see world).
const maxWorldsPerContext = 32

// maxLinksPerContext bounds link accumulation from real-data scenarios:
// each one registers fresh per-machine pipeline links on the shared
// network, and Network.Reset touches every link, so an unbounded context
// would slowly make resets more expensive than the fresh build they
// replace.
const maxLinksPerContext = 4096

var simContexts = sync.Pool{New: func() any { return newSimContext() }}

func newSimContext() *simContext {
	c := &simContext{worlds: make(map[worldKey]*topo.Topology)}
	c.reinit()
	return c
}

// reinit rebuilds the context from scratch, dropping every cached world
// (and with them all accumulated links).
func (c *simContext) reinit() {
	//lint:allow hotpath the pool's constructor is the one sanctioned engine-construction site; every per-cell simulate reuses its engines
	c.eng = sim.NewEngine()
	c.net = simnet.New(c.eng)
	clear(c.worlds)
}

// acquireSimContext returns a context ready for a run: clock at zero, no
// flows, link statistics zeroed, cached worlds and engine scratch warm.
func acquireSimContext() *simContext {
	c := simContexts.Get().(*simContext)
	if c.net.NumLinks() > maxLinksPerContext {
		c.reinit() // fresh engine and network; nothing left to reset
		return c
	}
	c.eng.Reset()
	c.net.Reset()
	return c
}

func releaseSimContext(c *simContext) { simContexts.Put(c) }

// world returns the provisioned topology for the key, building and
// caching it on first use. Callers must read c.eng/c.net after this call:
// hitting the world cap swaps in a fresh engine and network.
func (c *simContext) world(policy cloud.SlicePolicy, seed int64, it cloud.InstanceType, count int) (*topo.Topology, error) {
	key := worldKey{policy: policy, seed: seed, instance: it.Name, count: count}
	if top, ok := c.worlds[key]; ok {
		return top, nil
	}
	if len(c.worlds) >= maxWorldsPerContext {
		c.reinit()
	}
	top, err := cloud.NewProvisioner(policy, seed).Provision(c.net, it, count)
	if err != nil {
		return nil, err
	}
	c.worlds[key] = top
	return top, nil
}
