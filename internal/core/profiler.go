// Package core implements Stash, the paper's contribution: a black-box
// profiler for distributed deep learning that measures the four execution
// stalls of a DDL pipeline on cloud GPU instances (§IV-B):
//
//   - interconnect (I/C) stall: step 2 (all-GPU synthetic training) minus
//     step 1 (single-GPU synthetic training with the same per-GPU load);
//   - network (N/W) stall: step 5 (multi-node synthetic training at equal
//     world size) minus step 2;
//   - CPU (prep) stall: step 4 (cached real-data training) minus step 2
//     (from DS-Analyzer);
//   - disk (fetch) stall: step 3 (cold-cache real-data training) minus
//     step 4 (from DS-Analyzer).
//
// Stash is black-box: it only compares elapsed times of differently
// configured runs, never instrumenting the framework's internals, which
// is exactly how the real tool avoids perturbing the asynchronous
// overlap of communication and computation (§III).
//
// The profiler exploits training's repetitive structure (§IV): it times a
// fixed window of iterations and scales to a full epoch.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/pipeline"
	"stash/internal/topo"
	"stash/internal/train"
	"stash/internal/workload"
)

// DefaultIterations is the profiling window per step. Stall ratios are
// steady-state properties, so a modest window suffices.
const DefaultIterations = 20

// profileWarmup is the number of leading iterations excluded from every
// measurement (pipeline fill, allocator warm-up), as real profilers do.
const profileWarmup = 3

// DefaultCostEpochs is the training length the epoch cost model assumes:
// the first epoch reads the dataset cold; DRAM caching absorbs fetch
// stalls afterwards (SI), so the cold epoch's extra time is amortized
// over this many epochs.
const DefaultCostEpochs = 10

// Option configures a Profiler.
type Option func(*Profiler)

// WithIterations sets the per-step profiling window.
func WithIterations(n int) Option {
	return func(p *Profiler) { p.iterations = n }
}

// WithSlicePolicy sets how p3.8xlarge NVLink slicing resolves (default
// SliceDegraded, the allocation the paper observed).
func WithSlicePolicy(sp cloud.SlicePolicy) Option {
	return func(p *Profiler) { p.slicePolicy = sp }
}

// WithSeed sets the provisioning seed (matters under SliceLottery).
func WithSeed(seed int64) Option {
	return func(p *Profiler) { p.seed = seed }
}

// WithCollectiveOptions forwards options to every training run's gradient
// synchronization group (algorithm, call overhead).
func WithCollectiveOptions(opts ...collective.Option) Option {
	return func(p *Profiler) { p.collectiveOpts = opts }
}

// WithCostEpochs sets how many epochs the cost model amortizes the cold
// first epoch over (default DefaultCostEpochs).
func WithCostEpochs(n int) Option {
	return func(p *Profiler) { p.costEpochs = n }
}

// WithParallelism bounds how many candidate configurations Recommend
// measures concurrently (0 or negative = GOMAXPROCS, 1 = serial).
func WithParallelism(n int) Option {
	return func(p *Profiler) { p.parallelism = n }
}

// WithBlameAttribution makes ProfileContext run the frontier blame pass
// as an extra stage (a traced re-run of the all-GPU synthetic scenario)
// and attach the ranked per-worker table to Report.Blame. Default off:
// the stall characterization itself never needs a trace.
func WithBlameAttribution(on bool) Option {
	return func(p *Profiler) { p.blame = on }
}

// WithWarmPrefixFork toggles warm-prefix forking (default on). Synthetic
// training is lockstep-periodic from iteration zero — every iteration
// replays the same event schedule — so the warmup prefix is a replica of
// the measured window and the profiler can skip simulating it, running
// the measured iterations directly and scaling the one warmup-inclusive
// statistic (CommBusy) exactly. Real-data scenarios always simulate their
// warmup: pipeline cache state makes their prefix genuinely different.
// The audit determinism family validates the forked path byte-identical
// to the full run.
func WithWarmPrefixFork(on bool) Option {
	return func(p *Profiler) { p.warmFork = on }
}

// Profiler measures DDL stalls on simulated cloud instances. It is safe
// for concurrent use: each scenario simulates on its own engine, and the
// memoization cache is single-flight, so concurrent requests for the
// same scenario run exactly one simulation and share its result.
type Profiler struct {
	iterations     int
	slicePolicy    cloud.SlicePolicy
	seed           int64
	costEpochs     int
	parallelism    int
	warmFork       bool
	blame          bool
	collectiveOpts []collective.Option

	// cache memoizes scenario results: simulations are deterministic, and
	// sweeps re-measure the same cells (every instance size shares the
	// same step-1 single-GPU run, for example). Each entry is created
	// before its simulation starts; latecomers wait on done instead of
	// duplicating the work.
	mu    sync.Mutex
	cache map[scenarioKey]*cacheEntry

	// remote is the cluster hook consulted on cache misses (SetRemote);
	// nil outside cluster mode.
	remote atomic.Pointer[RemoteResolver]

	// Scheduler counters behind Stats. requests is incremented when a
	// scenario request is admitted (after the fit check); exactly one of
	// the outcome counters follows, so at quiescence
	// requests == simulated + hits + remoteHits + waits + cancelled.
	requests   atomic.Int64
	simulated  atomic.Int64
	hits       atomic.Int64
	remoteHits atomic.Int64
	waits      atomic.Int64
	cancelled  atomic.Int64

	// Per-tenant mirrors of the scheduler counters, keyed by the tenant
	// attached to the request context (WithTenant). Every increment of a
	// global counter is mirrored into the requesting tenant's entry, so
	// the conservation law holds per tenant too. tmu guards only the map;
	// the counters themselves are atomics with the same load ordering
	// discipline as the globals.
	tmu     sync.Mutex
	tenants map[string]*tenantCounters
}

// tenantCounters is one tenant's mirror of the scheduler counters.
type tenantCounters struct {
	requests, simulated, hits, remoteHits, waits, cancelled atomic.Int64
}

// cacheEntry is one scenario's single-flight slot: res and err are
// written once, before done is closed.
type cacheEntry struct {
	done chan struct{}
	res  *train.Result
	err  error
}

// Stats is a snapshot of the profiler's scenario-scheduler counters.
// The counters conserve: every admitted request ends in exactly one of
// the five outcomes, so on a quiesced profiler
//
//	Requests == Simulated + CacheHits + RemoteHits + Waits + Cancelled.
//
// A snapshot taken while requests are in flight may see Requests ahead
// of the outcome sum (admission is counted before the outcome), never
// behind it — Balance is always >= 0.
type Stats struct {
	// Requests counts scenario requests admitted to the scheduler (a
	// request rejected by the GPU-memory fit check is never admitted).
	Requests int64

	// Simulated counts scenarios actually executed on this replica's
	// engine. In cluster mode the sum of Simulated across replicas stays
	// ≤ the number of unique scenarios: peer fills land in RemoteHits.
	Simulated int64

	// CacheHits counts scenario requests served from a completed result.
	CacheHits int64

	// RemoteHits counts cache misses filled by a cluster peer's result
	// (SetRemote) instead of a local simulation.
	RemoteHits int64

	// Waits counts requests that found their scenario in flight, blocked
	// on the single-flight entry, and received its result.
	Waits int64

	// Cancelled counts requests whose context expired before a result:
	// either on admission or while blocked on an in-flight entry.
	Cancelled int64
}

// Balance is Requests minus the sum of the outcome counters. It is 0 on
// a quiesced profiler and transiently positive while requests are in
// flight; a negative balance means the accounting is broken (the
// auditor's conservation invariant).
func (s Stats) Balance() int64 {
	return s.Requests - (s.Simulated + s.CacheHits + s.RemoteHits + s.Waits + s.Cancelled)
}

// Add accumulates another snapshot into s, for cluster-wide aggregation
// across replicas.
func (s Stats) Add(o Stats) Stats {
	s.Requests += o.Requests
	s.Simulated += o.Simulated
	s.CacheHits += o.CacheHits
	s.RemoteHits += o.RemoteHits
	s.Waits += o.Waits
	s.Cancelled += o.Cancelled
	return s
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%d scenario requests: %d simulated, %d cache hits, %d remote hits, %d single-flight waits, %d cancelled",
		s.Requests, s.Simulated, s.CacheHits, s.RemoteHits, s.Waits, s.Cancelled)
}

// Stats returns the profiler's scheduler counters. The fields are read
// individually, not under one lock, so a concurrent snapshot can be
// mid-request. The outcome counters are loaded before Requests: every
// outcome increment is preceded by its request's admission increment,
// so an outcome visible here implies its request is too, and Balance
// stays >= 0 even mid-flight.
func (p *Profiler) Stats() Stats {
	s := Stats{
		Simulated:  p.simulated.Load(),
		CacheHits:  p.hits.Load(),
		RemoteHits: p.remoteHits.Load(),
		Waits:      p.waits.Load(),
		Cancelled:  p.cancelled.Load(),
	}
	s.Requests = p.requests.Load()
	return s
}

// TenantStats snapshots the per-tenant scheduler counters for every
// tenant that has made at least one scenario request under WithTenant.
// Each snapshot follows the same ordering discipline as Stats (outcomes
// loaded before Requests), so per-tenant Balance is >= 0 even
// mid-flight and exactly 0 at quiescence.
func (p *Profiler) TenantStats() map[string]Stats {
	p.tmu.Lock()
	defer p.tmu.Unlock()
	out := make(map[string]Stats, len(p.tenants))
	for name, tc := range p.tenants {
		s := Stats{
			Simulated:  tc.simulated.Load(),
			CacheHits:  tc.hits.Load(),
			RemoteHits: tc.remoteHits.Load(),
			Waits:      tc.waits.Load(),
			Cancelled:  tc.cancelled.Load(),
		}
		s.Requests = tc.requests.Load()
		out[name] = s
	}
	return out
}

// tenantFor resolves the request context's tenant mirror, creating it
// on first use; nil when the context carries no tenant.
func (p *Profiler) tenantFor(ctx context.Context) *tenantCounters {
	name := TenantFrom(ctx)
	if name == "" {
		return nil
	}
	p.tmu.Lock()
	defer p.tmu.Unlock()
	tc := p.tenants[name]
	if tc == nil {
		tc = &tenantCounters{}
		p.tenants[name] = tc
	}
	return tc
}

// New returns a Stash profiler with the given options.
func New(opts ...Option) *Profiler {
	p := &Profiler{
		iterations:  DefaultIterations,
		slicePolicy: cloud.SliceDegraded,
		seed:        1,
		costEpochs:  DefaultCostEpochs,
		warmFork:    true,
		cache:       make(map[scenarioKey]*cacheEntry),
		tenants:     make(map[string]*tenantCounters),
	}
	for _, o := range opts {
		o(p)
	}
	if p.iterations < 1 {
		p.iterations = DefaultIterations
	}
	if p.costEpochs < 1 {
		p.costEpochs = 1
	}
	return p
}

// scenarioKey identifies a deterministic scenario result.
type scenarioKey struct {
	model    string
	batch    int
	instance string
	count    int
	gpusPer  int
	mode     runMode
}

// OOMError reports a job that does not fit in a GPU's memory.
type OOMError struct {
	Model     string
	Batch     int
	Required  float64
	Available float64
}

// Error implements the error interface.
func (e *OOMError) Error() string {
	return fmt.Sprintf("stash: %s at batch %d needs %.1f GB but the GPU has %.1f GB",
		e.Model, e.Batch, e.Required/1e9, e.Available/1e9)
}

// checkFit verifies the job fits in the instance's per-GPU memory.
func checkFit(job workload.Job, it cloud.InstanceType) error {
	need := job.Model.TrainingMemoryBytes(job.BatchPerGPU)
	have := it.GPUMemPerGPU()
	if need > have {
		return &OOMError{Model: job.Model.Name, Batch: job.BatchPerGPU, Required: need, Available: have}
	}
	return nil
}

// scenario describes one training run the profiler executes.
type scenario struct {
	instance cloud.InstanceType
	count    int // machines
	gpusPer  int // participating GPUs per machine; 0 = all
	mode     runMode
}

type runMode int

const (
	modeSynthetic runMode = iota + 1
	modeRealCold
	modeRealWarm
)

// run executes one scenario on a fresh engine and returns the result.
// Results are memoized: with a fixed profiler configuration a scenario is
// fully deterministic, so the first requester simulates and everyone
// else — concurrent or later — shares its result (or its error).
//
// Cancellation is checked at scenario granularity: a request that
// arrives with an expired context never starts a simulation, and a
// request blocked on another goroutine's in-flight scenario stops
// waiting when its own context is cancelled. A simulation that has
// already started always runs to completion (they take milliseconds),
// so a cancelled requester never poisons the single-flight entry for
// the goroutines still waiting on it.
//
// Counter discipline: a request that passes the fit check increments
// requests, then exactly one outcome counter — simulated, hits,
// remoteHits, waits, or cancelled — so the Stats conservation invariant
// holds. A waiter whose context expires counts as cancelled, not as a
// wait: it never received the result it was waiting for.
//
// In cluster mode (SetRemote) the cache miss is offered to the remote
// resolver before the local engine: a peer-resolved result fills the
// entry and counts as remoteHits; a decline (no cluster, we own the
// key, or the owner died) falls through to a local simulation. The
// waiters parked on the entry never see the difference.
func (p *Profiler) run(ctx context.Context, job workload.Job, sc scenario) (*train.Result, error) {
	return p.runScenario(ctx, job, sc, true)
}

// runLocal is run without the remote hop: the owner-side entry point
// (see RunLocalScenario), immune to forwarding loops by construction.
func (p *Profiler) runLocal(ctx context.Context, job workload.Job, sc scenario) (*train.Result, error) {
	return p.runScenario(ctx, job, sc, false)
}

func (p *Profiler) runScenario(ctx context.Context, job workload.Job, sc scenario, allowRemote bool) (*train.Result, error) {
	if err := checkFit(job, sc.instance); err != nil {
		return nil, err
	}
	tc := p.tenantFor(ctx)
	p.requests.Add(1)
	if tc != nil {
		tc.requests.Add(1)
	}
	if err := ctx.Err(); err != nil {
		p.cancelled.Add(1)
		if tc != nil {
			tc.cancelled.Add(1)
		}
		return nil, err
	}
	key := scenarioKey{
		model:    job.Model.Name,
		batch:    job.BatchPerGPU,
		instance: sc.instance.Name,
		count:    sc.count,
		gpusPer:  sc.gpusPer,
		mode:     sc.mode,
	}
	p.mu.Lock()
	if e, ok := p.cache[key]; ok {
		p.mu.Unlock()
		select {
		case <-e.done:
			p.hits.Add(1)
			if tc != nil {
				tc.hits.Add(1)
			}
			return e.res, e.err
		default:
		}
		select {
		case <-e.done:
			p.waits.Add(1)
			if tc != nil {
				tc.waits.Add(1)
			}
			return e.res, e.err
		case <-ctx.Done():
			p.cancelled.Add(1)
			if tc != nil {
				tc.cancelled.Add(1)
			}
			return nil, ctx.Err()
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	p.cache[key] = e
	p.mu.Unlock()

	if allowRemote {
		if rr := p.remoteResolver(); rr != nil {
			spec := ScenarioSpec{
				Model:    key.model,
				Batch:    key.batch,
				Instance: key.instance,
				Count:    key.count,
				GPUsPer:  key.gpusPer,
				Mode:     int(key.mode),
			}
			if out, ok := rr(ctx, spec); ok {
				e.res, e.err = out.Res, out.Err
				p.remoteHits.Add(1)
				if tc != nil {
					tc.remoteHits.Add(1)
				}
				close(e.done)
				return e.res, e.err
			}
		}
	}

	e.res, e.err = p.simulate(job, sc)
	p.simulated.Add(1)
	if tc != nil {
		tc.simulated.Add(1)
	}
	close(e.done)
	return e.res, e.err
}

// simulate runs one scenario on a pooled simContext: the engine, network,
// and provisioned topology come from the calling worker's arena (reset to
// a state byte-identical with a fresh build), so per-cell simulation does
// not pay per-cell construction.
func (p *Profiler) simulate(job workload.Job, sc scenario) (*train.Result, error) {
	// Warm-prefix forking (see WithWarmPrefixFork): synthetic lockstep
	// periodicity means the warmup prefix adds no information, so skip
	// simulating it and reconstruct the one warmup-inclusive statistic
	// below.
	warmup := profileWarmup
	fork := p.warmFork && sc.mode == modeSynthetic
	if fork {
		warmup = 0
	}

	c := acquireSimContext()
	defer releaseSimContext(c)
	top, err := c.world(p.slicePolicy, p.seed, sc.instance, sc.count)
	if err != nil {
		return nil, err
	}
	eng, net := c.eng, c.net

	var gpus []*topo.Device
	if sc.gpusPer > 0 {
		for _, m := range top.Machines {
			if sc.gpusPer > len(m.GPUs) {
				return nil, fmt.Errorf("stash: %d GPUs requested per %s, has %d",
					sc.gpusPer, sc.instance.Name, len(m.GPUs))
			}
			gpus = append(gpus, m.GPUs[:sc.gpusPer]...)
		}
	}

	cfg := train.Config{
		Job:               job,
		Topology:          top,
		GPUs:              gpus,
		Iterations:        p.iterations,
		Warmup:            warmup,
		Synthetic:         sc.mode == modeSynthetic,
		CollectiveOptions: p.collectiveOpts,
		// Transfers that stage through host memory (PCIe peer traffic,
		// network paths) block the compute stream; only whole NVLink
		// crossbars keep the DDP overlap (§VI-A2's additive cost model).
		DisableOverlap: !top.SupportsAsyncCollectives(),
	}
	if sc.mode != modeSynthetic {
		cfg.Pipelines = make(map[int]*pipeline.HostPipeline, len(top.Machines))
		for node := range top.Machines {
			hp, err := pipeline.New(eng, net, node, pipeline.Config{
				Storage:    sc.instance.Storage,
				CPU:        sc.instance.CPU(),
				CacheBytes: sc.instance.MainMemoryGB * 0.9e9,
			})
			if err != nil {
				return nil, err
			}
			cfg.Pipelines[node] = hp
		}
		cfg.CacheMode = pipeline.CacheCold
		if sc.mode == modeRealWarm {
			cfg.CacheMode = pipeline.CacheWarm
		}
	}
	res, err := train.Run(eng, net, cfg)
	if err != nil {
		return nil, err
	}
	if fork {
		// Every other Result field is measured inside the post-warmup
		// window and is identical by lockstep periodicity; CommBusy alone
		// counts warmup collectives too. The forked run's CommBusy is
		// exactly iterations × per-iteration busy time, so this scaling is
		// exact integer arithmetic, not an approximation.
		res.CommBusy = res.CommBusy * time.Duration(profileWarmup+p.iterations) / time.Duration(p.iterations)
	}
	return res, nil
}

// ICStall is the interconnect-stall measurement of §IV-B1.
type ICStall struct {
	// SingleGPU is step 1's per-iteration time (one GPU, same per-GPU
	// batch, others idle).
	SingleGPU time.Duration

	// AllGPU is step 2's per-iteration time (every GPU of the machine).
	AllGPU time.Duration

	// Stall is the per-iteration interconnect stall: AllGPU - SingleGPU.
	Stall time.Duration

	// Pct is the paper's I/C stall%: stall time as a percentage of
	// single-GPU time.
	Pct float64
}

// InterconnectStall measures the intra-machine communication stall of a
// job on one instance (steps 1 and 2).
func (p *Profiler) InterconnectStall(job workload.Job, it cloud.InstanceType) (ICStall, error) {
	return p.clusterCommStall(context.Background(), job, it, 1)
}

// ClusterCommStall generalizes the interconnect measurement to a cluster
// of count instances using every GPU: the figures' "8xlarge*2" bars are
// the total communication stall (interconnect plus network) of the
// cluster relative to a single GPU's time.
func (p *Profiler) ClusterCommStall(job workload.Job, it cloud.InstanceType, count int) (ICStall, error) {
	return p.clusterCommStall(context.Background(), job, it, count)
}

func (p *Profiler) clusterCommStall(ctx context.Context, job workload.Job, it cloud.InstanceType, count int) (ICStall, error) {
	t1, err := p.run(ctx, job, scenario{instance: it, count: 1, gpusPer: 1, mode: modeSynthetic})
	if err != nil {
		return ICStall{}, fmt.Errorf("step 1: %w", err)
	}
	t2, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeSynthetic})
	if err != nil {
		return ICStall{}, fmt.Errorf("step 2: %w", err)
	}
	s := ICStall{
		SingleGPU: t1.PerIteration,
		AllGPU:    t2.PerIteration,
		Stall:     t2.PerIteration - t1.PerIteration,
	}
	if s.SingleGPU > 0 {
		s.Pct = 100 * s.Stall.Seconds() / s.SingleGPU.Seconds()
	}
	return s, nil
}

// NWStall is the network-stall measurement of §IV-B2.
type NWStall struct {
	// SingleInstance is step 2's per-iteration time.
	SingleInstance time.Duration

	// MultiInstance is step 5's per-iteration time: the same world size
	// split across Nodes network-connected instances.
	MultiInstance time.Duration

	// Nodes is the number of machines in step 5.
	Nodes int

	// Stall is MultiInstance - SingleInstance per iteration.
	Stall time.Duration

	// Pct is the paper's N/W stall%: stall time as a percentage of
	// single-instance time.
	Pct float64
}

// NetworkStall measures the inter-machine communication stall: step 2 on
// one instance versus step 5 on nodes instances holding the same total
// GPU count. The instance's GPU count must be divisible by nodes.
func (p *Profiler) NetworkStall(job workload.Job, it cloud.InstanceType, nodes int) (NWStall, error) {
	return p.NetworkStallContext(context.Background(), job, it, nodes)
}

// NetworkStallContext is NetworkStall honoring ctx: cancellation is
// observed between the two underlying scenarios (see run).
func (p *Profiler) NetworkStallContext(ctx context.Context, job workload.Job, it cloud.InstanceType, nodes int) (NWStall, error) {
	if nodes < 2 {
		return NWStall{}, fmt.Errorf("stash: network stall needs >= 2 nodes, got %d", nodes)
	}
	if it.NGPUs%nodes != 0 {
		return NWStall{}, fmt.Errorf("stash: %s has %d GPUs, not divisible across %d nodes", it.Name, it.NGPUs, nodes)
	}
	t2, err := p.run(ctx, job, scenario{instance: it, count: 1, mode: modeSynthetic})
	if err != nil {
		return NWStall{}, fmt.Errorf("step 2: %w", err)
	}
	t5, err := p.run(ctx, job, scenario{instance: it, count: nodes, gpusPer: it.NGPUs / nodes, mode: modeSynthetic})
	if err != nil {
		return NWStall{}, fmt.Errorf("step 5: %w", err)
	}
	s := NWStall{
		SingleInstance: t2.PerIteration,
		MultiInstance:  t5.PerIteration,
		Nodes:          nodes,
		Stall:          t5.PerIteration - t2.PerIteration,
	}
	if s.SingleInstance > 0 {
		s.Pct = 100 * s.Stall.Seconds() / s.SingleInstance.Seconds()
	}
	return s, nil
}

// DataStalls is the DS-Analyzer fetch/prep measurement (§II-B) that Stash
// embeds as steps 2, 3 and 4.
type DataStalls struct {
	// Synthetic is step 2's per-iteration time (maximum ingestion rate).
	Synthetic time.Duration

	// ColdCache is step 3's per-iteration time (real data, caches
	// dropped).
	ColdCache time.Duration

	// WarmCache is step 4's per-iteration time (real data fully cached).
	WarmCache time.Duration

	// PrepStall is the CPU pre-processing stall: WarmCache - Synthetic.
	PrepStall time.Duration

	// FetchStall is the disk stall: ColdCache - WarmCache.
	FetchStall time.Duration

	// PrepPct and FetchPct express the stalls as percentages of total
	// (cold-cache) training time, as plotted in Figs 4, 8 and 9.
	PrepPct  float64
	FetchPct float64
}

// DataStallAnalysis measures fetch and prep stalls on one instance
// (steps 2, 3 and 4).
func (p *Profiler) DataStallAnalysis(job workload.Job, it cloud.InstanceType) (DataStalls, error) {
	return p.clusterDataStalls(context.Background(), job, it, 1)
}

// ClusterDataStalls generalizes the fetch/prep measurement to count
// network-connected instances, each reading from its own volume.
func (p *Profiler) ClusterDataStalls(job workload.Job, it cloud.InstanceType, count int) (DataStalls, error) {
	return p.clusterDataStalls(context.Background(), job, it, count)
}

func (p *Profiler) clusterDataStalls(ctx context.Context, job workload.Job, it cloud.InstanceType, count int) (DataStalls, error) {
	t2, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeSynthetic})
	if err != nil {
		return DataStalls{}, fmt.Errorf("step 2: %w", err)
	}
	t3, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeRealCold})
	if err != nil {
		return DataStalls{}, fmt.Errorf("step 3: %w", err)
	}
	t4, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeRealWarm})
	if err != nil {
		return DataStalls{}, fmt.Errorf("step 4: %w", err)
	}
	s := DataStalls{
		Synthetic: t2.PerIteration,
		ColdCache: t3.PerIteration,
		WarmCache: t4.PerIteration,
	}
	s.PrepStall = max(0, s.WarmCache-s.Synthetic)
	s.FetchStall = max(0, s.ColdCache-s.WarmCache)
	if s.ColdCache > 0 {
		s.PrepPct = 100 * s.PrepStall.Seconds() / s.ColdCache.Seconds()
		s.FetchPct = 100 * s.FetchStall.Seconds() / s.ColdCache.Seconds()
	}
	return s, nil
}

// EpochEstimate is the end-to-end time and money one epoch costs on a
// configuration.
type EpochEstimate struct {
	// Instance and Nodes identify the configuration.
	Instance string
	Nodes    int

	// WorldSize is the total GPU count.
	WorldSize int

	// PerIteration is the amortized iteration time: steady-state (warm
	// caches) plus the cold first epoch's surcharge spread over the cost
	// model's training length.
	PerIteration time.Duration

	// WarmIteration and ColdIteration are the underlying measurements
	// (steps 4 and 3 of the methodology).
	WarmIteration time.Duration
	ColdIteration time.Duration

	// Iterations is the optimizer steps per epoch at this world size.
	Iterations int

	// Time is the wall-clock time of one (amortized) epoch.
	Time time.Duration

	// Cost is the on-demand dollar cost of one epoch.
	Cost float64
}

// Epoch estimates one epoch of real training on count instances (using
// every GPU). The estimate blends the warm steady state with the cold
// first epoch, amortized over the cost model's training length: that is
// what makes the 16xlarge's disk stalls erode its interconnect advantage
// over the 8xlarge (SV-B2).
func (p *Profiler) Epoch(job workload.Job, it cloud.InstanceType, count int) (EpochEstimate, error) {
	return p.EpochContext(context.Background(), job, it, count)
}

// EpochContext is Epoch honoring ctx: cancellation is observed between
// the warm and cold scenarios (see run).
func (p *Profiler) EpochContext(ctx context.Context, job workload.Job, it cloud.InstanceType, count int) (EpochEstimate, error) {
	warm, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeRealWarm})
	if err != nil {
		return EpochEstimate{}, err
	}
	cold, err := p.run(ctx, job, scenario{instance: it, count: count, mode: modeRealCold})
	if err != nil {
		return EpochEstimate{}, err
	}
	perIter := warm.PerIteration + (cold.PerIteration-warm.PerIteration)/time.Duration(p.costEpochs)
	iters := job.IterationsPerEpoch(warm.WorldSize)
	est := EpochEstimate{
		Instance:      it.Name,
		Nodes:         count,
		WorldSize:     warm.WorldSize,
		PerIteration:  perIter,
		WarmIteration: warm.PerIteration,
		ColdIteration: cold.PerIteration,
		Iterations:    iters,
		Time:          perIter * time.Duration(iters),
	}
	est.Cost = it.Cost(est.Time, count)
	return est, nil
}

// Report is the full stall characterization of one (job, instance)
// combination.
type Report struct {
	Instance string
	Model    string
	Batch    int

	IC   ICStall
	Data DataStalls

	// NW is only populated when the instance has at least 2 GPUs and an
	// even GPU count (step 5 splits it across two machines).
	NW    *NWStall
	Epoch EpochEstimate

	// Blame is the frontier blame attribution of the all-GPU scenario,
	// populated only under WithBlameAttribution.
	Blame *BlameReport
}

// Profile runs the complete Stash pipeline (steps 1-5) for a job on an
// instance type.
func (p *Profiler) Profile(job workload.Job, it cloud.InstanceType) (*Report, error) {
	return p.ProfileContext(context.Background(), job, it)
}

// ProfileContext is Profile honoring ctx. Cancellation is observed at
// scenario granularity: when ctx expires the pipeline stops before its
// next scenario (or stops waiting on another goroutine's in-flight
// scenario) and returns ctx.Err(). This is what bounds a stashd
// request's time on the server.
func (p *Profiler) ProfileContext(ctx context.Context, job workload.Job, it cloud.InstanceType) (*Report, error) {
	// Progress hook (WithProgress): the pipeline has three or four
	// measurement stages (IC, data, optional NW, epoch); announce the
	// total up front and tick one per stage, mirroring what ForEachCtx
	// does per cell for grid sweeps.
	progress := progressFrom(ctx)
	hasNW := it.NGPUs >= 2 && it.NGPUs%2 == 0
	if progress != nil {
		stages := 3
		if hasNW {
			stages++
		}
		if p.blame {
			stages++
		}
		progress(0, stages)
	}
	stageDone := func() {
		if progress != nil {
			progress(1, 0)
		}
	}
	r := &Report{Instance: it.Name, Model: job.Model.Name, Batch: job.BatchPerGPU}
	var err error
	if r.IC, err = p.clusterCommStall(ctx, job, it, 1); err != nil {
		return nil, err
	}
	stageDone()
	if r.Data, err = p.clusterDataStalls(ctx, job, it, 1); err != nil {
		return nil, err
	}
	stageDone()
	if hasNW {
		nw, err := p.NetworkStallContext(ctx, job, it, 2)
		if err != nil {
			return nil, err
		}
		r.NW = &nw
		stageDone()
	}
	if r.Epoch, err = p.EpochContext(ctx, job, it, 1); err != nil {
		return nil, err
	}
	stageDone()
	if p.blame {
		if r.Blame, err = p.BlameContext(ctx, job, it, BlameOptions{StragglerRank: -1}); err != nil {
			return nil, err
		}
		stageDone()
	}
	return r, nil
}
