package core

import (
	"runtime"
	"sync"
)

// ForEach invokes fn(0) .. fn(n-1) on a worker pool of the given size
// (0 or negative = GOMAXPROCS) and returns the lowest-index error, so a
// failing sweep reports the same error regardless of completion order.
// workers == 1 preserves the serial path exactly, including its
// short-circuit on first error.
//
// This is the scheduling primitive behind every parallel sweep in the
// repo: callers write results into index i of a pre-sized slice and
// assemble output in index order afterwards, which keeps rendered
// tables byte-identical at any parallelism.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
