package core

import (
	"context"
	"runtime"
	"sync"
)

// ForEach invokes fn(0) .. fn(n-1) on a worker pool of the given size
// (0 or negative = GOMAXPROCS) and returns the lowest-index error, so a
// failing sweep reports the same error regardless of completion order.
// workers == 1 preserves the serial path exactly, including its
// short-circuit on first error.
//
// This is the scheduling primitive behind every parallel sweep in the
// repo: callers write results into index i of a pre-sized slice and
// assemble output in index order afterwards, which keeps rendered
// tables byte-identical at any parallelism. It is equivalent to
// ForEachCtx with a background context.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no further
// fn calls start and every unstarted index is charged ctx.Err(). Calls
// already in flight are never interrupted — fn bodies in this repository
// are short deterministic simulations — so the cancelled sweep still
// returns the lowest-index error, which is either a real fn failure that
// happened before the cut or ctx.Err() itself. This is what threads a
// server request's deadline through the experiment and recommendation
// sweeps.
//
// Dispatch is worker-affine static chunking, not a shared feed channel:
// worker w owns the contiguous index range [w*chunk, (w+1)*chunk). Each
// goroutine therefore walks adjacent cells — which in the experiment
// sweeps share scenarios, so single-flight cache hits land on the worker
// that populated them — and reuses the same pooled simContext for its
// whole batch (sync.Pool is per-P, and an unpreempted goroutine keeps
// getting its own context back). Output assembly is unchanged: results
// land at index i regardless of which worker ran it, keeping rendered
// tables byte-identical at any parallelism.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// Progress hook (WithProgress): announce the sweep's size up front,
	// then report each cell as it completes. Cells that never start
	// because ctx expired are not reported — a cancelled sweep's done
	// count stays below its announced total, which is how an observer
	// distinguishes "cancelled mid-sweep" from "finished".
	progress := progressFrom(ctx)
	if progress != nil {
		progress(0, n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := fn(i)
			if progress != nil {
				progress(1, 0)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				// Check per item so a cancelled sweep stops starting new
				// cells and charges the rest of this batch ctx.Err().
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
				if progress != nil {
					progress(1, 0)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
