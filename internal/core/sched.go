package core

import (
	"context"
	"runtime"
	"sync"
)

// ForEach invokes fn(0) .. fn(n-1) on a worker pool of the given size
// (0 or negative = GOMAXPROCS) and returns the lowest-index error, so a
// failing sweep reports the same error regardless of completion order.
// workers == 1 preserves the serial path exactly, including its
// short-circuit on first error.
//
// This is the scheduling primitive behind every parallel sweep in the
// repo: callers write results into index i of a pre-sized slice and
// assemble output in index order afterwards, which keeps rendered
// tables byte-identical at any parallelism. It is equivalent to
// ForEachCtx with a background context.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no further
// fn calls are dispatched and every undispatched index is charged
// ctx.Err(). Calls already in flight are never interrupted — fn bodies
// in this repository are short deterministic simulations — so the
// cancelled sweep still returns the lowest-index error, which is either
// a real fn failure that happened before the cut or ctx.Err() itself.
// This is what threads a server request's deadline through the
// experiment and recommendation sweeps.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Re-check per item: the feeder may have handed out this
				// index just before cancellation landed.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
