package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"stash/internal/dnn"
)

func TestRecommendRanksByCost(t *testing.T) {
	p := fastProfiler()
	rec, err := p.Recommend(job(t, resnet18(t), 32), Constraints{})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(rec.Candidates) < 8 {
		t.Fatalf("only %d candidates", len(rec.Candidates))
	}
	for i := 1; i < len(rec.Candidates); i++ {
		if rec.Candidates[i].Estimate.Cost < rec.Candidates[i-1].Estimate.Cost {
			t.Errorf("candidates not sorted by cost at %d", i)
		}
	}
	if rec.Cheapest != 0 {
		t.Errorf("Cheapest = %d, want 0", rec.Cheapest)
	}
	fast := rec.Candidates[rec.Fastest]
	for _, c := range rec.Candidates {
		if c.Estimate.Time < fast.Estimate.Time {
			t.Errorf("Fastest missed %s*%d (%v < %v)", c.Instance, c.Nodes, c.Estimate.Time, fast.Estimate.Time)
		}
	}
	if rec.ModelAdvice == "" {
		t.Error("no model advice")
	}
}

func TestRecommendDeadline(t *testing.T) {
	p := fastProfiler()
	// A tight deadline excludes slow single-GPU instances.
	rec, err := p.Recommend(job(t, resnet18(t), 32), Constraints{MaxEpochTime: 20 * time.Minute})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	for _, c := range rec.Candidates {
		if c.Estimate.Time > 20*time.Minute {
			t.Errorf("%s*%d over deadline: %v", c.Instance, c.Nodes, c.Estimate.Time)
		}
	}
	if _, ok := rec.Rejected["p2.xlarge"]; !ok {
		t.Error("slow p2.xlarge should be rejected with a reason")
	}
}

func TestRecommendBudget(t *testing.T) {
	p := fastProfiler()
	rec, err := p.Recommend(job(t, resnet18(t), 32), Constraints{MaxCostPerEpoch: 3})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	for _, c := range rec.Candidates {
		if c.Estimate.Cost > 3 {
			t.Errorf("%s*%d over budget: $%.2f", c.Instance, c.Nodes, c.Estimate.Cost)
		}
	}
	if len(rec.Rejected) == 0 {
		t.Error("expected some rejections at a $3 budget")
	}
}

func TestRecommendInfeasible(t *testing.T) {
	p := fastProfiler()
	_, err := p.Recommend(job(t, resnet18(t), 32), Constraints{MaxCostPerEpoch: 0.01})
	if !errors.Is(err, ErrNoFeasibleConfig) {
		t.Errorf("err = %v, want ErrNoFeasibleConfig", err)
	}
}

func TestRecommendFamilyFilter(t *testing.T) {
	p := fastProfiler()
	rec, err := p.Recommend(job(t, resnet18(t), 32), Constraints{Families: []string{"P3"}})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	for _, c := range rec.Candidates {
		if !strings.HasPrefix(c.Instance, "p3.") {
			t.Errorf("non-P3 candidate %s", c.Instance)
		}
	}
}

func TestRecommendOOMRejection(t *testing.T) {
	p := fastProfiler()
	// BERT-large at batch 12 fits only 32 GB GPUs.
	rec, err := p.Recommend(job(t, dnn.BERTLarge(), 12), Constraints{Families: []string{"P3"}})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if reason, ok := rec.Rejected["p3.16xlarge"]; !ok || !strings.Contains(reason, "memory") {
		t.Errorf("p3.16xlarge rejection = %q, want OOM", reason)
	}
	found := false
	for _, c := range rec.Candidates {
		if c.Instance == "p3.24xlarge" {
			found = true
		}
		if c.Instance == "p3.16xlarge" || c.Instance == "p3.2xlarge" {
			t.Errorf("16 GB instance %s should not fit BERT at batch 12", c.Instance)
		}
	}
	if !found {
		t.Error("p3.24xlarge (32 GB GPUs) should be feasible")
	}
}

func TestModelAdviceClassification(t *testing.T) {
	vgg := job(t, vgg11(t), 32)
	if advice := modelAdvice(vgg); !strings.Contains(advice, "bandwidth-bound") {
		t.Errorf("VGG advice = %q, want bandwidth-bound", advice)
	}
	deep, err := dnn.ResNet(152)
	if err != nil {
		t.Fatal(err)
	}
	if advice := modelAdvice(job(t, deep, 32)); !strings.Contains(advice, "latency-bound") {
		t.Errorf("ResNet152 advice = %q, want latency-bound", advice)
	}
	if advice := modelAdvice(job(t, resnet18(t), 32)); !strings.Contains(advice, "balanced") {
		t.Errorf("ResNet18 advice = %q, want balanced", advice)
	}
}

func TestRecommendShuffleNetPrefersP2(t *testing.T) {
	// §V-C1: small models that cannot exploit a V100 are cheapest on P2.
	p := fastProfiler()
	rec, err := p.Recommend(job(t, dnn.ShuffleNetV2(), 64), Constraints{})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if got := rec.Candidates[0].Instance; !strings.HasPrefix(got, "p2.") {
		t.Errorf("cheapest config for ShuffleNet = %s, want a P2 instance", got)
	}
}

func TestRecommendMaxNodes(t *testing.T) {
	p := fastProfiler()
	rec, err := p.Recommend(job(t, resnet18(t), 32), Constraints{MaxNodes: 1})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	for _, c := range rec.Candidates {
		if c.Nodes != 1 {
			t.Errorf("multi-node candidate %s*%d with MaxNodes=1", c.Instance, c.Nodes)
		}
	}
	if _, err := p.Recommend(job(t, resnet18(t), 32), Constraints{MaxNodes: -1}); err == nil {
		t.Error("negative MaxNodes should fail")
	}
}
