package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"stash/internal/cloud"
	"stash/internal/topo"
	"stash/internal/trace"
	"stash/internal/train"
	"stash/internal/workload"
)

// DefaultStragglerScale is the compute slowdown factor callers inject
// when they ask for a straggler without choosing a scale.
const DefaultStragglerScale = 1.5

// BlameOptions configures one frontier blame measurement.
type BlameOptions struct {
	// Nodes spreads the instance's GPUs across this many
	// network-connected machines, like the methodology's step 5. 0 or 1
	// runs a single instance with every GPU.
	Nodes int

	// StragglerRank, when StragglerScale > 1, is the rank whose compute
	// is slowed by that factor (a synthetic straggler for calibration
	// and testing). Use -1 and scale 0/1 for an uninstrumented run.
	StragglerRank  int
	StragglerScale float64
}

// WorkerBlameRow is one rank of a BlameReport, mirroring
// trace.WorkerBlame plus its share of the total.
type WorkerBlameRow struct {
	Rank int

	// Blamed is comm-wait time attributed to this rank arriving last;
	// BlamedPct is its share of TotalCommWait.
	Blamed    time.Duration
	BlamedPct float64

	// SelfWait is the rank's own comm-wait; FrontierBarriers how many
	// barriers it fronted.
	SelfWait         time.Duration
	FrontierBarriers int
}

// BlameReport is the frontier blame attribution of one traced training
// run: for every all-reduce barrier the last-arriving rank is charged
// the comm-wait it caused, summed over the run.
type BlameReport struct {
	Model    string
	Instance string
	Batch    int
	Nodes    int

	WorldSize  int
	Iterations int

	// StragglerRank is -1 (and StragglerScale 1) when nothing was
	// injected.
	StragglerRank  int
	StragglerScale float64

	// Barriers is the number of collectives attributed; TiedBarriers
	// those where every rank arrived simultaneously (their blame
	// defaults to rank 0 and carries no culprit signal).
	Barriers     int
	TiedBarriers int

	// TotalCommWait = Attributed + Unattributed; with per-rank barrier
	// spans recorded, Unattributed is zero (audited).
	TotalCommWait time.Duration
	Attributed    time.Duration
	Unattributed  time.Duration

	// Workers is the blame table, worst offender first.
	Workers []WorkerBlameRow
}

// String renders the ranked blame table.
func (b *BlameReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "blame: %s on %dx %s (batch %d, %d workers, %d iterations)\n",
		b.Model, b.Nodes, b.Instance, b.Batch, b.WorldSize, b.Iterations)
	if b.StragglerScale > 1 {
		fmt.Fprintf(&sb, "  injected straggler: rank %d at %.2fx compute\n", b.StragglerRank, b.StragglerScale)
	}
	fmt.Fprintf(&sb, "  %d barriers (%d tied), comm-wait %v total: %v attributed, %v unattributed\n",
		b.Barriers, b.TiedBarriers, round(b.TotalCommWait), round(b.Attributed), round(b.Unattributed))
	fmt.Fprintf(&sb, "  %4s  %12s  %6s  %12s  %8s\n", "rank", "blamed", "share", "self-wait", "fronted")
	for _, w := range b.Workers {
		fmt.Fprintf(&sb, "  %4d  %12v  %5.1f%%  %12v  %8d\n",
			w.Rank, round(w.Blamed), w.BlamedPct, round(w.SelfWait), w.FrontierBarriers)
	}
	return sb.String()
}

// Blame is BlameContext with a background context.
func (p *Profiler) Blame(job workload.Job, it cloud.InstanceType, opt BlameOptions) (*BlameReport, error) {
	return p.BlameContext(context.Background(), job, it, opt)
}

// BlameContext runs one traced synthetic training of job on it and
// attributes every worker's comm-wait to the barrier frontiers
// (trace.Attribute). Unlike the stall measurements, the traced run is
// never memoized or counted in Stats: tracing perturbs nothing (the
// simulation is identical), but the result depends on the straggler
// injection, which is not part of the scenario cache key.
func (p *Profiler) BlameContext(ctx context.Context, job workload.Job, it cloud.InstanceType, opt BlameOptions) (*BlameReport, error) {
	if err := checkFit(job, it); err != nil {
		return nil, err
	}
	count, gpusPer := 1, 0
	if opt.Nodes >= 2 {
		if it.NGPUs%opt.Nodes != 0 {
			return nil, fmt.Errorf("stash: %s has %d GPUs, not divisible across %d nodes", it.Name, it.NGPUs, opt.Nodes)
		}
		count, gpusPer = opt.Nodes, it.NGPUs/opt.Nodes
	}
	straggler := -1
	scale := 1.0
	switch {
	case opt.StragglerScale > 1:
		straggler, scale = opt.StragglerRank, opt.StragglerScale
		if straggler < 0 || straggler >= it.NGPUs {
			return nil, fmt.Errorf("stash: straggler rank %d outside [0,%d)", straggler, it.NGPUs)
		}
	//lint:allow floatcmp 0 and 1 are the explicit no-straggler sentinels, not computed values
	case opt.StragglerScale == 0 || opt.StragglerScale == 1:
		// No straggler.
	default:
		return nil, fmt.Errorf("stash: straggler scale %v below 1", opt.StragglerScale)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	c := acquireSimContext()
	defer releaseSimContext(c)
	top, err := c.world(p.slicePolicy, p.seed, it, count)
	if err != nil {
		return nil, err
	}
	eng, net := c.eng, c.net

	var gpus []*topo.Device
	if gpusPer > 0 {
		for _, m := range top.Machines {
			gpus = append(gpus, m.GPUs[:gpusPer]...)
		}
	}
	rec := trace.New()
	cfg := train.Config{
		Job:               job,
		Topology:          top,
		GPUs:              gpus,
		Iterations:        p.iterations,
		Warmup:            profileWarmup,
		Synthetic:         true,
		CollectiveOptions: p.collectiveOpts,
		DisableOverlap:    !top.SupportsAsyncCollectives(),
		Trace:             rec,
		StragglerRank:     straggler,
		StragglerScale:    scale,
	}
	if straggler < 0 {
		cfg.StragglerRank, cfg.StragglerScale = 0, 1
	}
	res, err := train.Run(eng, net, cfg)
	if err != nil {
		return nil, err
	}

	a := rec.Attribute()
	b := &BlameReport{
		Model:          job.Model.Name,
		Instance:       it.Name,
		Batch:          job.BatchPerGPU,
		Nodes:          count,
		WorldSize:      res.WorldSize,
		Iterations:     profileWarmup + p.iterations,
		StragglerRank:  straggler,
		StragglerScale: scale,
		Barriers:       a.Barriers,
		TiedBarriers:   a.TiedBarriers,
		TotalCommWait:  a.TotalCommWait,
		Attributed:     a.Attributed,
		Unattributed:   a.Unattributed,
		Workers:        make([]WorkerBlameRow, len(a.Workers)),
	}
	for i, w := range a.Workers {
		row := WorkerBlameRow{
			Rank:             w.Worker,
			Blamed:           w.Blamed,
			SelfWait:         w.SelfWait,
			FrontierBarriers: w.FrontierCount,
		}
		if a.TotalCommWait > 0 {
			row.BlamedPct = 100 * float64(w.Blamed) / float64(a.TotalCommWait)
		}
		b.Workers[i] = row
	}
	return b, nil
}
