package topo

import (
	"strings"
	"testing"
	"time"

	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
)

func p2Spec(n int, rootBW float64) MachineSpec {
	return MachineSpec{
		GPU:                  hw.K80,
		NGPUs:                n,
		Interconnect:         InterconnectPCIe,
		PCIe:                 hw.PCIeGen3x16,
		RootComplexBandwidth: rootBW,
		NetworkGbps:          10,
	}
}

func p3Spec(n int, ic Interconnect) MachineSpec {
	return MachineSpec{
		GPU:                  hw.V100,
		NGPUs:                n,
		Interconnect:         ic,
		PCIe:                 hw.PCIeGen3x16,
		RootComplexBandwidth: 48 * hw.GB,
		NVLink:               hw.NVLink2,
		NetworkGbps:          25,
	}
}

func build(t *testing.T, specs ...MachineSpec) (*sim.Engine, *Topology) {
	t.Helper()
	e := sim.NewEngine()
	net := simnet.New(e)
	top, err := BuildCluster(net, specs)
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	return e, top
}

func TestBuildValidation(t *testing.T) {
	e := sim.NewEngine()
	net := simnet.New(e)
	cases := []struct {
		name  string
		specs []MachineSpec
	}{
		{"empty", nil},
		{"zero gpus", []MachineSpec{p2Spec(0, 24*hw.GB)}},
		{"zero root bw", []MachineSpec{p2Spec(4, 0)}},
		{"bad interconnect", []MachineSpec{{GPU: hw.K80, NGPUs: 2, RootComplexBandwidth: 1, Interconnect: 0}}},
		{"degraded single gpu", []MachineSpec{{GPU: hw.V100, NGPUs: 1, RootComplexBandwidth: 1, Interconnect: InterconnectNVLinkDegraded}}},
	}
	for _, tc := range cases {
		if _, err := BuildCluster(net, tc.specs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestGPURanksAndCounts(t *testing.T) {
	_, top := build(t, p3Spec(4, InterconnectNVLink), p3Spec(4, InterconnectNVLink))
	gpus := top.AllGPUs()
	if len(gpus) != 8 || top.NumGPUs() != 8 {
		t.Fatalf("got %d GPUs, want 8", len(gpus))
	}
	for rank, g := range gpus {
		if g.Node != rank/4 || g.Index != rank%4 {
			t.Errorf("rank %d: node %d index %d, want %d/%d", rank, g.Node, g.Index, rank/4, rank%4)
		}
		if g.Kind != KindGPU {
			t.Errorf("rank %d: kind %v", rank, g.Kind)
		}
	}
}

func TestPCIeRouteGoesThroughRootComplex(t *testing.T) {
	_, top := build(t, p2Spec(8, 24*hw.GB))
	m := top.Machines[0]
	route, err := top.Route(m.GPUs[0], m.GPUs[5])
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(route) != 3 {
		t.Fatalf("route length = %d, want 3 (up, root, down)", len(route))
	}
	if !strings.Contains(route[1].Name(), "rootcomplex") {
		t.Errorf("middle hop = %s, want root complex", route[1].Name())
	}
}

func TestNVLinkRouteIsDirect(t *testing.T) {
	_, top := build(t, p3Spec(8, InterconnectNVLink))
	m := top.Machines[0]
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			route, err := top.Route(m.GPUs[i], m.GPUs[j])
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", i, j, err)
			}
			if len(route) != 1 || !strings.Contains(route[0].Name(), "nvlink") {
				t.Errorf("route %d->%d = %v links, want 1 NVLink hop", i, j, len(route))
			}
			if route[0].Capacity() != hw.NVLink2.Bandwidth {
				t.Errorf("NVLink capacity = %v, want %v", route[0].Capacity(), hw.NVLink2.Bandwidth)
			}
		}
	}
}

func TestDegradedNVLinkCrossHalfUsesPCIe(t *testing.T) {
	_, top := build(t, p3Spec(4, InterconnectNVLinkDegraded))
	m := top.Machines[0]
	// Same half: NVLink.
	route, err := top.Route(m.GPUs[0], m.GPUs[1])
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(route) != 1 || !strings.Contains(route[0].Name(), "nvlink") {
		t.Errorf("same-half route = %d hops (%s), want direct NVLink", len(route), route[0].Name())
	}
	// Cross half: PCIe through root complex.
	route, err = top.Route(m.GPUs[1], m.GPUs[2])
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(route) != 3 || !strings.Contains(route[1].Name(), "rootcomplex") {
		t.Errorf("cross-half route = %d hops, want PCIe staging", len(route))
	}
}

func TestHostGPURoutesAlwaysPCIe(t *testing.T) {
	_, top := build(t, p3Spec(8, InterconnectNVLink))
	m := top.Machines[0]
	down, err := top.Route(m.Host, m.GPUs[3])
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(down) != 2 || !strings.Contains(down[0].Name(), "rootcomplex") {
		t.Errorf("host->gpu route = %v, want [root, down]", len(down))
	}
	up, err := top.Route(m.GPUs[3], m.Host)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(up) != 2 || !strings.Contains(up[1].Name(), "rootcomplex") {
		t.Errorf("gpu->host route = %v, want [up, root]", len(up))
	}
}

func TestInterMachineRouteCrossesNICs(t *testing.T) {
	_, top := build(t, p3Spec(4, InterconnectNVLink), p3Spec(4, InterconnectNVLink))
	g0 := top.Machines[0].GPUs[0]
	g1 := top.Machines[1].GPUs[2]
	route, err := top.Route(g0, g1)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(route) != 6 {
		t.Fatalf("inter-machine route = %d hops, want 6", len(route))
	}
	if !strings.Contains(route[2].Name(), "nic-out") || !strings.Contains(route[3].Name(), "nic-in") {
		t.Errorf("route hops 2,3 = %s,%s, want NICs", route[2].Name(), route[3].Name())
	}
	// The network hop is the slowest link of the route.
	for _, l := range route[:2] {
		if l.Capacity() <= route[2].Capacity() {
			t.Errorf("intra hop %s (%v B/s) not faster than NIC (%v B/s)", l.Name(), l.Capacity(), route[2].Capacity())
		}
	}
}

func TestNoRouteWithoutNetwork(t *testing.T) {
	spec := p3Spec(2, InterconnectNVLink)
	spec.NetworkGbps = 0
	_, top := build(t, spec, spec)
	_, err := top.Route(top.Machines[0].GPUs[0], top.Machines[1].GPUs[0])
	if err == nil {
		t.Error("expected no-route error for machines without NICs")
	}
}

func TestRouteToSelfIsError(t *testing.T) {
	_, top := build(t, p3Spec(2, InterconnectNVLink))
	g := top.Machines[0].GPUs[0]
	if _, err := top.Route(g, g); err == nil {
		t.Error("expected error for self route")
	}
}

func TestRouteLatency(t *testing.T) {
	_, top := build(t, p2Spec(4, 24*hw.GB))
	m := top.Machines[0]
	got := top.RouteLatency(m.GPUs[0], m.GPUs[1])
	want := 3 * hw.PCIeGen3x16.Latency
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
	if top.RouteLatency(m.GPUs[0], m.GPUs[0]) != 0 {
		t.Error("self route latency should be 0")
	}
}

func TestMachineLookup(t *testing.T) {
	_, top := build(t, p3Spec(2, InterconnectNVLink), p3Spec(2, InterconnectNVLink))
	g := top.Machines[1].GPUs[0]
	if m := top.Machine(g); m != top.Machines[1] {
		t.Error("Machine() returned wrong machine")
	}
}

// The Fig-7 scenario as a topology-level integration test: concurrent
// host->GPU transfers on a fixed root budget degrade per-GPU bandwidth as
// GPU count grows.
func TestRootComplexContention(t *testing.T) {
	perGPU := func(n int) float64 {
		e := sim.NewEngine()
		net := simnet.New(e)
		top, err := BuildCluster(net, []MachineSpec{p2Spec(n, 24*hw.GB)})
		if err != nil {
			t.Fatalf("BuildCluster: %v", err)
		}
		m := top.Machines[0]
		var flows []*simnet.Flow
		for i := 0; i < n; i++ {
			route, err := top.Route(m.Host, m.GPUs[i])
			if err != nil {
				t.Fatalf("Route: %v", err)
			}
			flows = append(flows, net.StartFlow(1*hw.GB, route))
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return flows[0].Throughput()
	}
	bw1, bw8, bw16 := perGPU(1), perGPU(8), perGPU(16)
	if !(bw1 > bw8 && bw8 > bw16) {
		t.Errorf("per-GPU bandwidth not degrading: 1=%.2g 8=%.2g 16=%.2g", bw1, bw8, bw16)
	}
}

// NVLink pairs have dedicated links: concurrent transfers between
// disjoint pairs do not contend.
func TestNVLinkPairsIndependent(t *testing.T) {
	e := sim.NewEngine()
	net := simnet.New(e)
	top, err := BuildCluster(net, []MachineSpec{p3Spec(8, InterconnectNVLink)})
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	m := top.Machines[0]
	var flows []*simnet.Flow
	for i := 0; i < 8; i++ {
		route, err := top.Route(m.GPUs[i], m.GPUs[(i+1)%8])
		if err != nil {
			t.Fatalf("Route: %v", err)
		}
		flows = append(flows, net.StartFlow(50*hw.GB, route))
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, f := range flows {
		// 50 GB at 50 GB/s dedicated: ~1s each despite 8 concurrent flows.
		if d := f.Duration(); d > time.Second+time.Millisecond {
			t.Errorf("flow %d took %v, want ~1s (dedicated NVLink)", i, d)
		}
	}
}

func TestKindAndInterconnectStrings(t *testing.T) {
	if KindGPU.String() != "GPU" || KindHost.String() != "Host" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind string wrong")
	}
	for ic, want := range map[Interconnect]string{
		InterconnectPCIe:           "PCIe",
		InterconnectNVLink:         "NVLink",
		InterconnectNVLinkDegraded: "NVLink(degraded)",
		InterconnectNVSwitch:       "NVSwitch",
		Interconnect(0):            "Interconnect(0)",
	} {
		if got := ic.String(); got != want {
			t.Errorf("Interconnect(%d).String() = %q, want %q", int(ic), got, want)
		}
	}
}
