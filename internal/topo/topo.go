// Package topo builds the device-and-link topologies of simulated cloud
// machines and clusters: PCIe trees (P2), NVLink crossbars whole or
// degraded (P3), NVSwitch fabrics (P4), and VPC networks tying machines
// together. It provides routing between any two devices, expressed as a
// sequence of simnet links, so that collective operations see the same
// contention the paper measures.
package topo

import (
	"fmt"
	"time"

	"stash/internal/hw"
	"stash/internal/simnet"
)

// Kind classifies a device node in the topology.
type Kind int

// Device kinds.
const (
	KindGPU Kind = iota + 1
	KindHost
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindGPU:
		return "GPU"
	case KindHost:
		return "Host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is a node in the topology: a GPU or a host (CPU+DRAM+NIC).
type Device struct {
	Kind  Kind
	Name  string
	GPU   hw.GPUSpec // valid when Kind == KindGPU
	Node  int        // machine index within the cluster
	Index int        // local index within the machine (GPU local rank)
}

// Interconnect selects how a machine's GPUs talk to each other.
type Interconnect int

// Interconnect kinds for machine construction.
const (
	// InterconnectPCIe routes every GPU pair through the shared PCIe
	// root complex (P2 instances).
	InterconnectPCIe Interconnect = iota + 1

	// InterconnectNVLink gives every GPU pair a dedicated NVLink
	// connection (a full crossbar slice, as on p3.16xlarge).
	InterconnectNVLink

	// InterconnectNVLinkDegraded models the p3.8xlarge slicing anomaly
	// (§V-B1): the instance's GPUs straddle two half-crossbars, so only
	// same-half pairs have NVLink; cross-half pairs fall back to PCIe.
	InterconnectNVLinkDegraded

	// InterconnectNVSwitch connects all pairs through an NVSwitch fabric
	// (P4 instances).
	InterconnectNVSwitch
)

// String returns the interconnect name.
func (i Interconnect) String() string {
	switch i {
	case InterconnectPCIe:
		return "PCIe"
	case InterconnectNVLink:
		return "NVLink"
	case InterconnectNVLinkDegraded:
		return "NVLink(degraded)"
	case InterconnectNVSwitch:
		return "NVSwitch"
	default:
		return fmt.Sprintf("Interconnect(%d)", int(i))
	}
}

// MachineSpec describes one machine to build.
type MachineSpec struct {
	GPU          hw.GPUSpec
	NGPUs        int
	Interconnect Interconnect

	// PCIe is the per-GPU PCIe attachment (used for host transfers and,
	// on PCIe-interconnect machines, for GPU peer traffic).
	PCIe hw.LinkSpec

	// RootComplexBandwidth is the aggregate PCIe root-complex budget all
	// of the machine's device traffic shares, in bytes/s. On
	// p2.16xlarge this budget is not scaled up with the GPU count, which
	// produces the Fig-7 per-GPU bandwidth collapse.
	RootComplexBandwidth float64

	// NVLink is the GPU-pair attachment for NVLink interconnects.
	NVLink hw.LinkSpec

	// NetworkGbps is the instance's headline network rating.
	NetworkGbps float64
}

// Machine is a built machine: one host and its GPUs.
type Machine struct {
	Spec MachineSpec
	Node int
	Host *Device
	GPUs []*Device

	rootBus *simnet.Link // shared PCIe root complex
	gpuUp   []*simnet.Link
	gpuDown []*simnet.Link
	nicOut  *simnet.Link
	nicIn   *simnet.Link
}

// Topology is a built cluster: machines joined by a network fabric.
type Topology struct {
	Net      *simnet.Network
	Machines []*Machine

	routes map[[2]*Device][]*simnet.Link
}

// BuildCluster constructs machines and the VPC fabric between them on the
// given simnet network. Machines are indexed by position.
func BuildCluster(net *simnet.Network, specs []MachineSpec) (*Topology, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("topo: no machines")
	}
	t := &Topology{
		Net:    net,
		routes: make(map[[2]*Device][]*simnet.Link),
	}
	for node, spec := range specs {
		m, err := buildMachine(net, node, spec)
		if err != nil {
			return nil, fmt.Errorf("machine %d: %w", node, err)
		}
		t.Machines = append(t.Machines, m)
	}
	t.buildIntraMachineRoutes()
	t.buildInterMachineRoutes()
	return t, nil
}

func buildMachine(net *simnet.Network, node int, spec MachineSpec) (*Machine, error) {
	if spec.NGPUs < 1 {
		return nil, fmt.Errorf("NGPUs %d < 1", spec.NGPUs)
	}
	if spec.RootComplexBandwidth <= 0 {
		return nil, fmt.Errorf("RootComplexBandwidth %v <= 0", spec.RootComplexBandwidth)
	}
	switch spec.Interconnect {
	case InterconnectPCIe, InterconnectNVLink, InterconnectNVLinkDegraded, InterconnectNVSwitch:
	default:
		return nil, fmt.Errorf("unknown interconnect %v", spec.Interconnect)
	}
	if spec.Interconnect == InterconnectNVLinkDegraded && spec.NGPUs < 2 {
		return nil, fmt.Errorf("degraded NVLink needs >= 2 GPUs")
	}
	m := &Machine{
		Spec: spec,
		Node: node,
		Host: &Device{Kind: KindHost, Name: fmt.Sprintf("node%d/host", node), Node: node},
	}
	m.rootBus = net.NewLink(fmt.Sprintf("node%d/rootcomplex", node), spec.RootComplexBandwidth, spec.PCIe.Latency)
	for i := 0; i < spec.NGPUs; i++ {
		m.GPUs = append(m.GPUs, &Device{
			Kind:  KindGPU,
			Name:  fmt.Sprintf("node%d/gpu%d", node, i),
			GPU:   spec.GPU,
			Node:  node,
			Index: i,
		})
		m.gpuUp = append(m.gpuUp, net.NewLink(fmt.Sprintf("node%d/gpu%d/pcie-up", node, i), spec.PCIe.Bandwidth, spec.PCIe.Latency))
		m.gpuDown = append(m.gpuDown, net.NewLink(fmt.Sprintf("node%d/gpu%d/pcie-down", node, i), spec.PCIe.Bandwidth, spec.PCIe.Latency))
	}
	if spec.NetworkGbps > 0 {
		nl := hw.NetworkLink(spec.NetworkGbps)
		m.nicOut = net.NewLink(fmt.Sprintf("node%d/nic-out", node), nl.Bandwidth, nl.Latency)
		m.nicIn = net.NewLink(fmt.Sprintf("node%d/nic-in", node), nl.Bandwidth, nl.Latency)
	}
	return m, nil
}

// pcieRoute is the staged path between two GPUs (or host and GPU) through
// the shared root complex.
func (m *Machine) pcieRoute(from, to int) []*simnet.Link {
	switch {
	case from >= 0 && to >= 0:
		return []*simnet.Link{m.gpuUp[from], m.rootBus, m.gpuDown[to]}
	case from < 0: // host -> GPU
		return []*simnet.Link{m.rootBus, m.gpuDown[to]}
	default: // GPU -> host
		return []*simnet.Link{m.gpuUp[from], m.rootBus}
	}
}

// sameNVLinkHalf reports whether two local GPU indices live on the same
// half-crossbar under the degraded 8xlarge slicing.
func sameNVLinkHalf(i, j, n int) bool {
	half := (n + 1) / 2
	return (i < half) == (j < half)
}

func (t *Topology) buildIntraMachineRoutes() {
	for _, m := range t.Machines {
		n := m.Spec.NGPUs
		// Host <-> GPU always goes over PCIe.
		for i := 0; i < n; i++ {
			t.routes[[2]*Device{m.Host, m.GPUs[i]}] = m.pcieRoute(-1, i)
			t.routes[[2]*Device{m.GPUs[i], m.Host}] = m.pcieRoute(i, -1)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				key := [2]*Device{m.GPUs[i], m.GPUs[j]}
				switch m.Spec.Interconnect {
				case InterconnectPCIe:
					t.routes[key] = m.pcieRoute(i, j)
				case InterconnectNVLink, InterconnectNVSwitch:
					t.routes[key] = []*simnet.Link{t.nvlLink(m, i, j)}
				case InterconnectNVLinkDegraded:
					if sameNVLinkHalf(i, j, n) {
						t.routes[key] = []*simnet.Link{t.nvlLink(m, i, j)}
					} else {
						t.routes[key] = m.pcieRoute(i, j)
					}
				}
			}
		}
	}
}

// nvlLink lazily creates the dedicated point-to-point link for a GPU pair
// direction on NVLink/NVSwitch machines.
func (t *Topology) nvlLink(m *Machine, i, j int) *simnet.Link {
	spec := m.Spec.NVLink
	if m.Spec.Interconnect == InterconnectNVSwitch {
		spec = hw.NVSwitchLink
	}
	name := fmt.Sprintf("node%d/nvlink-%d-%d", m.Node, i, j)
	// Each ordered pair gets its own link: NVLink is full-duplex and the
	// crossbar gives every pair dedicated bandwidth.
	l := t.Net.NewLink(name, spec.Bandwidth, spec.Latency)
	return l
}

func (t *Topology) buildInterMachineRoutes() {
	for _, a := range t.Machines {
		for _, b := range t.Machines {
			if a == b {
				continue
			}
			if a.nicOut == nil || b.nicIn == nil {
				continue
			}
			for i, gi := range a.GPUs {
				for j, gj := range b.GPUs {
					route := []*simnet.Link{a.gpuUp[i], a.rootBus, a.nicOut, b.nicIn, b.rootBus, b.gpuDown[j]}
					t.routes[[2]*Device{gi, gj}] = route
				}
			}
			t.routes[[2]*Device{a.Host, b.Host}] = []*simnet.Link{a.nicOut, b.nicIn}
			// Host to remote GPU and back (parameter-server traffic).
			for j, gj := range b.GPUs {
				t.routes[[2]*Device{a.Host, gj}] = []*simnet.Link{a.nicOut, b.nicIn, b.rootBus, b.gpuDown[j]}
				t.routes[[2]*Device{gj, a.Host}] = []*simnet.Link{b.gpuUp[j], b.rootBus, b.nicOut, a.nicIn}
			}
		}
	}
}

// Route returns the link path from one device to another, or an error if
// no route exists (e.g. machines without network links).
func (t *Topology) Route(from, to *Device) ([]*simnet.Link, error) {
	if from == to {
		return nil, fmt.Errorf("topo: route from %s to itself", from.Name)
	}
	r, ok := t.routes[[2]*Device{from, to}]
	if !ok {
		return nil, fmt.Errorf("topo: no route %s -> %s", from.Name, to.Name)
	}
	return r, nil
}

// AllGPUs returns every GPU in the cluster in (node, index) order; the
// position in the slice is the GPU's global rank.
func (t *Topology) AllGPUs() []*Device {
	var gpus []*Device
	for _, m := range t.Machines {
		gpus = append(gpus, m.GPUs...)
	}
	return gpus
}

// NumGPUs returns the total GPU count across the cluster.
func (t *Topology) NumGPUs() int {
	n := 0
	for _, m := range t.Machines {
		n += m.Spec.NGPUs
	}
	return n
}

// Machine returns the machine a device belongs to.
func (t *Topology) Machine(d *Device) *Machine { return t.Machines[d.Node] }

// SupportsAsyncCollectives reports whether gradient transfers on this
// cluster can overlap with GPU compute. True only for a single machine
// whose GPU pairs are all directly NVLink/NVSwitch connected: PCIe peer
// traffic (P2, the degraded p3.8xlarge slice) and any network path stage
// through host memory with synchronous copies that block the compute
// stream, which is why the paper's per-layer cost model is additive
// (§VI-A2).
func (t *Topology) SupportsAsyncCollectives() bool {
	if len(t.Machines) != 1 {
		return false
	}
	switch t.Machines[0].Spec.Interconnect {
	case InterconnectNVLink, InterconnectNVSwitch:
		return true
	default:
		return false
	}
}

// RouteLatency returns the propagation latency of the path between two
// devices, or 0 when no route exists.
func (t *Topology) RouteLatency(from, to *Device) time.Duration {
	r, err := t.Route(from, to)
	if err != nil {
		return 0
	}
	return simnet.RouteLatency(r)
}
