package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricValue extracts one series' value from a Prometheus text body.
func metricValue(t *testing.T, body []byte, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in metrics body:\n%s", series, body)
	return 0
}

// TestHealthzDeep: the deep probe runs the bounded invariant audit and
// reports a clean result with an explicit empty violations list.
func TestHealthzDeep(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/healthz?deep=1")
	if code != http.StatusOK {
		t.Fatalf("deep healthz = %d, body %s", code, body)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if hr.Status != "ok" || hr.Audit == nil {
		t.Fatalf("deep healthz body: %s", body)
	}
	if hr.Audit.Checks == 0 {
		t.Error("deep probe evaluated no checks")
	}
	if !strings.Contains(string(body), `"violations":[]`) {
		t.Errorf("passing probe must render violations as []: %s", body)
	}

	// The probe feeds the audit counters on /metrics.
	_, mb := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, mb, "stashd_audit_checks_total"); got < int64(hr.Audit.Checks) {
		t.Errorf("stashd_audit_checks_total = %d, want >= %d", got, hr.Audit.Checks)
	}
	if got := metricValue(t, mb, "stashd_audit_violations_total"); got != 0 {
		t.Errorf("stashd_audit_violations_total = %d, want 0", got)
	}
}

// TestHealthzDeepByteStable: two servers with the same configuration
// answer the deep probe with identical bytes (the docs/API.md example
// depends on this).
func TestHealthzDeepByteStable(t *testing.T) {
	var bodies []string
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t)
		_, body := getBody(t, ts.URL+"/healthz?deep=1")
		bodies = append(bodies, string(body))
	}
	if bodies[0] != bodies[1] {
		t.Errorf("deep healthz not byte-stable:\n%s\n%s", bodies[0], bodies[1])
	}
}

// TestHealthzDeepTimeout: the deep probe honors the per-request
// deadline like any other endpoint.
func TestHealthzDeepTimeout(t *testing.T) {
	_, ts := newTestServer(t, WithRequestTimeout(time.Nanosecond))
	code, body := getBody(t, ts.URL+"/healthz?deep=1")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deep healthz under dead deadline = %d, body %s", code, body)
	}
	if got := errCode(t, body); got != errTimeout {
		t.Errorf("error code = %q, want %q", got, errTimeout)
	}
}

// TestMetricsExperimentsPoolMonotonicUnderScrape is the metrics-scrape
// regression test: a dashboard scraping many stashd servers (each with
// its own experiment configuration, all sharing the process-wide
// profiler LRU) must not disturb one server's experiments-pool
// counters. Pre-fix, every scrape allocated a profiler for the scraped
// configuration, so enough foreign scrapes evicted the active profiler
// and the next scrape of the active server reported freshly zeroed
// counters — a counter reset with no restart. Run under -race this also
// guards the scrape path against data races with a live sweep.
func TestMetricsExperimentsPoolMonotonicUnderScrape(t *testing.T) {
	const series = `stashd_scenarios_simulated_total{pool="experiments"}`
	// The swept server gets a generous deadline: the fig4 sweep is
	// seconds normally but can exceed the default request timeout under
	// -race on a loaded single-core runner, and a 504 here would abort
	// the regression check before it observes anything.
	_, main := newTestServer(t, WithSeed(7100), WithRequestTimeout(5*time.Minute))

	// More foreign servers than the shared-profiler LRU holds (the cap
	// is an experiments-internal constant; a dozen distinct seeds is
	// comfortably past it).
	var foreign []*httptest.Server
	for i := int64(0); i < 12; i++ {
		_, ts := newTestServer(t, WithSeed(7200+i))
		foreign = append(foreign, ts)
	}

	// Seed the experiments pool, then confirm the sweep simulated.
	if code, body := getBody(t, main.URL+"/v1/experiments/fig4"); code != http.StatusOK {
		t.Fatalf("experiment run = %d, body %s", code, body)
	}
	_, mb := getBody(t, main.URL+"/metrics")
	before := metricValue(t, mb, series)
	if before == 0 {
		t.Fatal("experiment sweep recorded no simulations in the experiments pool")
	}

	// Scrape everything concurrently while a second sweep runs on main.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(main.URL + "/v1/experiments/fig4")
		if err == nil {
			resp.Body.Close()
		}
	}()
	for round := 0; round < 3; round++ {
		for _, ts := range foreign {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Get(url + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
			}(ts.URL)
		}
	}
	wg.Wait()

	_, mb = getBody(t, main.URL+"/metrics")
	if after := metricValue(t, mb, series); after < before {
		t.Errorf("%s regressed %d -> %d after foreign scrapes (scrape mutated the shared-profiler LRU)",
			series, before, after)
	}
}
