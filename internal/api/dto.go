package api

import (
	"encoding/json"
	"net/http"
	"time"

	"stash/internal/core"
	"stash/internal/report"
)

// Error codes of the API contract (docs/API.md). They are stable
// strings clients can switch on; HTTP status codes carry the coarse
// class, the code the precise reason.
const (
	errInvalidRequest   = "invalid_request"
	errNotFound         = "not_found"
	errMethodNotAllowed = "method_not_allowed"
	errOOM              = "oom"
	errInfeasible       = "infeasible"
	errTimeout          = "timeout"
	errOverloaded       = "overloaded"
	errAuditFailed      = "audit_failed"
	errInternal         = "internal"
)

// ErrorBody is the error envelope every non-2xx response carries.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse wraps ErrorBody under the "error" key.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// HealthResponse is GET /healthz's body. Audit is only present on the
// deep probe (?deep=1).
type HealthResponse struct {
	Status string `json:"status"`

	// Audit summarizes the deep probe's invariant run: how many checks
	// the bounded audit slice evaluated and which (if any) failed. A
	// passing deep probe always reports "violations": [].
	Audit *AuditSummary `json:"audit,omitempty"`
}

// AuditSummary is the deep health probe's audit outcome.
type AuditSummary struct {
	Checks     int      `json:"checks"`
	Violations []string `json:"violations"`
}

// ProfileRequest is POST /v1/profile's body: one (model, instance,
// batch) workload to characterize.
type ProfileRequest struct {
	// Model is any name dnn.Resolve accepts (zoo names plus resnet<N>,
	// vgg<N>, densenet<N>, resnext50, wide_resnet50, bert-base,
	// gpt2-small). Required.
	Model string `json:"model"`

	// Instance is a Table I catalog name (cloud.ByName). Required.
	Instance string `json:"instance"`

	// Batch is the per-GPU batch size; 0 defaults to 32 (the CLI
	// default).
	Batch int `json:"batch,omitempty"`

	// Nodes optionally re-measures the network stall at a different
	// split than the default 2 (must divide the instance's GPU count).
	Nodes int `json:"nodes,omitempty"`
}

// ICStallJSON mirrors core.ICStall with durations in seconds.
type ICStallJSON struct {
	SingleGPUSeconds float64 `json:"single_gpu_seconds"`
	AllGPUSeconds    float64 `json:"all_gpu_seconds"`
	StallSeconds     float64 `json:"stall_seconds"`
	StallPct         float64 `json:"stall_pct"`
}

// DataStallsJSON mirrors core.DataStalls with durations in seconds.
type DataStallsJSON struct {
	SyntheticSeconds  float64 `json:"synthetic_seconds"`
	ColdCacheSeconds  float64 `json:"cold_cache_seconds"`
	WarmCacheSeconds  float64 `json:"warm_cache_seconds"`
	PrepStallSeconds  float64 `json:"prep_stall_seconds"`
	FetchStallSeconds float64 `json:"fetch_stall_seconds"`
	PrepPct           float64 `json:"prep_pct"`
	FetchPct          float64 `json:"fetch_pct"`
}

// NWStallJSON mirrors core.NWStall with durations in seconds.
type NWStallJSON struct {
	Nodes                 int     `json:"nodes"`
	SingleInstanceSeconds float64 `json:"single_instance_seconds"`
	MultiInstanceSeconds  float64 `json:"multi_instance_seconds"`
	StallSeconds          float64 `json:"stall_seconds"`
	StallPct              float64 `json:"stall_pct"`
}

// EpochJSON mirrors core.EpochEstimate with durations in seconds.
type EpochJSON struct {
	Instance            string  `json:"instance"`
	Nodes               int     `json:"nodes"`
	WorldSize           int     `json:"world_size"`
	PerIterationSeconds float64 `json:"per_iteration_seconds"`
	WarmIterationSecs   float64 `json:"warm_iteration_seconds"`
	ColdIterationSecs   float64 `json:"cold_iteration_seconds"`
	IterationsPerEpoch  int     `json:"iterations_per_epoch"`
	TimeSeconds         float64 `json:"time_seconds"`
	CostUSD             float64 `json:"cost_usd"`
}

// ProfileResponse is POST /v1/profile's body: the four stalls, the
// epoch estimate, and the same rendered text the cmd/stash CLI prints
// (the golden tests pin them equal).
type ProfileResponse struct {
	Model    string `json:"model"`
	Instance string `json:"instance"`
	Batch    int    `json:"batch"`

	Interconnect ICStallJSON    `json:"interconnect"`
	Data         DataStallsJSON `json:"data"`

	// Network is omitted for single-GPU and odd-GPU instances, where
	// step 5's two-way split does not exist.
	Network *NWStallJSON `json:"network,omitempty"`

	Epoch EpochJSON `json:"epoch"`

	GPUMemoryUtilizationPct float64 `json:"gpu_memory_utilization_pct"`

	// Rendered is core.Report's plain-text rendering, byte-identical to
	// the cmd/stash CLI output for the same workload.
	Rendered string `json:"rendered"`
}

// RecommendRequest is POST /v1/recommend's body: a workload plus the
// constraints of core.Constraints, durations expressed in seconds.
type RecommendRequest struct {
	// Model and Batch define the workload (Batch 0 defaults to 32).
	Model string `json:"model"`
	Batch int    `json:"batch,omitempty"`

	// MaxEpochSeconds is the per-epoch deadline; 0 means none.
	MaxEpochSeconds float64 `json:"max_epoch_seconds,omitempty"`

	// MaxCostPerEpoch is the per-epoch budget in USD; 0 means none.
	MaxCostPerEpoch float64 `json:"max_cost_per_epoch,omitempty"`

	// Families restricts instance families; empty allows P2 and P3.
	Families []string `json:"families,omitempty"`

	// MaxNodes caps network-connected instances; 0 means 2.
	MaxNodes int `json:"max_nodes,omitempty"`
}

// CandidateJSON is one feasible configuration in a recommendation.
type CandidateJSON struct {
	Instance   string    `json:"instance"`
	Nodes      int       `json:"nodes"`
	Epoch      EpochJSON `json:"epoch"`
	ICStallPct float64   `json:"ic_stall_pct"`
	Notes      []string  `json:"notes,omitempty"`
}

// RecommendResponse is POST /v1/recommend's body. Candidates are
// cheapest-first; Cheapest and Fastest index into them.
type RecommendResponse struct {
	Model      string          `json:"model"`
	Batch      int             `json:"batch"`
	Candidates []CandidateJSON `json:"candidates"`
	Cheapest   int             `json:"cheapest"`
	Fastest    int             `json:"fastest"`

	// Rejected maps configuration labels to why they were excluded
	// (OOM, over deadline, over budget). JSON object keys render
	// sorted, so the response stays byte-stable.
	Rejected map[string]string `json:"rejected,omitempty"`

	ModelAdvice string `json:"model_advice"`
}

// ExperimentInfo is one registry entry in GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ExperimentListResponse is GET /v1/experiments's body, in paper order.
type ExperimentListResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// ExperimentResponse is GET /v1/experiments/{id}'s body: the artifact's
// tables as structured data (report.Table's JSON encoding).
type ExperimentResponse struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Tables []*report.Table `json:"tables"`
}

// secs converts a duration to float seconds for the wire format.
func secs(d time.Duration) float64 { return d.Seconds() }

// toICStallJSON converts the core measurement to wire format.
func toICStallJSON(s core.ICStall) ICStallJSON {
	return ICStallJSON{
		SingleGPUSeconds: secs(s.SingleGPU),
		AllGPUSeconds:    secs(s.AllGPU),
		StallSeconds:     secs(s.Stall),
		StallPct:         s.Pct,
	}
}

// toDataStallsJSON converts the core measurement to wire format.
func toDataStallsJSON(s core.DataStalls) DataStallsJSON {
	return DataStallsJSON{
		SyntheticSeconds:  secs(s.Synthetic),
		ColdCacheSeconds:  secs(s.ColdCache),
		WarmCacheSeconds:  secs(s.WarmCache),
		PrepStallSeconds:  secs(s.PrepStall),
		FetchStallSeconds: secs(s.FetchStall),
		PrepPct:           s.PrepPct,
		FetchPct:          s.FetchPct,
	}
}

// toNWStallJSON converts the core measurement to wire format.
func toNWStallJSON(s core.NWStall) NWStallJSON {
	return NWStallJSON{
		Nodes:                 s.Nodes,
		SingleInstanceSeconds: secs(s.SingleInstance),
		MultiInstanceSeconds:  secs(s.MultiInstance),
		StallSeconds:          secs(s.Stall),
		StallPct:              s.Pct,
	}
}

// toEpochJSON converts the core estimate to wire format.
func toEpochJSON(e core.EpochEstimate) EpochJSON {
	return EpochJSON{
		Instance:            e.Instance,
		Nodes:               e.Nodes,
		WorldSize:           e.WorldSize,
		PerIterationSeconds: secs(e.PerIteration),
		WarmIterationSecs:   secs(e.WarmIteration),
		ColdIterationSecs:   secs(e.ColdIteration),
		IterationsPerEpoch:  e.Iterations,
		TimeSeconds:         secs(e.Time),
		CostUSD:             e.Cost,
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the API's JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: message}})
}
