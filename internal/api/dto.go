package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"stash/internal/core"
	"stash/internal/report"
)

// Error codes of the API contract (docs/API.md). They are stable
// strings clients can switch on; HTTP status codes carry the coarse
// class, the code the precise reason.
const (
	errInvalidRequest   = "invalid_request"
	errNotFound         = "not_found"
	errMethodNotAllowed = "method_not_allowed"
	errOOM              = "oom"
	errInfeasible       = "infeasible"
	errTimeout          = "timeout"
	errOverloaded       = "overloaded"
	errAuditFailed      = "audit_failed"
	errInternal         = "internal"

	// v2 job API codes.
	errQuotaExceeded = "quota_exceeded" // 429: tenant at its active-job quota
	errStoreFull     = "store_full"     // 429: job store full of non-evictable (active) jobs
	errDraining      = "draining"       // 503: server drain in progress, not accepting jobs
	errJobNotReady   = "job_not_ready"  // 409: result requested before the job is terminal
	errCancelled     = "cancelled"      // job error body for cancelled jobs
)

// ErrorBody is the error envelope every non-2xx response carries.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse wraps ErrorBody under the "error" key.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// HealthResponse is GET /healthz's body. Audit is only present on the
// deep probe (?deep=1).
type HealthResponse struct {
	Status string `json:"status"`

	// Audit summarizes the deep probe's invariant run: how many checks
	// the bounded audit slice evaluated and which (if any) failed. A
	// passing deep probe always reports "violations": [].
	Audit *AuditSummary `json:"audit,omitempty"`
}

// AuditSummary is the deep health probe's audit outcome.
type AuditSummary struct {
	Checks     int      `json:"checks"`
	Violations []string `json:"violations"`
}

// ProfileRequest is POST /v1/profile's body: one (model, instance,
// batch) workload to characterize.
type ProfileRequest struct {
	// Model is any name dnn.Resolve accepts (zoo names plus resnet<N>,
	// vgg<N>, densenet<N>, resnext50, wide_resnet50, bert-base,
	// gpt2-small). Required.
	Model string `json:"model"`

	// Instance is a Table I catalog name (cloud.ByName). Required.
	Instance string `json:"instance"`

	// Batch is the per-GPU batch size; 0 defaults to 32 (the CLI
	// default).
	Batch int `json:"batch,omitempty"`

	// Nodes optionally re-measures the network stall at a different
	// split than the default 2 (must divide the instance's GPU count).
	Nodes int `json:"nodes,omitempty"`
}

// ICStallJSON mirrors core.ICStall with durations in seconds.
type ICStallJSON struct {
	SingleGPUSeconds float64 `json:"single_gpu_seconds"`
	AllGPUSeconds    float64 `json:"all_gpu_seconds"`
	StallSeconds     float64 `json:"stall_seconds"`
	StallPct         float64 `json:"stall_pct"`
}

// DataStallsJSON mirrors core.DataStalls with durations in seconds.
type DataStallsJSON struct {
	SyntheticSeconds  float64 `json:"synthetic_seconds"`
	ColdCacheSeconds  float64 `json:"cold_cache_seconds"`
	WarmCacheSeconds  float64 `json:"warm_cache_seconds"`
	PrepStallSeconds  float64 `json:"prep_stall_seconds"`
	FetchStallSeconds float64 `json:"fetch_stall_seconds"`
	PrepPct           float64 `json:"prep_pct"`
	FetchPct          float64 `json:"fetch_pct"`
}

// NWStallJSON mirrors core.NWStall with durations in seconds.
type NWStallJSON struct {
	Nodes                 int     `json:"nodes"`
	SingleInstanceSeconds float64 `json:"single_instance_seconds"`
	MultiInstanceSeconds  float64 `json:"multi_instance_seconds"`
	StallSeconds          float64 `json:"stall_seconds"`
	StallPct              float64 `json:"stall_pct"`
}

// EpochJSON mirrors core.EpochEstimate with durations in seconds.
type EpochJSON struct {
	Instance            string  `json:"instance"`
	Nodes               int     `json:"nodes"`
	WorldSize           int     `json:"world_size"`
	PerIterationSeconds float64 `json:"per_iteration_seconds"`
	WarmIterationSecs   float64 `json:"warm_iteration_seconds"`
	ColdIterationSecs   float64 `json:"cold_iteration_seconds"`
	IterationsPerEpoch  int     `json:"iterations_per_epoch"`
	TimeSeconds         float64 `json:"time_seconds"`
	CostUSD             float64 `json:"cost_usd"`
}

// ProfileResponse is POST /v1/profile's body: the four stalls, the
// epoch estimate, and the same rendered text the cmd/stash CLI prints
// (the golden tests pin them equal).
type ProfileResponse struct {
	Model    string `json:"model"`
	Instance string `json:"instance"`
	Batch    int    `json:"batch"`

	Interconnect ICStallJSON    `json:"interconnect"`
	Data         DataStallsJSON `json:"data"`

	// Network is omitted for single-GPU and odd-GPU instances, where
	// step 5's two-way split does not exist.
	Network *NWStallJSON `json:"network,omitempty"`

	Epoch EpochJSON `json:"epoch"`

	GPUMemoryUtilizationPct float64 `json:"gpu_memory_utilization_pct"`

	// Rendered is core.Report's plain-text rendering, byte-identical to
	// the cmd/stash CLI output for the same workload.
	Rendered string `json:"rendered"`
}

// BlameRequest is POST /v1/blame's body: one workload to trace and
// attribute — for every all-reduce barrier, the last-arriving worker is
// charged the comm-wait it caused the others (core.BlameContext).
type BlameRequest struct {
	// Model is any name dnn.Resolve accepts. Required.
	Model string `json:"model"`

	// Instance is a Table I catalog name (cloud.ByName). Required.
	Instance string `json:"instance"`

	// Batch is the per-GPU batch size; 0 defaults to 32.
	Batch int `json:"batch,omitempty"`

	// Nodes spreads the GPUs across network-connected machines (must
	// divide the instance's GPU count); 0 runs a single instance.
	Nodes int `json:"nodes,omitempty"`

	// StragglerRank, when set, injects a synthetic straggler at that
	// rank, slowed by StragglerScale (default 1.5 when 0). Omitting the
	// rank attributes the uninstrumented run; setting a scale > 1
	// without a rank is an error.
	StragglerRank  *int    `json:"straggler_rank,omitempty"`
	StragglerScale float64 `json:"straggler_scale,omitempty"`
}

// WorkerBlameJSON is one rank's row of the blame table, worst offender
// first, mirroring core.WorkerBlameRow with durations in seconds.
type WorkerBlameJSON struct {
	Rank             int     `json:"rank"`
	BlamedSeconds    float64 `json:"blamed_seconds"`
	BlamedPct        float64 `json:"blamed_pct"`
	SelfWaitSeconds  float64 `json:"self_wait_seconds"`
	FrontierBarriers int     `json:"frontier_barriers"`
}

// BlameResponse is POST /v1/blame's body: the attribution totals (which
// conserve exactly: attributed + unattributed == total) and the ranked
// per-worker table, plus the same rendered text cmd/stash -blame
// prints.
type BlameResponse struct {
	Model    string `json:"model"`
	Instance string `json:"instance"`
	Batch    int    `json:"batch"`
	Nodes    int    `json:"nodes"`

	WorldSize  int `json:"world_size"`
	Iterations int `json:"iterations"`

	// StragglerRank is -1 when no straggler was injected.
	StragglerRank  int     `json:"straggler_rank"`
	StragglerScale float64 `json:"straggler_scale"`

	Barriers     int `json:"barriers"`
	TiedBarriers int `json:"tied_barriers"`

	TotalCommWaitSeconds float64 `json:"total_comm_wait_seconds"`
	AttributedSeconds    float64 `json:"attributed_seconds"`
	UnattributedSeconds  float64 `json:"unattributed_seconds"`

	Workers []WorkerBlameJSON `json:"workers"`

	// Rendered is core.BlameReport's plain-text rendering,
	// byte-identical to cmd/stash -blame output for the same workload.
	Rendered string `json:"rendered"`
}

// RecommendRequest is POST /v1/recommend's body: a workload plus the
// constraints of core.Constraints, durations expressed in seconds.
type RecommendRequest struct {
	// Model and Batch define the workload (Batch 0 defaults to 32).
	Model string `json:"model"`
	Batch int    `json:"batch,omitempty"`

	// MaxEpochSeconds is the per-epoch deadline; 0 means none.
	MaxEpochSeconds float64 `json:"max_epoch_seconds,omitempty"`

	// MaxCostPerEpoch is the per-epoch budget in USD; 0 means none.
	MaxCostPerEpoch float64 `json:"max_cost_per_epoch,omitempty"`

	// Families restricts instance families; empty allows P2 and P3.
	Families []string `json:"families,omitempty"`

	// MaxNodes caps network-connected instances; 0 means 2.
	MaxNodes int `json:"max_nodes,omitempty"`
}

// CandidateJSON is one feasible configuration in a recommendation.
type CandidateJSON struct {
	Instance   string    `json:"instance"`
	Nodes      int       `json:"nodes"`
	Epoch      EpochJSON `json:"epoch"`
	ICStallPct float64   `json:"ic_stall_pct"`
	Notes      []string  `json:"notes,omitempty"`
}

// RecommendResponse is POST /v1/recommend's body. Candidates are
// cheapest-first; Cheapest and Fastest index into them.
type RecommendResponse struct {
	Model      string          `json:"model"`
	Batch      int             `json:"batch"`
	Candidates []CandidateJSON `json:"candidates"`
	Cheapest   int             `json:"cheapest"`
	Fastest    int             `json:"fastest"`

	// Rejected maps configuration labels to why they were excluded
	// (OOM, over deadline, over budget). JSON object keys render
	// sorted, so the response stays byte-stable.
	Rejected map[string]string `json:"rejected,omitempty"`

	ModelAdvice string `json:"model_advice"`
}

// ExperimentInfo is one registry entry in GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ExperimentListResponse is GET /v1/experiments's body, in paper order.
type ExperimentListResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// ExperimentResponse is GET /v1/experiments/{id}'s body: the artifact's
// tables as structured data (report.Table's JSON encoding).
type ExperimentResponse struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Tables []*report.Table `json:"tables"`
}

// JobCreateRequest is POST /v2/jobs's body: one asynchronous unit of
// work. Exactly the spec matching "type" must be present.
type JobCreateRequest struct {
	// Type selects the job class: "profile", "recommend", "blame" or
	// "experiments". Required.
	Type string `json:"type"`

	// Profile is the workload for a profile job — the same body as
	// POST /v1/profile.
	Profile *ProfileRequest `json:"profile,omitempty"`

	// Recommend is the workload for a recommend job — the same body as
	// POST /v1/recommend.
	Recommend *RecommendRequest `json:"recommend,omitempty"`

	// Blame is the workload for a blame job — the same body as
	// POST /v1/blame.
	Blame *BlameRequest `json:"blame,omitempty"`

	// Experiments selects artifacts for an experiments job.
	Experiments *ExperimentsJobSpec `json:"experiments,omitempty"`

	// Priority orders jobs within one tenant and class: 0 (lowest) to
	// 9 (highest), default 5. Higher-priority jobs dispatch first;
	// equal priorities dispatch in submission order.
	Priority *int `json:"priority,omitempty"`
}

// ExperimentsJobSpec selects which paper artifacts an experiments job
// runs. An empty/omitted ids list means the full registry sweep (all
// 26 artifacts — the paper's complete scenario grid).
type ExperimentsJobSpec struct {
	IDs []string `json:"ids,omitempty"`
}

// JobProgress is the cells-completed accounting of one job. Done is
// monotonically non-decreasing; Total grows as sweeps announce their
// cell counts (an experiments job learns each panel's size as the
// panel starts), so Done == Total only on a completed job.
type JobProgress struct {
	CellsDone  int64 `json:"cells_done"`
	CellsTotal int64 `json:"cells_total"`
}

// JobStatus is the v2 job resource: POST /v2/jobs and
// GET /v2/jobs/{id} bodies, and the SSE "status" event payload. It
// deliberately carries no wall-clock timestamps, keeping every body
// byte-stable for the docs verifier.
type JobStatus struct {
	ID       string      `json:"id"`
	Tenant   string      `json:"tenant"`
	Type     string      `json:"type"`
	State    string      `json:"state"`
	Priority int         `json:"priority"`
	Progress JobProgress `json:"progress"`

	// Partials lists the labels of partial results that have settled so
	// far (experiment ids, in completion order). The full payloads
	// replay over GET /v2/jobs/{id}/events.
	Partials []string `json:"partials,omitempty"`

	// Error is set on failed and cancelled jobs; its code/message are
	// exactly what the synchronous v1 call would have returned (or
	// "cancelled" for cancellations).
	Error *ErrorBody `json:"error,omitempty"`
}

// JobListResponse is GET /v2/jobs's body: the requesting tenant's
// jobs, oldest first.
type JobListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// JobExperimentsResult is a done experiments job's terminal result:
// every requested artifact's response, in request order. Each entry is
// byte-identical to the synchronous GET /v1/experiments/{id} body for
// the same server configuration.
type JobExperimentsResult struct {
	Experiments []*ExperimentResponse `json:"experiments"`
}

// secs converts a duration to float seconds for the wire format.
func secs(d time.Duration) float64 { return d.Seconds() }

// toICStallJSON converts the core measurement to wire format.
func toICStallJSON(s core.ICStall) ICStallJSON {
	return ICStallJSON{
		SingleGPUSeconds: secs(s.SingleGPU),
		AllGPUSeconds:    secs(s.AllGPU),
		StallSeconds:     secs(s.Stall),
		StallPct:         s.Pct,
	}
}

// toDataStallsJSON converts the core measurement to wire format.
func toDataStallsJSON(s core.DataStalls) DataStallsJSON {
	return DataStallsJSON{
		SyntheticSeconds:  secs(s.Synthetic),
		ColdCacheSeconds:  secs(s.ColdCache),
		WarmCacheSeconds:  secs(s.WarmCache),
		PrepStallSeconds:  secs(s.PrepStall),
		FetchStallSeconds: secs(s.FetchStall),
		PrepPct:           s.PrepPct,
		FetchPct:          s.FetchPct,
	}
}

// toNWStallJSON converts the core measurement to wire format.
func toNWStallJSON(s core.NWStall) NWStallJSON {
	return NWStallJSON{
		Nodes:                 s.Nodes,
		SingleInstanceSeconds: secs(s.SingleInstance),
		MultiInstanceSeconds:  secs(s.MultiInstance),
		StallSeconds:          secs(s.Stall),
		StallPct:              s.Pct,
	}
}

// toEpochJSON converts the core estimate to wire format.
func toEpochJSON(e core.EpochEstimate) EpochJSON {
	return EpochJSON{
		Instance:            e.Instance,
		Nodes:               e.Nodes,
		WorldSize:           e.WorldSize,
		PerIterationSeconds: secs(e.PerIteration),
		WarmIterationSecs:   secs(e.WarmIteration),
		ColdIterationSecs:   secs(e.ColdIteration),
		IterationsPerEpoch:  e.Iterations,
		TimeSeconds:         secs(e.Time),
		CostUSD:             e.Cost,
	}
}

// encodeJSON renders v exactly as writeJSON would put it on the wire
// (compact, HTML escaping off, trailing newline). The v2 job store
// persists these bytes as a job's replayable result, which is what
// makes a job's output byte-identical to the synchronous v1 response
// for the same request.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return buf.Bytes()
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(encodeJSON(v))
}

// writeError writes the API's JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: message}})
}

// apiError is a handler-layer error carrying the HTTP status and the
// stable error code of the envelope. The shared compute functions
// return it so the v1 handlers and the v2 job executor map failures
// identically.
type apiError struct {
	status  int
	code    string
	message string
}

func newAPIError(status int, code, message string) *apiError {
	return &apiError{status: status, code: code, message: message}
}

// envelope renders the error as the wire-format ErrorResponse.
func (e *apiError) envelope() ErrorResponse {
	return ErrorResponse{Error: ErrorBody{Code: e.code, Message: e.message}}
}

// errToAPI maps an error from the profiling stack to the API error
// contract: expired deadlines are 504, OOM and infeasible constraints
// are 422 (the request was well-formed but cannot be satisfied),
// everything else is a 500. Both the v1 handlers and the v2 job
// executor map through here, so a job that fails persists exactly the
// error body its synchronous twin would have returned.
func errToAPI(err error) *apiError {
	var oom *core.OOMError
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return newAPIError(http.StatusGatewayTimeout, errTimeout,
			"request deadline expired during simulation: "+err.Error())
	case errors.As(err, &oom):
		return newAPIError(http.StatusUnprocessableEntity, errOOM, err.Error())
	case errors.Is(err, core.ErrNoFeasibleConfig):
		return newAPIError(http.StatusUnprocessableEntity, errInfeasible, err.Error())
	default:
		return newAPIError(http.StatusInternalServerError, errInternal, err.Error())
	}
}
