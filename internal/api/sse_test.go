package api

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id   int
	typ  string
	data string
}

// parseSSE splits a full SSE stream into frames.
func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, frame := range strings.Split(strings.TrimSuffix(raw, "\n\n"), "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(frame, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
				if err != nil {
					t.Fatalf("bad id line %q: %v", line, err)
				}
				ev.id = id
			case strings.HasPrefix(line, "event: "):
				ev.typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q in frame %q", line, frame)
			}
		}
		out = append(out, ev)
	}
	return out
}

// readStream opens the SSE endpoint and reads it to EOF (the server
// closes the stream after the terminal event).
func readStream(t *testing.T, base, tenant, id string) (string, []sseEvent) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("events = %d, body %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return string(raw), parseSSE(t, string(raw))
}

// TestSSETerminalReplay pins the replay contract: streaming a job that
// is already terminal yields a fixed transcript — status, one progress
// frame, the result — and re-reading it is byte-identical.
func TestSSETerminalReplay(t *testing.T) {
	_, ts := newTestServer(t)
	const spec = `{"model":"resnet18","instance":"p3.16xlarge","batch":32}`
	_, v1Body := postJSON(t, ts.URL+"/v1/profile", spec)
	id := submitJob(t, ts.URL, "", `{"type":"profile","profile":`+spec+`}`)
	waitTerminal(t, ts.URL, "", id)

	raw, events := readStream(t, ts.URL, "", id)
	if len(events) != 3 {
		t.Fatalf("replay = %d events, want 3:\n%s", len(events), raw)
	}
	for i, want := range []string{sseStatus, sseProgress, sseResult} {
		if events[i].typ != want || events[i].id != i+1 {
			t.Errorf("event %d = id %d type %s, want id %d type %s",
				i, events[i].id, events[i].typ, i+1, want)
		}
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(events[0].data), &js); err != nil || js.State != jobStateDone {
		t.Errorf("status event = %s (err %v)", events[0].data, err)
	}
	if events[1].data != `{"cells_done":4,"cells_total":4}` {
		t.Errorf("progress event = %s", events[1].data)
	}
	if events[2].data != strings.TrimSuffix(string(v1Body), "\n") {
		t.Errorf("result event differs from v1 body:\nsse: %s\nv1:  %s", events[2].data, v1Body)
	}

	again, _ := readStream(t, ts.URL, "", id)
	if again != raw {
		t.Errorf("replay not byte-stable:\nfirst:  %q\nsecond: %q", raw, again)
	}
}

// TestSSEExperimentsPartials: a sweep's stream carries one partial per
// artifact, byte-identical to the v1 endpoint, before the final result.
func TestSSEExperimentsPartials(t *testing.T) {
	_, ts := newTestServer(t)
	ids := []string{"table2", "fig5"}
	v1 := make(map[string]string, len(ids))
	for _, id := range ids {
		_, b := getBody(t, ts.URL+"/v1/experiments/"+id)
		v1[id] = strings.TrimSuffix(string(b), "\n")
	}
	jobID := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{"ids":["table2","fig5"]}}`)
	waitTerminal(t, ts.URL, "", jobID)

	_, events := readStream(t, ts.URL, "", jobID)
	var partials []jobPartial
	for _, ev := range events {
		if ev.typ != ssePartial {
			continue
		}
		var p jobPartial
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("partial %s: %v", ev.data, err)
		}
		partials = append(partials, p)
	}
	if len(partials) != 2 {
		t.Fatalf("stream carried %d partials, want 2", len(partials))
	}
	for i, id := range ids {
		if partials[i].Label != id || string(partials[i].Data) != v1[id] {
			t.Errorf("partial %d = %s, want label %s with the v1 body", i, partials[i].Label, id)
		}
	}
	if last := events[len(events)-1]; last.typ != sseResult {
		t.Errorf("stream ends with %s, want result", last.typ)
	}
}

// TestSSELiveProgressMonotonic follows a job live: ids are sequential,
// progress counters never decrease, and the stream ends at the terminal
// event.
func TestSSELiveProgressMonotonic(t *testing.T) {
	_, ts := newTestServer(t)
	id := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{"ids":["table2","fig5","fig6"]}}`)
	_, events := readStream(t, ts.URL, "", id) // opened while running: follows live
	if events[0].typ != sseStatus {
		t.Fatalf("stream opens with %s, want status", events[0].typ)
	}
	var lastDone, lastTotal int64 = -1, -1
	sawProgress := false
	for i, ev := range events {
		if ev.id != i+1 {
			t.Errorf("event %d has id %d, want %d", i, ev.id, i+1)
		}
		if ev.typ != sseProgress {
			continue
		}
		sawProgress = true
		var p JobProgress
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("progress %s: %v", ev.data, err)
		}
		if p.CellsDone < lastDone || p.CellsTotal < lastTotal {
			t.Errorf("progress regressed: %d/%d after %d/%d", p.CellsDone, p.CellsTotal, lastDone, lastTotal)
		}
		if p.CellsDone > p.CellsTotal {
			t.Errorf("done %d exceeds total %d", p.CellsDone, p.CellsTotal)
		}
		lastDone, lastTotal = p.CellsDone, p.CellsTotal
	}
	if !sawProgress {
		t.Error("no progress events on a live stream")
	}
	if last := events[len(events)-1]; last.typ != sseResult {
		t.Errorf("stream ends with %s, want result", last.typ)
	}
}

// TestSSEClientDisconnect: dropping the stream mid-job detaches the
// subscriber and leaves the job to finish normally.
func TestSSEClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t)
	id := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{"ids":["table2","fig5","fig6","fig7"]}}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	// Read the first frame, then hang up.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The handler notices and unsubscribes; the job is unaffected.
	j := s.jobsStore.get(defaultTenant, id)
	if j == nil {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.jobsStore.mu.Lock()
		n := len(j.subs)
		s.jobsStore.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after disconnect", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if js := waitTerminal(t, ts.URL, "", id); js.State != jobStateDone {
		t.Errorf("job after disconnect = %s, error %+v", js.State, js.Error)
	}
}

// TestSSEDuringDrain: a stream on a queued job ends with the cancelled
// error event when drain sweeps the queue.
func TestSSEDuringDrain(t *testing.T) {
	s, ts := newTestServer(t, WithJobWorkers(1))
	running := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{}}`)
	queued := submitJob(t, ts.URL, "", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)

	type streamResult struct {
		events []sseEvent
	}
	done := make(chan streamResult, 1)
	go func() {
		_, events := readStream(t, ts.URL, "", queued)
		done <- streamResult{events}
	}()
	// Give the stream a moment to attach, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := s.jobsStore.get(defaultTenant, queued)
		s.jobsStore.mu.Lock()
		n := len(j.subs)
		s.jobsStore.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx)

	r := <-done
	last := r.events[len(r.events)-1]
	if last.typ != sseError {
		t.Fatalf("drained stream ends with %s, want error", last.typ)
	}
	var e ErrorResponse
	if err := json.Unmarshal([]byte(last.data), &e); err != nil || e.Error.Code != errCancelled {
		t.Errorf("terminal error event = %s (err %v)", last.data, err)
	}
	_ = running
}
