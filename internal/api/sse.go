package api

import (
	"bytes"
	"fmt"
	"net/http"
)

// SSE event types of GET /v2/jobs/{id}/events. A stream always opens
// with one "status" snapshot; "partial" and "progress" follow as the
// job advances; exactly one terminal event ("result" on done, "error"
// on failed or cancelled) ends the stream, after which the server
// closes the connection.
const (
	sseStatus   = "status"
	sseProgress = "progress"
	ssePartial  = "partial"
	sseResult   = "result"
	sseError    = "error"
)

// sseWriter frames Server-Sent Events onto one response. Event ids are
// a per-connection sequence (1, 2, ...), not a global log position: a
// reconnect replays the job from its current state rather than
// resuming an offset.
type sseWriter struct {
	w    http.ResponseWriter
	f    http.Flusher
	next int
}

// event writes one frame. data must be a single line (the API only
// streams compact JSON); a trailing newline is stripped so stored wire
// bytes can be passed through unchanged.
func (s *sseWriter) event(typ string, data []byte) error {
	s.next++
	_, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n",
		s.next, typ, bytes.TrimRight(data, "\n"))
	if err == nil {
		s.f.Flush()
	}
	return err
}

// handleJobEvents serves GET /v2/jobs/{id}/events: an SSE stream of
// the job's lifecycle. Progress events are coalesced — a slow consumer
// sees fewer, never out-of-order, events; cells_done/cells_total are
// monotonically non-decreasing across the stream. For a job that is
// already terminal the stream is a deterministic replay (status, every
// partial in order, one progress frame, the terminal event), which is
// what lets docs/API.md pin an SSE transcript byte-for-byte.
//
// The stream runs outside the per-request timeout: it lives until the
// job reaches a terminal state or the client disconnects, whichever
// comes first. Disconnects are observed via the request context; the
// subscription is dropped and the job itself is unaffected.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	id := r.PathValue("id")
	j := s.jobsStore.get(tenant, id)
	if j == nil {
		writeError(w, http.StatusNotFound, errNotFound, "no job "+id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errInternal, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	sub := s.jobsStore.subscribe(j)
	defer s.jobsStore.unsubscribe(j, sub)

	out := &sseWriter{w: w, f: flusher}
	if err := out.event(sseStatus, encodeJSON(s.jobsStore.status(j))); err != nil {
		return
	}
	sent := 0
	var lastDone, lastTotal int64 = -1, -1
	for {
		v := s.jobsStore.view(j, sent)
		for _, p := range v.partials {
			if err := out.event(ssePartial, encodeJSON(p)); err != nil {
				return
			}
			sent++
		}
		if v.done != lastDone || v.total != lastTotal {
			lastDone, lastTotal = v.done, v.total
			if err := out.event(sseProgress, encodeJSON(JobProgress{CellsDone: v.done, CellsTotal: v.total})); err != nil {
				return
			}
		}
		if terminalState(v.state) {
			if v.state == jobStateDone {
				_ = out.event(sseResult, v.result)
			} else {
				_ = out.event(sseError, encodeJSON(ErrorResponse{Error: *v.errBody}))
			}
			return
		}
		select {
		case <-sub:
		case <-j.doneCh:
		case <-r.Context().Done():
			return
		}
	}
}
