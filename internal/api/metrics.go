package api

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/cluster"
	"stash/internal/core"
	"stash/internal/experiments"
)

// reqKey labels one request counter: endpoint name and response code.
type reqKey struct {
	endpoint string
	code     int
}

// metrics aggregates the server's counters for /metrics: request
// counts and latency per endpoint, the in-flight gauge, and the
// scenario-scheduler counters of both profiler pools (the server's own
// profile/recommend profiler and the shared experiments profiler).
type metrics struct {
	profiler *core.Profiler
	expCfg   experiments.Config
	jobs     *jobStore
	node     *cluster.Node // nil standalone; cluster series render zero

	inflight atomic.Int64

	// auditChecks/auditViolations accumulate the deep health probe's
	// invariant-audit outcomes (GET /healthz?deep=1).
	auditChecks     atomic.Int64
	auditViolations atomic.Int64

	// Blame attribution counters (POST /v1/blame and "blame" jobs):
	// runs completed, barriers attributed across them, and runs where
	// any comm-wait stayed unattributed (should stay 0 — the audit pins
	// attribution lossless when per-rank barrier spans are recorded).
	blameRuns         atomic.Int64
	blameBarriers     atomic.Int64
	blameUnattributed atomic.Int64

	mu       sync.Mutex
	requests map[reqKey]int64
	latSum   map[string]float64
	latCount map[string]int64
}

func newMetrics(p *core.Profiler, expCfg experiments.Config, jobs *jobStore, node *cluster.Node) *metrics {
	return &metrics{
		profiler: p,
		expCfg:   expCfg,
		jobs:     jobs,
		node:     node,
		requests: make(map[reqKey]int64),
		latSum:   make(map[string]float64),
		latCount: make(map[string]int64),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	m.latSum[endpoint] += elapsed.Seconds()
	m.latCount[endpoint]++
}

// render emits the Prometheus text exposition format (version 0.0.4).
// Series are sorted by label so scrapes are stable.
func (m *metrics) render() string {
	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	endpoints := make([]string, 0, len(m.latCount))
	for e := range m.latCount {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)

	var b strings.Builder
	b.WriteString("# HELP stashd_requests_total Requests served, by endpoint and HTTP status.\n")
	b.WriteString("# TYPE stashd_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(&b, "stashd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	b.WriteString("# HELP stashd_request_duration_seconds Wall-clock request latency.\n")
	b.WriteString("# TYPE stashd_request_duration_seconds summary\n")
	for _, e := range endpoints {
		fmt.Fprintf(&b, "stashd_request_duration_seconds_sum{endpoint=%q} %g\n", e, m.latSum[e])
		fmt.Fprintf(&b, "stashd_request_duration_seconds_count{endpoint=%q} %d\n", e, m.latCount[e])
	}
	m.mu.Unlock()

	b.WriteString("# HELP stashd_inflight_requests Requests currently being served.\n")
	b.WriteString("# TYPE stashd_inflight_requests gauge\n")
	fmt.Fprintf(&b, "stashd_inflight_requests %d\n", m.inflight.Load())

	// Scenario-scheduler counters (core.Profiler.Stats) for both pools:
	// "profile" backs /v1/profile + /v1/recommend, "experiments" is the
	// suite's shared single-flight profiler.
	pools := []struct {
		name  string
		stats core.Stats
	}{
		{"profile", m.profiler.Stats()},
		{"experiments", experiments.SchedulerStats(m.expCfg)},
	}
	b.WriteString("# HELP stashd_scenario_requests_total Scenario requests admitted to the scheduler.\n")
	b.WriteString("# TYPE stashd_scenario_requests_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenario_requests_total{pool=%q} %d\n", p.name, p.stats.Requests)
	}
	b.WriteString("# HELP stashd_scenarios_simulated_total Scenarios executed on a simulation engine.\n")
	b.WriteString("# TYPE stashd_scenarios_simulated_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenarios_simulated_total{pool=%q} %d\n", p.name, p.stats.Simulated)
	}
	b.WriteString("# HELP stashd_scenario_cache_hits_total Scenario requests served from the memoized result cache.\n")
	b.WriteString("# TYPE stashd_scenario_cache_hits_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenario_cache_hits_total{pool=%q} %d\n", p.name, p.stats.CacheHits)
	}
	b.WriteString("# HELP stashd_scenario_singleflight_waits_total Scenario requests that blocked on another request's in-flight simulation.\n")
	b.WriteString("# TYPE stashd_scenario_singleflight_waits_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenario_singleflight_waits_total{pool=%q} %d\n", p.name, p.stats.Waits)
	}
	b.WriteString("# HELP stashd_scenario_cancelled_total Scenario requests whose context expired before a result.\n")
	b.WriteString("# TYPE stashd_scenario_cancelled_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenario_cancelled_total{pool=%q} %d\n", p.name, p.stats.Cancelled)
	}
	b.WriteString("# HELP stashd_scenario_remote_hits_total Scenario cache misses resolved by a cluster peer's cache or in-flight simulation.\n")
	b.WriteString("# TYPE stashd_scenario_remote_hits_total counter\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "stashd_scenario_remote_hits_total{pool=%q} %d\n", p.name, p.stats.RemoteHits)
	}
	b.WriteString("# HELP stashd_audit_checks_total Invariant checks evaluated by deep health probes.\n")
	b.WriteString("# TYPE stashd_audit_checks_total counter\n")
	fmt.Fprintf(&b, "stashd_audit_checks_total %d\n", m.auditChecks.Load())
	b.WriteString("# HELP stashd_audit_violations_total Invariant violations reported by deep health probes.\n")
	b.WriteString("# TYPE stashd_audit_violations_total counter\n")
	fmt.Fprintf(&b, "stashd_audit_violations_total %d\n", m.auditViolations.Load())
	b.WriteString("# HELP stashd_blame_runs_total Frontier blame attributions completed (POST /v1/blame and blame jobs).\n")
	b.WriteString("# TYPE stashd_blame_runs_total counter\n")
	fmt.Fprintf(&b, "stashd_blame_runs_total %d\n", m.blameRuns.Load())
	b.WriteString("# HELP stashd_blame_barriers_total All-reduce barriers attributed to a frontier worker, across blame runs.\n")
	b.WriteString("# TYPE stashd_blame_barriers_total counter\n")
	fmt.Fprintf(&b, "stashd_blame_barriers_total %d\n", m.blameBarriers.Load())
	b.WriteString("# HELP stashd_blame_unattributed_runs_total Blame runs where some comm-wait could not be attributed to any barrier frontier.\n")
	b.WriteString("# TYPE stashd_blame_unattributed_runs_total counter\n")
	fmt.Fprintf(&b, "stashd_blame_unattributed_runs_total %d\n", m.blameUnattributed.Load())

	// Per-tenant scenario counters (core.Profiler.TenantStats): the
	// same conservation family as the pool counters above, split by the
	// tenant core.WithTenant attributed. Tenants render sorted.
	tenantPools := []struct {
		name  string
		stats map[string]core.Stats
	}{
		{"profile", m.profiler.TenantStats()},
		{"experiments", experiments.SchedulerTenantStats(m.expCfg)},
	}
	b.WriteString("# HELP stashd_tenant_scenario_requests_total Scenario requests admitted, by tenant.\n")
	b.WriteString("# TYPE stashd_tenant_scenario_requests_total counter\n")
	for _, p := range tenantPools {
		for _, tenant := range sortedKeys(p.stats) {
			fmt.Fprintf(&b, "stashd_tenant_scenario_requests_total{pool=%q,tenant=%q} %d\n",
				p.name, tenant, p.stats[tenant].Requests)
		}
	}
	b.WriteString("# HELP stashd_tenant_scenario_outcomes_total Scenario request outcomes, by tenant (conserves against requests).\n")
	b.WriteString("# TYPE stashd_tenant_scenario_outcomes_total counter\n")
	for _, p := range tenantPools {
		for _, tenant := range sortedKeys(p.stats) {
			s := p.stats[tenant]
			for _, oc := range []struct {
				name string
				n    int64
			}{
				{"cache_hit", s.CacheHits},
				{"cancelled", s.Cancelled},
				{"remote_hit", s.RemoteHits},
				{"simulated", s.Simulated},
				{"wait", s.Waits},
			} {
				fmt.Fprintf(&b, "stashd_tenant_scenario_outcomes_total{pool=%q,tenant=%q,outcome=%q} %d\n",
					p.name, tenant, oc.name, oc.n)
			}
		}
	}

	// v2 job store counters (audit.JobCounters): accepted conserves
	// against the five lifecycle states per tenant.
	jc := m.jobs.counters()
	tenants := sortedKeys(jc)
	b.WriteString("# HELP stashd_jobs_accepted_total Jobs admitted past quota and capacity checks, by tenant.\n")
	b.WriteString("# TYPE stashd_jobs_accepted_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_jobs_accepted_total{tenant=%q} %d\n", t, jc[t].Accepted)
	}
	b.WriteString("# HELP stashd_jobs_rejected_total Job submissions bounced at admission (quota, store full, draining), by tenant.\n")
	b.WriteString("# TYPE stashd_jobs_rejected_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_jobs_rejected_total{tenant=%q} %d\n", t, jc[t].Rejected)
	}
	b.WriteString("# HELP stashd_jobs_terminal_total Jobs reaching a terminal state, by tenant and outcome.\n")
	b.WriteString("# TYPE stashd_jobs_terminal_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_jobs_terminal_total{tenant=%q,outcome=\"cancelled\"} %d\n", t, jc[t].Cancelled)
		fmt.Fprintf(&b, "stashd_jobs_terminal_total{tenant=%q,outcome=\"done\"} %d\n", t, jc[t].Done)
		fmt.Fprintf(&b, "stashd_jobs_terminal_total{tenant=%q,outcome=\"failed\"} %d\n", t, jc[t].Failed)
	}
	b.WriteString("# HELP stashd_jobs_queued Jobs waiting in the fair queue, by tenant.\n")
	b.WriteString("# TYPE stashd_jobs_queued gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_jobs_queued{tenant=%q} %d\n", t, jc[t].Queued)
	}
	b.WriteString("# HELP stashd_jobs_running Jobs executing on the job worker pool, by tenant.\n")
	b.WriteString("# TYPE stashd_jobs_running gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_jobs_running{tenant=%q} %d\n", t, jc[t].Running)
	}
	b.WriteString("# HELP stashd_job_cells_completed_total Scenario cells completed by jobs, by tenant.\n")
	b.WriteString("# TYPE stashd_job_cells_completed_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "stashd_job_cells_completed_total{tenant=%q} %d\n", t, jc[t].Cells)
	}
	b.WriteString("# HELP stashd_job_store_jobs Jobs currently retained by the store (live + replayable terminal).\n")
	b.WriteString("# TYPE stashd_job_store_jobs gauge\n")
	fmt.Fprintf(&b, "stashd_job_store_jobs %d\n", m.jobs.size())

	// Cluster counters. The families render unconditionally — a
	// standalone server reports zeros — so dashboards and the docs
	// checker see the same exposition shape in both modes.
	var cm cluster.Metrics
	var alive, dead, draining int64
	if m.node != nil {
		cm = m.node.Metrics()
		for _, p := range m.node.Peers() {
			switch {
			case !p.Alive:
				dead++
			case p.Status == "draining":
				draining++
			default:
				alive++
			}
		}
	}
	b.WriteString("# HELP stashd_cluster_peers Cluster peers (self excluded) by membership state; all zero standalone.\n")
	b.WriteString("# TYPE stashd_cluster_peers gauge\n")
	fmt.Fprintf(&b, "stashd_cluster_peers{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(&b, "stashd_cluster_peers{state=\"dead\"} %d\n", dead)
	fmt.Fprintf(&b, "stashd_cluster_peers{state=\"draining\"} %d\n", draining)
	b.WriteString("# HELP stashd_cluster_scenario_fetches_total Remote scenario fetch attempts by outcome (hit = resolved by a peer).\n")
	b.WriteString("# TYPE stashd_cluster_scenario_fetches_total counter\n")
	for _, oc := range []struct {
		name string
		n    int64
	}{
		{"bounded_skip", cm.BoundedSkips},
		{"decline", cm.FetchDeclines},
		{"hit", cm.FetchHits},
		{"transport_error", cm.FetchErrors},
	} {
		fmt.Fprintf(&b, "stashd_cluster_scenario_fetches_total{outcome=%q} %d\n", oc.name, oc.n)
	}
	b.WriteString("# HELP stashd_cluster_scenarios_served_total Scenario requests this replica computed for peers.\n")
	b.WriteString("# TYPE stashd_cluster_scenarios_served_total counter\n")
	fmt.Fprintf(&b, "stashd_cluster_scenarios_served_total %d\n", cm.Served)
	b.WriteString("# HELP stashd_cluster_sweeps_total Grid sweeps this replica has coordinated as owner.\n")
	b.WriteString("# TYPE stashd_cluster_sweeps_total counter\n")
	fmt.Fprintf(&b, "stashd_cluster_sweeps_total %d\n", cm.Sweeps)
	b.WriteString("# HELP stashd_cluster_sweep_cells_total Work-stealing cell flow by event (leases out, completed steals, expiries, drain handbacks).\n")
	b.WriteString("# TYPE stashd_cluster_sweep_cells_total counter\n")
	for _, ev := range []struct {
		name string
		n    int64
	}{
		{"reissued", cm.Reissued},
		{"released", cm.Released},
		{"stolen_by_peers", cm.StolenByPeers},
		{"stolen_from_peers", cm.StolenFromPeers},
	} {
		fmt.Fprintf(&b, "stashd_cluster_sweep_cells_total{event=%q} %d\n", ev.name, ev.n)
	}
	// Cluster-wide scenario counters: this replica's live snapshot plus
	// every peer's last gossiped one (lagging by up to one heartbeat).
	// Standalone there is nothing to aggregate and the families render
	// with no samples.
	var agg map[string]core.Stats
	var aggTenants map[string]map[string]core.Stats
	if m.node != nil {
		agg = m.node.AggregatedPools()
		aggTenants = m.node.AggregatedTenants()
	}
	b.WriteString("# HELP stashd_cluster_scenario_requests_total Scenario requests admitted, summed across the cluster.\n")
	b.WriteString("# TYPE stashd_cluster_scenario_requests_total counter\n")
	for _, pool := range sortedKeys(agg) {
		fmt.Fprintf(&b, "stashd_cluster_scenario_requests_total{pool=%q} %d\n", pool, agg[pool].Requests)
	}
	b.WriteString("# HELP stashd_cluster_scenarios_simulated_total Scenarios executed on a simulation engine, summed across the cluster.\n")
	b.WriteString("# TYPE stashd_cluster_scenarios_simulated_total counter\n")
	for _, pool := range sortedKeys(agg) {
		fmt.Fprintf(&b, "stashd_cluster_scenarios_simulated_total{pool=%q} %d\n", pool, agg[pool].Simulated)
	}
	b.WriteString("# HELP stashd_cluster_tenant_scenario_requests_total Scenario requests admitted, by tenant, summed across the cluster.\n")
	b.WriteString("# TYPE stashd_cluster_tenant_scenario_requests_total counter\n")
	for _, pool := range sortedKeys(aggTenants) {
		for _, tenant := range sortedKeys(aggTenants[pool]) {
			fmt.Fprintf(&b, "stashd_cluster_tenant_scenario_requests_total{pool=%q,tenant=%q} %d\n",
				pool, tenant, aggTenants[pool][tenant].Requests)
		}
	}
	return b.String()
}
