package api

import (
	"fmt"
	"net/http"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/experiments"
	"stash/internal/workload"
)

// defaultBatch is the per-GPU batch size when a request omits it,
// matching the cmd/stash CLI default.
const defaultBatch = 32

// handleProfile serves POST /v1/profile: the full Stash pipeline
// (steps 1-5) for one workload on one instance type.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req ProfileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	if req.Model == "" || req.Instance == "" {
		writeError(w, http.StatusBadRequest, errInvalidRequest, `"model" and "instance" are required`)
		return
	}
	if req.Batch == 0 {
		req.Batch = defaultBatch
	}
	model, err := dnn.Resolve(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	it, err := cloud.ByName(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	job, err := workload.NewJob(model, req.Batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	if req.Nodes != 0 && (req.Nodes < 2 || it.NGPUs%req.Nodes != 0) {
		writeError(w, http.StatusBadRequest, errInvalidRequest,
			fmt.Sprintf(`"nodes" must be >= 2 and divide %s's %d GPUs, got %d`, it.Name, it.NGPUs, req.Nodes))
		return
	}

	rep, err := s.profiler.ProfileContext(r.Context(), job, it)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := ProfileResponse{
		Model:                   rep.Model,
		Instance:                rep.Instance,
		Batch:                   rep.Batch,
		Interconnect:            toICStallJSON(rep.IC),
		Data:                    toDataStallsJSON(rep.Data),
		Epoch:                   toEpochJSON(rep.Epoch),
		GPUMemoryUtilizationPct: core.MemoryUtilization(job, it),
		Rendered:                rep.String(),
	}
	if rep.NW != nil {
		nw := toNWStallJSON(*rep.NW)
		resp.Network = &nw
	}
	// A non-default split re-measures step 5 at the requested node
	// count, exactly like cmd/stash -nodes.
	if req.Nodes > 2 {
		nw, err := s.profiler.NetworkStallContext(r.Context(), job, it, req.Nodes)
		if err != nil {
			s.fail(w, err)
			return
		}
		j := toNWStallJSON(nw)
		resp.Network = &j
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRecommend serves POST /v1/recommend: rank every allowed catalog
// configuration for a workload under deadline/budget constraints.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, errInvalidRequest, `"model" is required`)
		return
	}
	if req.Batch == 0 {
		req.Batch = defaultBatch
	}
	if req.MaxEpochSeconds < 0 || req.MaxCostPerEpoch < 0 || req.MaxNodes < 0 {
		writeError(w, http.StatusBadRequest, errInvalidRequest, "constraints must be non-negative")
		return
	}
	model, err := dnn.Resolve(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	job, err := workload.NewJob(model, req.Batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}

	rec, err := s.profiler.RecommendContext(r.Context(), job, core.Constraints{
		MaxEpochTime:    time.Duration(req.MaxEpochSeconds * float64(time.Second)),
		MaxCostPerEpoch: req.MaxCostPerEpoch,
		Families:        req.Families,
		MaxNodes:        req.MaxNodes,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := RecommendResponse{
		Model:       job.Model.Name,
		Batch:       job.BatchPerGPU,
		Candidates:  make([]CandidateJSON, len(rec.Candidates)),
		Cheapest:    rec.Cheapest,
		Fastest:     rec.Fastest,
		Rejected:    rec.Rejected,
		ModelAdvice: rec.ModelAdvice,
	}
	for i, c := range rec.Candidates {
		resp.Candidates[i] = CandidateJSON{
			Instance:   c.Instance,
			Nodes:      c.Nodes,
			Epoch:      toEpochJSON(c.Estimate),
			ICStallPct: c.ICStallPct,
			Notes:      c.Notes,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperimentList serves GET /v1/experiments: the registry of the
// 25 paper artifacts, in paper order.
func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	reg := experiments.Registry()
	resp := ExperimentListResponse{Experiments: make([]ExperimentInfo, len(reg))}
	for i, e := range reg {
		resp.Experiments[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperimentRun serves GET /v1/experiments/{id}: run one paper
// artifact on demand and return its tables as structured data. The
// simulator is deterministic, so a given server configuration always
// returns identical bytes for the same id.
func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp, err := experiments.ByID(id)
	if err != nil {
		writeError(w, http.StatusNotFound, errNotFound, err.Error())
		return
	}
	tables, err := exp.Run(s.expCfg.WithContext(r.Context()))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{ID: exp.ID, Title: exp.Title, Tables: tables})
}
