package api

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/experiments"
	"stash/internal/workload"
)

// defaultBatch is the per-GPU batch size when a request omits it,
// matching the cmd/stash CLI default.
const defaultBatch = 32

// The compute* functions below are the single implementation behind
// both surfaces: the synchronous /v1 handlers call them with the
// request context, and the /v2 job executor calls them with the job's
// context. Sharing the functions — validation, defaults, error mapping
// and all — is what makes a job's persisted result byte-identical to
// the v1 response for the same request, which the docs verifier and
// TestJobResultMatchesV1 both pin.

// computeProfile validates and runs one profile request: the full
// Stash pipeline (steps 1-5) for one workload on one instance type.
func (s *Server) computeProfile(ctx context.Context, req ProfileRequest) (*ProfileResponse, *apiError) {
	if req.Model == "" || req.Instance == "" {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, `"model" and "instance" are required`)
	}
	if req.Batch == 0 {
		req.Batch = defaultBatch
	}
	model, err := dnn.Resolve(req.Model)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	it, err := cloud.ByName(req.Instance)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	job, err := workload.NewJob(model, req.Batch)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	if req.Nodes != 0 && (req.Nodes < 2 || it.NGPUs%req.Nodes != 0) {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest,
			fmt.Sprintf(`"nodes" must be >= 2 and divide %s's %d GPUs, got %d`, it.Name, it.NGPUs, req.Nodes))
	}

	rep, err := s.profiler.ProfileContext(ctx, job, it)
	if err != nil {
		return nil, errToAPI(err)
	}
	resp := &ProfileResponse{
		Model:                   rep.Model,
		Instance:                rep.Instance,
		Batch:                   rep.Batch,
		Interconnect:            toICStallJSON(rep.IC),
		Data:                    toDataStallsJSON(rep.Data),
		Epoch:                   toEpochJSON(rep.Epoch),
		GPUMemoryUtilizationPct: core.MemoryUtilization(job, it),
		Rendered:                rep.String(),
	}
	if rep.NW != nil {
		nw := toNWStallJSON(*rep.NW)
		resp.Network = &nw
	}
	// A non-default split re-measures step 5 at the requested node
	// count, exactly like cmd/stash -nodes.
	if req.Nodes > 2 {
		nw, err := s.profiler.NetworkStallContext(ctx, job, it, req.Nodes)
		if err != nil {
			return nil, errToAPI(err)
		}
		j := toNWStallJSON(nw)
		resp.Network = &j
	}
	return resp, nil
}

// computeBlame validates and runs one blame request: a traced
// synthetic training run whose per-barrier frontier attribution names
// the worker responsible for every other worker's comm-wait.
func (s *Server) computeBlame(ctx context.Context, req BlameRequest) (*BlameResponse, *apiError) {
	if req.Model == "" || req.Instance == "" {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, `"model" and "instance" are required`)
	}
	if req.Batch == 0 {
		req.Batch = defaultBatch
	}
	model, err := dnn.Resolve(req.Model)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	it, err := cloud.ByName(req.Instance)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	job, err := workload.NewJob(model, req.Batch)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	if req.Nodes != 0 && (req.Nodes < 2 || it.NGPUs%req.Nodes != 0) {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest,
			fmt.Sprintf(`"nodes" must be >= 2 and divide %s's %d GPUs, got %d`, it.Name, it.NGPUs, req.Nodes))
	}
	opt := core.BlameOptions{Nodes: req.Nodes, StragglerRank: -1}
	switch {
	case req.StragglerRank != nil:
		opt.StragglerRank = *req.StragglerRank
		if opt.StragglerRank < 0 || opt.StragglerRank >= it.NGPUs {
			return nil, newAPIError(http.StatusBadRequest, errInvalidRequest,
				fmt.Sprintf(`"straggler_rank" must be in [0,%d) on %s, got %d`, it.NGPUs, it.Name, opt.StragglerRank))
		}
		opt.StragglerScale = req.StragglerScale
		//lint:allow floatcmp 0 is the omitted-field sentinel, not a computed value
		if opt.StragglerScale == 0 {
			opt.StragglerScale = core.DefaultStragglerScale
		}
		if opt.StragglerScale <= 1 {
			return nil, newAPIError(http.StatusBadRequest, errInvalidRequest,
				fmt.Sprintf(`"straggler_scale" must be > 1, got %v`, opt.StragglerScale))
		}
	//lint:allow floatcmp 0 is the omitted-field sentinel, not a computed value
	case req.StragglerScale != 0:
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest,
			`"straggler_scale" requires "straggler_rank"`)
	}

	rep, err := s.profiler.BlameContext(ctx, job, it, opt)
	if err != nil {
		return nil, errToAPI(err)
	}
	s.metrics.blameRuns.Add(1)
	s.metrics.blameBarriers.Add(int64(rep.Barriers))
	if rep.Unattributed > 0 {
		s.metrics.blameUnattributed.Add(1)
	}
	resp := &BlameResponse{
		Model:                rep.Model,
		Instance:             rep.Instance,
		Batch:                rep.Batch,
		Nodes:                rep.Nodes,
		WorldSize:            rep.WorldSize,
		Iterations:           rep.Iterations,
		StragglerRank:        rep.StragglerRank,
		StragglerScale:       rep.StragglerScale,
		Barriers:             rep.Barriers,
		TiedBarriers:         rep.TiedBarriers,
		TotalCommWaitSeconds: secs(rep.TotalCommWait),
		AttributedSeconds:    secs(rep.Attributed),
		UnattributedSeconds:  secs(rep.Unattributed),
		Workers:              make([]WorkerBlameJSON, len(rep.Workers)),
		Rendered:             rep.String(),
	}
	for i, w := range rep.Workers {
		resp.Workers[i] = WorkerBlameJSON{
			Rank:             w.Rank,
			BlamedSeconds:    secs(w.Blamed),
			BlamedPct:        w.BlamedPct,
			SelfWaitSeconds:  secs(w.SelfWait),
			FrontierBarriers: w.FrontierBarriers,
		}
	}
	return resp, nil
}

// computeRecommend validates and runs one recommend request: rank
// every allowed catalog configuration for a workload under
// deadline/budget constraints.
func (s *Server) computeRecommend(ctx context.Context, req RecommendRequest) (*RecommendResponse, *apiError) {
	if req.Model == "" {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, `"model" is required`)
	}
	if req.Batch == 0 {
		req.Batch = defaultBatch
	}
	if req.MaxEpochSeconds < 0 || req.MaxCostPerEpoch < 0 || req.MaxNodes < 0 {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, "constraints must be non-negative")
	}
	model, err := dnn.Resolve(req.Model)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}
	job, err := workload.NewJob(model, req.Batch)
	if err != nil {
		return nil, newAPIError(http.StatusBadRequest, errInvalidRequest, err.Error())
	}

	rec, err := s.profiler.RecommendContext(ctx, job, core.Constraints{
		MaxEpochTime:    time.Duration(req.MaxEpochSeconds * float64(time.Second)),
		MaxCostPerEpoch: req.MaxCostPerEpoch,
		Families:        req.Families,
		MaxNodes:        req.MaxNodes,
	})
	if err != nil {
		return nil, errToAPI(err)
	}
	resp := &RecommendResponse{
		Model:       job.Model.Name,
		Batch:       job.BatchPerGPU,
		Candidates:  make([]CandidateJSON, len(rec.Candidates)),
		Cheapest:    rec.Cheapest,
		Fastest:     rec.Fastest,
		Rejected:    rec.Rejected,
		ModelAdvice: rec.ModelAdvice,
	}
	for i, c := range rec.Candidates {
		resp.Candidates[i] = CandidateJSON{
			Instance:   c.Instance,
			Nodes:      c.Nodes,
			Epoch:      toEpochJSON(c.Estimate),
			ICStallPct: c.ICStallPct,
			Notes:      c.Notes,
		}
	}
	return resp, nil
}

// computeExperiment runs one paper artifact and returns its tables as
// structured data. The simulator is deterministic, so a given server
// configuration always returns identical bytes for the same id.
func (s *Server) computeExperiment(ctx context.Context, id string) (*ExperimentResponse, *apiError) {
	exp, err := experiments.ByID(id)
	if err != nil {
		return nil, newAPIError(http.StatusNotFound, errNotFound, err.Error())
	}
	tables, err := exp.Run(s.expCfg.WithContext(ctx))
	if err != nil {
		return nil, errToAPI(err)
	}
	return &ExperimentResponse{ID: exp.ID, Title: exp.Title, Tables: tables}, nil
}

// handleProfile serves POST /v1/profile.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req ProfileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	resp, aerr := s.computeProfile(r.Context(), req)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBlame serves POST /v1/blame.
func (s *Server) handleBlame(w http.ResponseWriter, r *http.Request) {
	var req BlameRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	resp, aerr := s.computeBlame(r.Context(), req)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRecommend serves POST /v1/recommend.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	resp, aerr := s.computeRecommend(r.Context(), req)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperimentList serves GET /v1/experiments: the registry of the
// paper artifacts, in paper order.
func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	reg := experiments.Registry()
	resp := ExperimentListResponse{Experiments: make([]ExperimentInfo, len(reg))}
	for i, e := range reg {
		resp.Experiments[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperimentRun serves GET /v1/experiments/{id}.
func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	resp, aerr := s.computeExperiment(r.Context(), r.PathValue("id"))
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
