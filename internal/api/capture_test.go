package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCaptureDocExamples regenerates the verified example bodies that
// docs/API.md embeds. It is skipped unless STASHD_CAPTURE is set to a
// directory; then it writes one pretty-printed JSON file per example:
//
//	STASHD_CAPTURE=/tmp/captures go test ./internal/api -run CaptureDocExamples
//
// Paste the refreshed bodies into docs/API.md whenever the simulator's
// calibration changes; docs_test.go fails until docs and server agree.
func TestCaptureDocExamples(t *testing.T) {
	dir := os.Getenv("STASHD_CAPTURE")
	if dir == "" {
		t.Skip("set STASHD_CAPTURE=<dir> to regenerate docs/API.md example bodies")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ex := range docExamples {
		var (
			resp *http.Response
			err  error
		)
		if ex.method == http.MethodGet {
			resp, err = http.Get(ts.URL + ex.path)
		} else {
			resp, err = http.Post(ts.URL+ex.path, "application/json", strings.NewReader(ex.request))
		}
		if err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		if resp.StatusCode != ex.wantStatus {
			t.Fatalf("%s: status %d, want %d", ex.name, resp.StatusCode, ex.wantStatus)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		pretty, _ := json.MarshalIndent(v, "", "  ")
		out := filepath.Join(dir, ex.name+"-response.json")
		if err := os.WriteFile(out, append(pretty, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
