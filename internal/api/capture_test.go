package api

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestCaptureDocExamples regenerates the verified example bodies the
// shipped docs embed. It is skipped unless STASHD_CAPTURE is set to a
// directory; then it writes one pretty-printed JSON file per example
// (.txt for raw transcripts like the SSE stream):
//
//	STASHD_CAPTURE=/tmp/captures go test ./internal/api -run CaptureDocExamples
//
// Paste the refreshed bodies into docs/API.md / docs/OPERATIONS.md
// whenever the simulator's calibration changes; docs_test.go fails
// until docs and server agree. ci.sh also runs this against a throwaway
// directory, so the regenerator itself can't rot.
func TestCaptureDocExamples(t *testing.T) {
	dir := os.Getenv("STASHD_CAPTURE")
	if dir == "" {
		t.Skip("set STASHD_CAPTURE=<dir> to regenerate the documented example bodies")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cb := clusterDocBase(t)

	for _, ex := range docExamples {
		base := ts.URL
		if ex.cluster {
			base = cb()
		}
		code, body := runDocExample(t, base, ex)
		if code != ex.wantStatus {
			t.Fatalf("%s: status %d, want %d", ex.name, code, ex.wantStatus)
		}
		if ex.hidden {
			continue
		}
		if ex.raw {
			out := filepath.Join(dir, ex.name+"-response.txt")
			if err := os.WriteFile(out, body, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", out)
			continue
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		pretty, _ := json.MarshalIndent(v, "", "  ")
		out := filepath.Join(dir, ex.name+"-response.json")
		if err := os.WriteFile(out, append(pretty, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
