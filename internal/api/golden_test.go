package api

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

// TestProfileGoldenMatchesCLI pins POST /v1/profile to the cmd/stash
// CLI for the README's Quickstart example (resnet18 on p3.16xlarge at
// batch 32): a default server must report exactly the numbers a default
// CLI profiler computes, and the rendered text must be the same bytes
// the CLI prints. The README example block quotes this output; the
// readme_test.go checker keeps the three in sync.
func TestProfileGoldenMatchesCLI(t *testing.T) {
	s := New() // default server: core.DefaultIterations, matching the CLI
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
		strings.NewReader(`{"model":"resnet18","instance":"p3.16xlarge","batch":32}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// The CLI path: a fresh default profiler over the same workload.
	model, err := dnn.Resolve("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	job, err := workload.NewJob(model, 32)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.New().Profile(job, it)
	if err != nil {
		t.Fatalf("CLI-path profile: %v", err)
	}

	if got.Rendered != rep.String() {
		t.Errorf("rendered drifted from CLI output:\nAPI: %q\nCLI: %q", got.Rendered, rep.String())
	}
	eq := func(name string, api, cli float64) {
		t.Helper()
		if math.Abs(api-cli) > 1e-12 {
			t.Errorf("%s: API %v != CLI %v", name, api, cli)
		}
	}
	eq("ic stall pct", got.Interconnect.StallPct, rep.IC.Pct)
	eq("single-gpu seconds", got.Interconnect.SingleGPUSeconds, rep.IC.SingleGPU.Seconds())
	eq("prep pct", got.Data.PrepPct, rep.Data.PrepPct)
	eq("fetch pct", got.Data.FetchPct, rep.Data.FetchPct)
	if got.Network == nil || rep.NW == nil {
		t.Fatalf("missing network stall: API %v, CLI %v", got.Network, rep.NW)
	}
	eq("nw stall pct", got.Network.StallPct, rep.NW.Pct)
	eq("epoch seconds", got.Epoch.TimeSeconds, rep.Epoch.Time.Seconds())
	eq("epoch cost", got.Epoch.CostUSD, rep.Epoch.Cost)
	eq("memory utilization", got.GPUMemoryUtilizationPct, core.MemoryUtilization(job, it))

	// Pin the README Quickstart block's lines; if the simulator's
	// calibration changes these, README.md must be re-captured.
	for _, line := range []string{
		"I/C stall 16.8% (1-GPU 59.58ms, all-GPU 69.61ms)",
		"prep stall 0.0%, fetch stall 56.5% of training time",
		"N/W stall 63.4% over 2 nodes (1-node 69.61ms, 2-node 113.76ms)",
		"epoch on 1x p3.16xlarge: 6m33.5583s ($2.68)",
	} {
		if !strings.Contains(got.Rendered, line) {
			t.Errorf("README pin missing %q in:\n%s", line, got.Rendered)
		}
	}
	if got.GPUMemoryUtilizationPct < 12.5 || got.GPUMemoryUtilizationPct > 12.7 {
		t.Errorf("README pin: GPU memory utilization = %.1f%%, want ~12.6%%", got.GPUMemoryUtilizationPct)
	}
}

// TestProfileResponseByteStable pins the determinism guarantee
// docs/API.md documents: two identical requests against two separately
// constructed servers return identical bytes.
func TestProfileResponseByteStable(t *testing.T) {
	const body = `{"model":"alexnet","instance":"p2.8xlarge","batch":16}`
	var outs []string
	for i := 0; i < 2; i++ {
		s := New(WithIterations(4))
		ts := httptest.NewServer(s.Handler())
		resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, string(b))
		ts.Close()
	}
	if outs[0] != outs[1] {
		t.Errorf("responses differ across servers:\n%s\nvs\n%s", outs[0], outs[1])
	}
}
