package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// docExample is one request a shipped document records as a verified
// example. The request string here is the source of truth the doc's
// `<name>-request` block must match; the live response must match the
// doc's `<name>-response` block.
type docExample struct {
	name       string
	method     string
	path       string
	request    string // empty for GET/DELETE
	wantStatus int

	// doc is the markdown file carrying this example's verify blocks;
	// empty means docs/API.md.
	doc string

	// raw marks a non-JSON response (the SSE transcript): the comparison
	// is trimmed text, and capture writes a .txt file.
	raw bool

	// settle names a job id to poll to a terminal state before issuing
	// the request, so examples observing a job's final state are
	// deterministic.
	settle string

	// hidden examples execute for their side effects on the shared
	// server (advancing the job sequence, freeing workers) but are not
	// documented.
	hidden bool

	// cluster examples run against a lazily-booted 3-replica cluster
	// harness instead of the standalone server; the harness has its own
	// job-id sequence. Its replicas run -exp-iters 2 -seed 5, so the
	// captured bodies stay deterministic.
	cluster bool
}

const opsDoc = "../../docs/OPERATIONS.md"

// docExamples drives both docs_test.go (verification) and
// capture_test.go (regeneration). Examples run in order against one
// shared server, so the v2 job ids below are the server's global
// sequence: job-1 is the profile job, job-2/job-3 the sweeps that
// saturate both default workers (which is what keeps job-4 queued until
// its cancel), job-4 the prioritized job the cancel example removes.
var docExamples = []docExample{
	{name: "healthz", method: http.MethodGet, path: "/healthz", wantStatus: http.StatusOK},
	{name: "healthz-deep", method: http.MethodGet, path: "/healthz?deep=1", wantStatus: http.StatusOK},
	{name: "profile", method: http.MethodPost, path: "/v1/profile",
		request: `{"model":"resnet18","instance":"p3.16xlarge","batch":32}`, wantStatus: http.StatusOK},
	{name: "profile-error", method: http.MethodPost, path: "/v1/profile",
		request: `{"model":"resnet9000","instance":"p3.16xlarge"}`, wantStatus: http.StatusBadRequest},
	{name: "recommend", method: http.MethodPost, path: "/v1/recommend",
		request: `{"model":"vgg11","batch":32,"families":["P3"],"max_epoch_seconds":2400}`, wantStatus: http.StatusOK},
	{name: "blame", method: http.MethodPost, path: "/v1/blame",
		request:    `{"model":"resnet18","instance":"p3.8xlarge","batch":32,"straggler_rank":3,"straggler_scale":1.5}`,
		wantStatus: http.StatusOK},
	{name: "experiments", method: http.MethodGet, path: "/v1/experiments", wantStatus: http.StatusOK},
	{name: "table2", method: http.MethodGet, path: "/v1/experiments/table2", wantStatus: http.StatusOK},

	// v2 jobs: one deterministic lifecycle. The job-1 profile repeats
	// the v1 profile example, so its persisted result replays the exact
	// same bytes — the byte-identity contract, visible in the docs.
	{name: "jobs-create", method: http.MethodPost, path: "/v2/jobs",
		request:    `{"type":"profile","profile":{"model":"resnet18","instance":"p3.16xlarge","batch":32}}`,
		wantStatus: http.StatusAccepted},
	{name: "jobs-status", method: http.MethodGet, path: "/v2/jobs/job-1",
		wantStatus: http.StatusOK, settle: "job-1"},
	{name: "jobs-result", method: http.MethodGet, path: "/v2/jobs/job-1/result", wantStatus: http.StatusOK},
	{name: "jobs-events", method: http.MethodGet, path: "/v2/jobs/job-1/events",
		wantStatus: http.StatusOK, raw: true},
	{name: "jobs-sweep", method: http.MethodPost, path: "/v2/jobs",
		request: `{"type":"experiments","experiments":{}}`, wantStatus: http.StatusAccepted},
	{name: "sweep-saturate", method: http.MethodPost, path: "/v2/jobs",
		request: `{"type":"experiments","experiments":{}}`, wantStatus: http.StatusAccepted, hidden: true},
	{name: "jobs-queued", method: http.MethodPost, path: "/v2/jobs",
		request:    `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"},"priority":7}`,
		wantStatus: http.StatusAccepted},
	{name: "jobs-cancel", method: http.MethodDelete, path: "/v2/jobs/job-4", wantStatus: http.StatusOK},
	{name: "sweep-cancel", method: http.MethodDelete, path: "/v2/jobs/job-2",
		wantStatus: http.StatusOK, hidden: true},
	{name: "sweep-cancel2", method: http.MethodDelete, path: "/v2/jobs/job-3",
		wantStatus: http.StatusOK, hidden: true},
	{name: "jobs-list", method: http.MethodGet, path: "/v2/jobs?state=done", wantStatus: http.StatusOK},

	// job-5: a blame job repeating the v1 blame example, so its settled
	// result replays the exact v1 bytes (same byte-identity contract as
	// job-1).
	{name: "jobs-blame-create", method: http.MethodPost, path: "/v2/jobs",
		request:    `{"type":"blame","blame":{"model":"resnet18","instance":"p3.8xlarge","batch":32,"straggler_rank":3,"straggler_scale":1.5}}`,
		wantStatus: http.StatusAccepted},
	{name: "jobs-blame-result", method: http.MethodGet, path: "/v2/jobs/job-5/result",
		wantStatus: http.StatusOK, settle: "job-5"},

	// Operator-guide examples live in docs/OPERATIONS.md.
	{name: "ops-health", method: http.MethodGet, path: "/healthz",
		wantStatus: http.StatusOK, doc: opsDoc},

	// Cluster mode: a sweep submitted to one replica of a 3-replica
	// cluster. The settled result is byte-identical to what a standalone
	// server with the same -exp-iters/-seed returns for the same sweep —
	// the distribution guarantee, visible in the docs.
	{name: "cluster-sweep-create", method: http.MethodPost, path: "/v2/jobs",
		request:    `{"type":"experiments","experiments":{"ids":["fig9","fig12"]}}`,
		wantStatus: http.StatusAccepted, cluster: true},
	{name: "cluster-sweep-result", method: http.MethodGet, path: "/v2/jobs/job-1/result",
		wantStatus: http.StatusOK, settle: "job-1", cluster: true},
}

var verifyMarker = regexp.MustCompile(`<!--\s*verify:([a-z0-9-]+)\s*-->`)

// parseVerifiedBlocks extracts every `<!-- verify:name -->` marker and
// the fenced code block that follows it from a markdown file.
func parseVerifiedBlocks(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	blocks := make(map[string]string)
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		m := verifyMarker.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		name := m[1]
		// Find the fence opening on one of the next few lines.
		j := i + 1
		for j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), "```") {
			j++
		}
		if j == len(lines) {
			t.Fatalf("%s: verify:%s has no fenced block", path, name)
		}
		var body []string
		for j++; j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), "```"); j++ {
			body = append(body, lines[j])
		}
		if _, dup := blocks[name]; dup {
			t.Fatalf("%s: duplicate verify:%s", path, name)
		}
		blocks[name] = strings.Join(body, "\n")
		i = j
	}
	return blocks
}

// canonicalJSON reduces a JSON document to a byte-comparable form
// (sorted object keys, no whitespace), so pretty-printing in the docs
// never causes spurious mismatches while any value drift still does.
func canonicalJSON(t *testing.T, s string) string {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("invalid JSON %q: %v", s, err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// settleJob polls one job to a terminal state on the shared doc server.
func settleJob(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v2/jobs/" + id)
		if err != nil {
			t.Fatalf("settle %s: %v", id, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("settle %s: status %d, err %v", id, resp.StatusCode, err)
		}
		var js JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatalf("settle %s: %v", id, err)
		}
		if terminalState(js.State) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("settle %s: stuck in %s", id, js.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// clusterDocBase returns a function yielding the operator base URL of a
// shared 3-replica cluster harness, booting it on first use so doc runs
// without cluster examples never pay for one.
func clusterDocBase(t *testing.T) func() string {
	t.Helper()
	var h *clusterHarness
	return func() string {
		if h == nil {
			h = newClusterHarness(t, 3, nil)
		}
		return h.api[0].URL
	}
}

// runDocExample performs one example against the shared doc server,
// honoring its settle step, and returns status and body.
func runDocExample(t *testing.T, base string, ex docExample) (int, []byte) {
	t.Helper()
	if ex.settle != "" {
		settleJob(t, base, ex.settle)
	}
	var rd io.Reader
	if ex.request != "" {
		rd = strings.NewReader(ex.request)
	}
	req, err := http.NewRequest(ex.method, base+ex.path, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", ex.method, ex.path, err)
	}
	if ex.request != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", ex.method, ex.path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", ex.method, ex.path, err)
	}
	return resp.StatusCode, body
}

// TestAPIDocExamplesVerified replays every example the shipped docs
// mark with a verify comment against a default server and fails on any
// drift, in either direction: an undocumented example entry, a stale
// documented body, or a verify marker no example exercises. This is
// the "docs can't rot" gate — if the simulator's calibration or the
// wire format changes, regenerate with capture_test.go.
func TestAPIDocExamplesVerified(t *testing.T) {
	docBlocks := map[string]map[string]string{}
	used := map[string]map[string]bool{}
	blocksFor := func(doc string) (map[string]string, map[string]bool) {
		if doc == "" {
			doc = "../../docs/API.md"
		}
		if docBlocks[doc] == nil {
			docBlocks[doc] = parseVerifiedBlocks(t, doc)
			used[doc] = map[string]bool{}
		}
		return docBlocks[doc], used[doc]
	}

	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cb := clusterDocBase(t)

	for _, ex := range docExamples {
		t.Run(ex.name, func(t *testing.T) {
			base := ts.URL
			if ex.cluster {
				base = cb()
			}
			if ex.hidden {
				if code, body := runDocExample(t, base, ex); code != ex.wantStatus {
					t.Fatalf("status = %d, want %d (body %s)", code, ex.wantStatus, body)
				}
				return
			}
			blocks, usedHere := blocksFor(ex.doc)
			if ex.request != "" {
				reqBlock, ok := blocks[ex.name+"-request"]
				if !ok {
					t.Fatalf("missing verify:%s-request", ex.name)
				}
				usedHere[ex.name+"-request"] = true
				if canonicalJSON(t, reqBlock) != canonicalJSON(t, ex.request) {
					t.Errorf("documented request drifted:\ndoc:  %s\ntest: %s", reqBlock, ex.request)
				}
			}
			respBlock, ok := blocks[ex.name+"-response"]
			if !ok {
				t.Fatalf("missing verify:%s-response", ex.name)
			}
			usedHere[ex.name+"-response"] = true

			code, body := runDocExample(t, base, ex)
			if code != ex.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", code, ex.wantStatus, body)
			}
			if ex.raw {
				if got, want := strings.TrimSpace(string(body)), strings.TrimSpace(respBlock); got != want {
					t.Errorf("documented transcript drifted from the live server:\nlive:\n%s\ndoc:\n%s", got, want)
				}
				return
			}
			if got, want := canonicalJSON(t, string(body)), canonicalJSON(t, respBlock); got != want {
				t.Errorf("documented response drifted from the live server:\nlive: %s\ndoc:  %s", got, want)
			}
		})
	}
	for doc, blocks := range docBlocks {
		for name := range blocks {
			if !used[doc][name] {
				t.Errorf("%s: block verify:%s is not exercised by any docExample", doc, name)
			}
		}
	}
}

// TestMetricsDocumented renders /metrics after representative traffic
// and checks that every stashd_ series family it emits is described in
// docs/OPERATIONS.md — a new counter can't ship undocumented.
func TestMetricsDocumented(t *testing.T) {
	opsData, err := os.ReadFile(opsDoc)
	if err != nil {
		t.Fatalf("read %s: %v", opsDoc, err)
	}
	ops := string(opsData)

	_, ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet18","instance":"p3.2xlarge"}`); code != http.StatusOK {
		t.Fatalf("profile = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/healthz?deep=1"); code != http.StatusOK {
		t.Fatal("deep healthz failed")
	}
	id := submitJob(t, ts.URL, "acme", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	waitTerminal(t, ts.URL, "acme", id)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if !strings.Contains(ops, name) {
			t.Errorf("docs/OPERATIONS.md does not document metric %s", name)
		}
	}
}
