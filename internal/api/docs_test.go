package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
)

// docExample is one request docs/API.md documents with a verified
// example. The request string here is the source of truth the doc's
// `<name>-request` block must match; the live response must match the
// doc's `<name>-response` block.
type docExample struct {
	name       string
	method     string
	path       string
	request    string // empty for GET
	wantStatus int
}

// docExamples drives both docs_test.go (verification) and
// capture_test.go (regeneration). One entry per verified example in
// docs/API.md.
var docExamples = []docExample{
	{"healthz", http.MethodGet, "/healthz", "", http.StatusOK},
	{"healthz-deep", http.MethodGet, "/healthz?deep=1", "", http.StatusOK},
	{"profile", http.MethodPost, "/v1/profile", `{"model":"resnet18","instance":"p3.16xlarge","batch":32}`, http.StatusOK},
	{"profile-error", http.MethodPost, "/v1/profile", `{"model":"resnet9000","instance":"p3.16xlarge"}`, http.StatusBadRequest},
	{"recommend", http.MethodPost, "/v1/recommend", `{"model":"vgg11","batch":32,"families":["P3"],"max_epoch_seconds":2400}`, http.StatusOK},
	{"experiments", http.MethodGet, "/v1/experiments", "", http.StatusOK},
	{"table2", http.MethodGet, "/v1/experiments/table2", "", http.StatusOK},
}

var verifyMarker = regexp.MustCompile(`<!--\s*verify:([a-z0-9-]+)\s*-->`)

// parseVerifiedBlocks extracts every `<!-- verify:name -->` marker and
// the fenced code block that follows it from a markdown file.
func parseVerifiedBlocks(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	blocks := make(map[string]string)
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		m := verifyMarker.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		name := m[1]
		// Find the fence opening on one of the next few lines.
		j := i + 1
		for j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), "```") {
			j++
		}
		if j == len(lines) {
			t.Fatalf("%s: verify:%s has no fenced block", path, name)
		}
		var body []string
		for j++; j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), "```"); j++ {
			body = append(body, lines[j])
		}
		if _, dup := blocks[name]; dup {
			t.Fatalf("%s: duplicate verify:%s", path, name)
		}
		blocks[name] = strings.Join(body, "\n")
		i = j
	}
	return blocks
}

// canonicalJSON reduces a JSON document to a byte-comparable form
// (sorted object keys, no whitespace), so pretty-printing in the docs
// never causes spurious mismatches while any value drift still does.
func canonicalJSON(t *testing.T, s string) string {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("invalid JSON %q: %v", s, err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAPIDocExamplesVerified replays every example docs/API.md marks
// with a verify comment against a default server and fails on any
// drift, in either direction: an undocumented example entry, a stale
// documented body, or a verify marker no example exercises. This is
// the "docs can't rot" gate — if the simulator's calibration or the
// wire format changes, regenerate with capture_test.go.
func TestAPIDocExamplesVerified(t *testing.T) {
	blocks := parseVerifiedBlocks(t, "../../docs/API.md")
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	used := make(map[string]bool)
	for _, ex := range docExamples {
		t.Run(ex.name, func(t *testing.T) {
			if ex.request != "" {
				reqBlock, ok := blocks[ex.name+"-request"]
				if !ok {
					t.Fatalf("docs/API.md missing verify:%s-request", ex.name)
				}
				used[ex.name+"-request"] = true
				if canonicalJSON(t, reqBlock) != canonicalJSON(t, ex.request) {
					t.Errorf("documented request drifted:\ndoc:  %s\ntest: %s", reqBlock, ex.request)
				}
			}
			respBlock, ok := blocks[ex.name+"-response"]
			if !ok {
				t.Fatalf("docs/API.md missing verify:%s-response", ex.name)
			}
			used[ex.name+"-response"] = true

			var (
				resp *http.Response
				err  error
			)
			if ex.method == http.MethodGet {
				resp, err = http.Get(ts.URL + ex.path)
			} else {
				resp, err = http.Post(ts.URL+ex.path, "application/json", strings.NewReader(ex.request))
			}
			if err != nil {
				t.Fatalf("%s %s: %v", ex.method, ex.path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != ex.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, ex.wantStatus, body)
			}
			if got, want := canonicalJSON(t, string(body)), canonicalJSON(t, respBlock); got != want {
				t.Errorf("documented response drifted from the live server:\nlive: %s\ndoc:  %s", got, want)
			}
		})
	}
	for name := range blocks {
		if !used[name] {
			t.Errorf("docs/API.md block verify:%s is not exercised by any docExample", name)
		}
	}
}
