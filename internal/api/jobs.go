package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/audit"
	"stash/internal/core"
	"stash/internal/experiments"
)

// Job states. queued and running are live; done, failed and cancelled
// are terminal (the job's result bytes are frozen and its TTL starts).
const (
	jobStateQueued    = "queued"
	jobStateRunning   = "running"
	jobStateDone      = "done"
	jobStateFailed    = "failed"
	jobStateCancelled = "cancelled"
)

// terminalState reports whether a job state is final.
func terminalState(s string) bool {
	return s == jobStateDone || s == jobStateFailed || s == jobStateCancelled
}

// jobClasses are the job types in fixed dispatch order, with their
// fair-queueing weights: a backlogged tenant's interactive profiles
// and blame attributions dispatch 4x as often as its experiment
// sweeps, 2x as often as its recommendations. The array index is the
// class id everywhere below.
var jobClasses = [...]struct {
	name   string
	weight int64
}{
	{"profile", 4},
	{"blame", 4},
	{"recommend", 2},
	{"experiments", 1},
}

// classIndex maps a class name to its jobClasses index (-1 if unknown).
func classIndex(name string) int {
	for i := range jobClasses {
		if jobClasses[i].name == name {
			return i
		}
	}
	return -1
}

const (
	// DefaultJobWorkers is the size of the job executor pool. It is
	// deliberately fixed (not GOMAXPROCS-derived) so a server's
	// dispatch behavior is identical on every machine, and deliberately
	// separate from the v1 concurrency gate: synchronous /v1 calls keep
	// their own reserved lane and are never starved by queued jobs.
	DefaultJobWorkers = 2

	// DefaultJobTTL is how long a terminal job's result is retained for
	// replay before it becomes evictable.
	DefaultJobTTL = 15 * time.Minute

	// DefaultJobStoreMax caps how many jobs (live + terminal) the store
	// retains; beyond it the oldest terminal job is evicted per
	// admission, and admission fails with store_full when every
	// retained job is still active.
	DefaultJobStoreMax = 256

	// DefaultTenantQuota caps one tenant's active (queued + running)
	// jobs.
	DefaultTenantQuota = 16

	// defaultJobPriority is the priority when a request omits it;
	// priorities order jobs within one (tenant, class) queue only.
	defaultJobPriority = 5
	maxJobPriority     = 9

	// strideScale is the stride numerator of the fair queue: an entity
	// of weight w advances its virtual-time pass by strideScale/w per
	// dispatch, so passes stay exact integers for every weight up to
	// strideScale and scheduling never compares floats.
	strideScale = 840
)

// tenantHeader names the requesting tenant; absent means
// defaultTenant. The v2 job API scopes every job to its tenant, and
// the scenario scheduler mirrors per-tenant conservation counters
// under the same name.
const (
	tenantHeader  = "X-Stash-Tenant"
	defaultTenant = "default"
)

var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// tenantOf resolves the request's tenant from the X-Stash-Tenant
// header. Tenant names are constrained to a label-safe alphabet so
// they can appear verbatim in /metrics series.
func tenantOf(r *http.Request) (string, *apiError) {
	name := r.Header.Get(tenantHeader)
	if name == "" {
		return defaultTenant, nil
	}
	if !tenantNameRe.MatchString(name) {
		return "", newAPIError(http.StatusBadRequest, errInvalidRequest,
			fmt.Sprintf("invalid %s header: need [A-Za-z0-9][A-Za-z0-9_.-]{0,63}", tenantHeader))
	}
	return name, nil
}

// jobPartial is one settled partial result: for experiments jobs, one
// artifact's response, byte-identical to GET /v1/experiments/{id}.
type jobPartial struct {
	Label string          `json:"label"`
	Data  json.RawMessage `json:"data"`
}

// job is one asynchronous unit of work. Identity fields are immutable
// after submit; cellsDone/cellsTotal are atomics fed by the core
// progress hook; everything else is guarded by the store mutex, which
// is what makes every observable transition and every snapshot exact
// (the conservation audit holds at any instant, not just quiescence).
type job struct {
	id       string
	seq      int64
	tenant   string
	class    string
	priority int
	req      JobCreateRequest

	cellsDone  atomic.Int64
	cellsTotal atomic.Int64

	// Guarded by jobStore.mu.
	state        string
	errBody      *ErrorBody
	result       []byte // wire bytes replayed by GET .../result
	resultStatus int
	partials     []jobPartial
	runCtx       context.Context
	cancel       context.CancelFunc
	doneCh       chan struct{} // closed on the terminal transition
	doneSeq      int64         // terminal order, drives LRU eviction
	expireAt     time.Time
	subs         []chan struct{} // SSE wakeups, coalesced cap-1 channels
}

// classQueue is one (tenant, class) pending-job queue with its stride
// scheduler state.
type classQueue struct {
	stride int64
	pass   int64
	jobs   []*job // submission order; dispatch picks max priority
}

// tenantSched is one tenant's scheduler node: a stride pass among
// tenants, and a nested stride schedule across its class queues.
type tenantSched struct {
	name    string
	stride  int64
	pass    int64
	vtime   int64 // pass of this tenant's last dispatched class
	classes [len(jobClasses)]classQueue
}

// hasPending reports whether any class queue holds a job.
func (ts *tenantSched) hasPending() bool {
	for i := range ts.classes {
		if len(ts.classes[i].jobs) > 0 {
			return true
		}
	}
	return false
}

// jobTally is one tenant's job accounting, guarded by jobStore.mu so
// the lifecycle balance (audit.JobCounters) is exact at every
// snapshot.
type jobTally struct {
	accepted, rejected      int64
	done, failed, cancelled int64
	queued, running         int64
	cells                   int64
}

// jobStore is the v2 job subsystem: admission (per-tenant quotas, a
// bounded store with TTL + LRU eviction of terminal jobs), a two-level
// weighted fair queue (stride scheduling across tenants, then across
// job classes within the tenant, priorities within a class), a fixed
// worker pool, cancellation and drain. One mutex guards all state
// transitions and snapshots.
type jobStore struct {
	workers int
	ttl     time.Duration
	maxJobs int
	quota   int
	weights map[string]int64

	exec   func(*job)
	wakeCh chan struct{}
	stopCh chan struct{}

	mu       sync.Mutex
	draining bool
	stopped  bool
	nextSeq  int64
	doneSeq  int64
	vtime    int64 // pass of the last dispatched tenant
	jobs     map[string]*job
	order    []*job // submission order (evicted jobs removed)
	sched    map[string]*tenantSched
	tallies  map[string]*jobTally
}

func newJobStore(workers int, ttl time.Duration, maxJobs, quota int, weights map[string]int64) *jobStore {
	if workers < 1 {
		workers = DefaultJobWorkers
	}
	if maxJobs < 1 {
		maxJobs = 1
	}
	if quota < 1 {
		quota = 1
	}
	return &jobStore{
		workers: workers,
		ttl:     ttl,
		maxJobs: maxJobs,
		quota:   quota,
		weights: weights,
		wakeCh:  make(chan struct{}, workers),
		stopCh:  make(chan struct{}),
		jobs:    make(map[string]*job),
		sched:   make(map[string]*tenantSched),
		tallies: make(map[string]*jobTally),
	}
}

// start launches the worker pool; exec runs one dispatched job to its
// terminal state.
func (st *jobStore) start(exec func(*job)) {
	st.exec = exec
	for i := 0; i < st.workers; i++ {
		go st.worker()
	}
}

func (st *jobStore) worker() {
	for {
		st.mu.Lock()
		j := st.dispatchLocked()
		draining := st.draining
		st.mu.Unlock()
		if j == nil {
			if draining {
				return
			}
			select {
			case <-st.wakeCh:
			case <-st.stopCh:
				return
			}
			continue
		}
		st.notify(j) // queued -> running is an observable transition
		st.exec(j)
	}
}

// wakeWorkers nudges idle workers after an enqueue. The channel holds
// one token per worker, so dropping a send is only possible when every
// worker already has a pending wakeup; workers drain queues in a loop,
// so no job is stranded either way.
func (st *jobStore) wakeWorkers() {
	select {
	case st.wakeCh <- struct{}{}:
	default:
	}
}

// notifyAll delivers coalescing wakeups to SSE subscribers. Sends are
// non-blocking: each subscriber channel holds one pending token and a
// slow stream simply sees several changes on its next iteration.
func notifyAll(subs []chan struct{}) {
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// notify wakes j's subscribers after an observable change.
func (st *jobStore) notify(j *job) {
	st.mu.Lock()
	subs := append([]chan struct{}(nil), j.subs...)
	st.mu.Unlock()
	notifyAll(subs)
}

// tallyLocked resolves a tenant's accounting, creating it on first use.
func (st *jobStore) tallyLocked(tenant string) *jobTally {
	t := st.tallies[tenant]
	if t == nil {
		t = &jobTally{}
		st.tallies[tenant] = t
	}
	return t
}

// submit admits one job: drain and quota checks, capacity eviction,
// then enqueue into the fair queue. The returned JobStatus is
// snapshotted inside the same critical section that enqueues, so a 202
// body always reads "queued" with zeroed progress — byte-stable no
// matter how fast a worker picks the job up.
func (st *jobStore) submit(tenant string, req JobCreateRequest, class string, priority int) (JobStatus, *apiError) {
	now := time.Now() //lint:allow wallclock job-store TTL/eviction deadlines, never enters a stall table
	st.mu.Lock()
	tally := st.tallyLocked(tenant)
	if st.draining {
		tally.rejected++
		st.mu.Unlock()
		return JobStatus{}, newAPIError(http.StatusServiceUnavailable, errDraining,
			"server is draining; not accepting new jobs")
	}
	st.evictExpiredLocked(now)
	if active := tally.queued + tally.running; active >= int64(st.quota) {
		tally.rejected++
		st.mu.Unlock()
		return JobStatus{}, newAPIError(http.StatusTooManyRequests, errQuotaExceeded,
			fmt.Sprintf("tenant %q has %d active jobs (quota %d)", tenant, active, st.quota))
	}
	if len(st.jobs) >= st.maxJobs && !st.evictOneLocked() {
		tally.rejected++
		st.mu.Unlock()
		return JobStatus{}, newAPIError(http.StatusTooManyRequests, errStoreFull,
			fmt.Sprintf("job store holds %d active jobs (max %d)", len(st.jobs), st.maxJobs))
	}
	st.nextSeq++
	j := &job{
		id:       fmt.Sprintf("job-%d", st.nextSeq),
		seq:      st.nextSeq,
		tenant:   tenant,
		class:    class,
		priority: priority,
		req:      req,
		state:    jobStateQueued,
		doneCh:   make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j)
	st.enqueueLocked(j)
	tally.accepted++
	tally.queued++
	snap := st.statusLocked(j)
	st.mu.Unlock()
	st.wakeWorkers()
	return snap, nil
}

// enqueueLocked inserts j into its (tenant, class) queue, activating
// scheduler nodes as needed. An idle entity rejoins at the current
// virtual time (max of its old pass and the last dispatch's pass), the
// stride-scheduling rule that stops an idle tenant from hoarding
// credit and then monopolizing the workers.
func (st *jobStore) enqueueLocked(j *job) {
	ts := st.sched[j.tenant]
	if ts == nil {
		w := st.weights[j.tenant]
		if w < 1 {
			w = 1
		}
		if w > strideScale {
			w = strideScale
		}
		ts = &tenantSched{name: j.tenant, stride: strideScale / w, pass: st.vtime}
		for i := range ts.classes {
			ts.classes[i].stride = strideScale / jobClasses[i].weight
			ts.classes[i].pass = ts.vtime
		}
		st.sched[j.tenant] = ts
	}
	if !ts.hasPending() {
		ts.pass = max(ts.pass, st.vtime)
	}
	cq := &ts.classes[classIndex(j.class)]
	if len(cq.jobs) == 0 {
		cq.pass = max(cq.pass, ts.vtime)
	}
	cq.jobs = append(cq.jobs, j)
}

// dispatchLocked picks the next job per the two-level stride schedule
// and transitions it queued -> running. Ties break deterministically:
// lexicographic tenant name, then class order (profile before
// recommend before experiments), then highest priority, then
// submission order — so a given submission history always dispatches
// in the same order regardless of goroutine scheduling.
func (st *jobStore) dispatchLocked() *job {
	var best *tenantSched
	for _, ts := range st.sched {
		if !ts.hasPending() {
			continue
		}
		if best == nil || ts.pass < best.pass || (ts.pass == best.pass && ts.name < best.name) {
			best = ts
		}
	}
	if best == nil {
		return nil
	}
	ci := -1
	for i := range best.classes {
		if len(best.classes[i].jobs) == 0 {
			continue
		}
		if ci < 0 || best.classes[i].pass < best.classes[ci].pass {
			ci = i
		}
	}
	cq := &best.classes[ci]
	bi := 0
	for i := 1; i < len(cq.jobs); i++ {
		if cq.jobs[i].priority > cq.jobs[bi].priority {
			bi = i
		}
	}
	j := cq.jobs[bi]
	cq.jobs = append(cq.jobs[:bi], cq.jobs[bi+1:]...)

	st.vtime = best.pass
	best.pass += best.stride
	best.vtime = cq.pass
	cq.pass += cq.stride

	j.state = jobStateRunning
	j.runCtx, j.cancel = context.WithCancel(context.Background())
	tally := st.tallyLocked(j.tenant)
	tally.queued--
	tally.running++
	return j
}

// removeQueuedLocked takes a queued job out of its class queue.
func (st *jobStore) removeQueuedLocked(j *job) {
	ts := st.sched[j.tenant]
	if ts == nil {
		return
	}
	cq := &ts.classes[classIndex(j.class)]
	for i, q := range cq.jobs {
		if q == j {
			cq.jobs = append(cq.jobs[:i], cq.jobs[i+1:]...)
			return
		}
	}
}

// finish records a running job's terminal result. If the job was
// cancelled while running, DELETE already took the terminal transition
// and the computed result is discarded.
func (st *jobStore) finish(j *job, result []byte, status int, errBody *ErrorBody) {
	now := time.Now() //lint:allow wallclock job-store TTL deadline, never enters a stall table
	st.mu.Lock()
	if j.state != jobStateRunning {
		st.mu.Unlock()
		return
	}
	tally := st.tallyLocked(j.tenant)
	tally.running--
	if errBody != nil {
		j.state = jobStateFailed
		e := *errBody
		j.errBody = &e
		tally.failed++
	} else {
		j.state = jobStateDone
		tally.done++
	}
	j.result, j.resultStatus = result, status
	st.doneSeq++
	j.doneSeq = st.doneSeq
	j.expireAt = now.Add(st.ttl)
	close(j.doneCh)
	subs := append([]chan struct{}(nil), j.subs...)
	st.mu.Unlock()
	notifyAll(subs)
}

// cancelLocked transitions a non-terminal job to cancelled: a queued
// job leaves its queue immediately; a running job is marked terminal
// here and now (its executor's context is cancelled by the caller via
// the returned func, and the executor discards whatever it computes).
// Terminal jobs are untouched. Returns the context cancel func to
// invoke after unlock (nil unless the job was running) and the
// subscriber channels to notify.
func (st *jobStore) cancelLocked(j *job, now time.Time) (context.CancelFunc, []chan struct{}) {
	tally := st.tallyLocked(j.tenant)
	var fn context.CancelFunc
	switch j.state {
	case jobStateQueued:
		st.removeQueuedLocked(j)
		tally.queued--
	case jobStateRunning:
		fn = j.cancel
		tally.running--
	default:
		return nil, nil
	}
	j.state = jobStateCancelled
	j.errBody = &ErrorBody{Code: errCancelled, Message: "job " + j.id + " was cancelled"}
	j.result = encodeJSON(ErrorResponse{Error: *j.errBody})
	j.resultStatus = http.StatusGone
	tally.cancelled++
	st.doneSeq++
	j.doneSeq = st.doneSeq
	j.expireAt = now.Add(st.ttl)
	close(j.doneCh)
	return fn, append([]chan struct{}(nil), j.subs...)
}

// cancel is DELETE /v2/jobs/{id}: cancel a job and return its status.
// Cancelling a terminal job is a no-op that returns the current state.
func (st *jobStore) cancel(tenant, id string) (JobStatus, *apiError) {
	now := time.Now() //lint:allow wallclock job-store TTL deadline, never enters a stall table
	st.mu.Lock()
	j := st.jobs[id]
	if j == nil || j.tenant != tenant {
		st.mu.Unlock()
		return JobStatus{}, newAPIError(http.StatusNotFound, errNotFound, "no job "+id)
	}
	fn, subs := st.cancelLocked(j, now)
	snap := st.statusLocked(j)
	st.mu.Unlock()
	if fn != nil {
		fn()
	}
	notifyAll(subs)
	return snap, nil
}

// progress is the core.WithProgress hook of one job: cells feed the
// job's atomics and the tenant's informational cell counter, then
// subscribers get a coalesced wakeup.
func (st *jobStore) progress(j *job, done, total int) {
	if done != 0 {
		j.cellsDone.Add(int64(done))
	}
	if total != 0 {
		j.cellsTotal.Add(int64(total))
	}
	st.mu.Lock()
	if done != 0 {
		st.tallyLocked(j.tenant).cells += int64(done)
	}
	subs := append([]chan struct{}(nil), j.subs...)
	st.mu.Unlock()
	notifyAll(subs)
}

// addPartial appends one settled partial result (already wire bytes).
func (st *jobStore) addPartial(j *job, label string, data []byte) {
	p := jobPartial{Label: label, Data: json.RawMessage(bytes.TrimRight(data, "\n"))}
	st.mu.Lock()
	j.partials = append(j.partials, p)
	subs := append([]chan struct{}(nil), j.subs...)
	st.mu.Unlock()
	notifyAll(subs)
}

// evictExpiredLocked drops terminal jobs past their TTL. Eviction is
// lazy — it runs on admissions and reads, not on a timer — so a quiet
// server holds results a little longer than the TTL, never less.
func (st *jobStore) evictExpiredLocked(now time.Time) {
	kept := st.order[:0]
	for _, j := range st.order {
		if terminalState(j.state) && !j.expireAt.After(now) {
			delete(st.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	st.order = kept
}

// evictOneLocked frees one slot by dropping the oldest-finished
// terminal job; false when every retained job is still active.
func (st *jobStore) evictOneLocked() bool {
	var victim *job
	for _, j := range st.order {
		if !terminalState(j.state) {
			continue
		}
		if victim == nil || j.doneSeq < victim.doneSeq {
			victim = j
		}
	}
	if victim == nil {
		return false
	}
	delete(st.jobs, victim.id)
	for i, j := range st.order {
		if j == victim {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	return true
}

// statusLocked snapshots one job as its wire resource.
func (st *jobStore) statusLocked(j *job) JobStatus {
	done := j.cellsDone.Load()
	total := j.cellsTotal.Load()
	s := JobStatus{
		ID:       j.id,
		Tenant:   j.tenant,
		Type:     j.class,
		State:    j.state,
		Priority: j.priority,
		Progress: JobProgress{CellsDone: done, CellsTotal: total},
	}
	if len(j.partials) > 0 {
		labels := make([]string, len(j.partials))
		for i, p := range j.partials {
			labels[i] = p.Label
		}
		s.Partials = labels
	}
	if j.errBody != nil {
		e := *j.errBody
		s.Error = &e
	}
	return s
}

// status snapshots one job under the store lock.
func (st *jobStore) status(j *job) JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.statusLocked(j)
}

// get resolves a job by id, scoped to the tenant: another tenant's job
// is indistinguishable from a missing one.
func (st *jobStore) get(tenant, id string) *job {
	now := time.Now() //lint:allow wallclock job-store TTL eviction on the read path, never enters a stall table
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictExpiredLocked(now)
	j := st.jobs[id]
	if j == nil || j.tenant != tenant {
		return nil
	}
	return j
}

// list snapshots the tenant's jobs in submission order, optionally
// filtered to one state.
func (st *jobStore) list(tenant, state string) []JobStatus {
	now := time.Now() //lint:allow wallclock job-store TTL eviction on the read path, never enters a stall table
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictExpiredLocked(now)
	out := []JobStatus{}
	for _, j := range st.order {
		if j.tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, st.statusLocked(j))
	}
	return out
}

// jobView is one consistent observation an SSE iteration works from:
// terminal state, result bytes and the partials beyond what the stream
// already sent, all read under one lock — so a terminal view always
// includes every partial.
type jobView struct {
	state        string
	errBody      *ErrorBody
	result       []byte
	resultStatus int
	partials     []jobPartial
	done         int64
	total        int64
}

// view reads one consistent jobView, returning partials from index
// `from` on.
func (st *jobStore) view(j *job, from int) jobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := jobView{
		state:        j.state,
		result:       j.result,
		resultStatus: j.resultStatus,
		done:         j.cellsDone.Load(),
		total:        j.cellsTotal.Load(),
	}
	if j.errBody != nil {
		e := *j.errBody
		v.errBody = &e
	}
	if from < len(j.partials) {
		v.partials = append([]jobPartial(nil), j.partials[from:]...)
	}
	return v
}

// subscribe registers an SSE wakeup channel on j.
func (st *jobStore) subscribe(j *job) chan struct{} {
	ch := make(chan struct{}, 1)
	st.mu.Lock()
	j.subs = append(j.subs, ch)
	st.mu.Unlock()
	return ch
}

// unsubscribe removes a wakeup channel registered by subscribe.
func (st *jobStore) unsubscribe(j *job, ch chan struct{}) {
	st.mu.Lock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
	st.mu.Unlock()
}

// counters snapshots every tenant's job accounting for /metrics and
// the deep health probe's conservation audit.
func (st *jobStore) counters() map[string]audit.JobCounters {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]audit.JobCounters, len(st.tallies))
	for name, t := range st.tallies {
		out[name] = audit.JobCounters{
			Accepted:  t.accepted,
			Rejected:  t.rejected,
			Done:      t.done,
			Failed:    t.failed,
			Cancelled: t.cancelled,
			Queued:    t.queued,
			Running:   t.running,
			Cells:     t.cells,
		}
	}
	return out
}

// size reports how many jobs the store currently retains.
func (st *jobStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// idle reports whether the store has no live jobs at all — the gate a
// cluster replica uses before stealing sweep cells from a peer: a
// replica with queued or running work of its own never moonlights.
func (st *jobStore) idle() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, t := range st.tallies {
		if t.queued+t.running > 0 {
			return false
		}
	}
	return true
}

// drain stops the job subsystem for graceful shutdown: new submissions
// are rejected (503 draining), queued jobs are cancelled, and running
// jobs get until ctx's deadline to finish before they are cancelled
// too. Safe to call once; later calls return immediately.
func (st *jobStore) drain(ctx context.Context) {
	now := time.Now() //lint:allow wallclock job-store TTL deadline for drain-cancelled jobs, never enters a stall table
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return
	}
	st.draining = true
	st.stopped = true
	var wake []chan struct{}
	var running []*job
	for _, j := range st.order {
		switch j.state {
		case jobStateQueued:
			_, subs := st.cancelLocked(j, now)
			wake = append(wake, subs...)
		case jobStateRunning:
			running = append(running, j)
		}
	}
	st.mu.Unlock()
	close(st.stopCh)
	notifyAll(wake)

	for _, j := range running {
		select {
		case <-j.doneCh:
			continue
		case <-ctx.Done():
		}
		// Deadline expired: force-cancel the stragglers.
		st.mu.Lock()
		fn, subs := st.cancelLocked(j, now)
		st.mu.Unlock()
		if fn != nil {
			fn()
		}
		notifyAll(subs)
	}
}

// validateJobCreate checks a POST /v2/jobs body: a known type, exactly
// its matching spec, and an in-range priority.
func validateJobCreate(req JobCreateRequest) (class string, priority int, aerr *apiError) {
	specs := 0
	if req.Profile != nil {
		specs++
	}
	if req.Recommend != nil {
		specs++
	}
	if req.Blame != nil {
		specs++
	}
	if req.Experiments != nil {
		specs++
	}
	bad := func(msg string) (string, int, *apiError) {
		return "", 0, newAPIError(http.StatusBadRequest, errInvalidRequest, msg)
	}
	switch req.Type {
	case "profile":
		if req.Profile == nil || specs != 1 {
			return bad(`"profile" jobs carry exactly the "profile" spec`)
		}
	case "recommend":
		if req.Recommend == nil || specs != 1 {
			return bad(`"recommend" jobs carry exactly the "recommend" spec`)
		}
	case "blame":
		if req.Blame == nil || specs != 1 {
			return bad(`"blame" jobs carry exactly the "blame" spec`)
		}
	case "experiments":
		if req.Experiments == nil || specs != 1 {
			return bad(`"experiments" jobs carry exactly the "experiments" spec`)
		}
	default:
		return bad(`"type" must be "profile", "recommend", "blame" or "experiments"`)
	}
	priority = defaultJobPriority
	if req.Priority != nil {
		priority = *req.Priority
		if priority < 0 || priority > maxJobPriority {
			return bad(fmt.Sprintf(`"priority" must be 0..%d, got %d`, maxJobPriority, priority))
		}
	}
	return req.Type, priority, nil
}

// executeJob runs one dispatched job to its terminal state. The job's
// context carries the tenant (per-tenant scenario conservation) and
// the progress hook (SSE cells); compute goes through the same
// functions as the synchronous v1 handlers, so the persisted result is
// byte-identical to the v1 response for the same request.
func (s *Server) executeJob(j *job) {
	defer j.cancel()
	ctx := core.WithTenant(j.runCtx, j.tenant)
	ctx = core.WithProgress(ctx, func(done, total int) { s.jobsStore.progress(j, done, total) })

	fail := func(aerr *apiError) {
		s.jobsStore.finish(j, encodeJSON(aerr.envelope()), aerr.status,
			&ErrorBody{Code: aerr.code, Message: aerr.message})
	}
	switch j.class {
	case "profile":
		resp, aerr := s.computeProfile(ctx, *j.req.Profile)
		if aerr != nil {
			fail(aerr)
			return
		}
		s.jobsStore.finish(j, encodeJSON(resp), http.StatusOK, nil)
	case "recommend":
		resp, aerr := s.computeRecommend(ctx, *j.req.Recommend)
		if aerr != nil {
			fail(aerr)
			return
		}
		s.jobsStore.finish(j, encodeJSON(resp), http.StatusOK, nil)
	case "blame":
		resp, aerr := s.computeBlame(ctx, *j.req.Blame)
		if aerr != nil {
			fail(aerr)
			return
		}
		s.jobsStore.finish(j, encodeJSON(resp), http.StatusOK, nil)
	case "experiments":
		ids := j.req.Experiments.IDs
		if len(ids) == 0 {
			reg := experiments.Registry()
			ids = make([]string, len(reg))
			for i, e := range reg {
				ids[i] = e.ID
			}
		}
		if s.clusterNode != nil && len(ids) > 1 {
			s.executeClusterSweep(j, ids, fail)
			return
		}
		out := JobExperimentsResult{Experiments: make([]*ExperimentResponse, 0, len(ids))}
		for _, id := range ids {
			resp, aerr := s.computeExperiment(ctx, id)
			if aerr != nil {
				fail(aerr)
				return
			}
			s.jobsStore.addPartial(j, id, encodeJSON(resp))
			out.Experiments = append(out.Experiments, resp)
		}
		s.jobsStore.finish(j, encodeJSON(out), http.StatusOK, nil)
	}
}

// handleJobCreate serves POST /v2/jobs: admit one asynchronous job and
// return its queued status immediately (202).
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	var req JobCreateRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidRequest, err.Error())
		return
	}
	class, priority, aerr := validateJobCreate(req)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	snap, aerr := s.jobsStore.submit(tenant, req, class, priority)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

// handleJobList serves GET /v2/jobs: the tenant's jobs in submission
// order, optionally filtered with ?state=.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	state := r.URL.Query().Get("state")
	switch state {
	case "", jobStateQueued, jobStateRunning, jobStateDone, jobStateFailed, jobStateCancelled:
	default:
		writeError(w, http.StatusBadRequest, errInvalidRequest,
			`"state" must be one of queued, running, done, failed, cancelled`)
		return
	}
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobsStore.list(tenant, state)})
}

// handleJobGet serves GET /v2/jobs/{id}: the job's status snapshot,
// including progress and settled partial labels.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	id := r.PathValue("id")
	j := s.jobsStore.get(tenant, id)
	if j == nil {
		writeError(w, http.StatusNotFound, errNotFound, "no job "+id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobsStore.status(j))
}

// handleJobResult serves GET /v2/jobs/{id}/result: replay the terminal
// job's persisted bytes with the status the synchronous call would
// have used (200 for done, the mapped error status for failed, 410 for
// cancelled). A non-terminal job answers 409 job_not_ready.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	id := r.PathValue("id")
	j := s.jobsStore.get(tenant, id)
	if j == nil {
		writeError(w, http.StatusNotFound, errNotFound, "no job "+id)
		return
	}
	v := s.jobsStore.view(j, 0)
	if !terminalState(v.state) {
		writeError(w, http.StatusConflict, errJobNotReady,
			fmt.Sprintf("job %s is %s; wait for a terminal state", id, v.state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(v.resultStatus)
	_, _ = w.Write(v.result)
}

// handleJobCancel serves DELETE /v2/jobs/{id}: cancel the job (a
// no-op on terminal jobs) and return its status.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := tenantOf(r)
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	snap, aerr := s.jobsStore.cancel(tenant, r.PathValue("id"))
	if aerr != nil {
		writeJSON(w, aerr.status, aerr.envelope())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}
