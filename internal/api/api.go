// Package api implements stashd's versioned HTTP surface: the Stash
// profiler, the recommendation engine and all 25 paper artifacts served
// as a JSON request/response API (see docs/API.md for the full
// contract).
//
// The server holds one shared single-flight profiler — the same
// memoized scenario cache the parallel experiment suite uses — so every
// request that needs a scenario another request already simulated gets
// it for free, and concurrent requests for the same scenario run
// exactly one simulation. Because the substrate is a deterministic
// simulator, every /v1 response is byte-stable for a given server
// configuration: two servers with the same flags return identical
// bytes for identical requests, which is what lets docs/API.md embed
// verified example responses.
//
// Operational behavior:
//
//   - every request runs under a per-request timeout (WithRequestTimeout)
//     whose context is threaded through core and experiments, so an
//     expired request stops at the next scenario boundary;
//   - heavy endpoints (/v1/profile, /v1/recommend, /v1/blame,
//     /v1/experiments/{id}) pass through a bounded-concurrency gate
//     (WithMaxConcurrent);
//     within a request, sweeps fan out on core.ForEach's worker pool
//     (WithParallelism);
//   - graceful shutdown is the caller's http.Server.Shutdown, which
//     drains in-flight profiles before returning (cmd/stashd wires it
//     to SIGTERM/SIGINT).
package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"stash/internal/audit"
	"stash/internal/cluster"
	"stash/internal/core"
	"stash/internal/experiments"
)

// DefaultRequestTimeout bounds one request's simulation work unless
// WithRequestTimeout overrides it.
const DefaultRequestTimeout = 60 * time.Second

// Option configures a Server.
type Option func(*Server)

// WithIterations sets the profiling window used by /v1/profile and
// /v1/recommend (default core.DefaultIterations, matching cmd/stash, so
// API numbers equal CLI numbers).
func WithIterations(n int) Option {
	return func(s *Server) { s.iterations = n }
}

// WithSeed sets the provisioning seed for the server's profiler and
// experiment runs.
func WithSeed(seed int64) Option {
	return func(s *Server) { s.seed = seed }
}

// WithParallelism bounds the per-request worker pools (recommendation
// candidates, experiment grid cells): 0 or negative = GOMAXPROCS,
// 1 = serial (the core.WithParallelism convention).
func WithParallelism(n int) Option {
	return func(s *Server) { s.parallelism = n }
}

// WithRequestTimeout sets the per-request deadline; the context is
// threaded through core/experiments, so the request stops at the next
// scenario boundary and returns 504.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithMaxConcurrent bounds how many heavy requests (profile, recommend,
// experiment runs) execute simultaneously; excess requests queue until
// a slot frees or their deadline expires (503). Default GOMAXPROCS.
func WithMaxConcurrent(n int) Option {
	return func(s *Server) { s.maxConcurrent = n }
}

// WithExperimentIterations sets the profiling window for
// /v1/experiments/{id} (default experiments.DefaultConfig().Iterations,
// matching cmd/characterize, so API tables equal CLI tables).
func WithExperimentIterations(n int) Option {
	return func(s *Server) { s.expIterations = n }
}

// WithJobWorkers sets the v2 job executor pool size (default
// DefaultJobWorkers). The pool is separate from the v1 concurrency
// gate by design: queued jobs can never starve synchronous calls.
func WithJobWorkers(n int) Option {
	return func(s *Server) { s.jobWorkers = n }
}

// WithJobTTL sets how long terminal job results stay replayable before
// they become evictable (default DefaultJobTTL). Eviction is lazy.
func WithJobTTL(d time.Duration) Option {
	return func(s *Server) { s.jobTTL = d }
}

// WithJobStoreMax caps how many jobs the store retains (default
// DefaultJobStoreMax); admissions beyond it evict the oldest terminal
// job, or fail with store_full when every retained job is active.
func WithJobStoreMax(n int) Option {
	return func(s *Server) { s.jobStoreMax = n }
}

// WithTenantQuota caps one tenant's active (queued + running) jobs
// (default DefaultTenantQuota).
func WithTenantQuota(n int) Option {
	return func(s *Server) { s.tenantQuota = n }
}

// WithTenantWeight assigns a fair-queueing weight to a tenant (default
// 1): a weight-3 tenant's jobs dispatch three times as often as a
// weight-1 tenant's while both are backlogged.
func WithTenantWeight(name string, w int) Option {
	return func(s *Server) {
		if s.tenantWeights == nil {
			s.tenantWeights = make(map[string]int64)
		}
		s.tenantWeights[name] = int64(w)
	}
}

// Server is the stashd HTTP service. Create with New, mount with
// Handler; it is safe for concurrent use.
type Server struct {
	iterations    int
	expIterations int
	seed          int64
	parallelism   int
	timeout       time.Duration
	maxConcurrent int
	jobWorkers    int
	jobTTL        time.Duration
	jobStoreMax   int
	tenantQuota   int
	tenantWeights map[string]int64

	profiler    *core.Profiler
	expCfg      experiments.Config
	clusterNode *cluster.Node
	sem         chan struct{}
	metrics     *metrics
	jobsStore   *jobStore
	mux         *http.ServeMux
}

// New builds a stashd server with the given options.
func New(opts ...Option) *Server {
	s := &Server{
		iterations:    core.DefaultIterations,
		expIterations: experiments.DefaultConfig().Iterations,
		seed:          1,
		timeout:       DefaultRequestTimeout,
		maxConcurrent: runtime.GOMAXPROCS(0),
		jobWorkers:    DefaultJobWorkers,
		jobTTL:        DefaultJobTTL,
		jobStoreMax:   DefaultJobStoreMax,
		tenantQuota:   DefaultTenantQuota,
	}
	for _, o := range opts {
		o(s)
	}
	if s.timeout <= 0 {
		s.timeout = DefaultRequestTimeout
	}
	if s.maxConcurrent < 1 {
		s.maxConcurrent = 1
	}
	s.profiler = core.New(
		core.WithIterations(s.iterations),
		core.WithSeed(s.seed),
		core.WithParallelism(s.parallelism),
	)
	s.expCfg = experiments.Config{
		Iterations:  s.expIterations,
		Seed:        s.seed,
		Parallelism: s.parallelism,
	}
	if s.clusterNode != nil {
		// Cluster mode: the experiments pool must be private to this
		// server (not the process-wide shared profiler), so each replica
		// owns exactly its own cache and counters; both pools consult
		// the ring on cache misses.
		s.expCfg.Pool = core.New(
			core.WithIterations(s.expIterations),
			core.WithSeed(s.seed),
			core.WithParallelism(s.parallelism),
		)
		s.profiler.SetRemote(s.clusterNode.Resolver("profile"))
		s.expCfg.Pool.SetRemote(s.clusterNode.Resolver("experiments"))
	}
	s.sem = make(chan struct{}, s.maxConcurrent)
	s.jobsStore = newJobStore(s.jobWorkers, s.jobTTL, s.jobStoreMax, s.tenantQuota, s.tenantWeights)
	s.metrics = newMetrics(s.profiler, s.expCfg, s.jobsStore, s.clusterNode)
	s.jobsStore.start(s.executeJob)
	if s.clusterNode != nil {
		s.clusterNode.Start(s.clusterBackend())
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.route("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("POST /v1/profile", s.route("profile", true, s.handleProfile))
	s.mux.HandleFunc("POST /v1/recommend", s.route("recommend", true, s.handleRecommend))
	s.mux.HandleFunc("POST /v1/blame", s.route("blame", true, s.handleBlame))
	s.mux.HandleFunc("GET /v1/experiments", s.route("experiments", false, s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.route("experiment", true, s.handleExperimentRun))
	s.mux.HandleFunc("POST /v2/jobs", s.route("job-create", false, s.handleJobCreate))
	s.mux.HandleFunc("GET /v2/jobs", s.route("job-list", false, s.handleJobList))
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.route("job-get", false, s.handleJobGet))
	s.mux.HandleFunc("GET /v2/jobs/{id}/result", s.route("job-result", false, s.handleJobResult))
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.routeStream("job-events", s.handleJobEvents))
	s.mux.HandleFunc("DELETE /v2/jobs/{id}", s.route("job-cancel", false, s.handleJobCancel))
	return s
}

// Drain gracefully stops the v2 job subsystem: new submissions are
// rejected with 503 draining, queued jobs are cancelled, and running
// jobs get until ctx's deadline to finish before being cancelled too.
// Call before http.Server.Shutdown so in-flight jobs settle while the
// listener still serves status polls and SSE streams.
func (s *Server) Drain(ctx context.Context) {
	s.jobsStore.drain(ctx)
}

// Handler returns the server's root handler: the /v1 API plus /healthz
// and /metrics, with method mismatches answered 405 and unknown paths
// 404 (both as JSON errors).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := s.mux.Handler(r); pattern == "" {
			// ServeMux would render its own text/plain 404/405; keep the
			// error contract JSON instead.
			code, ec := http.StatusNotFound, errNotFound
			if s.pathExists(r) {
				code, ec = http.StatusMethodNotAllowed, errMethodNotAllowed
			}
			s.metrics.observe("other", code, 0)
			writeError(w, code, ec, fmt.Sprintf("no handler for %s %s", r.Method, r.URL.Path))
			return
		}
		// Dispatch through the mux itself so pattern wildcards
		// (PathValue) are populated.
		s.mux.ServeHTTP(w, r)
	})
}

// pathExists reports whether the request path is served under some
// other method (drives 405 vs 404).
func (s *Server) pathExists(r *http.Request) bool {
	for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodDelete} {
		if m == r.Method {
			continue
		}
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := s.mux.Handler(probe); pattern != "" {
			return true
		}
	}
	return false
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Flush forwards to the underlying writer so SSE streams flush frames
// through the metrics wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route wraps a handler with the server's cross-cutting behavior:
// per-request timeout, the bounded-concurrency gate for heavy
// endpoints, and request/latency metrics.
func (s *Server) route(endpoint string, heavy bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //lint:allow wallclock request-latency metric for /metrics, never enters a stall table
		sw := &statusWriter{ResponseWriter: w}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		// Attribute the request's scenario activity to its tenant so the
		// per-tenant conservation counters cover v1 traffic too; an
		// invalid header just leaves the request unattributed here (the
		// v2 handlers reject it).
		if tenant, aerr := tenantOf(r); aerr == nil {
			ctx = core.WithTenant(ctx, tenant)
		}
		r = r.WithContext(ctx)

		if heavy {
			// Prefer a free slot over an expired deadline so a request
			// that could run immediately is never bounced with 503; a
			// dead context then surfaces as 504 from the handler itself.
			acquired := false
			select {
			case s.sem <- struct{}{}:
				acquired = true
			default:
			}
			if !acquired {
				select {
				case s.sem <- struct{}{}:
				case <-ctx.Done():
					writeError(sw, http.StatusServiceUnavailable, errOverloaded,
						"server at max concurrent requests; deadline expired while queued")
					//lint:allow wallclock request-latency metric for /metrics, never enters a stall table
					s.metrics.observe(endpoint, sw.status(), time.Since(start))
					return
				}
			}
			defer func() { <-s.sem }()
		}
		h(sw, r)
		//lint:allow wallclock request-latency metric for /metrics, never enters a stall table
		s.metrics.observe(endpoint, sw.status(), time.Since(start))
	}
}

// routeStream wraps a streaming handler (SSE) with metrics and tenant
// attribution but no per-request timeout and no concurrency gate: the
// stream lives until the job settles or the client disconnects, and it
// must never occupy a slot a simulation could use.
func (s *Server) routeStream(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //lint:allow wallclock request-latency metric for /metrics, never enters a stall table
		sw := &statusWriter{ResponseWriter: w}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		ctx := r.Context()
		if tenant, aerr := tenantOf(r); aerr == nil {
			ctx = core.WithTenant(ctx, tenant)
		}
		h(sw, r.WithContext(ctx))
		//lint:allow wallclock request-latency metric for /metrics, never enters a stall table
		s.metrics.observe(endpoint, sw.status(), time.Since(start))
	}
}

// handleHealthz answers liveness/readiness probes. The plain probe's
// body is static; ?deep=1 additionally runs the bounded invariant audit
// (audit.Quick) under the request's timeout plus a live conservation
// check of both scenario pools, so an orchestrator can distinguish "the
// process accepts connections" from "the profiling stack still computes
// consistent numbers". Both bodies are byte-stable for the docs
// verifier: the audit result carries no timings and the bounded slice
// evaluates a fixed set of checks.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("deep") != "1" {
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
		return
	}
	res, err := audit.Quick(r.Context(), audit.Options{
		Seed:        s.seed,
		Parallelism: s.parallelism,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	// The bounded slice audits a private profiler; the live pools get
	// the mid-flight conservation check (other requests may be running).
	for _, st := range []core.Stats{s.profiler.Stats(), experiments.SchedulerStats(s.expCfg)} {
		live := audit.CheckStatsLive(st)
		res.Checks += live.Checks
		res.Violations = append(res.Violations, live.Violations...)
	}
	// Per-tenant conservation, one layer per family: the scenario
	// counters of each pool (mirrored by core.WithTenant) and the job
	// lifecycle counters of the v2 store. A fresh server has no tenants
	// and adds no checks here.
	for _, pool := range []map[string]core.Stats{s.profiler.TenantStats(), experiments.SchedulerTenantStats(s.expCfg)} {
		for _, name := range sortedKeys(pool) {
			live := audit.CheckStatsLive(pool[name])
			res.Checks += live.Checks
			res.Violations = append(res.Violations, live.Violations...)
		}
	}
	jc := s.jobsStore.counters()
	for _, name := range sortedKeys(jc) {
		jres := audit.CheckJobCounters(name, jc[name])
		res.Checks += jres.Checks
		res.Violations = append(res.Violations, jres.Violations...)
	}
	s.metrics.auditChecks.Add(int64(res.Checks))
	s.metrics.auditViolations.Add(int64(len(res.Violations)))
	if !res.Ok() {
		writeError(w, http.StatusInternalServerError, errAuditFailed,
			"invariant audit failed: "+strings.Join(res.Strings(), "; "))
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok",
		Audit:  &AuditSummary{Checks: res.Checks, Violations: []string{}},
	})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, s.metrics.render())
}

// sortedKeys returns a string-keyed map's keys in sorted order — the
// repo-wide idiom for deterministic iteration over maps.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// decode parses a JSON request body into dst, rejecting unknown fields
// so client typos surface as 400s instead of silently ignored options.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// fail maps an error from the profiling stack to the API error
// contract via errToAPI (dto.go).
func (s *Server) fail(w http.ResponseWriter, err error) {
	aerr := errToAPI(err)
	writeJSON(w, aerr.status, aerr.envelope())
}
