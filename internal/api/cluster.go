package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"stash/internal/cluster"
	"stash/internal/core"
	"stash/internal/train"
)

// WithCluster joins the server to a stashd cluster. New takes ownership
// of starting the node (it injects the serving backend and calls
// node.Start); stopping it — and draining it ahead of Server.Drain on
// shutdown — stays with the caller, who created it and owns its
// listener.
//
// In cluster mode the experiments pool becomes a per-server profiler
// (experiments.Config.Pool) instead of the process-wide shared one:
// each replica must see only its own scenario cache and counters, or
// the single-flight audit could not distinguish a remote hit from a
// shared-memory hit.
func WithCluster(node *cluster.Node) Option {
	return func(s *Server) { s.clusterNode = node }
}

// clusterBackend is the serving side of the peer protocol: how this
// replica computes scenarios and sweep cells for its peers, and which
// counters it gossips. Everything dispatches through the same functions
// as the local paths, so a peer-served result is byte-identical to a
// locally computed one.
func (s *Server) clusterBackend() cluster.Backend {
	pools := map[string]*core.Profiler{
		"profile":     s.profiler,
		"experiments": s.expCfg.Pool,
	}
	return cluster.Backend{
		Scenario: func(ctx context.Context, pool string, spec core.ScenarioSpec) (*train.Result, error) {
			p := pools[pool]
			if p == nil {
				return nil, fmt.Errorf("%w: unknown pool %q", cluster.ErrDecline, pool)
			}
			job, it, err := core.SpecJob(spec)
			if err != nil {
				// A mixed-build cluster (unknown model/instance names)
				// declines rather than erroring: the requester computes
				// locally and nothing wrong is ever cached.
				return nil, fmt.Errorf("%w: %v", cluster.ErrDecline, err)
			}
			return p.RunLocalScenario(ctx, job, it, spec.Count, spec.GPUsPer, spec.Mode)
		},
		ExecCell: func(ctx context.Context, id string) ([]byte, *cluster.CellError) {
			resp, aerr := s.computeExperiment(ctx, id)
			if aerr != nil {
				return nil, &cluster.CellError{Status: aerr.status, Code: aerr.code, Message: aerr.message}
			}
			return encodeJSON(resp), nil
		},
		Idle: s.jobsStore.idle,
		Pools: func() map[string]core.Stats {
			return map[string]core.Stats{
				"profile":     s.profiler.Stats(),
				"experiments": s.expCfg.Pool.Stats(),
			}
		},
		TenantPools: func() map[string]map[string]core.Stats {
			return map[string]map[string]core.Stats{
				"profile":     s.profiler.TenantStats(),
				"experiments": s.expCfg.Pool.TenantStats(),
			}
		},
	}
}

// clusterExperimentsResult mirrors JobExperimentsResult with each
// entry's wire bytes kept verbatim: the merge step splices the
// committed cells — wherever they were computed — into exactly the
// bytes the single-node serial loop would have encoded.
type clusterExperimentsResult struct {
	Experiments []json.RawMessage `json:"experiments"`
}

// executeClusterSweep runs one experiments job as a cluster sweep: the
// owner computes cells from the head while idle replicas steal tail
// ranges, and commits arrive in strict index order. Progress is
// reported in experiment cells (not scenario cells like the single-node
// path): scenario-level hooks cannot see cells computed on peers, and a
// mixed count would not be monotone against any total.
func (s *Server) executeClusterSweep(j *job, ids []string, fail func(*apiError)) {
	// Tenant attribution only — deliberately no core progress hook
	// (see above); cells tick once per committed cell instead.
	ctx := core.WithTenant(j.runCtx, j.tenant)
	s.jobsStore.progress(j, 0, len(ids))

	parts := make([]json.RawMessage, 0, len(ids))
	cellErr, err := s.clusterNode.RunSweep(ctx, ids, j.tenant, func(i int, data []byte) {
		s.jobsStore.addPartial(j, ids[i], data)
		s.jobsStore.progress(j, 1, 0)
		parts = append(parts, json.RawMessage(bytes.TrimRight(data, "\n")))
	})
	switch {
	case err != nil:
		// Context death: same mapping the serial loop's
		// computeExperiment would have produced.
		fail(errToAPI(err))
	case cellErr != nil:
		// Lowest-index cell failure: cells before it are committed as
		// partials, the job fails with that cell's error — the serial
		// loop's stop-at-first-error semantics.
		fail(&apiError{status: cellErr.Status, code: cellErr.Code, message: cellErr.Message})
	default:
		s.jobsStore.finish(j, encodeJSON(clusterExperimentsResult{Experiments: parts}), http.StatusOK, nil)
	}
}
