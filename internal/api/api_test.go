package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a server with a small profiling window (fast)
// and returns it with an httptest frontend.
func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := New(append([]Option{WithIterations(4), WithExperimentIterations(4)}, opts...)...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

// errCode extracts the error envelope's code, failing on malformed
// bodies.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	return e.Error.Code
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d, body %s", code, body)
	}
	if got := strings.TrimSpace(string(body)); got != `{"status":"ok"}` {
		t.Errorf("healthz body = %s", got)
	}
}

func TestProfileSuccess(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/profile",
		`{"model":"resnet18","instance":"p3.16xlarge","batch":32}`)
	if code != http.StatusOK {
		t.Fatalf("profile = %d, body %s", code, body)
	}
	var resp ProfileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Model != "resnet18" || resp.Instance != "p3.16xlarge" || resp.Batch != 32 {
		t.Errorf("identity fields wrong: %+v", resp)
	}
	if resp.Interconnect.StallPct <= 0 || resp.Interconnect.AllGPUSeconds <= resp.Interconnect.SingleGPUSeconds {
		t.Errorf("interconnect stall not positive: %+v", resp.Interconnect)
	}
	if resp.Network == nil || resp.Network.Nodes != 2 {
		t.Errorf("expected 2-node network stall, got %+v", resp.Network)
	}
	if resp.Epoch.CostUSD <= 0 || resp.Epoch.TimeSeconds <= 0 {
		t.Errorf("epoch estimate empty: %+v", resp.Epoch)
	}
	if !strings.Contains(resp.Rendered, "I/C stall") {
		t.Errorf("rendered report missing: %q", resp.Rendered)
	}
}

func TestProfileDefaultsBatch(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet18","instance":"p3.2xlarge"}`)
	if code != http.StatusOK {
		t.Fatalf("profile = %d, body %s", code, body)
	}
	var resp ProfileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Batch != 32 {
		t.Errorf("default batch = %d, want 32", resp.Batch)
	}
	if resp.Network != nil {
		t.Errorf("single-GPU instance should have no network stall, got %+v", resp.Network)
	}
}

func TestProfileCustomNodes(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/profile",
		`{"model":"resnet18","instance":"p3.16xlarge","nodes":4}`)
	if code != http.StatusOK {
		t.Fatalf("profile = %d, body %s", code, body)
	}
	var resp ProfileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Network == nil || resp.Network.Nodes != 4 {
		t.Errorf("expected 4-node network stall, got %+v", resp.Network)
	}
}

func TestProfileValidationErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
		wantErr    string
	}{
		{"missing model", `{"instance":"p3.2xlarge"}`, http.StatusBadRequest, errInvalidRequest},
		{"missing instance", `{"model":"resnet18"}`, http.StatusBadRequest, errInvalidRequest},
		{"unknown model", `{"model":"nope","instance":"p3.2xlarge"}`, http.StatusBadRequest, errInvalidRequest},
		{"unknown instance", `{"model":"resnet18","instance":"m5.large"}`, http.StatusBadRequest, errInvalidRequest},
		{"negative batch", `{"model":"resnet18","instance":"p3.2xlarge","batch":-1}`, http.StatusBadRequest, errInvalidRequest},
		{"bad nodes", `{"model":"resnet18","instance":"p3.16xlarge","nodes":3}`, http.StatusBadRequest, errInvalidRequest},
		{"unknown field", `{"model":"resnet18","instance":"p3.2xlarge","iters":9}`, http.StatusBadRequest, errInvalidRequest},
		{"malformed JSON", `{"model":`, http.StatusBadRequest, errInvalidRequest},
		{"oom", `{"model":"bert-large","instance":"p3.2xlarge","batch":64}`, http.StatusUnprocessableEntity, errOOM},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/profile", c.body)
			if code != c.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", code, c.wantCode, body)
			}
			if got := errCode(t, body); got != c.wantErr {
				t.Errorf("error code = %q, want %q", got, c.wantErr)
			}
		})
	}
}

func TestMethodNotAllowedAndNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/v1/profile")
	if code != http.StatusMethodNotAllowed || errCode(t, body) != errMethodNotAllowed {
		t.Errorf("GET /v1/profile = %d %s", code, body)
	}
	code, body = getBody(t, ts.URL+"/v1/nothing")
	if code != http.StatusNotFound || errCode(t, body) != errNotFound {
		t.Errorf("GET /v1/nothing = %d %s", code, body)
	}
}

func TestRecommendSuccess(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/recommend",
		`{"model":"resnet18","batch":32,"families":["P3"],"max_epoch_seconds":14400}`)
	if code != http.StatusOK {
		t.Fatalf("recommend = %d, body %s", code, body)
	}
	var resp RecommendResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(resp.Candidates); i++ {
		if resp.Candidates[i].Epoch.CostUSD < resp.Candidates[i-1].Epoch.CostUSD {
			t.Errorf("candidates not cheapest-first at %d", i)
		}
	}
	if resp.Fastest < 0 || resp.Fastest >= len(resp.Candidates) {
		t.Errorf("fastest index %d out of range", resp.Fastest)
	}
	if resp.ModelAdvice == "" {
		t.Error("missing model advice")
	}
	for _, c := range resp.Candidates {
		if c.Epoch.Instance[:2] != "p3" {
			t.Errorf("family filter leaked %s", c.Instance)
		}
	}
}

func TestRecommendInfeasible(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/recommend",
		`{"model":"resnet18","max_cost_per_epoch":0.000001}`)
	if code != http.StatusUnprocessableEntity || errCode(t, body) != errInfeasible {
		t.Errorf("infeasible = %d %s", code, body)
	}
}

func TestRecommendValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"missing model":       `{}`,
		"negative constraint": `{"model":"resnet18","max_epoch_seconds":-5}`,
		"unknown field":       `{"model":"resnet18","budget":3}`,
	} {
		code, b := postJSON(t, ts.URL+"/v1/recommend", body)
		if code != http.StatusBadRequest || errCode(t, b) != errInvalidRequest {
			t.Errorf("%s: got %d %s", name, code, b)
		}
	}
}

func TestExperimentList(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	var resp ExperimentListResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Experiments) != 26 {
		t.Errorf("registry size = %d, want 26", len(resp.Experiments))
	}
	if resp.Experiments[0].ID != "table1" {
		t.Errorf("first experiment = %q, want table1 (paper order)", resp.Experiments[0].ID)
	}
}

func TestExperimentRun(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/v1/experiments/table2")
	if code != http.StatusOK {
		t.Fatalf("run = %d, body %s", code, body)
	}
	var resp ExperimentResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.ID != "table2" || len(resp.Tables) == 0 {
		t.Fatalf("bad response: %+v", resp)
	}
	var tbl struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	raw, _ := json.Marshal(resp.Tables[0])
	if err := json.Unmarshal(raw, &tbl); err != nil {
		t.Fatalf("table decode: %v", err)
	}
	if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
		t.Errorf("empty table: %+v", tbl)
	}
}

func TestExperimentUnknown(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL+"/v1/experiments/fig99")
	if code != http.StatusNotFound || errCode(t, body) != errNotFound {
		t.Errorf("unknown experiment = %d %s", code, body)
	}
}

// TestRequestTimeout pins the 504 path: with a nanosecond deadline the
// context expires before the first scenario, and the pipeline's
// cancellation check surfaces it as a timeout error.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, WithRequestTimeout(time.Nanosecond))
	code, body := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet18","instance":"p3.2xlarge"}`)
	if code != http.StatusGatewayTimeout || errCode(t, body) != errTimeout {
		t.Errorf("timeout = %d %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/recommend", `{"model":"resnet18"}`)
	if code != http.StatusGatewayTimeout || errCode(t, body) != errTimeout {
		t.Errorf("recommend timeout = %d %s", code, body)
	}
	code, body = getBody(t, ts.URL+"/v1/experiments/fig5")
	if code != http.StatusGatewayTimeout || errCode(t, body) != errTimeout {
		t.Errorf("experiment timeout = %d %s", code, body)
	}
}

// TestOverloadedQueue pins the 503 path deterministically: the single
// concurrency slot is taken, and the request arrives with an already
// expired context, so the gate's select can only take the Done branch.
func TestOverloadedQueue(t *testing.T) {
	s := New(WithIterations(4), WithMaxConcurrent(1))
	s.sem <- struct{}{} // occupy the only heavy slot
	defer func() { <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/profile",
		strings.NewReader(`{"model":"resnet18","instance":"p3.2xlarge"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request = %d, body %s", rec.Code, rec.Body)
	}
	if got := errCode(t, rec.Body.Bytes()); got != errOverloaded {
		t.Errorf("error code = %q, want %q", got, errOverloaded)
	}
}

// TestConcurrentProfilesDeterministic hammers one workload from many
// goroutines: every response must be byte-identical (the single-flight
// cache shares one simulation), and repeats must not re-simulate.
func TestConcurrentProfilesDeterministic(t *testing.T) {
	s, ts := newTestServer(t)
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
				strings.NewReader(`{"model":"resnet18","instance":"p3.8xlarge"}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	simulated := s.profiler.Stats().Simulated
	// A repeat of the same workload must be served fully from cache.
	code, _ := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet18","instance":"p3.8xlarge"}`)
	if code != http.StatusOK {
		t.Fatalf("repeat = %d", code)
	}
	if got := s.profiler.Stats().Simulated; got != simulated {
		t.Errorf("repeat re-simulated: %d -> %d scenarios", simulated, got)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet18","instance":"p3.2xlarge"}`); code != http.StatusOK {
		t.Fatalf("profile = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/experiments/table1"); code != http.StatusOK {
		t.Fatalf("experiment = %d", code)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`stashd_requests_total{endpoint="profile",code="200"} 1`,
		`stashd_requests_total{endpoint="experiment",code="200"} 1`,
		`stashd_request_duration_seconds_count{endpoint="profile"} 1`,
		`stashd_inflight_requests`,
		`stashd_scenarios_simulated_total{pool="profile"}`,
		`stashd_scenario_cache_hits_total{pool="experiments"}`,
		`stashd_scenario_singleflight_waits_total{pool="profile"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestGracefulShutdownDrainsInflight starts a real http.Server, parks a
// profile request in flight (observed via the inflight gauge), then
// calls Shutdown: the request must complete with 200 and Shutdown must
// return only after it drained.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	s := New(WithIterations(600)) // large window => the profile takes a while
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = hs.Serve(ln) }()
	url := fmt.Sprintf("http://%s/v1/profile", ln.Addr())

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"model":"vgg11","instance":"p3.16xlarge"}`))
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, nil}
	}()

	// Wait until the request is actually in flight before shutting down.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Errorf("in-flight request = %d, want 200", r.code)
	}
}
