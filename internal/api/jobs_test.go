package api

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// doJSON issues one request with an optional tenant header and returns
// status and body.
func doJSON(t *testing.T, method, url, tenant, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

// submitJob posts one job and returns its id, asserting the 202
// contract: the snapshot always reads queued with zeroed progress.
func submitJob(t *testing.T, base, tenant, body string) string {
	t.Helper()
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", tenant, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", code, b)
	}
	var js JobStatus
	if err := json.Unmarshal(b, &js); err != nil {
		t.Fatalf("unmarshal 202 body %s: %v", b, err)
	}
	if js.State != jobStateQueued || js.Progress.CellsDone != 0 || js.Progress.CellsTotal != 0 {
		t.Fatalf("202 snapshot not queued/0/0: %+v", js)
	}
	return js.ID
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, base, tenant, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, b := doJSON(t, http.MethodGet, base+"/v2/jobs/"+id, tenant, "")
		if code != http.StatusOK {
			t.Fatalf("status %s = %d, body %s", id, code, b)
		}
		var js JobStatus
		if err := json.Unmarshal(b, &js); err != nil {
			t.Fatalf("unmarshal status %s: %v", b, err)
		}
		if terminalState(js.State) {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, js.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobProfileByteIdentity is the core v2 contract: a profile job's
// persisted result is byte-identical to the synchronous v1 response for
// the same request.
func TestJobProfileByteIdentity(t *testing.T) {
	_, ts := newTestServer(t)
	const spec = `{"model":"resnet18","instance":"p3.16xlarge","batch":32}`
	v1Code, v1Body := postJSON(t, ts.URL+"/v1/profile", spec)
	if v1Code != http.StatusOK {
		t.Fatalf("v1 profile = %d", v1Code)
	}

	id := submitJob(t, ts.URL, "", `{"type":"profile","profile":`+spec+`}`)
	js := waitTerminal(t, ts.URL, "", id)
	if js.State != jobStateDone {
		t.Fatalf("job state = %s, error %+v", js.State, js.Error)
	}
	// 4 measurement stages on an 8-GPU instance: interconnect, data,
	// network, epoch.
	if js.Progress.CellsDone != 4 || js.Progress.CellsTotal != 4 {
		t.Errorf("progress = %d/%d, want 4/4", js.Progress.CellsDone, js.Progress.CellsTotal)
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+id+"/result", "", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d, body %s", code, body)
	}
	if string(body) != string(v1Body) {
		t.Errorf("job result differs from v1 response:\njob: %s\nv1:  %s", body, v1Body)
	}
	// Replay is idempotent: fetching again returns the same bytes.
	_, again := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+id+"/result", "", "")
	if string(again) != string(body) {
		t.Error("result replay not byte-stable")
	}
}

// TestJobExperimentsSweepByteIdentity runs a two-artifact sweep: each
// settled partial is labelled in request order, and the final result
// wraps responses byte-identical to the synchronous v1 endpoints.
func TestJobExperimentsSweepByteIdentity(t *testing.T) {
	_, ts := newTestServer(t)
	ids := []string{"table2", "fig5"}
	v1 := make(map[string]string, len(ids))
	for _, id := range ids {
		code, b := getBody(t, ts.URL+"/v1/experiments/"+id)
		if code != http.StatusOK {
			t.Fatalf("v1 %s = %d", id, code)
		}
		v1[id] = strings.TrimSuffix(string(b), "\n")
	}

	jobID := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{"ids":["table2","fig5"]}}`)
	js := waitTerminal(t, ts.URL, "", jobID)
	if js.State != jobStateDone {
		t.Fatalf("job state = %s, error %+v", js.State, js.Error)
	}
	if len(js.Partials) != 2 || js.Partials[0] != "table2" || js.Partials[1] != "fig5" {
		t.Errorf("partial labels = %v, want [table2 fig5]", js.Partials)
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+jobID+"/result", "", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	var out struct {
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if len(out.Experiments) != 2 {
		t.Fatalf("result carries %d experiments, want 2", len(out.Experiments))
	}
	for i, id := range ids {
		if string(out.Experiments[i]) != v1[id] {
			t.Errorf("%s result differs from v1:\njob: %s\nv1:  %s", id, out.Experiments[i], v1[id])
		}
	}
}

// TestJobFailureReplaysV1Error pins the failed path: the job persists
// the exact v1 error envelope and replays it with the mapped status.
func TestJobFailureReplaysV1Error(t *testing.T) {
	_, ts := newTestServer(t)
	const spec = `{"model":"bert-large","instance":"p3.2xlarge","batch":64}` // OOM
	v1Code, v1Body := postJSON(t, ts.URL+"/v1/profile", spec)
	if v1Code != http.StatusUnprocessableEntity {
		t.Fatalf("v1 oom = %d", v1Code)
	}

	id := submitJob(t, ts.URL, "", `{"type":"profile","profile":`+spec+`}`)
	js := waitTerminal(t, ts.URL, "", id)
	if js.State != jobStateFailed {
		t.Fatalf("job state = %s, want failed", js.State)
	}
	if js.Error == nil || js.Error.Code != errOOM {
		t.Fatalf("job error = %+v, want %s", js.Error, errOOM)
	}
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+id+"/result", "", "")
	if code != http.StatusUnprocessableEntity || string(body) != string(v1Body) {
		t.Errorf("failed replay = %d %s, want %d %s", code, body, v1Code, v1Body)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown type", `{"type":"sweep"}`},
		{"missing spec", `{"type":"profile"}`},
		{"mismatched spec", `{"type":"profile","recommend":{"model":"resnet18"}}`},
		{"two specs", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"},"recommend":{"model":"resnet18"}}`},
		{"priority out of range", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"},"priority":10}`},
		{"malformed JSON", `{"type":`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, b := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", "", c.body)
			if code != http.StatusBadRequest || errCode(t, b) != errInvalidRequest {
				t.Errorf("got %d %s", code, b)
			}
		})
	}
	t.Run("invalid tenant header", func(t *testing.T) {
		code, b := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", "no spaces allowed",
			`{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
		if code != http.StatusBadRequest || errCode(t, b) != errInvalidRequest {
			t.Errorf("got %d %s", code, b)
		}
	})
	t.Run("bad state filter", func(t *testing.T) {
		code, b := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs?state=paused", "", "")
		if code != http.StatusBadRequest || errCode(t, b) != errInvalidRequest {
			t.Errorf("got %d %s", code, b)
		}
	})
}

// TestJobTenantScoping: a job is invisible to other tenants — status,
// result, events and cancel all 404.
func TestJobTenantScoping(t *testing.T) {
	_, ts := newTestServer(t)
	id := submitJob(t, ts.URL, "acme", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	waitTerminal(t, ts.URL, "acme", id)
	for _, path := range []string{"/v2/jobs/" + id, "/v2/jobs/" + id + "/result", "/v2/jobs/" + id + "/events"} {
		code, b := doJSON(t, http.MethodGet, ts.URL+path, "globex", "")
		if code != http.StatusNotFound {
			t.Errorf("GET %s as globex = %d %s", path, code, b)
		}
	}
	code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+id, "globex", "")
	if code != http.StatusNotFound {
		t.Errorf("DELETE as globex = %d", code)
	}
	// The owner still sees it, and list scoping holds.
	var list JobListResponse
	_, b := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs", "acme", "")
	if err := json.Unmarshal(b, &list); err != nil || len(list.Jobs) != 1 {
		t.Errorf("acme list = %s (err %v)", b, err)
	}
	_, b = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs", "globex", "")
	if err := json.Unmarshal(b, &list); err != nil || len(list.Jobs) != 0 {
		t.Errorf("globex list = %s (err %v)", b, err)
	}
}

// TestJobQuotaExceeded pins per-tenant admission: with quota 1 the
// second submission bounces 429 without touching other tenants.
func TestJobQuotaExceeded(t *testing.T) {
	s, ts := newTestServer(t, WithTenantQuota(1), WithJobWorkers(1))
	// A full-registry sweep keeps the tenant's one slot active.
	sweep := submitJob(t, ts.URL, "acme", `{"type":"experiments","experiments":{}}`)
	code, b := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", "acme",
		`{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	if code != http.StatusTooManyRequests || errCode(t, b) != errQuotaExceeded {
		t.Fatalf("over-quota submit = %d %s", code, b)
	}
	// Another tenant is unaffected by acme's quota.
	other := submitJob(t, ts.URL, "globex", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)

	// The rejection is accounted but outside the lifecycle balance.
	jc := s.jobsStore.counters()
	if jc["acme"].Rejected != 1 || jc["acme"].Accepted != 1 || jc["acme"].Balance() != 0 {
		t.Errorf("acme counters = %+v", jc["acme"])
	}

	doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+sweep, "acme", "")
	waitTerminal(t, ts.URL, "globex", other)
	// After the cancel frees the slot, acme can submit again.
	id := submitJob(t, ts.URL, "acme", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	waitTerminal(t, ts.URL, "acme", id)
}

// TestJobCancel covers both cancellation paths: a queued job leaves the
// queue immediately; a running job is cancelled mid-flight and its
// computed result discarded. Both replay 410 Gone.
func TestJobCancel(t *testing.T) {
	_, ts := newTestServer(t, WithJobWorkers(1))
	running := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{}}`) // occupies the only worker
	queued := submitJob(t, ts.URL, "", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)

	// Cancel the queued job: synchronously terminal.
	code, b := doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+queued, "", "")
	var js JobStatus
	if code != http.StatusOK {
		t.Fatalf("cancel queued = %d %s", code, b)
	}
	if err := json.Unmarshal(b, &js); err != nil || js.State != jobStateCancelled {
		t.Fatalf("cancel queued state = %s (err %v)", b, err)
	}
	code, b = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+queued+"/result", "", "")
	if code != http.StatusGone || errCode(t, b) != errCancelled {
		t.Errorf("cancelled result = %d %s", code, b)
	}

	// Cancel the running sweep: also synchronously terminal, worker freed.
	code, b = doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+running, "", "")
	if code != http.StatusOK {
		t.Fatalf("cancel running = %d %s", code, b)
	}
	if err := json.Unmarshal(b, &js); err != nil || js.State != jobStateCancelled {
		t.Fatalf("cancel running state = %s (err %v)", b, err)
	}
	// Cancelling again is a no-op returning the terminal state.
	code, b = doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+running, "", "")
	if err := json.Unmarshal(b, &js); code != http.StatusOK || err != nil || js.State != jobStateCancelled {
		t.Errorf("re-cancel = %d %s", code, b)
	}
	// Unknown job: 404.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/job-99", "", ""); code != http.StatusNotFound {
		t.Errorf("cancel unknown = %d", code)
	}

	// The freed worker still serves new jobs.
	id := submitJob(t, ts.URL, "", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	if js := waitTerminal(t, ts.URL, "", id); js.State != jobStateDone {
		t.Errorf("post-cancel job = %s", js.State)
	}
}

// TestJobResultNotReady: fetching a non-terminal job's result is 409.
func TestJobResultNotReady(t *testing.T) {
	_, ts := newTestServer(t, WithJobWorkers(1))
	running := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{}}`)
	queued := submitJob(t, ts.URL, "", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	code, b := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+queued+"/result", "", "")
	if code != http.StatusConflict || errCode(t, b) != errJobNotReady {
		t.Errorf("queued result = %d %s", code, b)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+running, "", "")
	doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+queued, "", "")
}

// TestJobWFQTenantFairness drives dispatchLocked directly (no workers):
// a weight-2 tenant with a deep backlog dispatches twice as often as a
// weight-1 tenant, with ties broken lexicographically — the full order
// is a pure function of the submission history.
func TestJobWFQTenantFairness(t *testing.T) {
	st := newJobStore(1, time.Minute, 64, 32, map[string]int64{"a": 2, "b": 1})
	spec := JobCreateRequest{Type: "profile"}
	for i := 0; i < 4; i++ {
		if _, aerr := st.submit("a", spec, "profile", defaultJobPriority); aerr != nil {
			t.Fatal(aerr.message)
		}
	}
	for i := 0; i < 2; i++ {
		if _, aerr := st.submit("b", spec, "profile", defaultJobPriority); aerr != nil {
			t.Fatal(aerr.message)
		}
	}
	var order []string
	for {
		st.mu.Lock()
		j := st.dispatchLocked()
		st.mu.Unlock()
		if j == nil {
			break
		}
		order = append(order, j.tenant)
		st.finish(j, []byte("{}\n"), http.StatusOK, nil)
	}
	want := "a b a a b a" // weight 2:1 interleave, lexicographic tie-break
	if got := strings.Join(order, " "); got != want {
		t.Errorf("dispatch order = %q, want %q", got, want)
	}
}

// TestJobWFQClassWeights: within one tenant, classes dispatch by their
// 4:2:1 strides with class-order tie-breaks.
func TestJobWFQClassWeights(t *testing.T) {
	st := newJobStore(1, time.Minute, 64, 32, nil)
	for i := 0; i < 3; i++ {
		if _, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", defaultJobPriority); aerr != nil {
			t.Fatal(aerr.message)
		}
	}
	if _, aerr := st.submit("t", JobCreateRequest{Type: "recommend"}, "recommend", defaultJobPriority); aerr != nil {
		t.Fatal(aerr.message)
	}
	if _, aerr := st.submit("t", JobCreateRequest{Type: "experiments"}, "experiments", defaultJobPriority); aerr != nil {
		t.Fatal(aerr.message)
	}
	var order []string
	for {
		st.mu.Lock()
		j := st.dispatchLocked()
		st.mu.Unlock()
		if j == nil {
			break
		}
		order = append(order, j.class)
		st.finish(j, []byte("{}\n"), http.StatusOK, nil)
	}
	want := "profile recommend experiments profile profile"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("class dispatch order = %q, want %q", got, want)
	}
}

// TestJobPriorityWithinClass: priority reorders one (tenant, class)
// queue; equal priorities keep submission order.
func TestJobPriorityWithinClass(t *testing.T) {
	st := newJobStore(1, time.Minute, 64, 32, nil)
	ids := make(map[string]string) // label -> job id
	for _, c := range []struct {
		label string
		prio  int
	}{{"low", 3}, {"mid1", 5}, {"high", 9}, {"mid2", 5}} {
		snap, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", c.prio)
		if aerr != nil {
			t.Fatal(aerr.message)
		}
		ids[c.label] = snap.ID
	}
	var order []string
	for {
		st.mu.Lock()
		j := st.dispatchLocked()
		st.mu.Unlock()
		if j == nil {
			break
		}
		for label, id := range ids {
			if id == j.id {
				order = append(order, label)
			}
		}
		st.finish(j, []byte("{}\n"), http.StatusOK, nil)
	}
	if got := strings.Join(order, " "); got != "high mid1 mid2 low" {
		t.Errorf("priority order = %q, want %q", got, "high mid1 mid2 low")
	}
}

// TestJobStoreEvictionTTLAndLRU pins both eviction paths at the store
// level: a full store evicts its oldest-finished terminal job to admit
// a new one, refuses when everything is live, and TTL-expired results
// vanish on the next touch.
func TestJobStoreEvictionTTLAndLRU(t *testing.T) {
	st := newJobStore(1, 50*time.Millisecond, 2, 32, nil)
	finishOne := func() string {
		t.Helper()
		snap, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", defaultJobPriority)
		if aerr != nil {
			t.Fatal(aerr.message)
		}
		st.mu.Lock()
		j := st.dispatchLocked()
		st.mu.Unlock()
		if j == nil || j.id != snap.ID {
			t.Fatalf("dispatch returned %v, want %s", j, snap.ID)
		}
		st.finish(j, []byte("{}\n"), http.StatusOK, nil)
		return snap.ID
	}
	first := finishOne()
	second := finishOne()
	// Store is at max 2 with two terminal jobs: admitting a third evicts
	// the oldest-finished (first).
	third, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", defaultJobPriority)
	if aerr != nil {
		t.Fatal(aerr.message)
	}
	if st.get("t", first) != nil {
		t.Error("oldest terminal job not LRU-evicted")
	}
	if st.get("t", second) == nil {
		t.Error("newer terminal job evicted out of order")
	}
	// Now both slots are an active job + a terminal one; cancel nothing:
	// a fourth submission evicts `second`, a fifth finds only live jobs
	// and bounces store_full.
	if _, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", defaultJobPriority); aerr != nil {
		t.Fatalf("fourth submit: %s", aerr.message)
	}
	if _, aerr := st.submit("t", JobCreateRequest{Type: "profile"}, "profile", defaultJobPriority); aerr == nil || aerr.code != errStoreFull {
		t.Fatalf("fifth submit should bounce store_full, got %v", aerr)
	}
	// TTL: run the live jobs to terminal, let them expire, and any read
	// path evicts them.
	for {
		st.mu.Lock()
		j := st.dispatchLocked()
		st.mu.Unlock()
		if j == nil {
			break
		}
		st.finish(j, []byte("{}\n"), http.StatusOK, nil)
	}
	time.Sleep(80 * time.Millisecond)
	if got := st.list("t", ""); len(got) != 0 {
		t.Errorf("TTL-expired jobs still listed: %v", got)
	}
	if st.size() != 0 {
		t.Errorf("store retains %d jobs after TTL", st.size())
	}
	_ = third
	// Lifecycle conservation survived all the eviction churn.
	for tenant, c := range st.counters() {
		if c.Balance() != 0 {
			t.Errorf("tenant %s leaks: %+v", tenant, c)
		}
	}
}

// TestJobStoreEvictionRace hammers a tiny store (capacity 4, 1ms TTL)
// from concurrent submitters, readers and cancellers; the race detector
// checks synchronization and the conservation audit checks accounting.
func TestJobStoreEvictionRace(t *testing.T) {
	s, ts := newTestServer(t, WithJobStoreMax(4), WithJobTTL(time.Millisecond), WithTenantQuota(4))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tenant := []string{"acme", "globex"}[g%2]
			for i := 0; i < 12; i++ {
				code, b := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", tenant,
					`{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
				switch code {
				case http.StatusAccepted:
					var js JobStatus
					if err := json.Unmarshal(b, &js); err != nil {
						t.Errorf("unmarshal: %v", err)
						return
					}
					switch rng.Intn(3) {
					case 0:
						doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+js.ID, tenant, "")
					case 1:
						doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+js.ID, tenant, "")
					default:
						doJSON(t, http.MethodGet, ts.URL+"/v2/jobs", tenant, "")
					}
				case http.StatusTooManyRequests:
					// quota or store_full under pressure: expected.
				default:
					t.Errorf("submit = %d %s", code, b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiesce: every remaining live job runs or was cancelled.
	deadline := time.Now().Add(60 * time.Second)
	for {
		live := false
		for _, c := range s.jobsStore.counters() {
			if c.Queued+c.Running > 0 {
				live = true
			}
		}
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for tenant, c := range s.jobsStore.counters() {
		if c.Balance() != 0 {
			t.Errorf("tenant %s leaks after churn: %+v", tenant, c)
		}
	}
	// The deep health probe agrees.
	code, b := getBody(t, ts.URL+"/healthz?deep=1")
	if code != http.StatusOK {
		t.Errorf("healthz deep after churn = %d %s", code, b)
	}
}

// TestFullRegistrySweepAcceptance is the acceptance scenario from the
// issue, in one pass over a single full-registry sweep: (1) the SSE
// stream reports monotonic progress and one partial per artifact, (2) a
// synchronous /v1/profile completes through its reserved lane while the
// sweep holds the job workers, and (3) every persisted partial is
// byte-identical to the corresponding synchronous /v1/experiments/{id}
// response (fetched afterwards — the shared single-flight cache makes
// those replays, so the comparison costs no second simulation).
func TestFullRegistrySweepAcceptance(t *testing.T) {
	_, ts := newTestServer(t)
	id := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{}}`)

	type stream struct {
		events []sseEvent
	}
	streamed := make(chan stream, 1)
	go func() {
		_, events := readStream(t, ts.URL, "", id)
		streamed <- stream{events}
	}()

	// The sweep is live; the v1 lane must answer anyway.
	code, b := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+id, "", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var before JobStatus
	if err := json.Unmarshal(b, &before); err != nil || terminalState(before.State) {
		t.Fatalf("sweep already terminal before the v1 call: %s (err %v)", b, err)
	}
	code, body := postJSON(t, ts.URL+"/v1/profile", `{"model":"vgg11","instance":"p3.2xlarge"}`)
	if code != http.StatusOK {
		t.Fatalf("v1 profile while the sweep holds the workers = %d, body %s", code, body)
	}

	js := waitTerminal(t, ts.URL, "", id)
	if js.State != jobStateDone {
		t.Fatalf("sweep = %s, error %+v", js.State, js.Error)
	}

	// SSE stream: monotonic progress, ends with the result event.
	st := <-streamed
	var lastDone, lastTotal int64 = -1, -1
	partials := 0
	for _, ev := range st.events {
		switch ev.typ {
		case ssePartial:
			partials++
		case sseProgress:
			var p JobProgress
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("progress %s: %v", ev.data, err)
			}
			if p.CellsDone < lastDone || p.CellsTotal < lastTotal || p.CellsDone > p.CellsTotal {
				t.Errorf("progress not monotonic: %d/%d after %d/%d", p.CellsDone, p.CellsTotal, lastDone, lastTotal)
			}
			lastDone, lastTotal = p.CellsDone, p.CellsTotal
		}
	}
	if partials != len(js.Partials) {
		t.Errorf("stream carried %d partials, status lists %d", partials, len(js.Partials))
	}
	if last := st.events[len(st.events)-1]; last.typ != sseResult {
		t.Errorf("stream ends with %s, want result", last.typ)
	}

	// Byte-identity of the persisted sweep against the synchronous API,
	// artifact by artifact across the whole registry.
	code, resBody := doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+id+"/result", "", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	var out struct {
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(resBody, &out); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if len(out.Experiments) != len(js.Partials) || len(out.Experiments) == 0 {
		t.Fatalf("result carries %d experiments, partial labels %d", len(out.Experiments), len(js.Partials))
	}
	for i, label := range js.Partials {
		v1Code, v1Body := getBody(t, ts.URL+"/v1/experiments/"+label)
		if v1Code != http.StatusOK {
			t.Fatalf("v1 %s = %d", label, v1Code)
		}
		if string(out.Experiments[i]) != strings.TrimSuffix(string(v1Body), "\n") {
			t.Errorf("%s: sweep result differs from v1 response", label)
		}
	}
}

// TestJobDrain: drain rejects new submissions, cancels queued jobs and
// force-cancels running jobs past the deadline; conservation holds.
func TestJobDrain(t *testing.T) {
	s, ts := newTestServer(t, WithJobWorkers(1))
	running := submitJob(t, ts.URL, "", `{"type":"experiments","experiments":{}}`)
	queued := submitJob(t, ts.URL, "", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx)

	if js := waitTerminal(t, ts.URL, "", queued); js.State != jobStateCancelled {
		t.Errorf("queued job after drain = %s", js.State)
	}
	if js := waitTerminal(t, ts.URL, "", running); js.State != jobStateCancelled {
		t.Errorf("running job after short-deadline drain = %s", js.State)
	}
	code, b := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", "",
		`{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	if code != http.StatusServiceUnavailable || errCode(t, b) != errDraining {
		t.Errorf("submit while draining = %d %s", code, b)
	}
	// Drain is idempotent.
	s.Drain(ctx)
	for tenant, c := range s.jobsStore.counters() {
		if c.Balance() != 0 {
			t.Errorf("tenant %s leaks after drain: %+v", tenant, c)
		}
	}
}

// TestJobMetrics: the per-tenant job and scenario series appear in
// /metrics with conserving values.
func TestJobMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	id := submitJob(t, ts.URL, "acme", `{"type":"profile","profile":{"model":"resnet18","instance":"p3.2xlarge"}}`)
	waitTerminal(t, ts.URL, "acme", id)
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`stashd_jobs_accepted_total{tenant="acme"} 1`,
		`stashd_jobs_terminal_total{tenant="acme",outcome="done"} 1`,
		`stashd_jobs_queued{tenant="acme"} 0`,
		`stashd_jobs_running{tenant="acme"} 0`,
		`stashd_job_cells_completed_total{tenant="acme"} 3`,
		`stashd_job_store_jobs 1`,
		`stashd_tenant_scenario_requests_total{pool="profile",tenant="acme"}`,
		`stashd_tenant_scenario_outcomes_total{pool="profile",tenant="acme",outcome="simulated"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTenantHeaderValidation(t *testing.T) {
	// tenantOf accepts valid names and the default.
	req, _ := http.NewRequest(http.MethodGet, "/", nil)
	if tenant, aerr := tenantOf(req); aerr != nil || tenant != defaultTenant {
		t.Errorf("default tenant = %q, %v", tenant, aerr)
	}
	req.Header.Set(tenantHeader, "team-a.prod_1")
	if tenant, aerr := tenantOf(req); aerr != nil || tenant != "team-a.prod_1" {
		t.Errorf("valid tenant = %q, %v", tenant, aerr)
	}
	for _, bad := range []string{"-leading", "has space", strings.Repeat("x", 65), "ünïcode"} {
		req.Header.Set(tenantHeader, bad)
		if _, aerr := tenantOf(req); aerr == nil {
			t.Errorf("tenant %q accepted", bad)
		}
	}
}
