package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stash/internal/audit"
	"stash/internal/cluster"
	"stash/internal/core"
	"stash/internal/experiments"
	"stash/internal/report"
)

// macroSweepIDs is the paper's macro-characterization sweep: the stall
// and time/cost figures across both instance generations. Large enough
// that idle replicas have real tail ranges to steal, small enough to
// run at test iteration counts.
var macroSweepIDs = []string{"fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12"}

func macroSweepBody() string {
	ids, _ := json.Marshal(macroSweepIDs)
	return fmt.Sprintf(`{"type":"experiments","experiments":{"ids":%s}}`, ids)
}

// clusterHarness is a 3-replica in-process cluster: each replica is a
// full api.Server with its cluster node's peer protocol on its own
// httptest listener.
type clusterHarness struct {
	servers []*Server
	api     []*httptest.Server
	nodes   []*cluster.Node
	peersrv []*httptest.Server
}

// newClusterHarness boots n replicas. wrap (optional) intercepts
// replica i's peer-protocol handler — the fault-injection hook.
func newClusterHarness(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler, opts ...Option) *clusterHarness {
	t.Helper()
	h := &clusterHarness{
		servers: make([]*Server, n),
		api:     make([]*httptest.Server, n),
		nodes:   make([]*cluster.Node, n),
		peersrv: make([]*httptest.Server, n),
	}
	// Peer listeners first: their URLs are the cluster names. The
	// handler indirects through h.nodes so the servers can exist before
	// the nodes do.
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.nodes[i].Handler().ServeHTTP(w, r)
		})
		var handler http.Handler = inner
		if wrap != nil {
			handler = wrap(i, inner)
		}
		h.peersrv[i] = httptest.NewServer(handler)
		peers[i] = h.peersrv[i].URL
	}
	for i := 0; i < n; i++ {
		node, err := cluster.New(cluster.Config{
			Self:              peers[i],
			Peers:             peers,
			HeartbeatInterval: 20 * time.Millisecond,
			FailureThreshold:  2,
			StealInterval:     5 * time.Millisecond,
			LeaseTimeout:      400 * time.Millisecond,
			FetchTimeout:      30 * time.Second,
			ProbeTimeout:      2 * time.Second,
		})
		if err != nil {
			t.Fatalf("cluster.New replica %d: %v", i, err)
		}
		h.nodes[i] = node
		// api.New starts the node with the serving backend.
		h.servers[i] = New(append([]Option{
			WithExperimentIterations(2), WithSeed(5), WithCluster(node),
		}, opts...)...)
		h.api[i] = httptest.NewServer(h.servers[i].Handler())
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			h.nodes[i].Stop()
			h.api[i].Close()
			h.closePeer(i)
		}
	})
	return h
}

var peerCloseOnce sync.Map // *httptest.Server -> *sync.Once

// closePeer closes replica i's peer listener exactly once (the kill
// test closes the victim's mid-test, cleanup closes the rest).
func (h *clusterHarness) closePeer(i int) {
	once, _ := peerCloseOnce.LoadOrStore(h.peersrv[i], new(sync.Once))
	once.(*sync.Once).Do(h.peersrv[i].Close)
}

// singleNodeSweepResult runs the macro sweep on a standalone (no
// cluster) server with the same profiling configuration and returns the
// terminal job result bytes — the reference every merged artifact must
// match byte-for-byte — plus the number of unique scenarios it
// simulated.
func singleNodeSweepResult(t *testing.T) ([]byte, int64) {
	t.Helper()
	s, ts := newTestServer(t, WithExperimentIterations(2), WithSeed(5))
	id := submitJob(t, ts.URL, "", macroSweepBody())
	waitTerminal(t, ts.URL, "", id)
	code, body := getBody(t, ts.URL+"/v2/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("single-node sweep result = %d: %s", code, body)
	}
	return body, s.expStats().Simulated
}

// expStats snapshots the server's experiments-pool scheduler counters
// (the private cluster pool when one exists, the shared one otherwise).
func (s *Server) expStats() core.Stats {
	if s.expCfg.Pool != nil {
		return s.expCfg.Pool.Stats()
	}
	return experiments.SchedulerStats(s.expCfg)
}

// renderedTables decodes a JobExperimentsResult wire body and renders
// every table's text form — the second identity axis: not just the
// same JSON, the same human-readable artifact.
func renderedTables(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Experiments []struct {
			ID     string          `json:"id"`
			Tables []*report.Table `json:"tables"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode sweep result: %v", err)
	}
	var b bytes.Buffer
	for _, e := range out.Experiments {
		fmt.Fprintf(&b, "== %s ==\n", e.ID)
		for _, tb := range e.Tables {
			b.WriteString(tb.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func runClusterSweep(t *testing.T, h *clusterHarness, owner int) []byte {
	t.Helper()
	id := submitJob(t, h.api[owner].URL, "", macroSweepBody())
	waitTerminal(t, h.api[owner].URL, "", id)
	code, body := getBody(t, h.api[owner].URL+"/v2/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("cluster sweep result = %d: %s", code, body)
	}
	return body
}

// TestClusterSweepByteIdenticalAndSingleFlight runs the macro sweep on
// a healthy 3-replica cluster and pins the two headline guarantees:
// the merged artifact is byte-identical to the single-node run (JSON
// and rendered-table forms), and the cluster as a whole simulated each
// unique scenario at most once.
func TestClusterSweepByteIdenticalAndSingleFlight(t *testing.T) {
	single, unique := singleNodeSweepResult(t)
	h := newClusterHarness(t, 3, nil)
	merged := runClusterSweep(t, h, 0)

	if res := audit.CheckMergeIdentity("macro-sweep", single, merged); !res.Ok() {
		t.Fatalf("merged artifact diverges from single-node:\n%v", res.Strings())
	}
	if st, mt := renderedTables(t, single), renderedTables(t, merged); st != mt {
		t.Fatalf("rendered tables diverge:\nsingle:\n%s\nmerged:\n%s", st, mt)
	}

	if unique < 1 {
		t.Fatalf("single-node reference simulated %d scenarios", unique)
	}
	replicas := make([]audit.ClusterReplica, len(h.servers))
	var total int64
	for i, s := range h.servers {
		replicas[i] = audit.ClusterReplica{Name: fmt.Sprintf("replica-%d", i), Stats: s.expStats()}
		total += replicas[i].Stats.Simulated
	}
	if res := audit.CheckClusterSingleFlight(replicas, unique); !res.Ok() {
		t.Fatalf("cluster single-flight audit failed (total=%d unique=%d):\n%v", total, unique, res.Strings())
	}
	if total > unique {
		t.Fatalf("cluster simulated %d scenarios for %d unique", total, unique)
	}
	// The sharded cache actually engaged: at least one replica resolved
	// scenarios remotely or served them for peers.
	var remote int64
	for _, s := range h.servers {
		remote += s.expStats().RemoteHits
	}
	if remote == 0 && h.nodes[0].Metrics().Served == 0 {
		t.Fatal("no cross-replica scenario traffic at all")
	}
}

// TestClusterSweepReplicaKillReissuesAndStaysByteIdentical injects a
// mid-sweep replica death: the first thief to win a steal grant
// "dies" — its peer listener closes and its completion report is lost —
// so the owner's lease expires, the stolen range re-enters the pending
// set, and the survivors finish it. The merged artifact must still be
// byte-identical to the single-node run.
func TestClusterSweepReplicaKillReissuesAndStaysByteIdentical(t *testing.T) {
	single, _ := singleNodeSweepResult(t)

	// victim guards the fault-injection state: the first thief to win a
	// non-empty grant becomes the victim, its lease's report is lost and
	// its later steal polls are refused.
	var victim struct {
		sync.Mutex
		lease int64
		name  string
	}
	victimChosen := make(chan string, 1)
	var h *clusterHarness
	// Fault injection wraps the owner's (replica 0's) peer listener:
	// it watches steal grants go out and swallows the doomed report.
	wrap := func(i int, inner http.Handler) http.Handler {
		if i != 0 {
			return inner
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			switch r.URL.Path {
			case "/cluster/v1/steal":
				var sreq struct {
					Thief string `json:"thief"`
				}
				_ = json.Unmarshal(body, &sreq)
				victim.Lock()
				name := victim.name
				victim.Unlock()
				if name != "" {
					if sreq.Thief == name {
						// The victim is dead; its polls go nowhere.
						http.Error(w, "connection refused", http.StatusBadGateway)
						return
					}
					break
				}
				// No victim yet: record the first real grant and mark
				// its thief as the replica about to die.
				rec := httptest.NewRecorder()
				inner.ServeHTTP(rec, r)
				if rec.Code == http.StatusOK {
					var grant struct {
						Lease int64    `json:"lease"`
						IDs   []string `json:"ids"`
					}
					_ = json.Unmarshal(rec.Body.Bytes(), &grant)
					if len(grant.IDs) > 0 {
						victim.Lock()
						if victim.name == "" {
							victim.name, victim.lease = sreq.Thief, grant.Lease
							victimChosen <- sreq.Thief
						}
						victim.Unlock()
					}
				}
				for k, vs := range rec.Header() {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(rec.Code)
				_, _ = w.Write(rec.Body.Bytes())
				return
			case "/cluster/v1/complete":
				var creq struct {
					Lease int64 `json:"lease"`
				}
				_ = json.Unmarshal(body, &creq)
				victim.Lock()
				lost := victim.lease != 0 && creq.Lease == victim.lease
				victim.Unlock()
				if lost {
					// The thief died with the range: the report is lost.
					http.Error(w, "connection lost", http.StatusBadGateway)
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
	h = newClusterHarness(t, 3, wrap)

	// Kill the victim's inbound listener the moment it wins a grant, so
	// gossip sees a dead replica, not just a lost report.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		name := <-victimChosen
		for i, ps := range h.peersrv {
			if ps.URL == name {
				h.closePeer(i)
				return
			}
		}
	}()

	merged := runClusterSweep(t, h, 0)
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("no replica ever won a steal grant; nothing was killed")
	}

	if got := h.nodes[0].Metrics().Reissued; got < 1 {
		t.Fatalf("owner reissued %d cells, want >= 1", got)
	}
	if res := audit.CheckMergeIdentity("macro-sweep-kill", single, merged); !res.Ok() {
		t.Fatalf("merged artifact diverges from single-node after replica kill:\n%v", res.Strings())
	}
	if st, mt := renderedTables(t, single), renderedTables(t, merged); st != mt {
		t.Fatalf("rendered tables diverge after replica kill:\nsingle:\n%s\nmerged:\n%s", st, mt)
	}

	// Gossip eventually declares the victim dead on the owner.
	victim.Lock()
	victimURL := victim.name
	victim.Unlock()
	deadline := time.Now().Add(10 * time.Second) //lint:allow wallclock test polling deadline
	for {
		alive := false
		for _, p := range h.nodes[0].Peers() {
			if p.Name == victimURL && p.Alive {
				alive = true
			}
		}
		if !alive {
			break
		}
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("owner never marked the killed replica dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterProfileRemoteHit pins the v1 surface's side of the
// sharded cache: the same profile request on every replica simulates
// each scenario once cluster-wide — after the first request has
// populated the ring owners' caches, later replicas resolve misses as
// remote hits, never as fresh simulations.
func TestClusterProfileRemoteHit(t *testing.T) {
	h := newClusterHarness(t, 3, nil)
	const body = `{"model":"resnet18","instance":"p3.2xlarge"}`

	totalSimulated := func() int64 {
		var n int64
		for _, s := range h.servers {
			n += s.profiler.Stats().Simulated
		}
		return n
	}

	var bodies [][]byte
	for i := range h.api {
		code, b := postJSON(t, h.api[i].URL+"/v1/profile", body)
		if code != http.StatusOK {
			t.Fatalf("profile on replica %d = %d: %s", i, code, b)
		}
		bodies = append(bodies, b)
		if i == 0 {
			continue
		}
		if !bytes.Equal(bodies[0], b) {
			t.Fatalf("replica %d profile bytes diverge from replica 0", i)
		}
	}

	var remote int64
	for _, s := range h.servers {
		st := s.profiler.Stats()
		remote += st.RemoteHits
		if res := audit.CheckStatsLive(st); !res.Ok() {
			t.Fatalf("replica stats violate conservation: %v", res.Strings())
		}
	}
	if remote == 0 {
		t.Fatal("no remote hits: the sharded cache never engaged")
	}

	// Replaying the request anywhere must add zero simulations: every
	// scenario is now in some replica's cache, reachable via the ring.
	before := totalSimulated()
	for i := range h.api {
		if code, _ := postJSON(t, h.api[i].URL+"/v1/profile", body); code != http.StatusOK {
			t.Fatalf("replayed profile on replica %d failed", i)
		}
	}
	if after := totalSimulated(); after != before {
		t.Fatalf("replay simulated %d extra scenarios cluster-wide", after-before)
	}
}
