package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the cluster's replicas. Each
// replica contributes vnodes virtual points so key ranges stay balanced
// at small cluster sizes; a scenario key hashes to the first point
// clockwise, and the walk continues to the next *distinct* replica for
// successor fallback (dead owner, bounded-load overflow).
//
// The ring is built once from the static -peers list and never mutated:
// membership changes (death, drain) are applied by the walk's filter,
// not by reshuffling points, so a peer's recovery restores exactly its
// old key range — the deterministic "rehash to successor" contract.
type ring struct {
	points []ringPoint // sorted by hash
	peers  int
}

type ringPoint struct {
	hash uint64
	peer string
}

// hashKey is FNV-1a over the canonical key string, finished with a
// splitmix64-style mixer: stable across processes and platforms (unlike
// maphash), so every replica computes the same placement. The mixer
// matters — raw FNV of near-identical short strings ("url#0", "url#1",
// ...) clusters badly enough to skew vnode ownership 20x.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv.Write never fails
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring. peers must be the same canonical URL list on
// every replica (same strings, any order) or placements disagree.
func newRing(peers []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(peers)*vnodes), peers: len(peers)}
	for _, p := range peers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(p + "#" + strconv.Itoa(v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on peer so equal hashes (vanishingly rare but
		// possible) sort identically on every replica.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// owners returns the distinct replicas responsible for key, in
// clockwise preference order, keeping only those accepted by keep (nil
// keeps all). The first entry is the key's owner under the current
// membership view; later entries are its successors.
func (r *ring) owners(key string, keep func(string) bool) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, r.peers)
	seen := make(map[string]bool, r.peers)
	for i := 0; i < len(r.points) && len(out) < r.peers; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if seen[p] {
			continue
		}
		seen[p] = true
		if keep == nil || keep(p) {
			out = append(out, p)
		}
	}
	return out
}
