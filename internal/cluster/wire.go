package cluster

import (
	"stash/internal/core"
	"stash/internal/train"
)

// Wire DTOs for the /cluster/v1 peer protocol. Replicas are assumed to
// run the same build with the same profiler flags (-iters, -exp-iters,
// -seed); the protocol ships names and counters, never model or
// catalogue data, so a mixed-build cluster fails loudly (unresolvable
// spec → decline → local compute) instead of corrupting results.

// scenarioRequest asks the key's owner to resolve one scenario on its
// local profiler pool. Pool names the serving-side profiler ("profile"
// for the v1 surface, "experiments" for sweeps): scenario results
// depend on the pool's iteration count, so the owner must compute on
// the pool matching the requester's.
type scenarioRequest struct {
	Pool string            `json:"pool"`
	Spec core.ScenarioSpec `json:"spec"`
}

// scenarioResponse carries the owner's result, or a decline. A decline
// tells the requester to simulate locally; it is never cached. Owner
// simulation errors also travel as declines: errors re-derive
// deterministically (and with their concrete types) on the requester,
// so shipping them would only strip type information.
type scenarioResponse struct {
	Result  *train.Result `json:"result,omitempty"`
	Decline string        `json:"decline,omitempty"`
}

// healthResponse is the gossip payload: the replica's self-reported
// state plus piggybacked scheduler counters, so every replica can
// render cluster-aggregated metrics without a second scrape protocol.
type healthResponse struct {
	Name   string `json:"name"`
	Gen    int64  `json:"gen"`
	Status string `json:"status"` // statusActive or statusDraining

	// Pools maps pool name -> scenario-scheduler counters.
	Pools map[string]core.Stats `json:"pools,omitempty"`

	// Tenants maps pool name -> tenant -> counters.
	Tenants map[string]map[string]core.Stats `json:"tenants,omitempty"`
}

const (
	statusActive   = "active"
	statusDraining = "draining"
)

// stealRequest asks a victim for a contiguous range of pending sweep
// cells.
type stealRequest struct {
	Thief string `json:"thief"`
}

// stealResponse grants a lease on the cells IDs[0..] at indices
// Start..Start+len(IDs)-1 of sweep Sweep. The thief must report the
// whole range in one completeRequest before LeaseMS elapses on the
// victim's clock, or the range is re-issued.
type stealResponse struct {
	Sweep   int64    `json:"sweep"`
	Lease   int64    `json:"lease"`
	Start   int      `json:"start"`
	IDs     []string `json:"ids"`
	Tenant  string   `json:"tenant,omitempty"`
	LeaseMS int64    `json:"lease_ms"`
}

// CellError is a sweep cell failure in wire form: enough for the job
// layer to reproduce the exact error response the single-node path
// would have produced.
type CellError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *CellError) Error() string { return e.Message }

// cellResult is one computed cell: its index in the sweep's ID list and
// either the cell's wire bytes or its error.
type cellResult struct {
	Index int        `json:"index"`
	Data  []byte     `json:"data,omitempty"`
	Err   *CellError `json:"err,omitempty"`
}

// completeRequest reports a lease's outcome. Released means the thief
// is handing back the cells it did not compute (drain): they re-enter
// the pending set with their steal budget refunded, since the thief
// gave them back deliberately rather than dying with them.
type completeRequest struct {
	Sweep    int64        `json:"sweep"`
	Lease    int64        `json:"lease"`
	Cells    []cellResult `json:"cells"`
	Released bool         `json:"released"`
}
