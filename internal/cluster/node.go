// Package cluster implements stashd's peer-to-peer cluster mode:
// scenario cache keys placed on a consistent-hash ring with
// bounded-load successor fallback, a remote single-flight layer that
// keeps each scenario's simulation on one replica cluster-wide, and a
// work-stealing scheduler that spreads /v2/jobs grid sweeps across idle
// replicas while preserving the byte-identical-output guarantee.
//
// The design follows the control-plane-over-plain-HTTP shape: replicas
// know each other from a static -peers list, exchange liveness and
// counters over GET /cluster/v1/health, route scenario cache misses to
// their ring owner over POST /cluster/v1/scenario (a long-poll that
// returns when the owner's simulation — possibly already in flight for
// another requester — completes), and let idle replicas pull contiguous
// sweep cell ranges over POST /cluster/v1/steal, reporting them back on
// /cluster/v1/complete.
//
// Failure handling is first-class and degrades toward single-node
// behavior: a dead peer's key range rehashes to its ring successor, a
// fetch to a dead owner falls back to local compute, stolen ranges
// whose thief dies are re-issued after a lease timeout under a
// deterministic per-cell retry budget, and with every peer gone the
// node computes everything locally — exactly the single-process stashd.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/core"
	"stash/internal/train"
)

// Defaults for Config's tunables.
const (
	defaultVNodes            = 64
	defaultHeartbeatInterval = 500 * time.Millisecond
	defaultFailureThreshold  = 2
	defaultStealInterval     = 250 * time.Millisecond
	defaultLeaseTimeout      = 30 * time.Second
	defaultMaxSteals         = 2
	defaultFetchTimeout      = 60 * time.Second
	defaultProbeTimeout      = 2 * time.Second
	defaultLoadBound         = 64
)

// ErrDecline is the sentinel a Backend.Scenario implementation returns
// when it cannot (or should not) serve a spec — unknown pool,
// unresolvable names, draining. The requester computes locally; nothing
// is cached.
var ErrDecline = errors.New("cluster: scenario declined")

// Config describes one replica's place in the cluster.
type Config struct {
	// Self is this replica's advertised cluster base URL
	// (e.g. "http://10.0.0.3:8322"). It must appear in Peers.
	Self string

	// Peers is the full static replica list, Self included — the same
	// set, up to order, on every replica. The consistent-hash ring is
	// built over exactly these names.
	Peers []string

	// HeartbeatInterval paces the health-gossip probes.
	HeartbeatInterval time.Duration

	// FailureThreshold is the consecutive probe failures after which a
	// peer is considered dead and its key range rehashes to its
	// successor. A later successful probe resurrects it.
	FailureThreshold int

	// StealInterval paces an idle replica's steal polls.
	StealInterval time.Duration

	// LeaseTimeout bounds how long a stolen range may stay unreported
	// before the victim re-issues it.
	LeaseTimeout time.Duration

	// MaxSteals is each cell's steal budget: after this many leases
	// expire on a cell it becomes local-only, so a flapping thief can
	// delay a sweep at most MaxSteals lease timeouts per cell —
	// deterministic, not retry-forever.
	MaxSteals int

	// FetchTimeout bounds one remote scenario long-poll.
	FetchTimeout time.Duration

	// ProbeTimeout bounds one health probe.
	ProbeTimeout time.Duration

	// LoadBound is the bounded-load fallback: at most this many
	// scenario fetches may be in flight to one peer before the walk
	// spills to the key's ring successor. Under sustained overload this
	// trades strict cluster-wide single-flight for availability — a hot
	// key may simulate on up to as many replicas as the walk visits —
	// so it is deliberately generous.
	LoadBound int

	// VNodes is the virtual points per replica on the ring.
	VNodes int
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = defaultHeartbeatInterval
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = defaultFailureThreshold
	}
	if c.StealInterval <= 0 {
		c.StealInterval = defaultStealInterval
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = defaultLeaseTimeout
	}
	if c.MaxSteals <= 0 {
		c.MaxSteals = defaultMaxSteals
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = defaultFetchTimeout
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = defaultProbeTimeout
	}
	if c.LoadBound <= 0 {
		c.LoadBound = defaultLoadBound
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	return c
}

// Backend is the serving layer's side of the contract: how the node
// computes scenarios and sweep cells locally, and which counters it
// gossips. The cluster package never imports the API layer; the API
// layer injects these callbacks.
type Backend struct {
	// Scenario computes spec on the named local pool without another
	// remote hop (core.Profiler.RunLocalScenario), so ownership
	// disagreement between gossip views can never forward in a loop.
	// Return ErrDecline (possibly wrapped) to make the requester
	// compute locally; any other error is also treated as a decline —
	// simulation errors re-derive deterministically on the requester.
	Scenario func(ctx context.Context, pool string, spec core.ScenarioSpec) (*train.Result, error)

	// ExecCell computes one sweep cell (an experiment id) locally and
	// returns its wire bytes, exactly as the single-node path would
	// encode them.
	ExecCell func(ctx context.Context, id string) ([]byte, *CellError)

	// Idle reports whether this replica has spare capacity to steal
	// work (typically: its own job queue is empty).
	Idle func() bool

	// Pools snapshots the local scenario-scheduler counters per pool,
	// and TenantPools the per-tenant mirrors; both are piggybacked on
	// health responses for cluster-aggregated metrics. Optional.
	Pools       func() map[string]core.Stats
	TenantPools func() map[string]map[string]core.Stats
}

// peerState is this replica's view of one peer, maintained by the
// gossip loop.
type peerState struct {
	failures int
	alive    bool
	gen      int64
	status   string
	pools    map[string]core.Stats
	tenants  map[string]map[string]core.Stats
}

// Node is one replica's cluster runtime.
type Node struct {
	cfg     Config
	self    string
	peers   []string // sorted, Self excluded
	ring    *ring
	backend Backend
	client  *http.Client

	mu sync.Mutex
	st map[string]*peerState

	sweepMu sync.Mutex
	sweeps  map[int64]*sweep

	seq      atomic.Int64 // sweep and lease ids
	gen      atomic.Int64 // self-status generation
	draining atomic.Bool
	started  atomic.Bool

	runCtx  context.Context
	stop    context.CancelFunc
	loops   sync.WaitGroup
	thiefMu sync.Mutex // serializes thief-range release on drain

	// inflight tracks outstanding scenario fetches per peer for the
	// bounded-load walk.
	inflight map[string]*atomic.Int64

	m metricsCounters
}

// metricsCounters are the node's own observability counters, exported
// via Metrics for the /metrics surface.
type metricsCounters struct {
	fetchHits      atomic.Int64 // scenario fetches resolved by a peer
	fetchErrors    atomic.Int64 // transport failures → local compute
	fetchDeclines  atomic.Int64 // peer declined → next candidate / local
	boundedSkips   atomic.Int64 // candidates skipped by the load bound
	served         atomic.Int64 // scenario requests served for peers
	sweeps         atomic.Int64 // sweeps coordinated on this node
	stolenByPeers  atomic.Int64 // cells leased out to thieves
	stolenFromPeer atomic.Int64 // cells this node stole and completed
	reissued       atomic.Int64 // expired-lease cells returned to pending
	released       atomic.Int64 // cells handed back on thief drain
}

// Metrics is a snapshot of the node's cluster counters.
type Metrics struct {
	FetchHits, FetchErrors, FetchDeclines, BoundedSkips int64
	Served                                              int64
	Sweeps                                              int64
	StolenByPeers, StolenFromPeers                      int64
	Reissued, Released                                  int64
}

// New validates the configuration and builds the node. The node is
// inert until Start.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if _, err := url.Parse(cfg.Self); err != nil {
		return nil, fmt.Errorf("cluster: bad Self %q: %w", cfg.Self, err)
	}
	seen := make(map[string]bool, len(cfg.Peers))
	all := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		all = append(all, p)
	}
	cfg.Self = strings.TrimRight(strings.TrimSpace(cfg.Self), "/")
	if !seen[cfg.Self] {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer list %v", cfg.Self, all)
	}
	sort.Strings(all)
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		ring:     newRing(all, cfg.VNodes),
		client:   &http.Client{},
		st:       make(map[string]*peerState, len(all)),
		sweeps:   make(map[int64]*sweep),
		inflight: make(map[string]*atomic.Int64, len(all)),
	}
	for _, p := range all {
		if p == cfg.Self {
			continue
		}
		n.peers = append(n.peers, p)
		// Peers start alive and active: cold-start routing works before
		// the first probe round instead of stampeding local computes.
		n.st[p] = &peerState{alive: true, status: statusActive}
		n.inflight[p] = &atomic.Int64{}
	}
	return n, nil
}

// Self returns the node's advertised cluster URL.
func (n *Node) Self() string { return n.self }

// PeerCount returns how many other replicas are configured.
func (n *Node) PeerCount() int { return len(n.peers) }

// Start wires the backend and launches the gossip and thief loops.
func (n *Node) Start(b Backend) {
	if n.started.Swap(true) {
		return
	}
	n.backend = b
	n.runCtx, n.stop = context.WithCancel(context.Background())
	if len(n.peers) > 0 {
		n.loops.Add(2)
		go n.gossipLoop(n.runCtx)
		go n.thiefLoop(n.runCtx)
	}
}

// Stop kills the node immediately: loops are cancelled and in-flight
// stolen work is abandoned without a release report — the "replica
// died" path; victims re-issue its leases after the lease timeout. Use
// Drain for the graceful path.
func (n *Node) Stop() {
	if !n.started.Load() || n.stop == nil {
		return
	}
	n.stop()
	n.loops.Wait()
}

// Drain moves the node to draining: peers are told (via gossip status)
// to stop routing scenarios here, steal requests are refused, the thief
// loop stops taking new ranges, and the range it is computing — if any
// — is handed back to its victim with the cells it already finished
// (the cluster half of "drain hands queued cells back to the ring").
// Local sweeps keep running; the job layer owns their drain. Blocks
// until the handback is sent or ctx expires.
func (n *Node) Drain(ctx context.Context) {
	if !n.draining.Swap(true) {
		n.gen.Add(1)
	}
	// Serialize with an in-progress thief range: once we hold thiefMu
	// the thief loop has either released its range (it checks draining
	// per cell) or not started one; either way nothing is held after.
	done := make(chan struct{})
	go func() {
		// The empty critical section is the rendezvous: acquiring the
		// lock proves the thief finished (and released) its range.
		n.thiefMu.Lock()
		n.thiefMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Draining reports whether Drain has been called.
func (n *Node) Draining() bool { return n.draining.Load() }

// now reads the wall clock for lease deadlines and probe pacing — pure
// control-plane timing that never enters a stall table or simulated
// result.
func (n *Node) now() time.Time {
	return time.Now() //lint:allow wallclock cluster lease/gossip deadlines, never enters a stall table
}

// ---------------------------------------------------------------------
// Membership: health gossip.

// gossipLoop probes every peer each heartbeat, merging their
// self-reported state and piggybacked counters into n.st.
func (n *Node) gossipLoop(ctx context.Context) {
	defer n.loops.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, p := range n.peers { // sorted at New: deterministic probe order
			n.probe(ctx, p)
		}
	}
}

// probe performs one health round-trip to peer and folds the outcome
// into the membership view.
func (n *Node) probe(ctx context.Context, peer string) {
	pctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/cluster/v1/health", nil)
	if err != nil {
		n.recordProbe(peer, nil)
		return
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.recordProbe(peer, nil)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		n.recordProbe(peer, nil)
		return
	}
	var hr healthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr); err != nil {
		n.recordProbe(peer, nil)
		return
	}
	n.recordProbe(peer, &hr)
}

// recordProbe applies one probe outcome (nil = failure) to the peer's
// state. Status and counters are generation-stamped by the peer itself;
// a stale response never rolls a newer status back.
func (n *Node) recordProbe(peer string, hr *healthResponse) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.st[peer]
	if st == nil {
		return
	}
	if hr == nil {
		st.failures++
		if st.failures >= n.cfg.FailureThreshold {
			st.alive = false
		}
		return
	}
	st.failures = 0
	st.alive = true
	if hr.Gen >= st.gen {
		st.gen = hr.Gen
		st.status = hr.Status
	}
	st.pools = hr.Pools
	st.tenants = hr.Tenants
}

// routable reports whether scenario fetches may target peer right now.
// Self is always routable: it is the walk's "compute locally" stop.
func (n *Node) routable(peer string) bool {
	if peer == n.self {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.st[peer]
	return st != nil && st.alive && st.status != statusDraining
}

// alivePeers returns the peers (Self excluded) currently considered
// alive and not draining, in sorted order.
func (n *Node) alivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for _, p := range n.peers {
		if st := n.st[p]; st != nil && st.alive && st.status != statusDraining {
			out = append(out, p)
		}
	}
	return out
}

// PeerStatus is one row of the membership view.
type PeerStatus struct {
	Name   string
	Alive  bool
	Status string
}

// Peers returns the membership view (Self excluded), sorted by name.
func (n *Node) Peers() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerStatus, 0, len(n.peers))
	for _, p := range n.peers {
		st := n.st[p]
		out = append(out, PeerStatus{Name: p, Alive: st.alive, Status: st.status})
	}
	return out
}

// AggregatedPools sums scenario counters across the cluster: this
// replica's live snapshot plus every peer's last gossiped one. Peer
// numbers lag by up to one heartbeat.
func (n *Node) AggregatedPools() map[string]core.Stats {
	out := map[string]core.Stats{}
	if n.backend.Pools != nil {
		for pool, st := range n.backend.Pools() {
			out[pool] = st
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		for pool, st := range n.st[p].pools {
			out[pool] = out[pool].Add(st)
		}
	}
	return out
}

// AggregatedTenants is AggregatedPools for the per-tenant mirrors.
func (n *Node) AggregatedTenants() map[string]map[string]core.Stats {
	out := map[string]map[string]core.Stats{}
	add := func(pools map[string]map[string]core.Stats) {
		for pool, tenants := range pools {
			dst := out[pool]
			if dst == nil {
				dst = map[string]core.Stats{}
				out[pool] = dst
			}
			for tenant, st := range tenants {
				dst[tenant] = dst[tenant].Add(st)
			}
		}
	}
	if n.backend.TenantPools != nil {
		add(n.backend.TenantPools())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		add(n.st[p].tenants)
	}
	return out
}

// Metrics snapshots the node's cluster counters.
func (n *Node) Metrics() Metrics {
	return Metrics{
		FetchHits:       n.m.fetchHits.Load(),
		FetchErrors:     n.m.fetchErrors.Load(),
		FetchDeclines:   n.m.fetchDeclines.Load(),
		BoundedSkips:    n.m.boundedSkips.Load(),
		Served:          n.m.served.Load(),
		Sweeps:          n.m.sweeps.Load(),
		StolenByPeers:   n.m.stolenByPeers.Load(),
		StolenFromPeers: n.m.stolenFromPeer.Load(),
		Reissued:        n.m.reissued.Load(),
		Released:        n.m.released.Load(),
	}
}

// ---------------------------------------------------------------------
// Remote single-flight: the fetch client.

// Resolver returns the core.RemoteResolver for the named local pool:
// the hook a profiler consults on cache misses. The walk visits the
// key's owner first, spilling to ring successors past dead, draining or
// load-bounded replicas; reaching Self (or running out of candidates)
// means compute locally.
func (n *Node) Resolver(pool string) core.RemoteResolver {
	return func(ctx context.Context, spec core.ScenarioSpec) (*core.RemoteResult, bool) {
		if len(n.peers) == 0 {
			return nil, false
		}
		key := pool + "|" + spec.Key()
		for _, owner := range n.ring.owners(key, n.routable) {
			if owner == n.self {
				return nil, false
			}
			infl := n.inflight[owner]
			if infl.Load() >= int64(n.cfg.LoadBound) {
				n.m.boundedSkips.Add(1)
				continue
			}
			infl.Add(1)
			res, retryNext := n.fetchScenario(ctx, owner, pool, spec)
			infl.Add(-1)
			if res != nil {
				n.m.fetchHits.Add(1)
				return res, true
			}
			if !retryNext {
				// Transport failure: the owner is presumed dead. Fall
				// back to local compute now; gossip will route future
				// keys to the successor once the death is confirmed.
				n.m.fetchErrors.Add(1)
				return nil, false
			}
			n.m.fetchDeclines.Add(1)
		}
		return nil, false
	}
}

// fetchScenario long-polls one owner for a scenario result. It returns
// (result, _) on success, (nil, true) when the owner explicitly
// declined — the walk may try the successor — and (nil, false) on
// transport failure.
func (n *Node) fetchScenario(ctx context.Context, owner, pool string, spec core.ScenarioSpec) (*core.RemoteResult, bool) {
	fctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	body, err := json.Marshal(scenarioRequest{Pool: pool, Spec: spec})
	if err != nil {
		return nil, true
	}
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, owner+"/cluster/v1/scenario", bytes.NewReader(body))
	if err != nil {
		return nil, true
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// Draining or not started: decline, try the successor.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil, true
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil, false
	}
	var sr scenarioResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sr); err != nil {
		return nil, false
	}
	if sr.Result == nil {
		return nil, true
	}
	return &core.RemoteResult{Res: sr.Result}, false
}

// ---------------------------------------------------------------------
// HTTP surface: the /cluster/v1 handler.

// Handler returns the peer-facing HTTP handler. It is meant for a
// separate listener (-cluster-addr) on a trusted network: the protocol
// carries no authentication.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/health", n.handleHealth)
	mux.HandleFunc("/cluster/v1/scenario", n.handleScenario)
	mux.HandleFunc("/cluster/v1/steal", n.handleSteal)
	mux.HandleFunc("/cluster/v1/complete", n.handleComplete)
	return mux
}

func writeWire(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // peer hangup mid-write is its problem
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	hr := healthResponse{Name: n.self, Gen: n.gen.Load(), Status: statusActive}
	if n.draining.Load() {
		hr.Status = statusDraining
	}
	if n.backend.Pools != nil {
		hr.Pools = n.backend.Pools()
	}
	if n.backend.TenantPools != nil {
		hr.Tenants = n.backend.TenantPools()
	}
	writeWire(w, http.StatusOK, hr)
}

func (n *Node) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if n.draining.Load() || n.backend.Scenario == nil {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var sreq scenarioRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&sreq); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	n.m.served.Add(1)
	res, err := n.backend.Scenario(r.Context(), sreq.Pool, sreq.Spec)
	if err != nil {
		writeWire(w, http.StatusOK, scenarioResponse{Decline: err.Error()})
		return
	}
	writeWire(w, http.StatusOK, scenarioResponse{Result: res})
}

// ---------------------------------------------------------------------
// Work stealing: the thief side. (The victim side lives in sweep.go.)

// thiefLoop polls alive peers for stealable sweep ranges whenever the
// local backend reports idle capacity.
func (n *Node) thiefLoop(ctx context.Context) {
	defer n.loops.Done()
	t := time.NewTicker(n.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if n.draining.Load() {
			return
		}
		if n.backend.Idle != nil && !n.backend.Idle() {
			continue
		}
		for _, victim := range n.alivePeers() {
			if n.stealFrom(ctx, victim) {
				// Got (and finished) a range; re-check idleness before
				// taking more.
				break
			}
		}
	}
}

// stealFrom asks one victim for a range and, if granted, computes it —
// releasing the uncomputed tail if the node drains mid-range. Reports
// whether a range was granted.
func (n *Node) stealFrom(ctx context.Context, victim string) bool {
	n.thiefMu.Lock()
	defer n.thiefMu.Unlock()
	grant, ok := n.requestSteal(ctx, victim)
	if !ok || len(grant.IDs) == 0 {
		return false
	}
	cctx := ctx
	if grant.Tenant != "" {
		cctx = core.WithTenant(ctx, grant.Tenant)
	}
	done := make([]cellResult, 0, len(grant.IDs))
	released := false
	for i, id := range grant.IDs {
		if ctx.Err() != nil || n.draining.Load() {
			released = i < len(grant.IDs)
			break
		}
		data, cerr := n.backend.ExecCell(cctx, id)
		done = append(done, cellResult{Index: grant.Start + i, Data: data, Err: cerr})
	}
	n.m.stolenFromPeer.Add(int64(len(done)))
	n.reportComplete(victim, completeRequest{
		Sweep:    grant.Sweep,
		Lease:    grant.Lease,
		Cells:    done,
		Released: released,
	})
	return true
}

// requestSteal performs one steal POST. ok is false when the victim has
// nothing to steal or cannot be reached.
func (n *Node) requestSteal(ctx context.Context, victim string) (*stealResponse, bool) {
	pctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	defer cancel()
	body, err := json.Marshal(stealRequest{Thief: n.self})
	if err != nil {
		return nil, false
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, victim+"/cluster/v1/steal", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil, false
	}
	var sr stealResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&sr); err != nil {
		return nil, false
	}
	return &sr, true
}

// reportComplete delivers a lease outcome to its victim. The report is
// bounded by FetchTimeout, not the (possibly dead) request context: a
// computed range should not be lost to a cancelled poll. Failure is
// acceptable — the victim re-issues after the lease timeout.
func (n *Node) reportComplete(victim string, creq completeRequest) {
	rctx, cancel := context.WithTimeout(context.Background(), n.cfg.FetchTimeout)
	defer cancel()
	body, err := json.Marshal(creq)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, victim+"/cluster/v1/complete", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
}
