package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash/internal/core"
	"stash/internal/train"
)

// fastConfig returns cluster tunables scaled for in-process tests.
func fastConfig(self string, peers []string) Config {
	return Config{
		Self:              self,
		Peers:             peers,
		HeartbeatInterval: 20 * time.Millisecond,
		FailureThreshold:  2,
		StealInterval:     5 * time.Millisecond,
		LeaseTimeout:      150 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		FetchTimeout:      5 * time.Second,
	}
}

// testCluster is k in-process replicas wired over httptest servers.
type testCluster struct {
	nodes []*Node
	srvs  []*httptest.Server
}

// newTestCluster boots k nodes whose backends come from mk(i). The
// returned URLs are each node's Self.
func newTestCluster(t *testing.T, k int, mk func(i int) Backend) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: make([]*Node, k), srvs: make([]*httptest.Server, k)}
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		i := i
		tc.srvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tc.nodes[i].Handler().ServeHTTP(w, r)
		}))
		urls[i] = tc.srvs[i].URL
	}
	for i := 0; i < k; i++ {
		n, err := New(fastConfig(urls[i], urls))
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = n
	}
	for i := 0; i < k; i++ {
		tc.nodes[i].Start(mk(i))
	}
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	for _, n := range tc.nodes {
		if n != nil {
			n.Stop()
		}
	}
	for _, s := range tc.srvs {
		if s != nil {
			s.Close()
		}
	}
}

// fakeResult derives a deterministic result from a spec, so both sides
// of a fetch can verify the round-trip.
func fakeResult(spec core.ScenarioSpec) *train.Result {
	return &train.Result{
		Iterations:   spec.Batch,
		WorldSize:    spec.Count * spec.GPUsPer,
		PerIteration: time.Duration(spec.Batch) * time.Millisecond,
	}
}

func scenarioBackend(simulated *atomic.Int64) Backend {
	return Backend{
		Scenario: func(ctx context.Context, pool string, spec core.ScenarioSpec) (*train.Result, error) {
			if pool != "experiments" {
				return nil, fmt.Errorf("%w: unknown pool %q", ErrDecline, pool)
			}
			simulated.Add(1)
			return fakeResult(spec), nil
		},
		Idle: func() bool { return false }, // no stealing in scenario tests
	}
}

func spec(batch int) core.ScenarioSpec {
	return core.ScenarioSpec{Model: "resnet18", Batch: batch, Instance: "p3.8xlarge", Count: 2, GPUsPer: 4, Mode: core.SpecModeSynthetic}
}

// specOwnedBy scans batches until it finds a spec whose ring owner
// (from's view, all peers alive) is owner.
func specOwnedBy(t *testing.T, from *Node, owner string) core.ScenarioSpec {
	t.Helper()
	for b := 1; b < 4096; b++ {
		sp := spec(b)
		owners := from.ring.owners("experiments|"+sp.Key(), nil)
		if len(owners) > 0 && owners[0] == owner {
			return sp
		}
	}
	t.Fatal("no spec found owned by " + owner)
	return core.ScenarioSpec{}
}

func TestRingDeterministicAcrossOrderAndBalanced(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing([]string{peers[2], peers[0], peers[1]}, 64)
	r2 := newRing(peers, 64)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := "k" + strconv.Itoa(i)
		o1 := r1.owners(key, nil)
		o2 := r2.owners(key, nil)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("owners(%q) lengths = %d, %d, want 3", key, len(o1), len(o2))
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("peer-order-dependent placement for %q: %v vs %v", key, o1, o2)
			}
		}
		counts[o1[0]]++
	}
	for _, p := range peers {
		if counts[p] < 30 {
			t.Fatalf("unbalanced ring: %v", counts)
		}
	}
	// Filtering the owner promotes its successor, leaving the rest of
	// the order intact.
	key := "k42"
	full := r1.owners(key, nil)
	alive := func(p string) bool { return p != full[0] }
	reduced := r1.owners(key, alive)
	if len(reduced) != 2 || reduced[0] != full[1] || reduced[1] != full[2] {
		t.Fatalf("successor fallback broken: full %v, without owner %v", full, reduced)
	}
}

func TestRemoteSingleFlightAcrossNodes(t *testing.T) {
	var sims [2]atomic.Int64
	tc := newTestCluster(t, 2, func(i int) Backend { return scenarioBackend(&sims[i]) })
	a, b := tc.nodes[0], tc.nodes[1]

	// A spec owned by B: A's resolver fetches it from B.
	sp := specOwnedBy(t, a, b.self)
	res, ok := a.Resolver("experiments")(context.Background(), sp)
	if !ok || res == nil || res.Err != nil {
		t.Fatalf("fetch from owner failed: ok=%v res=%+v", ok, res)
	}
	want := fakeResult(sp)
	if *res.Res != *want {
		t.Fatalf("round-tripped result = %+v, want %+v", res.Res, want)
	}
	if sims[1].Load() != 1 || sims[0].Load() != 0 {
		t.Fatalf("simulations = %v, want owner-only", []int64{sims[0].Load(), sims[1].Load()})
	}
	if a.Metrics().FetchHits != 1 || b.Metrics().Served != 1 {
		t.Fatalf("metrics: a=%+v b=%+v", a.Metrics(), b.Metrics())
	}

	// A spec owned by A itself: the resolver declines — compute locally.
	sp = specOwnedBy(t, a, a.self)
	if _, ok := a.Resolver("experiments")(context.Background(), sp); ok {
		t.Fatal("resolver fetched a self-owned spec instead of declining")
	}

	// An unknown pool: the owner declines, the requester computes
	// locally, and nothing is cached as an error.
	sp = specOwnedBy(t, a, b.self)
	if _, ok := a.Resolver("bogus")(context.Background(), sp); ok {
		t.Fatal("resolver resolved a spec the owner declined")
	}
}

func TestResolverFallsBackWhenOwnerDies(t *testing.T) {
	var sims [2]atomic.Int64
	tc := newTestCluster(t, 2, func(i int) Backend { return scenarioBackend(&sims[i]) })
	a, b := tc.nodes[0], tc.nodes[1]

	sp := specOwnedBy(t, a, b.self)
	tc.srvs[1].Close() // B dies without warning

	// First fetch pays a transport error and falls back to local compute.
	if _, ok := a.Resolver("experiments")(context.Background(), sp); ok {
		t.Fatal("resolver claimed success against a dead owner")
	}
	if a.Metrics().FetchErrors == 0 {
		t.Fatalf("dead-owner fetch not recorded: %+v", a.Metrics())
	}

	// After gossip confirms the death, the walk skips B entirely: the
	// successor for every B-owned key is A itself, so the resolver
	// declines without network traffic.
	deadline := time.Now().Add(5 * time.Second)
	for a.routable(b.self) {
		if time.Now().After(deadline) {
			t.Fatal("gossip never marked the dead peer unroutable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	errsBefore := a.Metrics().FetchErrors
	if _, ok := a.Resolver("experiments")(context.Background(), sp); ok {
		t.Fatal("resolver fetched from a peer it knows is dead")
	}
	if got := a.Metrics().FetchErrors; got != errsBefore {
		t.Fatalf("resolver still paid transport errors after death was known: %d -> %d", errsBefore, got)
	}
}

func TestResolverSkipsDrainingOwner(t *testing.T) {
	var sims [2]atomic.Int64
	tc := newTestCluster(t, 2, func(i int) Backend { return scenarioBackend(&sims[i]) })
	a, b := tc.nodes[0], tc.nodes[1]

	sp := specOwnedBy(t, a, b.self)
	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	b.Drain(dctx)

	// B's scenario endpoint refuses with 503; the walk's next candidate
	// is A itself, so the resolver declines to local compute.
	if _, ok := a.Resolver("experiments")(context.Background(), sp); ok {
		t.Fatal("resolver fetched from a draining owner")
	}
	if sims[1].Load() != 0 {
		t.Fatal("draining owner still simulated")
	}
}

// sweepBackend computes cells as "cell:<id>\n" with an optional
// per-cell delay, counting executions per node.
func sweepBackend(execs *atomic.Int64, delay time.Duration, idle bool) Backend {
	return Backend{
		ExecCell: func(ctx context.Context, id string) ([]byte, *CellError) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
				}
			}
			execs.Add(1)
			return []byte("cell:" + id + "\n"), nil
		},
		Idle: func() bool { return idle },
	}
}

func sweepIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "id" + strconv.Itoa(i)
	}
	return ids
}

// collectCommits returns a commit func recording (index, data) pairs.
func collectCommits(t *testing.T) (func(int, []byte), func() []string) {
	t.Helper()
	var mu sync.Mutex
	var next int
	var got []string
	commit := func(i int, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		if i != next {
			t.Errorf("commit out of order: got index %d, want %d", i, next)
		}
		next++
		got = append(got, string(data))
	}
	return commit, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

func TestRunSweepSingleNodeDegradation(t *testing.T) {
	var execs atomic.Int64
	self := "http://127.0.0.1:1"
	n, err := New(fastConfig(self, []string{self}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start(sweepBackend(&execs, 0, false))
	defer n.Stop()

	ids := sweepIDs(8)
	commit, commits := collectCommits(t)
	cerr, err := n.RunSweep(context.Background(), ids, "", commit)
	if err != nil || cerr != nil {
		t.Fatalf("RunSweep: cellErr=%v err=%v", cerr, err)
	}
	got := commits()
	if len(got) != 8 || execs.Load() != 8 {
		t.Fatalf("committed %d cells with %d execs, want 8/8", len(got), execs.Load())
	}
	for i, g := range got {
		if want := "cell:id" + strconv.Itoa(i) + "\n"; g != want {
			t.Fatalf("cell %d = %q, want %q", i, g, want)
		}
	}
}

func TestRunSweepStealsToIdlePeer(t *testing.T) {
	var execs [2]atomic.Int64
	tc := newTestCluster(t, 2, func(i int) Backend {
		// Node 0 owns the sweep (never steals); node 1 idles and steals.
		return sweepBackend(&execs[i], 15*time.Millisecond, i == 1)
	})
	a := tc.nodes[0]

	ids := sweepIDs(12)
	commit, commits := collectCommits(t)
	cerr, err := a.RunSweep(context.Background(), ids, "tenant-x", commit)
	if err != nil || cerr != nil {
		t.Fatalf("RunSweep: cellErr=%v err=%v", cerr, err)
	}
	got := commits()
	if len(got) != 12 {
		t.Fatalf("committed %d cells, want 12", len(got))
	}
	for i, g := range got {
		if want := "cell:id" + strconv.Itoa(i) + "\n"; g != want {
			t.Fatalf("cell %d = %q, want %q", i, g, want)
		}
	}
	if execs[1].Load() == 0 {
		t.Fatal("idle peer never stole any cells")
	}
	if a.Metrics().StolenByPeers == 0 || tc.nodes[1].Metrics().StolenFromPeers == 0 {
		t.Fatalf("steal metrics empty: victim=%+v thief=%+v", a.Metrics(), tc.nodes[1].Metrics())
	}
}

func TestRunSweepReissuesDeadThiefRange(t *testing.T) {
	var ownerExecs atomic.Int64
	stole := make(chan struct{})
	var stoleOnce sync.Once
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })

	tc := newTestCluster(t, 2, func(i int) Backend {
		if i == 0 {
			return sweepBackend(&ownerExecs, 20*time.Millisecond, false)
		}
		// The thief takes a range, signals, then hangs without ever
		// reporting — a crashed replica as the victim observes it. (It
		// un-hangs on its node's own shutdown so cleanup can finish.)
		return Backend{
			ExecCell: func(ctx context.Context, id string) ([]byte, *CellError) {
				stoleOnce.Do(func() { close(stole) })
				select {
				case <-hang:
				case <-ctx.Done():
				}
				return nil, &CellError{Status: 500, Code: "dead", Message: "dead"}
			},
			Idle: func() bool { return true },
		}
	})
	a := tc.nodes[0]

	ids := sweepIDs(10)
	commit, commits := collectCommits(t)
	done := make(chan struct{})
	var cerr *CellError
	var err error
	go func() {
		cerr, err = a.RunSweep(context.Background(), ids, "", commit)
		close(done)
	}()

	select {
	case <-stole:
	case <-time.After(10 * time.Second):
		t.Fatal("thief never stole a range")
	}
	// The thief is now hung holding a lease. The victim must re-issue
	// the range after the lease timeout and finish the sweep locally.
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never completed after thief death")
	}
	if err != nil || cerr != nil {
		t.Fatalf("RunSweep: cellErr=%v err=%v", cerr, err)
	}
	got := commits()
	if len(got) != 10 {
		t.Fatalf("committed %d cells, want 10", len(got))
	}
	for i, g := range got {
		if want := "cell:id" + strconv.Itoa(i) + "\n"; g != want {
			t.Fatalf("cell %d = %q, want %q", i, g, want)
		}
	}
	if a.Metrics().Reissued == 0 {
		t.Fatalf("no lease was re-issued: %+v", a.Metrics())
	}
}

func TestDrainHandsRangeBackToVictim(t *testing.T) {
	var execs [2]atomic.Int64
	stole := make(chan struct{})
	var stoleOnce sync.Once

	tc := newTestCluster(t, 2, func(i int) Backend {
		if i == 0 {
			return sweepBackend(&execs[0], 25*time.Millisecond, false)
		}
		return Backend{
			ExecCell: func(ctx context.Context, id string) ([]byte, *CellError) {
				stoleOnce.Do(func() { close(stole) })
				select {
				case <-time.After(25 * time.Millisecond):
				case <-ctx.Done():
				}
				execs[1].Add(1)
				return []byte("cell:" + id + "\n"), nil
			},
			Idle: func() bool { return true },
		}
	})
	a, b := tc.nodes[0], tc.nodes[1]

	ids := sweepIDs(16)
	commit, commits := collectCommits(t)
	done := make(chan struct{})
	var cerr *CellError
	var err error
	go func() {
		cerr, err = a.RunSweep(context.Background(), ids, "", commit)
		close(done)
	}()

	select {
	case <-stole:
	case <-time.After(10 * time.Second):
		t.Fatal("peer never stole a range")
	}
	// Drain the thief mid-range: it must report the cells it finished
	// and hand the rest back, and the victim must still complete every
	// cell in order.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	b.Drain(dctx)

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never completed after thief drain")
	}
	if err != nil || cerr != nil {
		t.Fatalf("RunSweep: cellErr=%v err=%v", cerr, err)
	}
	got := commits()
	if len(got) != 16 {
		t.Fatalf("committed %d cells, want 16", len(got))
	}
	for i, g := range got {
		if want := "cell:id" + strconv.Itoa(i) + "\n"; g != want {
			t.Fatalf("cell %d = %q, want %q", i, g, want)
		}
	}
}

func TestRunSweepStopsAtFirstFailingIndex(t *testing.T) {
	self := "http://127.0.0.1:1"
	n, err := New(fastConfig(self, []string{self}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start(Backend{
		ExecCell: func(ctx context.Context, id string) ([]byte, *CellError) {
			if id == "id3" {
				return nil, &CellError{Status: 422, Code: "infeasible", Message: "no feasible config for " + id}
			}
			return []byte("cell:" + id + "\n"), nil
		},
		Idle: func() bool { return false },
	})
	defer n.Stop()

	commit, commits := collectCommits(t)
	cerr, err := n.RunSweep(context.Background(), sweepIDs(8), "", commit)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if cerr == nil || cerr.Code != "infeasible" {
		t.Fatalf("cell error = %+v, want the id3 failure", cerr)
	}
	if got := commits(); len(got) != 3 {
		t.Fatalf("committed %d cells before the failure, want 3 (indices 0..2)", len(got))
	}
}

func TestCarveRespectsStealBudget(t *testing.T) {
	self := "http://127.0.0.1:1"
	n, err := New(fastConfig(self, []string{self}))
	if err != nil {
		t.Fatal(err)
	}
	s := newSweep(n, 1, sweepIDs(8), "", func(int, []byte) {})
	now := time.Now()

	g1 := s.carve("thief", 1, now, 100*time.Millisecond, 1)
	if g1 == nil || len(g1.IDs) != 4 || g1.Start != 4 {
		t.Fatalf("first carve = %+v, want the tail half [4..7]", g1)
	}
	// The lease expires; the cells return to pending with budget spent.
	s.expireLeases(now.Add(200 * time.Millisecond))

	// With MaxSteals=1 those cells are local-only now; the remaining
	// eligible run is [0..3], so a second carve takes its tail half.
	g2 := s.carve("thief", 2, now, 100*time.Millisecond, 1)
	if g2 == nil || g2.Start != 2 || len(g2.IDs) != 2 {
		t.Fatalf("second carve = %+v, want [2..3]", g2)
	}
	// [0..1] is the only eligible run left: the carve takes its upper
	// half (one cell), always leaving the head for the owner.
	g3 := s.carve("thief", 3, now, 100*time.Millisecond, 1)
	if g3 == nil || g3.Start != 1 || len(g3.IDs) != 1 {
		t.Fatalf("third carve = %+v, want [1..1]", g3)
	}
	// A single eligible cell (the head) is never stolen: no grant.
	if g4 := s.carve("thief", 4, now, 100*time.Millisecond, 1); g4 != nil {
		t.Fatalf("fourth carve granted %+v, want nil", g4)
	}
}

func TestRunSweepCancelledContext(t *testing.T) {
	self := "http://127.0.0.1:1"
	n, err := New(fastConfig(self, []string{self}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start(sweepBackend(&atomic.Int64{}, 0, false))
	defer n.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.RunSweep(ctx, sweepIDs(4), "", func(int, []byte) {}); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}}); err == nil {
		t.Fatal("Self outside the peer list accepted")
	}
	if _, err := New(Config{Peers: []string{"http://b:1"}}); err == nil {
		t.Fatal("empty Self accepted")
	}
	n, err := New(Config{Self: "http://a:1/", Peers: []string{"http://a:1", "http://a:1/", " http://b:1 "}})
	if err != nil {
		t.Fatal(err)
	}
	if n.PeerCount() != 1 {
		t.Fatalf("PeerCount = %d, want 1 (dedup + trim)", n.PeerCount())
	}
}
