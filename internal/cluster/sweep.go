package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// sweep is one grid sweep's cell board: the victim-side state of the
// work-stealing scheduler. The owner (the replica whose job executor
// called RunSweep) consumes pending cells from the head; thieves lease
// contiguous ranges carved from the tail over /cluster/v1/steal and
// report them on /cluster/v1/complete. Completed cells are committed
// strictly in index order — the merge step that keeps a distributed
// sweep byte-identical to a single-node one.
type sweep struct {
	id     int64
	ids    []string
	tenant string
	node   *Node

	// commitMu orders commit emission: whoever flushes holds it across
	// collect+emit, so index order is preserved even when the owner and
	// a thief complete cells concurrently. Always acquired before mu.
	commitMu sync.Mutex
	commit   func(i int, data []byte)

	mu        sync.Mutex
	state     []uint8
	steals    []int
	results   [][]byte
	errs      []*CellError
	watermark int        // cells below this are committed
	failed    *CellError // lowest-index cell error, sticky
	leases    map[int64]*cellLease

	// changed wakes the owner loop (capacity 1, non-blocking sends).
	changed chan struct{}
}

const (
	cellPending uint8 = iota
	cellRunning       // owner is computing it locally
	cellLeased        // a thief holds it
	cellDone
)

// cellLease is one granted steal range.
type cellLease struct {
	thief    string
	cells    []int
	deadline time.Time
}

func newSweep(n *Node, id int64, ids []string, tenant string, commit func(int, []byte)) *sweep {
	return &sweep{
		id:      id,
		ids:     ids,
		tenant:  tenant,
		node:    n,
		commit:  commit,
		state:   make([]uint8, len(ids)),
		steals:  make([]int, len(ids)),
		results: make([][]byte, len(ids)),
		errs:    make([]*CellError, len(ids)),
		leases:  make(map[int64]*cellLease),
		changed: make(chan struct{}, 1),
	}
}

// notify wakes the owner loop without blocking. Callers must not hold
// s.mu (not for correctness — the send never blocks — but to keep lock
// hold times minimal).
func (s *sweep) notify() {
	select {
	case s.changed <- struct{}{}:
	default:
	}
}

// RunSweep computes cells ids[0..n-1] across the cluster: the calling
// replica owns the sweep and computes from the head while idle peers
// steal tail ranges. commit is called exactly once per successful cell,
// in strict index order, as the completed prefix grows. On a cell
// error, commit stops at the failing index (cells before it are already
// committed) and the lowest-index error is returned — matching the
// serial single-node loop's stop-at-first-error semantics. A cancelled
// ctx aborts the sweep with ctx.Err.
//
// With zero reachable peers the loop degrades to exactly the
// single-node behavior: the owner computes every cell serially, in
// order, and no lease machinery engages.
func (n *Node) RunSweep(ctx context.Context, ids []string, tenant string, commit func(i int, data []byte)) (*CellError, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if n.backend.ExecCell == nil {
		return nil, context.Canceled
	}
	n.m.sweeps.Add(1)
	s := newSweep(n, n.seq.Add(1), ids, tenant, commit)
	n.sweepMu.Lock()
	n.sweeps[s.id] = s
	n.sweepMu.Unlock()
	defer func() {
		n.sweepMu.Lock()
		delete(n.sweeps, s.id)
		n.sweepMu.Unlock()
	}()

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.expireLeases(n.now())
		idx, st := s.next()
		switch st {
		case sweepDone:
			return nil, nil
		case sweepFailed:
			s.mu.Lock()
			failed := s.failed
			s.mu.Unlock()
			return failed, nil
		case sweepRun:
			data, cerr := n.backend.ExecCell(ctx, ids[idx])
			s.record(idx, data, cerr)
		case sweepWait:
			s.waitChange(ctx)
		}
	}
}

// next's outcomes.
const (
	sweepRun = iota // idx is marked running; compute it
	sweepWait       // nothing pending, leases outstanding: wait
	sweepDone       // every cell committed
	sweepFailed     // the failure prefix is complete; s.failed is set
)

// next claims the first pending cell for the owner, or classifies why
// it cannot.
func (s *sweep) next() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return 0, sweepFailed
	}
	if s.watermark == len(s.ids) {
		return 0, sweepDone
	}
	for i := s.watermark; i < len(s.ids); i++ {
		if s.state[i] == cellPending {
			s.state[i] = cellRunning
			return i, sweepRun
		}
	}
	return 0, sweepWait
}

// waitChange blocks until a completion/expiry notification, the next
// lease deadline, or ctx.
func (s *sweep) waitChange(ctx context.Context) {
	s.mu.Lock()
	var next time.Time
	for _, l := range s.leases {
		if next.IsZero() || l.deadline.Before(next) {
			next = l.deadline
		}
	}
	s.mu.Unlock()
	wait := s.node.cfg.LeaseTimeout
	if !next.IsZero() {
		if d := next.Sub(s.node.now()); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-s.changed:
	case <-t.C:
	}
}

// record stores one locally-computed or thief-reported cell and flushes
// the committable prefix.
func (s *sweep) record(idx int, data []byte, cerr *CellError) {
	s.commitMu.Lock()
	s.mu.Lock()
	if s.state[idx] != cellDone {
		s.state[idx] = cellDone
		s.results[idx] = data
		s.errs[idx] = cerr
	}
	s.flushLocked()
	s.commitMu.Unlock()
	s.notify()
}

// flushLocked advances the watermark over done cells, emitting commits
// in index order, stopping at (and capturing) the first error. Caller
// holds commitMu and mu; mu is released during emission and the method
// returns with mu unlocked.
func (s *sweep) flushLocked() {
	type out struct {
		idx  int
		data []byte
	}
	var emit []out
	for s.watermark < len(s.ids) && s.state[s.watermark] == cellDone && s.failed == nil {
		if e := s.errs[s.watermark]; e != nil {
			s.failed = e
			break
		}
		emit = append(emit, out{idx: s.watermark, data: s.results[s.watermark]})
		s.watermark++
	}
	s.mu.Unlock()
	for _, o := range emit {
		s.commit(o.idx, o.data)
	}
}

// expireLeases re-queues the cells of every lease past its deadline.
// The steal budget consumed at grant time stays consumed: a cell whose
// budget is exhausted can only run on the owner, so a flapping thief
// delays each cell at most MaxSteals lease timeouts — the deterministic
// retry bound.
func (s *sweep) expireLeases(now time.Time) {
	s.mu.Lock()
	expired := 0
	for id, l := range s.leases {
		if l.deadline.After(now) {
			continue
		}
		for _, c := range l.cells {
			if s.state[c] == cellLeased {
				s.state[c] = cellPending
				expired++
			}
		}
		delete(s.leases, id)
	}
	s.mu.Unlock()
	if expired > 0 {
		s.node.m.reissued.Add(int64(expired))
		s.notify()
	}
}

// carve grants a thief a contiguous range from the tail of the pending
// cells, if at least two steal-eligible cells remain (the head stays
// with the owner). It takes the upper half of the longest contiguous
// eligible run ending at the highest eligible index.
func (s *sweep) carve(thief string, leaseID int64, now time.Time, leaseTimeout time.Duration, maxSteals int) *stealResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil
	}
	eligible := func(i int) bool { return s.state[i] == cellPending && s.steals[i] < maxSteals }
	hi := -1
	for i := len(s.ids) - 1; i >= 0; i-- {
		if eligible(i) {
			hi = i
			break
		}
	}
	if hi < 0 {
		return nil
	}
	lo := hi
	for lo > 0 && eligible(lo-1) {
		lo--
	}
	run := hi - lo + 1
	if run < 2 {
		return nil
	}
	take := run / 2
	start := hi - take + 1
	cells := make([]int, 0, take)
	ids := make([]string, 0, take)
	for i := start; i <= hi; i++ {
		s.state[i] = cellLeased
		s.steals[i]++
		cells = append(cells, i)
		ids = append(ids, s.ids[i])
	}
	s.leases[leaseID] = &cellLease{thief: thief, cells: cells, deadline: now.Add(leaseTimeout)}
	return &stealResponse{
		Sweep:   s.id,
		Lease:   leaseID,
		Start:   start,
		IDs:     ids,
		Tenant:  s.tenant,
		LeaseMS: leaseTimeout.Milliseconds(),
	}
}

// applyComplete folds a thief's report into the board. Reported results
// are accepted for any not-yet-done cell — results are deterministic,
// so a late report from an expired lease is still correct work worth
// keeping. Released cells (drain handback) re-enter pending with their
// steal budget refunded.
func (s *sweep) applyComplete(req *completeRequest) {
	s.commitMu.Lock()
	s.mu.Lock()
	reported := make(map[int]bool, len(req.Cells))
	for _, c := range req.Cells {
		if c.Index < 0 || c.Index >= len(s.ids) {
			continue
		}
		reported[c.Index] = true
		if s.state[c.Index] == cellDone {
			continue
		}
		s.state[c.Index] = cellDone
		s.results[c.Index] = c.Data
		s.errs[c.Index] = c.Err
	}
	released := 0
	if l := s.leases[req.Lease]; l != nil {
		for _, c := range l.cells {
			if s.state[c] == cellLeased && !reported[c] {
				s.state[c] = cellPending
				released++
				if req.Released && s.steals[c] > 0 {
					s.steals[c]--
				}
			}
		}
		delete(s.leases, req.Lease)
	}
	s.flushLocked()
	s.commitMu.Unlock()
	if released > 0 && req.Released {
		s.node.m.released.Add(int64(released))
	}
	s.notify()
}

// ---------------------------------------------------------------------
// Victim-side HTTP handlers.

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if n.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var sreq stealRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&sreq); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	now := n.now()
	for _, s := range n.activeSweeps() {
		s.expireLeases(now)
		if grant := s.carve(sreq.Thief, n.seq.Add(1), now, n.cfg.LeaseTimeout, n.cfg.MaxSteals); grant != nil {
			n.m.stolenByPeers.Add(int64(len(grant.IDs)))
			writeWire(w, http.StatusOK, grant)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var creq completeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&creq); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	n.sweepMu.Lock()
	s := n.sweeps[creq.Sweep]
	n.sweepMu.Unlock()
	if s == nil {
		// The sweep finished or failed; the work is moot.
		w.WriteHeader(http.StatusGone)
		return
	}
	s.applyComplete(&creq)
	w.WriteHeader(http.StatusNoContent)
}

// activeSweeps snapshots the sweep boards in id order (oldest first),
// so thieves drain the longest-waiting sweep first and map iteration
// order never reaches the wire.
func (n *Node) activeSweeps() []*sweep {
	n.sweepMu.Lock()
	defer n.sweepMu.Unlock()
	out := make([]*sweep, 0, len(n.sweeps))
	for _, s := range n.sweeps {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
