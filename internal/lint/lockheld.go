package lint

import (
	"go/ast"
	"go/types"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives (including
// <-ctx.Done()), select statements, range-over-channel,
// sync.WaitGroup.Wait and time.Sleep. Holding a lock across a wait is
// how the single-flight profiler cache or the stashd concurrency gate
// would deadlock (or serialize) under a schedule the race detector
// never happens to produce; the correct pattern — publish the entry,
// unlock, then wait — is what this analyzer proves.
//
// The check is a syntactic approximation: the held region runs from a
// mu.Lock() call to the first mu.Unlock() on the same receiver in
// document order (for the same enclosing function), or to the end of
// the surrounding block when the Unlock is deferred. sync.Cond.Wait is
// exempt: it atomically releases the lock it guards.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "forbid blocking operations (channel ops, select, WaitGroup.Wait, time.Sleep) " +
		"while a mutex is held: waits under a lock deadlock or serialize the scenario " +
		"scheduler on schedules dynamic testing cannot enumerate",
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkLockRegions(pass, body)
			}
			return true
		})
	}
}

// checkLockRegions scans every block in one function body for Lock
// calls and inspects the statements held under each.
func checkLockRegions(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are scanned on their own
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			recv, kind := mutexCall(pass, stmt)
			if kind != "Lock" && kind != "RLock" {
				continue
			}
			h := &heldScan{pass: pass, recv: recv}
			for _, held := range block.List[i+1:] {
				if h.done {
					break
				}
				h.scan(held)
			}
		}
		return true
	})
}

// heldScan walks the statements after a Lock in document order,
// flagging blocking operations until the matching Unlock.
type heldScan struct {
	pass *Pass
	recv string
	done bool
}

func (h *heldScan) scan(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if h.done {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// Runs on another goroutine (or is merely defined): not
			// executed under this lock.
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region open to the block's
			// end; any other deferred call runs after unlock anyway.
			return false
		case *ast.CallExpr:
			if r, k := mutexCallExpr(h.pass, v); r == h.recv && (k == "Unlock" || k == "RUnlock") {
				h.done = true
				return false
			}
			if fn := funcFor(h.pass.Info, v); fn != nil && fn.Pkg() != nil {
				sig := fn.Type().(*types.Signature)
				switch {
				case fn.Pkg().Path() == "sync" && fn.Name() == "Wait" && sig.Recv() != nil && !isCondRecv(sig):
					h.pass.Reportf(v.Pos(), "sync.WaitGroup.Wait while %s is locked; unlock before waiting", h.recv)
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					h.pass.Reportf(v.Pos(), "time.Sleep while %s is locked; unlock before sleeping", h.recv)
				}
			}
		case *ast.SendStmt:
			h.pass.Reportf(v.Pos(), "channel send while %s is locked; unlock before communicating", h.recv)
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				h.pass.Reportf(v.Pos(), "channel receive while %s is locked; unlock before waiting", h.recv)
			}
		case *ast.SelectStmt:
			h.pass.Reportf(v.Pos(), "select while %s is locked; unlock before waiting", h.recv)
			return false
		case *ast.RangeStmt:
			if tv, ok := h.pass.Info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					h.pass.Reportf(v.Pos(), "range over channel while %s is locked; unlock before waiting", h.recv)
				}
			}
		}
		return true
	})
}

// mutexCall matches a statement of the form `mu.Lock()` /
// `mu.Unlock()` (and RW variants) and returns the receiver expression
// rendered as a string plus the method name.
func mutexCall(pass *Pass, stmt ast.Stmt) (recv, method string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	return mutexCallExpr(pass, call)
}

func mutexCallExpr(pass *Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// isCondRecv reports whether the method receiver is *sync.Cond, whose
// Wait atomically releases the associated lock and is therefore legal
// under it.
func isCondRecv(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Cond"
}
