package lint

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the packages whose outputs must be
// byte-identical run-vs-rerun and serial-vs-parallel: every layer that
// contributes to a stall table. The wallclock analyzer checks the whole
// tree (service and CLI layers time requests, and those sites carry
// //lint:allow annotations); in these packages an allow should be
// treated as a design smell during review, not just an exemption.
var DeterministicPackages = []string{
	"sim", "core", "collective", "dnn", "experiments", "report",
	"audit", "topo", "hw", "train", "workload", "pipeline", "simnet", "trace",
}

// Wallclock flags reads of the wall clock (time.Now, time.Since,
// time.Until) and draws from math/rand's seed-global top-level
// functions. Either one makes a profile depend on when or in what
// order it ran, which the runtime determinism audit can only catch
// after the fact on a schedule that happens to expose it.
// Explicitly-seeded sources (rand.New(rand.NewSource(seed))) are fine.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since and global math/rand draws: a wall-clock read or " +
		"seed-global draw makes stall tables differ run-vs-rerun, breaking the byte-identity " +
		"guarantee the experiment suite and its audit depend on",
	Run: runWallclock,
}

// wallclockRandOK are the math/rand package-level functions that do not
// touch the global source.
var wallclockRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s reads the wall clock, which breaks run-vs-rerun determinism; inject elapsed time explicitly or annotate //lint:allow wallclock <reason>", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !wallclockRandOK[fn.Name()] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global seed-dependent source; use rand.New(rand.NewSource(seed)) or annotate //lint:allow wallclock <reason>", fn.Name())
				}
			}
			return true
		})
	}
}
