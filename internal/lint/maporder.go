package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body does something
// order-sensitive: appending to a slice that is never subsequently
// sorted, printing through fmt, writing to a Buffer/Builder/io.Writer,
// or feeding internal/report. Go randomizes map iteration order per
// run, so any of these produces output that differs run-vs-rerun —
// exactly the bug class that would silently break the byte-identical
// stall tables. The safe idiom (collect keys, sort, iterate the sorted
// slice) is recognized and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid order-sensitive work inside range-over-map: map iteration order is " +
		"randomized per run, so appends that are never sorted, fmt output, writer calls " +
		"and report-table construction inside the loop break byte-identical output",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Walk function by function so the append exemption can look
		// for a sort call later in the same function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (not descending into
// nested function literals, which are visited separately).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// Builtin append: order-sensitive unless the destination slice
		// is sorted after the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				if dst := appendTarget(pass, call); dst != nil && sortedAfter(pass, fnBody, rng, dst) {
					return true
				}
				pass.Reportf(call.Pos(), "append inside range over map accumulates in randomized iteration order; collect keys, sort, then iterate, or sort the result before it is used")
				return true
			}
		}

		fn := funcFor(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
			pass.Reportf(call.Pos(), "fmt.%s inside range over map emits output in randomized iteration order; iterate a sorted key slice instead", fn.Name())
		case isWriterMethod(fn):
			pass.Reportf(call.Pos(), "%s.%s inside range over map writes output in randomized iteration order; iterate a sorted key slice instead", fn.Pkg().Name(), fn.Name())
		case strings.HasSuffix(fn.Pkg().Path(), "internal/report") && fn.Type().(*types.Signature).Recv() != nil:
			// Methods mutate a table in iteration order; the package's
			// pure formatters (Pct, Dur, ...) are order-independent.
			pass.Reportf(call.Pos(), "feeding %s.%s from inside range over map builds tables in randomized iteration order; iterate a sorted key slice instead", fn.Pkg().Name(), fn.Name())
		}
		return true
	})
}

// isWriterMethod reports whether fn is a byte/string sink: a
// Write*/Fprint-style method on the standard library's writer types.
func isWriterMethod(fn *types.Func) bool {
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Write") {
		return false
	}
	switch fn.Pkg().Path() {
	case "bytes", "strings", "bufio", "io", "os":
		return true
	}
	return false
}

// appendTarget resolves the object being appended to, when it is a
// plain identifier (`s = append(s, ...)`). Field or index targets
// return nil and are reported conservatively.
func appendTarget(pass *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// sortedAfter reports whether obj is passed to a sort.*/slices.* call
// after the range statement ends, anywhere later in the same function
// body — the collect-then-sort idiom.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := funcFor(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
					return false
				}
				return !found
			})
		}
		return !found
	})
	return found
}
