package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != on floating-point operands. Stall
// arithmetic is all float64; exact equality silently depends on
// evaluation order and compiler fusing, so a refactor that is
// mathematically a no-op can flip a branch. The audit package's
// deliberate exact-derivation checks carry //lint:allow annotations
// explaining why bit-equality is the point there. Test files are not
// loaded by stashlint at all.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= on float operands in stall arithmetic: exact float equality " +
		"depends on evaluation order and breaks under algebraically-equivalent refactors; " +
		"compare with a tolerance or annotate the sites where bit-equality is the invariant",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass, bin.X) || isFloat(pass, bin.Y) {
				pass.Reportf(bin.Pos(), "%s on float operands depends on evaluation order and FMA fusing; compare with a tolerance or annotate //lint:allow floatcmp <reason>", bin.Op)
			}
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
