package lint

import "strings"

// LockOrder upgrades lockheld's single-function discipline to
// module-wide deadlock freedom: it builds the lock-acquisition graph —
// an edge A→B whenever lock B is taken while A is held, directly or
// through any call chain (via the Program's transitive acquire-set
// summaries) — and reports every edge that lies on a cycle. An acyclic
// graph admits a global acquisition order, so the scheduler, the
// single-flight profiler cache and the stashd job store can never
// deadlock by interleaving; a cycle is a deadlock waiting for the
// schedule the race detector never produces.
//
// Lock identity is canonicalized so the graph spans functions: struct
// fields key by their owning named type ("pkg.Type.mu", all instances
// conflated — the ordering discipline is per-type), package-level vars
// by "pkg.var". A direct or transitive re-acquisition of the same key
// is reported as a self-cycle: sync.Mutex is not reentrant, and
// RLock-inside-RLock counts too — sync.RWMutex documentation forbids
// recursive read locking because a pending writer between the two
// RLocks deadlocks the second one.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "forbid lock-acquisition cycles across call chains: an A→B ordering in one " +
		"function and B→A anywhere else (however many frames down) is a deadlock the " +
		"race detector only finds on the losing schedule",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, e := range prog.lockEdges {
		if e.pkg != pass.Pkg {
			continue
		}
		via := ""
		if e.via != "" {
			via = " (via call to " + e.via + ")"
		}
		if e.from == e.to {
			if e.fromKind == "RLock" && e.toKind == "RLock" {
				pass.Reportf(e.pos,
					"%s read-locked while already read-held%s: recursive RLock deadlocks once a writer's Lock queues between the two acquisitions (sync.RWMutex forbids recursive read locking)",
					e.from, via)
			} else {
				pass.Reportf(e.pos,
					"%s acquired while already held%s: sync mutexes are not reentrant, this self-deadlocks",
					e.from, via)
			}
			continue
		}
		if path := prog.lockPath(e.to, e.from); path != nil {
			cycle := strings.Join(append([]string{e.from}, path...), " → ")
			pass.Reportf(e.pos,
				"lock order cycle: %s acquired while %s is held%s, but the reverse order exists elsewhere (cycle: %s); pick one global order",
				e.to, e.from, via, cycle)
		}
	}
}
