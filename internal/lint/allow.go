package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment. used flips when
// the directive actually suppresses a finding, which is what
// StaleAllows keys on: a directive that suppresses nothing has
// outlived the finding it excused.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// allowIndex maps (file, line) to the directives that cover it. A
// directive covers its own line (trailing comment) and the line below
// (comment above the flagged statement).
type allowIndex struct {
	byLine map[string]map[int][]*allowDirective
	all    []*allowDirective
}

const allowPrefix = "//lint:allow"

// buildAllowIndex scans every comment in the package for
// //lint:allow directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				// A fixture may pair a directive with a // want
				// assertion in the same comment; the directive ends
				// where the nested comment starts.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := &allowDirective{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				idx.all = append(idx.all, d)
				lines := idx.byLine[d.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowDirective)
					idx.byLine[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return idx
}

// allows reports whether a well-formed directive for the analyzer
// covers file:line. Directives without a reason never suppress — they
// are themselves diagnostics (see malformed).
func (idx *allowIndex) allows(analyzer, file string, line int) bool {
	for _, d := range idx.byLine[file][line] {
		if d.analyzer == analyzer && d.reason != "" {
			d.used = true
			return true
		}
	}
	return false
}

// malformed returns the positions of directives naming the analyzer
// that lack the mandatory reason string.
func (idx *allowIndex) malformed(analyzer string) []token.Position {
	var out []token.Position
	for _, d := range idx.all {
		if d.analyzer == analyzer && d.reason == "" {
			out = append(out, d.pos)
		}
	}
	return out
}
