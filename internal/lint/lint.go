// Package lint is stashlint's analyzer suite: eight static analyzers
// that prove, at compile time, the invariants this repository otherwise
// only checks dynamically (internal/audit, go test -race). The headline
// guarantee — byte-identical stall tables serial-vs-parallel and
// run-vs-rerun — survives only if no wall-clock read, unsorted map
// iteration, or lock-across-blocking-call ever reaches a release;
// these analyzers reject that class of bug before it can fire on some
// schedule. The hotpath analyzer additionally guards a performance
// invariant: the converted hot-loop packages stay on the engine's
// continuation fast path instead of coroutine processes.
//
// Three of the analyzers are interprocedural: RunAll builds a Program —
// a module-wide call graph over go/types with per-function summaries
// (which parameters a call invalidates, which locks it transitively
// acquires, whether it reaches a context-free API with a *Context
// sibling) computed to a monotone fixed point — and poolsafe,
// lockorder and ctxflow consult those summaries at every call site, so
// a pooled-lifecycle violation or a lock-order inversion hidden three
// frames down is still a compile-time finding.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with // want
// annotations) but is built on the standard library's go/ast and
// go/types only, so the suite works in the hermetic build environment
// with no module downloads.
//
// Suppression: a finding may be silenced with a trailing or
// line-above comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare //lint:allow <analyzer> is itself a
// diagnostic, so every exemption in the tree documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the analyzer suite in CI gate logs. Bump it when
// an analyzer's semantics change so a log line pins exactly what was
// enforced for a given commit.
const Version = "1.2.0"

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow annotations.
	Name string

	// Doc is a one-paragraph description: the invariant encoded and
	// why the runtime checks alone are insufficient.
	Doc string

	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapOrder, LockHeld, LockOrder, CtxFlow, PoolSafe, FloatCmp, Hotpath}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer run.
// Prog is the interprocedural layer shared by every package of the
// run; the cross-function analyzers (poolsafe, lockorder, ctxflow)
// read call-graph summaries from it while still reporting per package,
// so allow-directive scoping stays line-local.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	allow *allowIndex
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow annotation with a
// reason covers that line for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over one loaded package and returns
// the findings sorted by position. Malformed allow annotations (no
// reason) surface as diagnostics of the analyzer they name. The
// interprocedural program is built from this package alone; use RunAll
// to resolve call chains that cross package boundaries.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// RunAll executes the analyzers over every package as one program: the
// call-graph summaries span all of pkgs, so a lock cycle or a
// use-after-recycle threaded through three packages is still seen,
// while each finding is reported (and allow-suppressed) in the package
// that contains it. The packages must come from one Loader.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := BuildProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, RunPackage(prog, pkg, analyzers)...)
	}
	return out
}

// RunPackage executes the analyzers over one package of an
// already-built program and returns that package's findings sorted by
// position. It is safe to call concurrently for different packages of
// the same program, which is how cmd/stashlint parallelizes the gate.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	return runPackageWith(prog, pkg, analyzers, allow)
}

// RunPackageObserved is RunPackage with a per-analyzer hook: observe is
// invoked once per analyzer (in roster order) and must call run() to
// execute it. The allow index is built once for the whole package, so
// callers that time analyzers individually — cmd/stashlint's -timing —
// do not re-parse the package's comments per analyzer. A nil observe
// behaves exactly like RunPackage.
func RunPackageObserved(prog *Program, pkg *Package, analyzers []*Analyzer, observe func(i int, run func())) []Diagnostic {
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for i, a := range analyzers {
		run := func() { runOneAnalyzer(prog, pkg, a, allow, &diags) }
		if observe != nil {
			observe(i, run)
		} else {
			run()
		}
	}
	SortDiagnostics(diags)
	return diags
}

func runPackageWith(prog *Program, pkg *Package, analyzers []*Analyzer, allow *allowIndex) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		runOneAnalyzer(prog, pkg, a, allow, &diags)
	}
	SortDiagnostics(diags)
	return diags
}

// runOneAnalyzer executes one analyzer over one package, appending its
// findings (malformed-directive diagnostics included) to diags.
func runOneAnalyzer(prog *Program, pkg *Package, a *Analyzer, allow *allowIndex, diags *[]Diagnostic) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     prog,
		allow:    allow,
		diags:    diags,
	}
	for _, bad := range allow.malformed(a.Name) {
		*diags = append(*diags, Diagnostic{
			Pos:      bad,
			Analyzer: a.Name,
			Message:  fmt.Sprintf("//lint:allow %s needs a reason: //lint:allow %s <why this site is safe>", a.Name, a.Name),
		})
	}
	a.Run(pass)
}

// SortDiagnostics orders findings by file, line, column, then analyzer
// — the stable order every entry point reports in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// StaleAllows runs the analyzers over every package as one program and
// returns a diagnostic for each well-formed //lint:allow directive that
// suppressed nothing — the directive outlived the finding it excused
// and should be removed. Directives naming analyzers outside the run
// set are left alone (a partial run proves nothing about them).
func StaleAllows(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := BuildProgram(pkgs)
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	var stale []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		runPackageWith(prog, pkg, analyzers, allow)
		for _, d := range allow.all {
			if d.reason != "" && names[d.analyzer] && !d.used {
				stale = append(stale, Diagnostic{
					Pos:      d.pos,
					Analyzer: d.analyzer,
					Message:  fmt.Sprintf("stale //lint:allow %s: the analyzer no longer reports at this site; remove the directive", d.analyzer),
				})
			}
		}
	}
	SortDiagnostics(stale)
	return stale
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcFor resolves the called function or method behind a call
// expression, seeing through parentheses. Returns nil for builtins,
// conversions and calls of function-typed variables.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
