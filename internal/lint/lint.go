// Package lint is stashlint's analyzer suite: six static analyzers
// that prove, at compile time, the invariants this repository otherwise
// only checks dynamically (internal/audit, go test -race). The headline
// guarantee — byte-identical stall tables serial-vs-parallel and
// run-vs-rerun — survives only if no wall-clock read, unsorted map
// iteration, or lock-across-blocking-call ever reaches a release;
// these analyzers reject that class of bug before it can fire on some
// schedule. The hotpath analyzer additionally guards a performance
// invariant: the converted hot-loop packages stay on the engine's
// continuation fast path instead of coroutine processes.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with // want
// annotations) but is built on the standard library's go/ast and
// go/types only, so the suite works in the hermetic build environment
// with no module downloads.
//
// Suppression: a finding may be silenced with a trailing or
// line-above comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare //lint:allow <analyzer> is itself a
// diagnostic, so every exemption in the tree documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the analyzer suite in CI gate logs. Bump it when
// an analyzer's semantics change so a log line pins exactly what was
// enforced for a given commit.
const Version = "1.0.0"

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow annotations.
	Name string

	// Doc is a one-paragraph description: the invariant encoded and
	// why the runtime checks alone are insufficient.
	Doc string

	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapOrder, LockHeld, CtxFlow, FloatCmp, Hotpath}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow *allowIndex
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow annotation with a
// reason covers that line for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over one loaded package and returns
// the findings sorted by position. Malformed allow annotations (no
// reason) surface as diagnostics of the analyzer they name.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
			diags:    &diags,
		}
		for _, bad := range allow.malformed(a.Name) {
			diags = append(diags, Diagnostic{
				Pos:      bad,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("//lint:allow %s needs a reason: //lint:allow %s <why this site is safe>", a.Name, a.Name),
			})
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcFor resolves the called function or method behind a call
// expression, seeing through parentheses. Returns nil for builtins,
// conversions and calls of function-typed variables.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
