package lint

import (
	"go/ast"
	"go/types"
)

// hotpathPackages are the packages whose inner loops were converted from
// coroutine processes to run-to-completion continuations (sim.Task). The
// conversion bought the engine its allocation-free, handoff-free hot
// path; this analyzer keeps the Process API from quietly leaking back
// in. The fixture package is listed so the analyzer's own testdata
// exercises it.
var hotpathPackages = map[string]bool{
	"stash/internal/train":      true,
	"stash/internal/collective": true,
	"stash/internal/simnet":     true,
	"fixture/hotpath":           true,
}

// engineConstructionPackages are the packages whose per-cell paths must
// acquire pooled simContexts instead of constructing engines: a
// sim.NewEngine() call there silently reverts the worker-affine arena
// design back to per-cell construction, the allocator cost the pool
// exists to remove. The pool's own constructor carries the one annotated
// allow. The fixture package exercises the analyzer's testdata.
var engineConstructionPackages = map[string]bool{
	"stash/internal/core": true,
	"fixture/hotpathcore": true,
}

// simEnginePkg is the import path of the simulation engine whose Process
// API the hot-loop packages must not reintroduce.
const simEnginePkg = "stash/internal/sim"

// Hotpath flags reintroductions of the coroutine Process API into the
// converted hot-loop packages: calls to (*sim.Engine).Go and function
// declarations taking a *sim.Process. Each process step costs two
// Go-scheduler handoffs where a continuation costs one event dispatch,
// so a Process in an inner loop silently undoes the engine's measured
// speedup. Deliberate thin compatibility wrappers carry
// //lint:allow hotpath annotations.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid the coroutine Process API (Engine.Go, *sim.Process parameters) in the " +
		"converted hot-loop packages (train, collective, simnet), and sim.NewEngine() in " +
		"internal/core's per-cell path (pooled simContexts replace per-cell construction)",
	Run: runHotpath,
}

func runHotpath(pass *Pass) {
	if engineConstructionPackages[pass.Pkg.Path()] {
		runEngineConstruction(pass)
	}
	if !hotpathPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				fn := funcFor(pass.Info, v)
				if fn == nil || fn.Name() != "Go" || fn.Pkg() == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				if isSimType(sig.Recv().Type(), "Engine") {
					pass.Reportf(v.Pos(), "(*sim.Engine).Go spawns a coroutine process in a converted hot-loop package; use Engine.Spawn continuations (sim.Task) or annotate //lint:allow hotpath <reason>")
				}
			case *ast.FuncDecl:
				reportProcessParams(pass, v.Type)
			case *ast.FuncLit:
				reportProcessParams(pass, v.Type)
			}
			return true
		})
	}
}

// runEngineConstruction flags sim.NewEngine calls in the packages that
// must run cells on pooled simContexts.
func runEngineConstruction(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			v, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, v)
			if fn == nil || fn.Name() != "NewEngine" || fn.Pkg() == nil || fn.Pkg().Path() != simEnginePkg {
				return true
			}
			pass.Reportf(v.Pos(), "sim.NewEngine() in a per-cell profiler package defeats the worker-affine engine pool; acquire a pooled simContext or annotate //lint:allow hotpath <reason>")
			return true
		})
	}
}

// reportProcessParams flags parameters typed *sim.Process.
func reportProcessParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isSimType(tv.Type, "Process") {
			continue
		}
		pass.Reportf(field.Pos(), "*sim.Process parameter reintroduces the coroutine API into a converted hot-loop package; express the body as continuations (sim.Task) or annotate //lint:allow hotpath <reason>")
	}
}

// isSimType reports whether t is (a pointer to) the named type
// internal/sim.<name>.
func isSimType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == simEnginePkg && obj.Name() == name
}
