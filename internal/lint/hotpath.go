package lint

import (
	"go/ast"
	"go/types"
)

// hotpathPackages are the packages whose inner loops were converted from
// coroutine processes to run-to-completion continuations (sim.Task). The
// conversion bought the engine its allocation-free, handoff-free hot
// path; this analyzer keeps the Process API from quietly leaking back
// in. The fixture package is listed so the analyzer's own testdata
// exercises it.
var hotpathPackages = map[string]bool{
	"stash/internal/train":      true,
	"stash/internal/collective": true,
	"stash/internal/simnet":     true,
	"fixture/hotpath":           true,
}

// simEnginePkg is the import path of the simulation engine whose Process
// API the hot-loop packages must not reintroduce.
const simEnginePkg = "stash/internal/sim"

// Hotpath flags reintroductions of the coroutine Process API into the
// converted hot-loop packages: calls to (*sim.Engine).Go and function
// declarations taking a *sim.Process. Each process step costs two
// Go-scheduler handoffs where a continuation costs one event dispatch,
// so a Process in an inner loop silently undoes the engine's measured
// speedup. Deliberate thin compatibility wrappers carry
// //lint:allow hotpath annotations.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid the coroutine Process API (Engine.Go, *sim.Process parameters) in the " +
		"converted hot-loop packages (train, collective, simnet): each process step costs " +
		"two goroutine handoffs where a sim.Task continuation costs one event dispatch",
	Run: runHotpath,
}

func runHotpath(pass *Pass) {
	if !hotpathPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				fn := funcFor(pass.Info, v)
				if fn == nil || fn.Name() != "Go" || fn.Pkg() == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				if isSimType(sig.Recv().Type(), "Engine") {
					pass.Reportf(v.Pos(), "(*sim.Engine).Go spawns a coroutine process in a converted hot-loop package; use Engine.Spawn continuations (sim.Task) or annotate //lint:allow hotpath <reason>")
				}
			case *ast.FuncDecl:
				reportProcessParams(pass, v.Type)
			case *ast.FuncLit:
				reportProcessParams(pass, v.Type)
			}
			return true
		})
	}
}

// reportProcessParams flags parameters typed *sim.Process.
func reportProcessParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isSimType(tv.Type, "Process") {
			continue
		}
		pass.Reportf(field.Pos(), "*sim.Process parameter reintroduces the coroutine API into a converted hot-loop package; express the body as continuations (sim.Task) or annotate //lint:allow hotpath <reason>")
	}
}

// isSimType reports whether t is (a pointer to) the named type
// internal/sim.<name>.
func isSimType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == simEnginePkg && obj.Name() == name
}
