package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// wantExpectation is one `// want` assertion from a fixture file.
type wantExpectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// CheckFixture runs one analyzer over a loaded fixture package and
// compares the diagnostics against the package's `// want` comments —
// the same contract as x/tools' analysistest: every diagnostic must be
// matched by a want regexp on its line, and every want must fire.
// Patterns are written as Go string literals, back-quoted by
// convention: // want `regexp` (multiple per comment allowed).
func CheckFixture(pkg *Package, a *Analyzer) []error {
	wants, errs := parseWants(pkg)
	diags := Run(pkg, []*Analyzer{a})

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.pattern))
		}
	}
	return errs
}

// parseWants extracts the want expectations from every comment in the
// package. A want clause may share its comment with other text (for
// example a deliberately-malformed //lint:allow under test), so the
// scan starts at the first "// want" inside the comment.
func parseWants(pkg *Package) ([]*wantExpectation, []error) {
	var wants []*wantExpectation
	var errs []error
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range stringLiterals(c.Text[idx+len("// want "):]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						errs = append(errs, fmt.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err))
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						errs = append(errs, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err))
						continue
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, errs
}

// stringLiterals scans s for Go string literals (back-quoted or
// double-quoted) and returns them with their delimiters.
func stringLiterals(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '`':
			if j := strings.IndexByte(s[i+1:], '`'); j >= 0 {
				out = append(out, s[i:i+j+2])
				i += j + 1
			}
		case '"':
			for j := i + 1; j < len(s); j++ {
				if s[j] == '\\' {
					j++
					continue
				}
				if s[j] == '"' {
					out = append(out, s[i:j+1])
					i = j
					break
				}
			}
		}
	}
	return out
}

// fixtureHasAllow reports whether any file in the package carries an
// allow directive for the named analyzer — used by tests asserting the
// escape hatch itself is exercised.
func fixtureHasAllow(pkg *Package, analyzer string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, allowPrefix) && strings.Contains(c.Text, analyzer) {
					return true
				}
			}
		}
	}
	return false
}
