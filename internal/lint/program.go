package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is the interprocedural layer shared by one analysis run: a
// module-wide call graph over go/types with a per-function summary of
// the facts the cross-function analyzers need — which parameters and
// receivers a call invalidates (hands back to a pool), which signal
// parameters it registers waiters on, fires, or re-arms, the transitive
// set of locks it may acquire, and whether it reaches a context-free
// API whose *Context sibling exists. Summaries are computed to a
// monotone fixed point, so facts flow through arbitrarily deep call
// chains (and through recursion) without re-walking callee bodies at
// every call site.
//
// Function literals are deliberately excluded from summaries: a literal
// has no *types.Func identity callers could look up, and its body is
// scanned independently by each per-function analyzer.
type Program struct {
	fset  *token.FileSet
	facts map[*types.Func]*funcFacts
	order []*funcFacts // deterministic pkgs→files→decls order

	lockEdges []lockEdge
	lockAdj   map[string][]string // acquisition graph, neighbors sorted
}

// funcFacts is the per-function summary.
type funcFacts struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	hasCtx bool // any parameter is a context.Context

	// Pooled-lifecycle facts, keyed by summary parameter index:
	// 0 is the receiver when the function is a method, then the
	// declared parameters in order.
	invalidates map[int]string // index → invalidating API ("Network.Recycle", …)
	resets      map[int]string // index → whole-pool reset API ("Network.Reset", …)
	registers   map[int]bool   // signal param gains a parked waiter (OnFire)
	clears      map[int]bool   // signal param is fired or awaited
	rearms      map[int]bool   // signal param is re-armed

	// Lock facts: every canonical lock key this function may acquire,
	// directly or through any callee (go statements, deferred calls and
	// function literals excluded — they do not run under the caller's
	// locks at the call point).
	locks map[string]bool

	// Context-flow facts, meaningful only when !hasCtx: the function
	// transitively reaches a context-free API with a *Context/*Ctx
	// sibling, without any ctx-taking frame in between. ctxChain is an
	// example call path for the diagnostic, ending at the sibling note.
	ctxTainted bool
	ctxChain   []string
}

// lockEdge is one observed nesting: `to` acquired while `from` is held.
type lockEdge struct {
	from, to string
	fromKind string // "Lock" or "RLock"
	toKind   string
	pos      token.Pos
	via      string // callee name when the inner acquisition is transitive
	pkg      *types.Package
}

// BuildProgram indexes every function declaration in pkgs and computes
// the summaries to a fixed point. The packages must come from a single
// Loader so *types.Func identities are shared across packages.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{facts: make(map[*types.Func]*funcFacts)}
	if len(pkgs) > 0 {
		p.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFacts{fn: fn, decl: fd, pkg: pkg, hasCtx: hasContextParam(fn.Type().(*types.Signature))}
				p.facts[fn] = ff
				p.order = append(p.order, ff)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range p.order {
			if p.recompute(ff) {
				changed = true
			}
		}
	}
	p.computeLockEdges()
	return p
}

// factsFor returns the summary for fn, or nil when fn has no body in
// the analyzed package set (stdlib, interface methods, literals).
func (p *Program) factsFor(fn *types.Func) *funcFacts {
	if fn == nil {
		return nil
	}
	return p.facts[fn]
}

// paramIndexes maps the declared receiver and parameter objects of decl
// to their summary index (receiver 0, then parameters).
func paramIndexes(pkg *Package, decl *ast.FuncDecl) map[types.Object]int {
	idx := make(map[types.Object]int)
	n := 0
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		for _, name := range decl.Recv.List[0].Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				idx[obj] = 0
			}
		}
		n = 1
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			n++
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				idx[obj] = n
			}
			n++
		}
	}
	return idx
}

// argExprAt returns the caller-side expression bound to summary index i
// of a call to a function with signature sig, or nil when it cannot be
// determined (method values, variadic spill).
func argExprAt(call *ast.CallExpr, sig *types.Signature, i int) ast.Expr {
	if sig.Recv() != nil {
		if i == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		i--
	}
	if i >= 0 && i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// recompute rebuilds ff's summary from its body given the current
// summaries of its callees and reports whether anything changed. Every
// fact is monotone in its inputs, so iteration converges.
func (p *Program) recompute(ff *funcFacts) bool {
	params := paramIndexes(ff.pkg, ff.decl)
	next := &funcFacts{
		invalidates: make(map[int]string),
		resets:      make(map[int]string),
		registers:   make(map[int]bool),
		clears:      make(map[int]bool),
		rearms:      make(map[int]bool),
		locks:       make(map[string]bool),
	}
	info := ff.pkg.Info

	paramOf := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		i, ok := params[info.Uses[id]]
		return i, ok
	}

	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // no identity; scanned independently
		case *ast.GoStmt, *ast.DeferStmt:
			return false // not executed under the caller's frame here
		case *ast.CallExpr:
			fn := funcFor(info, v)
			if fn == nil {
				return true
			}
			sig := fn.Type().(*types.Signature)
			var recv ast.Expr
			if sig.Recv() != nil {
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					recv = sel.X
				}
			}

			if label, kind := poolInvalidator(fn); kind != invNone {
				var target ast.Expr
				switch kind {
				case invArg0:
					if len(v.Args) > 0 {
						target = v.Args[0]
					}
				case invRecv:
					target = recv
				}
				if target != nil {
					if i, ok := paramOf(target); ok {
						if _, dup := next.invalidates[i]; !dup {
							next.invalidates[i] = label
						}
					}
				}
				return true
			}
			if label, _ := poolResetter(fn); label != "" {
				if i, ok := paramOf(recv); ok {
					if _, dup := next.resets[i]; !dup {
						next.resets[i] = label
					}
				}
				return true
			}
			switch signalOp(fn) {
			case sigOnFire:
				if i, ok := paramOf(recv); ok {
					next.registers[i] = true
				}
				return true
			case sigFire:
				if i, ok := paramOf(recv); ok {
					next.clears[i] = true
				}
				return true
			case sigRearm:
				if i, ok := paramOf(recv); ok {
					next.rearms[i] = true
				}
				return true
			case sigAwait:
				if len(v.Args) == 1 {
					if i, ok := paramOf(v.Args[0]); ok {
						next.clears[i] = true
					}
				}
				return true
			}
			if r, k := mutexCallInfo(info, v); k == "Lock" || k == "RLock" {
				if key := lockKeyFor(info, r); key != "" {
					next.locks[key] = true
				}
				return true
			}

			// Transitive facts through a summarized callee.
			cf := p.facts[fn]
			if cf == nil {
				return true
			}
			propagate := func(src map[int]bool, dst map[int]bool) {
				for i := range src {
					if arg := argExprAt(v, sig, i); arg != nil {
						if j, ok := paramOf(arg); ok {
							dst[j] = true
						}
					}
				}
			}
			for i, label := range cf.invalidates {
				if arg := argExprAt(v, sig, i); arg != nil {
					if j, ok := paramOf(arg); ok {
						if _, dup := next.invalidates[j]; !dup {
							next.invalidates[j] = label
						}
					}
				}
			}
			for i, label := range cf.resets {
				if arg := argExprAt(v, sig, i); arg != nil {
					if j, ok := paramOf(arg); ok {
						if _, dup := next.resets[j]; !dup {
							next.resets[j] = label
						}
					}
				}
			}
			propagate(cf.registers, next.registers)
			propagate(cf.clears, next.clears)
			propagate(cf.rearms, next.rearms)
			for key := range cf.locks {
				next.locks[key] = true
			}

			// Context taint: only non-ctx module-local frames propagate.
			if !ff.hasCtx && !next.ctxTainted && sameModule(ff.pkg.Path, pkgPathOf(fn)) && !hasContextParam(sig) {
				if sib := contextSiblingFrom(ff.pkg.Path, fn); sib != "" {
					next.ctxTainted = true
					next.ctxChain = []string{fn.Name() + " (sibling " + sib + " exists)"}
				} else if cf.ctxTainted {
					next.ctxTainted = true
					next.ctxChain = append([]string{fn.Name()}, cf.ctxChain...)
				}
			}
		}
		return true
	})

	// Direct taint from callees without bodies is impossible (the
	// sibling lookup above handles declared-elsewhere functions via
	// go/types, not via facts), so taint is complete here.

	// Freeze the example chain at the iteration that first tainted the
	// function: only the boolean participates in the fixed point. A
	// rebuilt chain can otherwise grow by one frame per iteration on a
	// recursive cycle (walk → walk → … never reaches equality), so the
	// `for changed` loop in BuildProgram would spin forever.
	if ff.ctxTainted && next.ctxTainted {
		next.ctxChain = ff.ctxChain
	}
	changed := ff.hasChangedFrom(next)
	ff.invalidates, ff.registers, ff.clears, ff.rearms = next.invalidates, next.registers, next.clears, next.rearms
	ff.resets = next.resets
	ff.locks = next.locks
	ff.ctxTainted, ff.ctxChain = next.ctxTainted, next.ctxChain
	return changed
}

func (ff *funcFacts) hasChangedFrom(next *funcFacts) bool {
	if ff.ctxTainted != next.ctxTainted || !equalStrings(ff.ctxChain, next.ctxChain) {
		return true
	}
	if !equalIntString(ff.invalidates, next.invalidates) || !equalIntString(ff.resets, next.resets) {
		return true
	}
	if !equalIntBool(ff.registers, next.registers) || !equalIntBool(ff.clears, next.clears) ||
		!equalIntBool(ff.rearms, next.rearms) {
		return true
	}
	if len(ff.locks) != len(next.locks) {
		return true
	}
	for k := range next.locks {
		if !ff.locks[k] {
			return true
		}
	}
	return false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIntString(a, b map[int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

func equalIntBool(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range b {
		if !a[k] {
			return false
		}
	}
	return true
}

// sortedLockKeys returns the summary's acquire set in stable order for
// deterministic edge emission.
func sortedLockKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pkgPathOf returns fn's package path, or "" for builtins.
func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ---- pooled-lifecycle API identification -------------------------------

type invKind int

const (
	invNone invKind = iota
	invArg0         // the first call argument is handed back to the pool
	invRecv         // the receiver itself is handed back
)

// poolInvalidator recognizes the repository's pooled-lifecycle APIs:
// the calls after which a handle must not be used again.
func poolInvalidator(fn *types.Func) (label string, kind invKind) {
	switch {
	case isMethodOn(fn, "internal/simnet", "Network", "Recycle"):
		return "Network.Recycle", invArg0
	case isMethodOn(fn, "internal/collective", "Group", "Release"):
		return "Group.Release", invRecv
	}
	return "", invNone
}

// poolResetter recognizes the whole-pool invalidators: Reset on an
// engine or network invalidates every handle derived from that object
// (but not the object itself, which is built for reuse).
func poolResetter(fn *types.Func) (label, class string) {
	switch {
	case isMethodOn(fn, "internal/simnet", "Network", "Reset"):
		return "Network.Reset", "flow"
	case isMethodOn(fn, "internal/sim", "Engine", "Reset"):
		return "Engine.Reset", "handle"
	}
	return "", ""
}

// resetClass maps a poolResetter label back to the pooled class it
// invalidates, for summaries that carry only the label.
func resetClass(label string) string {
	switch label {
	case "Network.Reset":
		return "flow"
	case "Engine.Reset":
		return "handle"
	}
	return ""
}

type sigOp int

const (
	sigNone sigOp = iota
	sigOnFire
	sigFire
	sigRearm
	sigAwait
)

// signalOp classifies sim.Signal waiter-lifecycle calls. Process.Await
// counts as a clear: by the time Await returns, the signal has fired
// and its waiter list is empty.
func signalOp(fn *types.Func) sigOp {
	if isMethodOn(fn, "internal/sim", "Signal", "OnFire") {
		return sigOnFire
	}
	if isMethodOn(fn, "internal/sim", "Signal", "Fire") {
		return sigFire
	}
	if isMethodOn(fn, "internal/sim", "Signal", "Rearm") {
		return sigRearm
	}
	if isMethodOn(fn, "internal/sim", "Process", "Await") {
		return sigAwait
	}
	return sigNone
}

// isMethodOn reports whether fn is method `name` on the named type
// `typeName` declared in a package whose import path ends in pkgSuffix
// (matched on path segments, so "internal/sim" does not match
// "internal/simnet").
func isMethodOn(fn *types.Func, pkgSuffix, typeName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != pkgSuffix && !strings.HasSuffix(path, "/"+pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// pooledClassOf classifies a type as one of the recycled families:
// "flow" (*simnet.Flow), "handle" (sim.Event / *sim.Task, both stale
// after Engine.Reset) or "group" (*collective.Group).
func pooledClassOf(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	path := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	switch {
	case name == "Flow" && pathEndsIn(path, "internal/simnet"):
		return "flow"
	case (name == "Event" || name == "Task") && pathEndsIn(path, "internal/sim"):
		return "handle"
	case name == "Group" && pathEndsIn(path, "internal/collective"):
		return "group"
	}
	return ""
}

func pathEndsIn(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// creatorSrc returns the canonical source expression for a pooled
// handle created by call — the engine or network it came from — or ""
// when the call is not a recognized creator. Reset-style invalidation
// matches on this string, lockheld-style.
func creatorSrc(info *types.Info, call *ast.CallExpr) string {
	fn := funcFor(info, call)
	if fn == nil {
		return ""
	}
	isCreator := false
	switch fn.Name() {
	case "StartFlow", "StartFlowLatency", "Transfer":
		isCreator = isMethodOn(fn, "internal/simnet", "Network", fn.Name())
	case "Schedule", "ScheduleArg", "ScheduleAt", "Spawn":
		isCreator = isMethodOn(fn, "internal/sim", "Engine", fn.Name())
	case "After":
		isCreator = isMethodOn(fn, "internal/sim", "Task", "After")
	}
	if !isCreator {
		return ""
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprKey(sel.X)
	}
	return ""
}

// exprKey renders an expression as a canonical string key, seeing
// through parentheses and a leading address-of.
func exprKey(e ast.Expr) string {
	if e == nil {
		return ""
	}
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	return types.ExprString(e)
}

// ---- lock identity and the acquisition graph ---------------------------

// mutexCallInfo is mutexCallExpr without a Pass: it matches
// sync.(RW)Mutex Lock/RLock/Unlock/RUnlock calls and returns the
// receiver expression and method name.
func mutexCallInfo(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name()
	}
	return nil, ""
}

// lockKeyFor canonicalizes a mutex receiver expression into a
// module-wide lock identity:
//
//   - a struct field `x.mu` keys by the owning named type —
//     "pkg.Type.mu" — conflating all instances of that type (the
//     ordering discipline is per-type, which is what deadlock freedom
//     needs);
//   - a package-level var (including one with an embedded Mutex whose
//     promoted Lock is called directly) keys as "pkg.var";
//   - a local or parameter of a named struct type with a promoted
//     Lock keys by that type;
//   - everything else (a bare local sync.Mutex) has no cross-function
//     identity and returns "".
func lockKeyFor(info *types.Info, recv ast.Expr) string {
	e := ast.Unparen(recv)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := info.Uses[v]
		vr, ok := obj.(*types.Var)
		if !ok || vr.Pkg() == nil {
			return ""
		}
		if vr.Parent() == vr.Pkg().Scope() {
			return vr.Pkg().Path() + "." + vr.Name()
		}
		return namedTypeKey(vr.Type())
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if vr, ok := info.Uses[v.Sel].(*types.Var); ok && vr.Pkg() != nil {
					return vr.Pkg().Path() + "." + vr.Name()
				}
				return ""
			}
		}
		tv, ok := info.Types[v.X]
		if !ok {
			return ""
		}
		if key := namedTypeKey(tv.Type); key != "" {
			return key + "." + v.Sel.Name
		}
	}
	return ""
}

// namedTypeKey renders a (possibly pointer-to) named non-sync type as
// "pkg.Type", or "".
func namedTypeKey(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() == "sync" {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// computeLockEdges walks every lock region in the program (the lockheld
// document-order approximation: Lock to the first same-receiver Unlock,
// or block end when deferred) and records which other locks are
// acquired inside it, directly or through a summarized callee.
func (p *Program) computeLockEdges() {
	// Each declared body is walked once; function literals nested in it
	// are reached by the same block walk, so their regions count too.
	for _, ff := range p.order {
		p.lockEdgesIn(ff.pkg, ff.decl.Body)
	}

	p.lockAdj = make(map[string][]string)
	adjSet := make(map[string]map[string]bool)
	for _, e := range p.lockEdges {
		if adjSet[e.from] == nil {
			adjSet[e.from] = make(map[string]bool)
		}
		adjSet[e.from][e.to] = true
	}
	for from, tos := range adjSet {
		p.lockAdj[from] = sortedLockKeys(tos)
	}
}

// lockEdgesIn scans one function body (its literals included) for lock
// regions and appends the nesting edges found.
func (p *Program) lockEdgesIn(pkg *Package, body *ast.BlockStmt) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, kind := mutexCallInfo(info, call)
			if kind != "Lock" && kind != "RLock" {
				continue
			}
			key := lockKeyFor(info, recv)
			if key == "" {
				continue
			}
			s := &lockRegionScan{prog: p, pkg: pkg, recv: types.ExprString(recv), key: key, kind: kind}
			for _, held := range block.List[i+1:] {
				if s.done {
					break
				}
				s.scan(held)
			}
		}
		return true
	})
}

// lockRegionScan walks the statements after one Lock in document order,
// recording inner acquisitions until the matching Unlock.
type lockRegionScan struct {
	prog *Program
	pkg  *Package
	recv string
	key  string
	kind string
	done bool
}

func (s *lockRegionScan) scan(stmt ast.Stmt) {
	info := s.pkg.Info
	ast.Inspect(stmt, func(n ast.Node) bool {
		if s.done {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			// Not executed under this lock at this point (a deferred
			// mu.Unlock keeps the region open to block end, matching
			// lockheld's approximation).
			return false
		case *ast.CallExpr:
			recv, kind := mutexCallInfo(info, v)
			if kind != "" && types.ExprString(recv) == s.recv && (kind == "Unlock" || kind == "RUnlock") {
				s.done = true
				return false
			}
			if kind == "Lock" || kind == "RLock" {
				if key := lockKeyFor(info, recv); key != "" {
					// RLock inside RLock on the same key is recorded too:
					// sync.RWMutex forbids recursive read locking — a
					// writer's Lock queued between the two RLocks blocks
					// the second one and deadlocks.
					s.add(key, kind, v.Pos(), "")
				}
				return true
			}
			if fn := funcFor(info, v); fn != nil {
				if cf := s.prog.facts[fn]; cf != nil {
					for _, key := range sortedLockKeys(cf.locks) {
						s.add(key, "Lock", v.Pos(), fn.Name())
					}
				}
			}
		}
		return true
	})
}

func (s *lockRegionScan) add(to, toKind string, pos token.Pos, via string) {
	s.prog.lockEdges = append(s.prog.lockEdges, lockEdge{
		from: s.key, to: to, fromKind: s.kind, toKind: toKind,
		pos: pos, via: via, pkg: s.pkg.Types,
	})
}

// lockPath returns a shortest path from → … → to in the acquisition
// graph (inclusive of both endpoints), or nil when to is unreachable.
// Neighbor order is sorted, so the returned path is deterministic.
func (p *Program) lockPath(from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range p.lockAdj[cur] {
			if _, ok := prev[next]; ok {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []string
				for n := to; ; n = prev[n] {
					path = append([]string{n}, path...)
					if n == from {
						return path
					}
				}
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// contextSiblingFrom is the module-local sibling lookup used by both
// the per-function ctxflow check and the interprocedural taint
// computation: it returns the name of fn's *Context/*Ctx variant when
// one exists and takes a context.Context first.
func contextSiblingFrom(fromPkgPath string, fn *types.Func) string {
	if fn.Pkg() == nil || !sameModule(fromPkgPath, fn.Pkg().Path()) {
		return ""
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx") {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Context", "Ctx"} {
		want := name + suffix
		var cand types.Object
		if recv := sig.Recv(); recv != nil {
			cand, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		} else {
			cand = fn.Pkg().Scope().Lookup(want)
		}
		cfn, ok := cand.(*types.Func)
		if !ok {
			continue
		}
		csig := cfn.Type().(*types.Signature)
		if csig.Params().Len() > 0 && isContextType(csig.Params().At(0).Type()) {
			return want
		}
	}
	return ""
}
