package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolSafe proves the pooled-lifecycle rules the PR 5–8 arena work
// introduced: once a handle is given back to its pool, any further use
// reads (or corrupts) state that may already belong to another owner —
// a silent, schedule-dependent way to break the byte-identical stall
// tables. Tracked invalidators, keyed off the real APIs:
//
//   - Network.Recycle(f): f and everything reached through it is stale;
//   - Network.Reset(): every flow started on that network is stale;
//   - Engine.Reset(): every Event handle and *Task spawned from that
//     engine is stale (generation counters make them dangle);
//   - Group.Release(): the group's storage returns to the engine arena.
//
// The check is a forward may-analysis in document order per function
// (the same approximation lockheld uses): a handle invalidated on any
// path is flagged at every later use, unless the invalidating branch
// provably terminates (return/panic/break). Reassignment re-validates.
// Facts flow through calls via the Program summaries, so a helper that
// recycles its argument three frames down still poisons the caller's
// handle.
//
// The analyzer also guards sim.Signal's waiter lifecycle: Rearm while a
// waiter registered by OnFire may still be parked panics at runtime
// mid-simulation; here it is caught at compile time. Fire and
// Process.Await clear the parked set (Await returns only after the
// signal fired and its waiter list drained).
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc: "forbid use of a pooled object after Network.Recycle/Network.Reset/Engine.Reset/" +
		"Group.Release, and Signal.Rearm while a waiter may be parked: a recycled handle " +
		"aliases another owner's state, corrupting stall tables nondeterministically",
	Run: runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				sc := &psScan{pass: pass}
				sc.scanStmt(newPSState(), body)
			}
			return true
		})
	}
}

// psVar is the lattice value for one tracked pooled handle.
type psVar struct {
	class         string // "flow", "handle", "group"
	src           string // creator expression key ("n", "c.eng"), "" if unknown
	invalidatedBy string // "" while valid
	invalidLine   int
}

// psState is the per-path analysis state: tracked handles and signals
// with a possibly-parked waiter (keyed by receiver expression).
type psState struct {
	vars       map[types.Object]*psVar
	parked     map[string]int // signal expr key → line of the OnFire
	terminated bool
}

func newPSState() *psState {
	return &psState{vars: make(map[types.Object]*psVar), parked: make(map[string]int)}
}

func (st *psState) clone() *psState {
	out := newPSState()
	out.terminated = st.terminated
	for obj, v := range st.vars {
		cp := *v
		out.vars[obj] = &cp
	}
	for k, p := range st.parked {
		out.parked[k] = p
	}
	return out
}

// unionStates merges the surviving branch states: a handle invalid on
// any live path stays invalid, a waiter parked on any live path stays
// parked. Branches that terminated (returned, panicked, broke out) do
// not contribute. Ties resolve to the smallest line so the result is
// independent of map iteration order.
func unionStates(cands ...*psState) *psState {
	var live []*psState
	for _, c := range cands {
		if c != nil && !c.terminated {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := live[0].clone()
	for _, c := range live[1:] {
		for obj, v := range c.vars {
			cur, ok := out.vars[obj]
			if !ok {
				cp := *v
				out.vars[obj] = &cp
				continue
			}
			if v.invalidatedBy != "" && (cur.invalidatedBy == "" || v.invalidLine < cur.invalidLine) {
				cur.invalidatedBy, cur.invalidLine = v.invalidatedBy, v.invalidLine
			}
		}
		for k, line := range c.parked {
			if cur, ok := out.parked[k]; !ok || line < cur {
				out.parked[k] = line
			}
		}
	}
	return out
}

func (st *psState) replaceWith(u *psState) {
	if u == nil {
		st.terminated = true
		return
	}
	st.vars, st.parked = u.vars, u.parked
}

type psScan struct {
	pass *Pass
}

func (sc *psScan) scanStmt(st *psState, s ast.Stmt) {
	if st.terminated || s == nil {
		return
	}
	switch v := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range v.List {
			sc.scanStmt(st, s2)
		}
	case *ast.ExprStmt:
		sc.scanExpr(st, v.X)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			sc.scanExpr(st, r)
		}
		for i, l := range v.Lhs {
			sc.assignLHS(st, l, assignRHS(v.Rhs, i))
		}
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, val := range vs.Values {
				sc.scanExpr(st, val)
			}
			for i, name := range vs.Names {
				sc.defineVar(st, sc.pass.Info.Defs[name], assignRHS(vs.Values, i))
			}
		}
	case *ast.IfStmt:
		sc.scanStmt(st, v.Init)
		sc.scanExpr(st, v.Cond)
		then := st.clone()
		sc.scanStmt(then, v.Body)
		els := st.clone()
		if v.Else != nil {
			sc.scanStmt(els, v.Else)
		}
		st.replaceWith(unionStates(then, els))
	case *ast.ForStmt:
		sc.scanStmt(st, v.Init)
		sc.scanExpr(st, v.Cond)
		body := st.clone()
		sc.scanStmt(body, v.Body)
		sc.scanStmt(body, v.Post)
		st.replaceWith(unionStates(body, st.clone()))
	case *ast.RangeStmt:
		sc.scanExpr(st, v.X)
		body := st.clone()
		sc.assignLHS(body, v.Key, nil)
		sc.assignLHS(body, v.Value, nil)
		sc.scanStmt(body, v.Body)
		st.replaceWith(unionStates(body, st.clone()))
	case *ast.SwitchStmt:
		sc.scanStmt(st, v.Init)
		sc.scanExpr(st, v.Tag)
		sc.scanCases(st, v.Body, switchHasDefault(v.Body))
	case *ast.TypeSwitchStmt:
		sc.scanStmt(st, v.Init)
		if as, ok := v.Assign.(*ast.AssignStmt); ok {
			for _, r := range as.Rhs {
				sc.scanExpr(st, r)
			}
		} else if es, ok := v.Assign.(*ast.ExprStmt); ok {
			sc.scanExpr(st, es.X)
		}
		sc.scanCases(st, v.Body, switchHasDefault(v.Body))
	case *ast.SelectStmt:
		var branches []*psState
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			b := st.clone()
			sc.scanStmt(b, cc.Comm)
			for _, s2 := range cc.Body {
				sc.scanStmt(b, s2)
			}
			branches = append(branches, b)
		}
		st.replaceWith(unionStates(branches...))
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			sc.scanExpr(st, e)
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; treating
		// them as terminators keeps the guard-and-bail idiom clean.
		// fallthrough does the opposite — execution continues into the
		// next case body — so scanCases threads its state onward.
		if v.Tok != token.FALLTHROUGH {
			st.terminated = true
		}
	case *ast.DeferStmt:
		// Receiver and arguments are evaluated now; the call's effects
		// happen at function exit, outside this document-order scan.
		sc.scanCallOperands(st, v.Call)
	case *ast.GoStmt:
		sc.scanCallOperands(st, v.Call)
	case *ast.LabeledStmt:
		sc.scanStmt(st, v.Stmt)
	case *ast.SendStmt:
		sc.scanExpr(st, v.Chan)
		sc.scanExpr(st, v.Value)
	case *ast.IncDecStmt:
		sc.scanExpr(st, v.X)
	}
}

func assignRHS(rhs []ast.Expr, i int) ast.Expr {
	if len(rhs) == 1 {
		return rhs[0]
	}
	if i < len(rhs) {
		return rhs[i]
	}
	return nil
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (sc *psScan) scanCases(st *psState, body *ast.BlockStmt, hasDefault bool) {
	var branches []*psState
	var fell *psState // state flowing in when the previous case fell through
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b := st.clone()
		if fell != nil {
			// Entered either by matching the case or by falling through
			// from the previous one: union both entry states.
			b = unionStates(b, fell)
			fell = nil
		}
		for _, e := range cc.List {
			sc.scanExpr(b, e)
		}
		for _, s2 := range cc.Body {
			sc.scanStmt(b, s2)
		}
		if caseFallsThrough(cc) {
			// Control transfers into the next case, so this path joins
			// the switch exit through that case's body, not here.
			fell = b
			continue
		}
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, st.clone()) // the no-case-taken path
	}
	st.replaceWith(unionStates(branches...))
}

// caseFallsThrough reports whether the case body ends in a fallthrough
// statement (the spec requires it to be the final statement).
func caseFallsThrough(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	s := cc.Body[len(cc.Body)-1]
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			break
		}
		s = ls.Stmt
	}
	br, ok := s.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// assignLHS handles one assignment target: an identifier target is
// re-validated (and re-tracked when its type is a pooled class), any
// other target is scanned for uses of stale handles in its base.
func (sc *psScan) assignLHS(st *psState, l ast.Expr, rhs ast.Expr) {
	if l == nil {
		return
	}
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		obj := sc.pass.Info.Defs[id]
		if obj == nil {
			obj = sc.pass.Info.Uses[id]
		}
		sc.defineVar(st, obj, rhs)
		return
	}
	sc.scanExpr(st, l)
}

func (sc *psScan) defineVar(st *psState, obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	delete(st.vars, obj)
	cls := pooledClassOf(obj.Type())
	if cls == "" {
		return
	}
	src := ""
	if rhs != nil {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			src = creatorSrc(sc.pass.Info, call)
		}
	}
	st.vars[obj] = &psVar{class: cls, src: src}
}

// scanCallOperands evaluates a go/defer call's operands for stale uses
// without applying the call's pool effects.
func (sc *psScan) scanCallOperands(st *psState, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		sc.scanExpr(st, sel.X)
	}
	for _, a := range call.Args {
		sc.scanExpr(st, a)
	}
}

func (sc *psScan) scanExpr(st *psState, e ast.Expr) {
	if st.terminated || e == nil {
		return
	}
	switch v := e.(type) {
	case *ast.Ident:
		sc.checkUse(st, v)
	case *ast.FuncLit:
		// Scanned as its own function by runPoolSafe.
	case *ast.CallExpr:
		sc.scanExpr(st, v.Fun)
		for _, a := range v.Args {
			sc.scanExpr(st, a)
		}
		sc.applyCall(st, v)
	case *ast.SelectorExpr:
		sc.scanExpr(st, v.X)
	case *ast.BinaryExpr:
		sc.scanExpr(st, v.X)
		sc.scanExpr(st, v.Y)
	case *ast.UnaryExpr:
		sc.scanExpr(st, v.X)
	case *ast.StarExpr:
		sc.scanExpr(st, v.X)
	case *ast.ParenExpr:
		sc.scanExpr(st, v.X)
	case *ast.IndexExpr:
		sc.scanExpr(st, v.X)
		sc.scanExpr(st, v.Index)
	case *ast.IndexListExpr:
		sc.scanExpr(st, v.X)
		for _, i := range v.Indices {
			sc.scanExpr(st, i)
		}
	case *ast.SliceExpr:
		sc.scanExpr(st, v.X)
		sc.scanExpr(st, v.Low)
		sc.scanExpr(st, v.High)
		sc.scanExpr(st, v.Max)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			sc.scanExpr(st, el)
		}
	case *ast.KeyValueExpr:
		sc.scanExpr(st, v.Value)
	case *ast.TypeAssertExpr:
		sc.scanExpr(st, v.X)
	}
}

func (sc *psScan) checkUse(st *psState, id *ast.Ident) {
	obj := sc.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	v, ok := st.vars[obj]
	if !ok || v.invalidatedBy == "" {
		return
	}
	sc.pass.Reportf(id.Pos(),
		"%s used after %s (line %d): a recycled %s may already belong to another owner; re-acquire it from the pool instead",
		id.Name, v.invalidatedBy, v.invalidLine, v.class)
}

// applyCall applies the pool effects of one call after its operands
// have been scanned: direct lifecycle APIs first, then summarized
// callees from the Program.
func (sc *psScan) applyCall(st *psState, call *ast.CallExpr) {
	info := sc.pass.Info
	fn := funcFor(info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	var recvExpr ast.Expr
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recvExpr = sel.X
		}
	}
	line := sc.pass.Fset.Position(call.Pos()).Line

	if label, kind := poolInvalidator(fn); kind != invNone {
		switch kind {
		case invArg0:
			if len(call.Args) > 0 {
				sc.invalidate(st, call.Args[0], label, line)
			}
		case invRecv:
			sc.invalidate(st, recvExpr, label, line)
		}
		return
	}
	if label, class := poolResetter(fn); label != "" {
		src := exprKey(recvExpr)
		for _, v := range st.vars {
			if v.class == class && v.src != "" && v.src == src && v.invalidatedBy == "" {
				v.invalidatedBy, v.invalidLine = label, line
			}
		}
		return
	}
	switch signalOp(fn) {
	case sigOnFire:
		if k := exprKey(recvExpr); k != "" {
			if _, ok := st.parked[k]; !ok {
				st.parked[k] = line
			}
		}
		return
	case sigFire:
		delete(st.parked, exprKey(recvExpr))
		return
	case sigRearm:
		k := exprKey(recvExpr)
		if at, ok := st.parked[k]; ok {
			sc.pass.Reportf(call.Pos(),
				"Rearm of %s while a waiter registered at line %d may still be parked; Fire the signal or drop the waiter before re-arming (Rearm panics on parked waiters at runtime)",
				k, at)
		}
		return
	case sigAwait:
		if len(call.Args) == 1 {
			delete(st.parked, exprKey(call.Args[0]))
		}
		return
	}

	if sc.pass.Prog == nil {
		return
	}
	cf := sc.pass.Prog.factsFor(fn)
	if cf == nil {
		return
	}
	for _, i := range sortedIntKeysString(cf.invalidates) {
		if arg := argExprAt(call, sig, i); arg != nil {
			sc.invalidate(st, arg, cf.invalidates[i]+" (via "+fn.Name()+")", line)
		}
	}
	for _, i := range sortedIntKeysString(cf.resets) {
		arg := argExprAt(call, sig, i)
		if arg == nil {
			continue
		}
		label := cf.resets[i]
		class, src := resetClass(label), exprKey(arg)
		for _, v := range st.vars {
			if v.class == class && v.src != "" && v.src == src && v.invalidatedBy == "" {
				v.invalidatedBy, v.invalidLine = label+" (via "+fn.Name()+")", line
			}
		}
	}
	for _, i := range sortedIntKeysBool(cf.rearms) {
		if arg := argExprAt(call, sig, i); arg != nil {
			k := exprKey(arg)
			if at, ok := st.parked[k]; ok {
				sc.pass.Reportf(call.Pos(),
					"Rearm of %s (via %s) while a waiter registered at line %d may still be parked; Fire the signal or drop the waiter before re-arming",
					k, fn.Name(), at)
			}
		}
	}
	for _, i := range sortedIntKeysBool(cf.registers) {
		if arg := argExprAt(call, sig, i); arg != nil {
			if k := exprKey(arg); k != "" {
				if _, ok := st.parked[k]; !ok {
					st.parked[k] = line
				}
			}
		}
	}
	for _, i := range sortedIntKeysBool(cf.clears) {
		if arg := argExprAt(call, sig, i); arg != nil {
			delete(st.parked, exprKey(arg))
		}
	}
}

// invalidate marks the handle behind e stale. Only identifier-rooted
// handles are tracked; invalidating a field or element is out of this
// approximation's reach and is covered by the runtime arena checks.
func (sc *psScan) invalidate(st *psState, e ast.Expr, label string, line int) {
	if e == nil {
		return
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj := sc.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	v := st.vars[obj]
	if v == nil {
		cls := pooledClassOf(obj.Type())
		if cls == "" {
			return
		}
		v = &psVar{class: cls}
		st.vars[obj] = v
	}
	if v.invalidatedBy == "" {
		v.invalidatedBy, v.invalidLine = label, line
	}
}

func sortedIntKeysString(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedIntKeysBool(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
