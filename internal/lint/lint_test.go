package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader builds one loader rooted at this module so fixtures can
// import real repo packages (internal/report) alongside the stdlib.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, path)
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(wd, "testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// TestFixtures runs each analyzer over its testdata package and checks
// the diagnostics against the // want annotations, analysistest-style.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{Wallclock, "wallclock"},
		{MapOrder, "maporder"},
		{LockHeld, "lockheld"},
		{LockOrder, "lockorder"},
		{CtxFlow, "ctxflow"},
		{PoolSafe, "poolsafe"},
		{PoolSafe, "allowscope"},
		{FloatCmp, "floatcmp"},
		{Hotpath, "hotpath"},
		{Hotpath, "hotpathcore"},
	}
	l := fixtureLoader(t)
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			pkg := loadFixture(t, l, c.fixture)
			for _, err := range CheckFixture(pkg, c.analyzer) {
				t.Error(err)
			}
		})
	}
}

// TestAllowRequiresReason is the escape-hatch-of-the-escape-hatch: a
// bare //lint:allow wallclock with no reason string must not suppress
// the finding and must itself be reported.
func TestAllowRequiresReason(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowreason")
	for _, err := range CheckFixture(pkg, Wallclock) {
		t.Error(err)
	}

	// Belt and braces beyond the want annotations: the malformed
	// directive must be present and produce exactly one
	// missing-reason diagnostic plus two unsuppressed findings.
	if !fixtureHasAllow(pkg, "wallclock") {
		t.Fatal("fixture lost its //lint:allow directive")
	}
	diags := Run(pkg, []*Analyzer{Wallclock})
	var missing, findings int
	for _, d := range diags {
		if d.Analyzer != "wallclock" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
		if strings.Contains(d.Message, "needs a reason") {
			missing++
		} else {
			findings++
		}
	}
	if missing != 1 || findings != 2 {
		t.Errorf("got %d missing-reason and %d findings, want 1 and 2: %v", missing, findings, diags)
	}
}

// TestSuiteRegistry pins the analyzer set: CI prints this list, and the
// allow annotations in the tree reference these names.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"wallclock", "maporder", "lockheld", "lockorder", "ctxflow", "poolsafe", "floatcmp", "hotpath"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
		if ByName(want[i]) != a {
			t.Errorf("ByName(%q) did not round-trip", want[i])
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate ci.sh enforces via cmd/stashlint, kept here so a plain `go test
// ./...` also proves the tree is violation-free.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; run without -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, path).Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("fixture package %s leaked into the module walk", pkg.Path)
		}
	}
	// One program over the whole module, so the interprocedural
	// analyzers see every cross-package call chain — the same shape
	// cmd/stashlint runs in CI.
	for _, d := range RunAll(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestAllowScopeInterprocedural pins the scoping contract directly (the
// want annotations in testdata/src/allowscope cover it fixture-style):
// a callee-side allow must not suppress the caller-side finding derived
// from the callee's summary, and vice versa.
func TestAllowScopeInterprocedural(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowscope")
	diags := Run(pkg, []*Analyzer{PoolSafe})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (caller-side and callee-side): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "Group.Release") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !strings.Contains(diags[0].Message, "(via releaseQuiet)") && !strings.Contains(diags[1].Message, "(via releaseQuiet)") {
		t.Errorf("missing the interprocedural caller-side finding: %v", diags)
	}
}

// TestStaleAllows: a directive that suppressed a finding is kept, one
// that suppressed nothing is reported at its own position.
func TestStaleAllows(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "staleallow")
	stale := StaleAllows([]*Package{pkg}, []*Analyzer{Wallclock, PoolSafe})
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %v", len(stale), stale)
	}
	d := stale[0]
	if d.Analyzer != "wallclock" || !strings.Contains(d.Message, "stale //lint:allow wallclock") {
		t.Errorf("unexpected stale diagnostic: %s", d)
	}
	// The live directive sits above time.Now (line 12); the stale one
	// must be the other, later directive.
	if d.Pos.Line <= 12 {
		t.Errorf("stale diagnostic points at the live directive: %s", d)
	}
}

// TestStaleAllowsIgnoresOtherAnalyzers: running a subset proves nothing
// about directives naming analyzers outside it.
func TestStaleAllowsIgnoresOtherAnalyzers(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "staleallow")
	if stale := StaleAllows([]*Package{pkg}, []*Analyzer{PoolSafe}); len(stale) != 0 {
		t.Errorf("stale findings for analyzers that did not run: %v", stale)
	}
}
