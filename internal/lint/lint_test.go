package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader builds one loader rooted at this module so fixtures can
// import real repo packages (internal/report) alongside the stdlib.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, path)
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(wd, "testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// TestFixtures runs each analyzer over its testdata package and checks
// the diagnostics against the // want annotations, analysistest-style.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{Wallclock, "wallclock"},
		{MapOrder, "maporder"},
		{LockHeld, "lockheld"},
		{LockOrder, "lockorder"},
		{CtxFlow, "ctxflow"},
		{PoolSafe, "poolsafe"},
		{PoolSafe, "allowscope"},
		{FloatCmp, "floatcmp"},
		{Hotpath, "hotpath"},
		{Hotpath, "hotpathcore"},
	}
	l := fixtureLoader(t)
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			pkg := loadFixture(t, l, c.fixture)
			for _, err := range CheckFixture(pkg, c.analyzer) {
				t.Error(err)
			}
		})
	}
}

// TestAllowRequiresReason is the escape-hatch-of-the-escape-hatch: a
// bare //lint:allow wallclock with no reason string must not suppress
// the finding and must itself be reported.
func TestAllowRequiresReason(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowreason")
	for _, err := range CheckFixture(pkg, Wallclock) {
		t.Error(err)
	}

	// Belt and braces beyond the want annotations: the malformed
	// directive must be present and produce exactly one
	// missing-reason diagnostic plus two unsuppressed findings.
	if !fixtureHasAllow(pkg, "wallclock") {
		t.Fatal("fixture lost its //lint:allow directive")
	}
	diags := Run(pkg, []*Analyzer{Wallclock})
	var missing, findings int
	for _, d := range diags {
		if d.Analyzer != "wallclock" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
		if strings.Contains(d.Message, "needs a reason") {
			missing++
		} else {
			findings++
		}
	}
	if missing != 1 || findings != 2 {
		t.Errorf("got %d missing-reason and %d findings, want 1 and 2: %v", missing, findings, diags)
	}
}

// TestSuiteRegistry pins the analyzer set: CI prints this list, and the
// allow annotations in the tree reference these names.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"wallclock", "maporder", "lockheld", "lockorder", "ctxflow", "poolsafe", "floatcmp", "hotpath"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
		if ByName(want[i]) != a {
			t.Errorf("ByName(%q) did not round-trip", want[i])
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate ci.sh enforces via cmd/stashlint, kept here so a plain `go test
// ./...` also proves the tree is violation-free.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; run without -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, path).Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("fixture package %s leaked into the module walk", pkg.Path)
		}
	}
	// One program over the whole module, so the interprocedural
	// analyzers see every cross-package call chain — the same shape
	// cmd/stashlint runs in CI.
	for _, d := range RunAll(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestProgramConvergesOnRecursion is the regression test for the
// summary fixed point: the ctxflow fixture contains self- and
// mutually-recursive functions that reach a context-free API with a
// *Context sibling, and BuildProgram must still terminate (the example
// chain is frozen at first taint — a chain rebuilt per iteration grows
// by one frame per round on a cycle and the fixed point never closes).
// A regression here shows up as this test hanging until the go test
// timeout; the assertions below additionally pin the frozen chains.
func TestProgramConvergesOnRecursion(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "ctxflow")
	prog := BuildProgram([]*Package{pkg})
	byName := make(map[string]*funcFacts)
	for _, ff := range prog.order {
		byName[ff.fn.Name()] = ff
	}
	for name, wantFirst := range map[string]string{"walk": "fetch", "pingPongB": "pingPongA"} {
		ff := byName[name]
		if ff == nil {
			t.Fatalf("fixture function %s not summarized", name)
		}
		if !ff.ctxTainted {
			t.Errorf("%s should be ctx-tainted", name)
		}
		// The frozen chain is finite and free of the growth artifact: a
		// recursive frame never stacks itself.
		if len(ff.ctxChain) > len(prog.order) {
			t.Errorf("%s chain grew past the function count (%d frames): %v", name, len(ff.ctxChain), ff.ctxChain)
		}
		if len(ff.ctxChain) == 0 || !strings.HasPrefix(ff.ctxChain[0], wantFirst) {
			t.Errorf("%s chain = %v, want first frame %q", name, ff.ctxChain, wantFirst)
		}
		for i := 1; i < len(ff.ctxChain); i++ {
			if ff.ctxChain[i] == ff.ctxChain[i-1] {
				t.Errorf("%s chain repeats a frame: %v", name, ff.ctxChain)
			}
		}
	}
	if ff := byName["spinA"]; ff == nil || ff.ctxTainted {
		t.Errorf("spinA (recursion with no tainting leaf) should be summarized and untainted")
	}
}

// TestAllowScopeInterprocedural pins the scoping contract directly (the
// want annotations in testdata/src/allowscope cover it fixture-style):
// a callee-side allow must not suppress the caller-side finding derived
// from the callee's summary, and vice versa.
func TestAllowScopeInterprocedural(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowscope")
	diags := Run(pkg, []*Analyzer{PoolSafe})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (caller-side and callee-side): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "Group.Release") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !strings.Contains(diags[0].Message, "(via releaseQuiet)") && !strings.Contains(diags[1].Message, "(via releaseQuiet)") {
		t.Errorf("missing the interprocedural caller-side finding: %v", diags)
	}
}

// TestRunPackageObserved: the hook fires once per analyzer in roster
// order, the findings match a plain RunPackage over the same program
// (one shared allow index, no per-analyzer rebuild), and a nil hook
// degrades to RunPackage.
func TestRunPackageObserved(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "poolsafe")
	analyzers := All()
	prog := BuildProgram([]*Package{pkg})
	plain := RunPackage(prog, pkg, analyzers)

	var seen []int
	observed := RunPackageObserved(prog, pkg, analyzers, func(i int, run func()) {
		seen = append(seen, i)
		run()
	})
	if len(seen) != len(analyzers) {
		t.Fatalf("observe fired %d times, want %d", len(seen), len(analyzers))
	}
	for i, j := range seen {
		if i != j {
			t.Errorf("observe order %v, want roster order", seen)
			break
		}
	}
	if len(observed) != len(plain) {
		t.Fatalf("observed run found %d diagnostics, plain run %d", len(observed), len(plain))
	}
	for i := range observed {
		if observed[i] != plain[i] {
			t.Errorf("diagnostic %d differs: %v vs %v", i, observed[i], plain[i])
		}
	}
	if nilHook := RunPackageObserved(prog, pkg, analyzers, nil); len(nilHook) != len(plain) {
		t.Errorf("nil-hook run found %d diagnostics, want %d", len(nilHook), len(plain))
	}
}

// TestStaleAllows: a directive that suppressed a finding is kept, one
// that suppressed nothing is reported at its own position.
func TestStaleAllows(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "staleallow")
	stale := StaleAllows([]*Package{pkg}, []*Analyzer{Wallclock, PoolSafe})
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %v", len(stale), stale)
	}
	d := stale[0]
	if d.Analyzer != "wallclock" || !strings.Contains(d.Message, "stale //lint:allow wallclock") {
		t.Errorf("unexpected stale diagnostic: %s", d)
	}
	// The live directive sits above time.Now (line 12); the stale one
	// must be the other, later directive.
	if d.Pos.Line <= 12 {
		t.Errorf("stale diagnostic points at the live directive: %s", d)
	}
}

// TestStaleAllowsIgnoresOtherAnalyzers: running a subset proves nothing
// about directives naming analyzers outside it.
func TestStaleAllowsIgnoresOtherAnalyzers(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "staleallow")
	if stale := StaleAllows([]*Package{pkg}, []*Analyzer{PoolSafe}); len(stale) != 0 {
		t.Errorf("stale findings for analyzers that did not run: %v", stale)
	}
}
