package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader builds one loader rooted at this module so fixtures can
// import real repo packages (internal/report) alongside the stdlib.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, path)
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(wd, "testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// TestFixtures runs each analyzer over its testdata package and checks
// the diagnostics against the // want annotations, analysistest-style.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{Wallclock, "wallclock"},
		{MapOrder, "maporder"},
		{LockHeld, "lockheld"},
		{CtxFlow, "ctxflow"},
		{FloatCmp, "floatcmp"},
		{Hotpath, "hotpath"},
		{Hotpath, "hotpathcore"},
	}
	l := fixtureLoader(t)
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			pkg := loadFixture(t, l, c.fixture)
			for _, err := range CheckFixture(pkg, c.analyzer) {
				t.Error(err)
			}
		})
	}
}

// TestAllowRequiresReason is the escape-hatch-of-the-escape-hatch: a
// bare //lint:allow wallclock with no reason string must not suppress
// the finding and must itself be reported.
func TestAllowRequiresReason(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowreason")
	for _, err := range CheckFixture(pkg, Wallclock) {
		t.Error(err)
	}

	// Belt and braces beyond the want annotations: the malformed
	// directive must be present and produce exactly one
	// missing-reason diagnostic plus two unsuppressed findings.
	if !fixtureHasAllow(pkg, "wallclock") {
		t.Fatal("fixture lost its //lint:allow directive")
	}
	diags := Run(pkg, []*Analyzer{Wallclock})
	var missing, findings int
	for _, d := range diags {
		if d.Analyzer != "wallclock" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
		if strings.Contains(d.Message, "needs a reason") {
			missing++
		} else {
			findings++
		}
	}
	if missing != 1 || findings != 2 {
		t.Errorf("got %d missing-reason and %d findings, want 1 and 2: %v", missing, findings, diags)
	}
}

// TestSuiteRegistry pins the analyzer set: CI prints this list, and the
// allow annotations in the tree reference these names.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"wallclock", "maporder", "lockheld", "ctxflow", "floatcmp", "hotpath"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
		if ByName(want[i]) != a {
			t.Errorf("ByName(%q) did not round-trip", want[i])
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate ci.sh enforces via cmd/stashlint, kept here so a plain `go test
// ./...` also proves the tree is violation-free.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; run without -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, path).Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}
