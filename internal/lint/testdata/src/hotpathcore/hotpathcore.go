// Package hotpathcore exercises the hotpath analyzer's engine-construction
// check: in internal/core's per-cell path, calling sim.NewEngine() is
// flagged (cells must run on pooled simContexts); the pool's annotated
// constructor and non-engine constructors are not.
package hotpathcore

import (
	"stash/internal/sim"
)

func badPerCell() *sim.Engine {
	return sim.NewEngine() // want `sim\.NewEngine\(\) in a per-cell profiler package defeats the worker-affine engine pool`
}

type ctx struct{ eng *sim.Engine }

func badContext() *ctx {
	c := &ctx{}
	c.eng = sim.NewEngine() // want `sim\.NewEngine\(\) in a per-cell profiler package defeats the worker-affine engine pool`
	return c
}

// goodPoolConstructor mirrors the sanctioned construction site: the
// pool's own constructor carries the annotated allow.
func goodPoolConstructor() *ctx {
	//lint:allow hotpath the pool's constructor is the one sanctioned engine-construction site
	return &ctx{eng: sim.NewEngine()}
}

// goodOtherConstructor: same-name functions from other packages are not
// engine construction.
func goodOtherConstructor() *sim.Signal {
	e := goodPoolConstructor().eng
	return sim.NewSignal(e)
}
