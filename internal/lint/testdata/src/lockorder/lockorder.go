// Package lockorder exercises the lockorder analyzer: the module-wide
// lock-acquisition graph must stay acyclic. Seeded here: a direct AB/BA
// inversion inside one type, a cross-function cycle where each half of
// the inversion hides behind a call, a recursive (self) acquisition,
// and consistently-ordered nesting that must stay clean.
package lockorder

import "sync"

// ---- direct inversion within one type ---------------------------------

type server struct {
	mu sync.Mutex
	qu sync.Mutex
}

func (s *server) abOrder() {
	s.mu.Lock()
	s.qu.Lock() // want `lock order cycle`
	s.qu.Unlock()
	s.mu.Unlock()
}

func (s *server) baOrder() {
	s.qu.Lock()
	s.mu.Lock() // want `lock order cycle`
	s.mu.Unlock()
	s.qu.Unlock()
}

// ---- consistent ordering stays clean ----------------------------------

type tree struct {
	parent sync.Mutex
	child  sync.Mutex
}

func (t *tree) down() {
	t.parent.Lock()
	t.child.Lock()
	t.child.Unlock()
	t.parent.Unlock()
}

func (t *tree) downDeferred() {
	t.parent.Lock()
	defer t.parent.Unlock()
	t.child.Lock()
	defer t.child.Unlock()
}

// ---- the inversion hides behind calls ---------------------------------

type reg struct{ mu sync.Mutex }
type cache struct{ mu sync.Mutex }

func touchReg(r *reg) {
	r.mu.Lock()
	defer r.mu.Unlock()
}

func touchCache(c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
}

func (c *cache) fill(r *reg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	touchReg(r) // want `lock order cycle`
}

func (r *reg) sweep(c *cache) {
	r.mu.Lock()
	defer r.mu.Unlock()
	touchCache(c) // want `lock order cycle`
}

// ---- recursive acquisition --------------------------------------------

var global sync.Mutex

func doubleLock() {
	global.Lock()
	global.Lock() // want `global acquired while already held`
	global.Unlock()
	global.Unlock()
}

func lockGlobal() {
	global.Lock()
	global.Unlock()
}

func recurseViaHelper() {
	global.Lock()
	lockGlobal() // want `global acquired while already held \(via call to lockGlobal\)`
	global.Unlock()
}

// ---- recursive read locking -------------------------------------------

// sync.RWMutex forbids recursive read locking: a writer's Lock queued
// between the two RLocks blocks the second one and deadlocks.
var rw sync.RWMutex

func doubleRLock() int {
	rw.RLock()
	rw.RLock() // want `rw read-locked while already read-held`
	rw.RUnlock()
	rw.RUnlock()
	return 0
}

// Sequential read regions are fine: the first RUnlock closes the
// region before the second RLock opens.
func sequentialRLock() {
	rw.RLock()
	rw.RUnlock()
	rw.RLock()
	rw.RUnlock()
}

// ---- allow scoping: a callee-side allow must not leak to callers ------

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockBQuiet(p *pair) {
	//lint:allow lockorder scope test: this directive must not suppress caller-side findings
	p.b.Lock()
	p.b.Unlock()
}

func callerOrderAB(p *pair) {
	p.a.Lock()
	lockBQuiet(p) // want `lock order cycle`
	p.a.Unlock()
}

func callerOrderBA(p *pair) {
	p.b.Lock()
	p.a.Lock() // want `lock order cycle`
	p.a.Unlock()
	p.b.Unlock()
}
