// Package hotpath exercises the hotpath analyzer: in a converted
// hot-loop package, spawning coroutine processes (Engine.Go) and
// declaring *sim.Process parameters are flagged; the continuation Task
// API and annotated compatibility wrappers are not.
package hotpath

import (
	"time"

	"stash/internal/sim"
)

func badSpawn(e *sim.Engine) {
	e.Go("worker", func(p *sim.Process) { // want `\(\*sim\.Engine\)\.Go spawns a coroutine process` `\*sim\.Process parameter reintroduces the coroutine API`
		p.Sleep(time.Second)
	})
}

func badParam(p *sim.Process, d time.Duration) { // want `\*sim\.Process parameter reintroduces the coroutine API`
	p.Sleep(d)
}

type runner struct{ eng *sim.Engine }

func (r *runner) badMethod(p *sim.Process) { // want `\*sim\.Process parameter reintroduces the coroutine API`
	p.Yield()
}

// goodTask uses the continuation API: one event dispatch per step, no
// goroutine handoffs — the shape the analyzer exists to preserve.
func goodTask(e *sim.Engine) {
	var task *sim.Task
	n := 0
	var step func()
	step = func() {
		n++
		if n < 3 {
			task.After(time.Second, step)
			return
		}
		task.End()
	}
	task = e.Spawn("worker", step)
}

// goodSignal registers a continuation instead of parking a process.
func goodSignal(e *sim.Engine, sig *sim.Signal) {
	sig.OnFire(func() {})
	e.Schedule(0, func() {})
	e.ScheduleArg(0, func(arg any) { _ = arg }, 1)
}

// allowedWrapper mirrors the annotated thin blocking wrappers the
// converted packages keep for tests and examples.
//
//lint:allow hotpath thin blocking wrapper kept for tests; hot loop uses continuations
func allowedWrapper(p *sim.Process, e *sim.Engine) {
	p.Sleep(time.Millisecond)
}
