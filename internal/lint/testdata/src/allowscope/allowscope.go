// Package allowscope pins allow-directive scoping under the
// interprocedural analyzers: //lint:allow is line-local to where a
// finding is REPORTED, so a directive inside a callee never silences a
// caller-side finding derived from that callee's summary, and a
// caller-side directive never silences the callee's own finding.
package allowscope

import "stash/internal/collective"

// The directive here covers releaseQuiet's own lines only. Its summary
// (receiver invalidated) still flows to callers.
func releaseQuiet(g *collective.Group) {
	//lint:allow poolsafe scope test: the pool owner invalidates deliberately
	g.Release()
}

func badCallerStillFlagged(g *collective.Group) int {
	releaseQuiet(g)
	return g.WorldSize() // want `g used after Group\.Release \(via releaseQuiet\)`
}

// The callee's own finding is reported at the callee's line; an allow
// at the caller cannot reach it.
func releaseAndUse(g *collective.Group) int {
	g.Release()
	return g.WorldSize() // want `g used after Group\.Release`
}

func callerAllowDoesNotLeak(g *collective.Group) int {
	//lint:allow poolsafe scope test: suppresses nothing in the callee
	return releaseAndUse(g)
}
