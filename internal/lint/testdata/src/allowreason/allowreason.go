// Package allowreason exercises the escape hatch itself: a bare
// //lint:allow without a reason must not suppress anything and is its
// own diagnostic, so every exemption in the tree documents why it is
// safe.
package allowreason

import "time"

func missingReason() time.Time {
	//lint:allow wallclock // want `//lint:allow wallclock needs a reason`
	return time.Now() // want `time\.Now reads the wall clock`
}

func withReason() time.Time {
	//lint:allow wallclock request timing only, never in a stall table
	return time.Now()
}

func wrongAnalyzer() time.Time {
	//lint:allow floatcmp reason for a different analyzer does not cover this
	return time.Now() // want `time\.Now reads the wall clock`
}
