// Package poolsafe exercises the poolsafe analyzer against the real
// pooled-lifecycle APIs: use-after-recycle on flows, engine handles and
// collective groups, Signal.Rearm with a parked waiter, and the
// interprocedural variants where the invalidation happens inside a
// helper frames below the use.
package poolsafe

import (
	"time"

	"stash/internal/collective"
	"stash/internal/sim"
	"stash/internal/simnet"
)

// ---- flows: Network.Recycle / Network.Reset ---------------------------

func badUseAfterRecycle(n *simnet.Network, r []*simnet.Link) float64 {
	f := n.StartFlow(1024, r)
	n.Recycle(f)
	return f.Rate() // want `f used after Network\.Recycle`
}

func goodRecycleLast(n *simnet.Network, r []*simnet.Link) float64 {
	f := n.StartFlow(1024, r)
	v := f.Rate()
	n.Recycle(f)
	return v
}

func goodReacquire(n *simnet.Network, r []*simnet.Link) float64 {
	f := n.StartFlow(1024, r)
	n.Recycle(f)
	f = n.StartFlow(2048, r) // reassignment re-validates the handle
	return f.Rate()
}

// Any-path semantics: recycling in one branch poisons the join.
func badBranchRecycle(n *simnet.Network, r []*simnet.Link, done bool) float64 {
	f := n.StartFlow(1024, r)
	if done {
		n.Recycle(f)
	}
	return f.Rate() // want `f used after Network\.Recycle`
}

// A recycling branch that returns does not poison the other path.
func goodGuardedRecycle(n *simnet.Network, r []*simnet.Link, done bool) float64 {
	f := n.StartFlow(1024, r)
	if done {
		n.Recycle(f)
		return 0
	}
	return f.Rate()
}

func badUseAfterNetReset(n *simnet.Network, r []*simnet.Link) bool {
	f := n.StartFlow(1024, r)
	n.Reset()
	return f.Completed() // want `f used after Network\.Reset`
}

// Reset invalidates only handles derived from the reset network.
func goodOtherNetReset(a, b *simnet.Network, r []*simnet.Link) bool {
	f := a.StartFlow(1024, r)
	b.Reset()
	return f.Completed()
}

// The free-list owner's own loop is clean: each flow is recycled and
// never touched again in that iteration.
func goodRecycleSweep(n *simnet.Network, flows []*simnet.Flow) {
	for _, f := range flows {
		n.Recycle(f)
	}
}

// fallthrough is not a terminator: an invalidation before it flows
// into the next case body.
func badFallthroughRecycle(n *simnet.Network, r []*simnet.Link, k int) float64 {
	f := n.StartFlow(1024, r)
	switch k {
	case 0:
		n.Recycle(f)
		fallthrough
	case 1:
		return f.Rate() // want `f used after Network\.Recycle`
	}
	return 0
}

// Using the handle before the fallthrough and recycling in the
// fallen-into case is clean.
func goodFallthroughOrder(n *simnet.Network, r []*simnet.Link, k int) float64 {
	f := n.StartFlow(1024, r)
	v := 0.0
	switch k {
	case 0:
		v = f.Rate()
		fallthrough
	case 1:
		n.Recycle(f)
	}
	return v
}

// ---- engine handles: Engine.Reset -------------------------------------

func badEventAfterEngineReset(e *sim.Engine) bool {
	ev := e.Schedule(time.Second, func() {})
	e.Reset()
	return ev.Pending() // want `ev used after Engine\.Reset`
}

func badTaskAfterEngineReset(e *sim.Engine) string {
	t := e.Spawn("worker", nil)
	e.Reset()
	return t.Name() // want `t used after Engine\.Reset`
}

func goodHandleBeforeReset(e *sim.Engine) bool {
	ev := e.Schedule(time.Second, func() {})
	ok := ev.Pending()
	e.Reset()
	return ok
}

// ---- groups: Group.Release --------------------------------------------

func badGroupAfterRelease(g *collective.Group) int {
	g.Release()
	return g.WorldSize() // want `g used after Group\.Release`
}

func goodReleaseLast(g *collective.Group) int {
	size := g.WorldSize()
	g.Release()
	return size
}

// ---- interprocedural: the invalidation is frames below ----------------

func recycleIt(n *simnet.Network, f *simnet.Flow) {
	n.Recycle(f)
}

func recycleDeep(n *simnet.Network, f *simnet.Flow) {
	recycleIt(n, f)
}

func badRecycleViaHelper(n *simnet.Network, r []*simnet.Link) float64 {
	f := n.StartFlow(1024, r)
	recycleIt(n, f)
	return f.Rate() // want `f used after Network\.Recycle \(via recycleIt\)`
}

func badRecycleTwoFramesDown(n *simnet.Network, r []*simnet.Link) float64 {
	f := n.StartFlow(1024, r)
	recycleDeep(n, f)
	return f.Rate() // want `f used after Network\.Recycle \(via recycleDeep\)`
}

func releaseVia(g *collective.Group) {
	g.Release()
}

func badReleaseViaHelper(g *collective.Group) int {
	releaseVia(g)
	return g.OpsCompleted() // want `g used after Group\.Release \(via releaseVia\)`
}

// Whole-pool resets are summarized too: a helper that resets the
// network or engine poisons every handle derived from that object.
func resetNet(n *simnet.Network) {
	n.Reset()
}

func resetNetDeep(n *simnet.Network) {
	resetNet(n)
}

func badResetViaHelper(n *simnet.Network, r []*simnet.Link) bool {
	f := n.StartFlow(1024, r)
	resetNet(n)
	return f.Completed() // want `f used after Network\.Reset \(via resetNet\)`
}

func badResetTwoFramesDown(n *simnet.Network, r []*simnet.Link) bool {
	f := n.StartFlow(1024, r)
	resetNetDeep(n)
	return f.Completed() // want `f used after Network\.Reset \(via resetNetDeep\)`
}

// A helper resetting a different network leaves the handle alone.
func goodOtherNetResetViaHelper(a, b *simnet.Network, r []*simnet.Link) bool {
	f := a.StartFlow(1024, r)
	resetNet(b)
	return f.Completed()
}

func resetEngine(e *sim.Engine) {
	e.Reset()
}

func badEngineResetViaHelper(e *sim.Engine) bool {
	ev := e.Schedule(time.Second, func() {})
	resetEngine(e)
	return ev.Pending() // want `ev used after Engine\.Reset \(via resetEngine\)`
}

// ---- signals: Rearm with a parked waiter ------------------------------

func badRearmParked(e *sim.Engine) {
	s := sim.NewSignal(e)
	s.OnFire(func() {})
	s.Rearm() // want `Rearm of s while a waiter registered at line \d+ may still be parked`
}

func goodRearmAfterFire(e *sim.Engine) {
	s := sim.NewSignal(e)
	s.OnFire(func() {})
	s.Fire()
	s.Rearm()
}

// Await returns only after the signal fired and drained its waiters.
func goodRearmAfterAwait(p *sim.Process, s *sim.Signal) {
	s.OnFire(func() {})
	p.Await(s)
	s.Rearm()
}

func rearmIt(s *sim.Signal) {
	s.Rearm()
}

func badRearmViaHelper(e *sim.Engine) {
	s := sim.NewSignal(e)
	s.OnFire(func() {})
	rearmIt(s) // want `Rearm of s \(via rearmIt\) while a waiter registered at line \d+`
}

// ---- the escape hatch still works, reason mandatory -------------------

func allowedPeek(n *simnet.Network, r []*simnet.Link) bool {
	f := n.StartFlow(1024, r)
	n.Recycle(f)
	//lint:allow poolsafe the free-list owner reads the completed bit before reuse
	return f.Completed()
}
