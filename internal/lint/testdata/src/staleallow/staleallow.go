// Package staleallow exercises StaleAllows: a directive that
// suppresses a live finding is kept, one that suppresses nothing is
// reported as stale.
package staleallow

import "time"

// This directive earns its keep: it suppresses a real wallclock
// finding on the line below.
func now() time.Time {
	//lint:allow wallclock deterministic tests stub this call site
	return time.Now()
}

// This directive is stale: nothing on the covered lines reports.
func calm() time.Duration {
	//lint:allow wallclock the wall-clock read here was removed in a refactor
	return time.Second
}
