// Package maporder exercises the maporder analyzer: order-sensitive
// work inside range-over-map is flagged unless the collect-then-sort
// idiom is used.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/report"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map`
	}
	return out
}

func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func badWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `strings\.WriteString inside range over map`
	}
	return b.String()
}

func badReport(m map[string]float64) *report.Table {
	t := report.NewTable("stalls", "config", "pct")
	for k, v := range m {
		_ = v
		t.AddRow(k, "cell") // want `feeding report\.AddRow from inside range over map`
	}
	return t
}

// goodFormatter: report's pure formatters are order-independent, so
// building map values with them is fine.
func goodFormatter(m map[string]float64) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = report.Pct(v)
	}
	return out
}

func goodRangeSlice(rows []string) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r)
	}
	return out
}

func goodMapToMap(m map[string]int) map[string]int {
	inv := make(map[string]int, len(m))
	for k, v := range m {
		inv[k] = v * 2
	}
	return inv
}

func allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow maporder feeds a set, order re-established downstream
		out = append(out, k)
	}
	return out
}
