// Package wallclock exercises the wallclock analyzer: wall-clock reads
// and global math/rand draws are flagged, explicitly-seeded sources and
// annotated sites are not.
package wallclock

import (
	"math/rand"
	"time"
)

func bad() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = rand.Intn(10)   // want `rand\.Intn draws from the global seed-dependent source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func badUntil(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the wall clock`
}

func good() int {
	rng := rand.New(rand.NewSource(1))
	_ = time.Duration(42) * time.Millisecond
	_ = time.Unix(0, 0)
	return rng.Intn(10)
}

func allowed() time.Time {
	//lint:allow wallclock request latency metric, never enters a stall table
	return time.Now()
}

func allowedTrailing() time.Time {
	return time.Now() //lint:allow wallclock pool elapsed-time metric only
}

// schedule stands in for sim.Engine.Schedule: wall-clock reads inside
// continuation callbacks are flagged the same as in straight-line code.
func schedule(d time.Duration, fn func()) { fn() }

func badContinuation() {
	schedule(0, func() {
		_ = time.Now() // want `time\.Now reads the wall clock`
	})
}

func goodContinuation(virtualNow time.Duration) {
	schedule(time.Millisecond, func() {
		_ = virtualNow + time.Millisecond // virtual clocks are injected, never read
	})
}
