// Package ctxflow exercises the ctxflow analyzer: functions that
// receive a context must thread it — no fresh roots, no calls to the
// context-free variant of an API whose *Context sibling exists.
package ctxflow

import "context"

func step(ctx context.Context) error { return ctx.Err() }

func badBackground(ctx context.Context) error {
	return step(context.Background()) // want `context\.Background inside a function that receives a ctx`
}

func badTODO(ctx context.Context) error {
	return step(context.TODO()) // want `context\.TODO inside a function that receives a ctx`
}

func goodThread(ctx context.Context) error {
	return step(ctx)
}

// root has no ctx parameter: it is a legitimate place to mint one.
func root() error {
	return step(context.Background())
}

type engine struct{}

func (e *engine) Run(n int) error                          { return nil }
func (e *engine) RunContext(ctx context.Context, n int) error { _ = ctx; return nil }

func badSibling(ctx context.Context, e *engine) error {
	return e.Run(1) // want `Run has a context-threading variant RunContext`
}

func goodSibling(ctx context.Context, e *engine) error {
	return e.RunContext(ctx, 1)
}

func load(n int) int                          { return n }
func loadCtx(ctx context.Context, n int) int  { _ = ctx; return n }
func sweep(n int) int                         { return n }

func badPkgSibling(ctx context.Context) int {
	return load(1) // want `load has a context-threading variant loadCtx`
}

// goodNoSibling: sweep has no *Context/*Ctx variant, so calling it from
// a ctx-receiving function is fine.
func goodNoSibling(ctx context.Context) int {
	return sweep(2)
}

func allowedDrain(ctx context.Context) context.Context {
	//lint:allow ctxflow drain deadline must outlive the cancelled serve ctx
	return context.Background()
}
