// Interprocedural ctxflow cases: a ctx received at an entry point must
// reach every context-capable callee, even when the context-free API is
// hidden several ctx-less frames down.
package ctxflow

import "context"

func fetch(n int) int                             { return n }
func fetchContext(ctx context.Context, n int) int { _ = ctx; return n }

// frameOne → frameTwo → fetch: neither frame takes a ctx, so a ctx
// entering above them is silently dropped three frames up from fetch.
func frameTwo(n int) int { return fetch(n) }
func frameOne(n int) int { return frameTwo(n) }

func badDeepChain(ctx context.Context) int {
	return frameOne(1) // want `frameOne reaches the context-free fetch`
}

func badShallowChain(ctx context.Context) int {
	return frameTwo(2) // want `frameTwo reaches the context-free fetch`
}

// Threading the ctx all the way down is clean.
func goodDeepThread(ctx context.Context) int {
	return fetchContext(ctx, 1)
}

// Taint stops at a ctx-taking frame: relay receives the ctx and is
// checked directly, so calling it is fine.
func relay(ctx context.Context, n int) int { return fetchContext(ctx, n) }

func goodViaRelay(ctx context.Context) int {
	return relay(ctx, 2)
}

// A ctx-less root may call the chain: only ctx-receiving functions are
// obliged to thread one.
func rootSweep() int {
	return frameOne(3)
}

// pure has no path to any *Context API; calling it stays clean however
// deep the chain goes.
func pureLeaf(n int) int  { return n * 2 }
func pureChain(n int) int { return pureLeaf(n) }

func goodPureChain(ctx context.Context) int {
	return pureChain(4)
}

// Recursive chains must converge in the summary fixed point (the
// example chain is frozen at first taint, not rebuilt per iteration):
// walk calls both itself and the tainting leaf.
func walk(n int) int {
	if n <= 0 {
		return 0
	}
	return walk(n-1) + fetch(n)
}

func badRecursiveChain(ctx context.Context) int {
	return walk(3) // want `walk reaches the context-free fetch`
}

// Mutual recursion converges the same way.
func pingPongA(n int) int {
	if n <= 0 {
		return fetch(n)
	}
	return pingPongB(n - 1)
}

func pingPongB(n int) int { return pingPongA(n - 1) }

func badMutualChain(ctx context.Context) int {
	return pingPongB(5) // want `pingPongB reaches the context-free fetch`
}

// Recursion with no tainting leaf stays clean however it cycles.
func spinA(n int) int {
	if n <= 0 {
		return n
	}
	return spinB(n - 1)
}

func spinB(n int) int { return spinA(n - 1) }

func goodRecursiveClean(ctx context.Context) int {
	return spinA(4)
}
