// Package lockheld exercises the lockheld analyzer: blocking
// operations under a held mutex are flagged; the publish-unlock-wait
// idiom, goroutine bodies and sync.Cond.Wait are not.
package lockheld

import (
	"sync"
	"time"
)

type gate struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (g *gate) badSend(v int) {
	g.mu.Lock()
	g.ch <- v // want `channel send while g\.mu is locked`
	g.mu.Unlock()
}

func (g *gate) badRecvUnderDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while g\.mu is locked`
}

func (g *gate) badSelect(done chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select while g\.mu is locked`
	case <-done:
	default:
	}
}

func (g *gate) badWaitGroup() {
	g.mu.Lock()
	g.wg.Wait() // want `sync\.WaitGroup\.Wait while g\.mu is locked`
	g.mu.Unlock()
}

func (g *gate) badSleepUnderRLock() {
	g.rw.RLock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.rw is locked`
	g.rw.RUnlock()
}

func (g *gate) badRangeChan() int {
	sum := 0
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range g.ch { // want `range over channel while g\.mu is locked`
		sum += v
	}
	return sum
}

func (g *gate) goodUnlockThenWait() int {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	return <-ch
}

// goodUnlockInBranch is the single-flight cache's shape: the lock is
// released inside the hit branch before waiting on the entry.
func (g *gate) goodUnlockInBranch(hit bool) int {
	g.mu.Lock()
	if hit {
		g.mu.Unlock()
		return <-g.ch
	}
	g.ch = make(chan int)
	g.mu.Unlock()
	return 0
}

func (g *gate) goodGoroutineBody() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() { g.ch <- 1 }()
}

func (g *gate) goodTwoMutexes(other *sync.Mutex) int {
	g.mu.Lock()
	g.mu.Unlock()
	other.Lock()
	other.Unlock()
	return <-g.ch
}

func (g *gate) goodCondWait(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

func (g *gate) allowed(v int) {
	g.mu.Lock()
	//lint:allow lockheld buffered handoff channel can never block here
	g.ch <- v
	g.mu.Unlock()
}

// schedule stands in for sim.Engine.Schedule: continuation callbacks are
// function literals handed to a scheduler, not goroutine bodies.
func schedule(fn func()) { fn() }

// badContinuationBody: a continuation callback is an ordinary function
// literal, so blocking under a lock inside it is flagged exactly as in a
// named function (unlike a `go` statement body, it runs on the caller's
// goroutine).
func (g *gate) badContinuationBody() {
	schedule(func() {
		g.mu.Lock()
		g.ch <- 1 // want `channel send while g\.mu is locked`
		g.mu.Unlock()
	})
}

// goodContinuationDeferred: locking around registering the continuation
// is fine — the callback body is scanned on its own and does not inherit
// the registration-time lock.
func (g *gate) goodContinuationDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	schedule(func() {
		g.ch <- 1
	})
}
