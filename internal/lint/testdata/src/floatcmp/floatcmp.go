// Package floatcmp exercises the floatcmp analyzer: exact equality on
// float operands is flagged; ordered comparisons, integer equality and
// annotated bit-equality checks are not.
package floatcmp

func bad(a, b float64) bool {
	return a == b // want `== on float operands`
}

func bad32(a, b float32) bool {
	return a != b // want `!= on float operands`
}

func badZero(x float64) bool {
	return x == 0 // want `== on float operands`
}

func badExpr(t1, t2, t5 float64) bool {
	return t5-t1 == t2 // want `== on float operands`
}

func good(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	return d < eps && d > -eps
}

func goodOrdered(a, b float64) bool { return a < b }

func goodInt(a, b int) bool { return a == b }

func goodString(a, b string) bool { return a == b }

func allowedDerivation(stall, all, single float64) bool {
	//lint:allow floatcmp audit checks the exact derivation identity on purpose
	return stall == all-single
}
