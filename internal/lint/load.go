package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
// Test files (*_test.go) are never loaded: the determinism guarantees
// cover what ships, and tests legitimately read wall clocks. Files
// holds only the analyzable sources — generated files are type-checked
// for their symbols but never appear here, so no analyzer reports into
// them.
type Package struct {
	Path  string // import path ("stash/internal/core", or a fixture path)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages without any network or
// module-cache access: imports inside the module resolve to source
// directories under the module root, everything else (the standard
// library) goes through go/importer's source compiler, which reads
// GOROOT directly.
type Loader struct {
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer

	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at modRoot with
// module path modPath.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleRoot(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer for the type checker: module-internal
// paths load from source, everything else delegates to the standard
// library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses the non-test Go files of one directory and
// type-checks them as importPath. Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Generated files (the standard `// Code generated … DO NOT EDIT.`
	// header) are type-checked — other files in the package may depend
	// on their symbols — but excluded from the analyzed Files, so the
	// suite never reports into code that answers to its generator.
	var all, files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		all = append(all, f)
		if !isGeneratedSource(src) {
			files = append(files, f)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, all, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Expand resolves package patterns relative to the module root into
// loadable directories. Supported forms are "./x", "./x/..." and
// "./..."; testdata, hidden and underscore-prefixed directories are
// skipped, as are directories with no non-test Go files.
func (l *Loader) Expand(patterns []string) ([]*Package, error) {
	type target struct{ dir, path string }
	var targets []target
	seen := make(map[string]bool)
	add := func(dir string) {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		importPath := l.modPath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		if !seen[importPath] {
			seen[importPath] = true
			targets = append(targets, target{dir, importPath})
		}
	}

	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.modRoot, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := l.LoadDir(t.dir, t.path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// generatedRx is the Go convention for generated files
// (https://go.dev/s/generatedcode): a line-anchored comment before the
// package clause.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGeneratedSource reports whether src carries the standard generated
// header anywhere before its package clause.
func isGeneratedSource(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSuffix(line, "\r")
		if generatedRx.MatchString(line) {
			return true
		}
		if strings.HasPrefix(line, "package ") {
			return false
		}
	}
	return false
}

// hasGoFiles reports whether dir directly contains at least one
// non-test buildable Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
