package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context threading on request paths: a function that
// receives a context.Context must pass it along, not mint a fresh root.
// Three patterns are flagged inside such functions: (1) any call to
// context.Background() or context.TODO(), which silently detaches the
// callee from the request's deadline and cancellation (a stashd request
// timeout or SIGTERM drain would no longer stop the work); (2) calling
// Foo(...) when a FooContext(ctx, ...) variant exists in the same
// package or method set — the repo's convention for context-threading
// APIs (Profile/ProfileContext, ForEach/ForEachCtx); and (3) — the
// interprocedural closure of (2), via the Program call-graph summaries
// — calling a ctx-less module helper whose call chain reaches such a
// context-free API any number of frames down without a ctx-taking
// frame in between. Taint propagation stops at ctx-taking callees:
// those are entry points in their own right and are checked directly.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "thread a received ctx interprocedurally: no context.Background()/TODO(), no " +
		"calls to the context-free variant of an API whose *Context sibling exists, and " +
		"no ctx-less helper chains that reach such an API frames down — detached work " +
		"outlives request deadlines and the shutdown drain",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					sig = obj.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = fn.Body
				if tv, ok := pass.Info.Types[fn]; ok {
					sig, _ = tv.Type.(*types.Signature)
				}
			}
			if body == nil || sig == nil || !hasContextParam(sig) {
				return true
			}
			checkCtxBody(pass, body)
			// Nested function literals are checked on their own walk
			// (they may or may not take a ctx themselves), so stop here
			// only for the ctx checks; keep traversing for nested defs.
			return true
		})
	}
}

// hasContextParam reports whether any parameter is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// checkCtxBody flags detached-context patterns in one ctx-receiving
// function body, without descending into nested function literals.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(), "context.%s inside a function that receives a ctx detaches the callee from the request's deadline and cancellation; thread the ctx (or annotate //lint:allow ctxflow <reason>)", fn.Name())
			return true
		}
		if sibling := contextSibling(pass, fn); sibling != "" {
			pass.Reportf(call.Pos(), "%s has a context-threading variant %s; call it with the ctx this function already holds", fn.Name(), sibling)
			return true
		}
		// Interprocedural: a ctx-less module helper whose chain reaches
		// a context-free API with a *Context sibling, frames down.
		if pass.Prog != nil {
			if ff := pass.Prog.factsFor(fn); ff != nil && ff.ctxTainted && !ff.hasCtx {
				chain := strings.Join(append([]string{fn.Name()}, ff.ctxChain...), " → ")
				pass.Reportf(call.Pos(), "%s reaches the context-free %s without a ctx-taking frame in between (chain: %s); thread the ctx this function already holds through that chain", fn.Name(), chainTail(ff.ctxChain), chain)
			}
		}
		return true
	})
}

// chainTail names the context-free API at the end of a taint chain for
// the diagnostic headline.
func chainTail(chain []string) string {
	if len(chain) == 0 {
		return "API"
	}
	last := chain[len(chain)-1]
	if i := strings.IndexByte(last, ' '); i > 0 {
		return last[:i]
	}
	return last
}

// contextSibling returns the name of fn's *Context/*Ctx variant if one
// exists in the same package scope (for functions) or method set (for
// methods) and takes a context.Context. Only module-local APIs are
// considered — the repo controls those naming pairs. The lookup itself
// lives in contextSiblingFrom so the Program's taint computation shares
// it.
func contextSibling(pass *Pass, fn *types.Func) string {
	return contextSiblingFrom(pass.Pkg.Path(), fn)
}

// sameModule reports whether two import paths share their first path
// element (the module), so the sibling check covers cross-package
// calls like experiments -> core but never the standard library.
func sameModule(a, b string) bool {
	first := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return first(a) == first(b)
}
