package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context threading on request paths: a function that
// receives a context.Context must pass it along, not mint a fresh root.
// Two patterns are flagged inside such functions: (1) any call to
// context.Background() or context.TODO(), which silently detaches the
// callee from the request's deadline and cancellation (a stashd request
// timeout or SIGTERM drain would no longer stop the work); and (2)
// calling Foo(...) when a FooContext(ctx, ...) variant exists in the
// same package or method set — the repo's convention for
// context-threading APIs (Profile/ProfileContext, ForEach/ForEachCtx).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "a function that receives a ctx must thread it: no context.Background()/TODO() " +
		"and no calls to the context-free variant of an API whose *Context sibling exists — " +
		"detached work outlives request deadlines and the shutdown drain",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					sig = obj.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = fn.Body
				if tv, ok := pass.Info.Types[fn]; ok {
					sig, _ = tv.Type.(*types.Signature)
				}
			}
			if body == nil || sig == nil || !hasContextParam(sig) {
				return true
			}
			checkCtxBody(pass, body)
			// Nested function literals are checked on their own walk
			// (they may or may not take a ctx themselves), so stop here
			// only for the ctx checks; keep traversing for nested defs.
			return true
		})
	}
}

// hasContextParam reports whether any parameter is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// checkCtxBody flags detached-context patterns in one ctx-receiving
// function body, without descending into nested function literals.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(), "context.%s inside a function that receives a ctx detaches the callee from the request's deadline and cancellation; thread the ctx (or annotate //lint:allow ctxflow <reason>)", fn.Name())
			return true
		}
		if sibling := contextSibling(pass, fn); sibling != "" {
			pass.Reportf(call.Pos(), "%s has a context-threading variant %s; call it with the ctx this function already holds", fn.Name(), sibling)
		}
		return true
	})
}

// contextSibling returns the name of fn's *Context/*Ctx variant if one
// exists in the same package scope (for functions) or method set (for
// methods) and takes a context.Context. Only module-local APIs are
// considered — the repo controls those naming pairs.
func contextSibling(pass *Pass, fn *types.Func) string {
	if fn.Pkg() != pass.Pkg && !strings.HasPrefix(fn.Pkg().Path(), pass.Pkg.Path()+"/") &&
		!sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		return ""
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx") {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Context", "Ctx"} {
		want := name + suffix
		var cand types.Object
		if recv := sig.Recv(); recv != nil {
			cand, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		} else {
			cand = fn.Pkg().Scope().Lookup(want)
		}
		cfn, ok := cand.(*types.Func)
		if !ok {
			continue
		}
		csig := cfn.Type().(*types.Signature)
		if csig.Params().Len() > 0 && isContextType(csig.Params().At(0).Type()) {
			return want
		}
	}
	return ""
}

// sameModule reports whether two import paths share their first path
// element (the module), so the sibling check covers cross-package
// calls like experiments -> core but never the standard library.
func sameModule(a, b string) bool {
	first := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return first(a) == first(b)
}
