package train

import (
	"testing"
	"time"

	"stash/internal/cloud"
	"stash/internal/trace"
)

func TestTraceRecordsTimeline(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	rec := trace.New()
	res, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 3, Synthetic: true,
		Trace: rec,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	totals := rec.TotalByKind()
	if totals[trace.KindForward] == 0 || totals[trace.KindBackward] == 0 {
		t.Error("missing compute spans")
	}
	if totals[trace.KindHook] == 0 {
		t.Error("missing hook spans on multi-GPU run")
	}
	// Per-worker forward time should equal iterations x plan forward; the
	// plan itself is private, so check consistency across workers instead.
	w0 := rec.WorkerBusy(0)[trace.KindForward]
	w7 := rec.WorkerBusy(7)[trace.KindForward]
	if w0 != w7 || w0 == 0 {
		t.Errorf("forward time differs across workers: %v vs %v", w0, w7)
	}
	// The timeline must not extend past the run.
	for _, s := range rec.Spans() {
		if s.End > res.Elapsed+10*time.Second {
			t.Errorf("span %v ends beyond the run", s)
		}
	}
	// Chrome export round-trips.
	if raw, err := rec.ChromeTrace(); err != nil || len(raw) < 10 {
		t.Errorf("ChromeTrace: %v (%d bytes)", err, len(raw))
	}
}

func TestCompressionReducesCommStall(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(ratio float64) *Result {
		r := newRig(t, "p2.8xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 5, Synthetic: true,
			DisableOverlap:   true,
			CompressionRatio: ratio,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	full, quarter := run(1), run(0.25)
	if quarter.CommWaitMax >= full.CommWaitMax {
		t.Errorf("4x compression comm wait %v not below uncompressed %v",
			quarter.CommWaitMax, full.CommWaitMax)
	}
	// Compute is untouched.
	if quarter.ComputePerWorker != full.ComputePerWorker {
		t.Error("compression changed compute time")
	}
}

func TestCompressionValidation(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	for _, ratio := range []float64{-0.5, 1.5} {
		if _, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 1, Synthetic: true,
			CompressionRatio: ratio,
		}); err == nil {
			t.Errorf("ratio %v should fail", ratio)
		}
	}
}

func TestNegativeWarmupRejected(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	if _, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 1, Warmup: -1, Synthetic: true,
	}); err == nil {
		t.Error("negative warmup should fail")
	}
}

func TestWarmupExcludedFromTiming(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(warmup int) *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 6, Warmup: warmup, Synthetic: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	without, with := run(0), run(4)
	// Synthetic runs are steady state: per-iteration time is unchanged by
	// warmup (it only shifts the measurement window).
	diff := (without.PerIteration - with.PerIteration).Abs()
	if diff > without.PerIteration/50 {
		t.Errorf("warmup changed per-iteration time: %v vs %v", without.PerIteration, with.PerIteration)
	}
}

func TestHookOverheadKnob(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(hook time.Duration) *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 5, Synthetic: true,
			HookOverhead: hook,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	disabled, def := run(-1), run(0)
	if disabled.Elapsed >= def.Elapsed {
		t.Errorf("disabling hooks (%v) not faster than default (%v)", disabled.Elapsed, def.Elapsed)
	}
	// Expected saving: ~hook x buckets x iterations.
	wantSaving := DefaultHookOverhead * time.Duration(job.Model.NumParamLayers()*5)
	saving := def.Elapsed - disabled.Elapsed
	if saving < wantSaving*8/10 || saving > wantSaving*12/10 {
		t.Errorf("hook saving = %v, want ~%v", saving, wantSaving)
	}
}
