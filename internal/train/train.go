// Package train simulates synchronous data-parallel DNN training (the
// paper's PyTorch-DDP setup, §IV) on a simulated cluster: per-layer
// forward/backward compute on each GPU, gradient bucketing with
// communication overlapped into the backward pass, ring all-reduce over
// the topology, and optionally the full input pipeline (disk, cache, CPU
// prep, PCIe upload).
//
// Training can run on synthetic pre-populated data (no input pipeline,
// as in Stash's steps 1, 2 and 5) or on real data through per-worker
// dataloaders (DS-Analyzer's steps 3 and 4).
package train

import (
	"fmt"
	"time"

	"stash/internal/collective"
	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/pipeline"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
	"stash/internal/trace"
	"stash/internal/workload"
)

// Config describes one training run.
type Config struct {
	Job workload.Job

	// Topology is the provisioned cluster.
	Topology *topo.Topology

	// GPUs are the participating workers in rank order. Leave nil to use
	// every GPU in the topology. Stash's step 1 passes a single GPU of a
	// multi-GPU machine here.
	GPUs []*topo.Device

	// Iterations is the number of optimizer steps each worker executes.
	Iterations int

	// Synthetic pre-populates training data in GPU memory, eliminating
	// all pipeline stages before the GPU (steps 1, 2, 5).
	Synthetic bool

	// Pipelines maps machine node index to its input pipeline; required
	// when Synthetic is false for every machine that hosts a worker.
	Pipelines map[int]*pipeline.HostPipeline

	// CacheMode selects cold (step 3) or warm (step 4) caches for
	// real-data runs.
	CacheMode pipeline.CacheMode

	// Buckets overrides gradient bucketing; nil uses per-layer buckets.
	Buckets []collective.Bucket

	// CollectiveOptions configures the gradient-synchronization group
	// (algorithm, call overhead).
	CollectiveOptions []collective.Option

	// DisableOverlap makes every bucket's all-reduce block the backward
	// pass (no communication/computation overlap). Profilers set this on
	// clusters where transfers stage through host memory (PCIe peer
	// traffic, network paths), where real stacks lose the overlap; see
	// topo.Topology.SupportsAsyncCollectives.
	DisableOverlap bool

	// HookOverhead is the host-side cost DDP's autograd hook charges the
	// backward pass per gradient bucket, regardless of overlap. Zero uses
	// DefaultHookOverhead; negative disables it.
	HookOverhead time.Duration

	// Warmup is the number of leading iterations excluded from timing
	// (pipeline fill, first-touch effects). The run executes
	// Warmup+Iterations optimizer steps.
	Warmup int

	// CompressionRatio scales the gradient bytes each bucket carries,
	// modeling lossy gradient compression (top-k / quantization) schemes
	// from the communication-reduction literature the paper surveys
	// (SIII). 0 or 1 means no compression; 0.25 sends a quarter of the
	// bytes. Compute time is unaffected.
	CompressionRatio float64

	// Trace, when non-nil, records the per-worker execution timeline.
	// The collective group also records per-rank barrier spans on it,
	// which is what makes frontier blame attribution (trace.Attribute)
	// lossless.
	Trace *trace.Recorder

	// StragglerRank and StragglerScale inject a synthetic straggler:
	// when StragglerScale > 1, the worker at StragglerRank runs all its
	// GPU compute (forward, backward segments and tail, optimizer) slower
	// by that factor, so every other rank piles up comm-wait behind it.
	// 0 (or 1) disables the injection; values below 1 are rejected.
	StragglerRank  int
	StragglerScale float64
}

// DefaultHookOverhead is the per-bucket host-side synchronization cost of
// the framework's gradient hook (Python autograd callback + NCCL enqueue
// serialization). Fitted so the per-layer stall slope of deep models
// matches the paper's Fig 16a.
const DefaultHookOverhead = 250 * time.Microsecond

// Result reports a completed run.
type Result struct {
	// Elapsed is the wall-clock (virtual) time from start to the last
	// worker finishing.
	Elapsed time.Duration

	// Iterations and WorldSize echo the configuration.
	Iterations int
	WorldSize  int

	// PerIteration is Elapsed / Iterations.
	PerIteration time.Duration

	// ComputePerWorker is the pure GPU compute time each worker spent
	// (identical across workers; an injected straggler's scaled compute
	// is not reflected here).
	ComputePerWorker time.Duration

	// DataWaitMax is the largest per-worker time spent blocked on the
	// input pipeline (fetch+prep+upload backpressure).
	DataWaitMax time.Duration

	// CommWaitMax is the largest per-worker time spent blocked on
	// gradient synchronization after backward compute finished.
	CommWaitMax time.Duration

	// CommBusy is the total time the collective group spent executing.
	CommBusy time.Duration

	// SamplesPerSecond is the aggregate training throughput.
	SamplesPerSecond float64
}

// Run executes the configured training on the engine that the topology's
// network lives on, driving the simulation to completion.
func Run(eng *sim.Engine, net *simnet.Network, cfg Config) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("train: nil topology")
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("train: iterations %d < 1", cfg.Iterations)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("train: warmup %d < 0", cfg.Warmup)
	}
	switch {
	case cfg.HookOverhead == 0:
		cfg.HookOverhead = DefaultHookOverhead
	case cfg.HookOverhead < 0:
		cfg.HookOverhead = 0
	}
	switch {
	//lint:allow floatcmp 0 is the unset-field sentinel of the zero Config, not a computed value
	case cfg.CompressionRatio == 0:
		cfg.CompressionRatio = 1
	case cfg.CompressionRatio < 0 || cfg.CompressionRatio > 1:
		return nil, fmt.Errorf("train: compression ratio %v outside (0, 1]", cfg.CompressionRatio)
	}
	if err := cfg.Job.Model.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	gpus := cfg.GPUs
	if gpus == nil {
		gpus = cfg.Topology.AllGPUs()
	}
	if len(gpus) == 0 {
		return nil, fmt.Errorf("train: no GPUs")
	}
	switch {
	//lint:allow floatcmp 0 is the unset-field sentinel of the zero Config, not a computed value
	case cfg.StragglerScale == 0:
		cfg.StragglerScale = 1
	case cfg.StragglerScale < 1:
		return nil, fmt.Errorf("train: straggler scale %v < 1", cfg.StragglerScale)
	}
	if cfg.StragglerScale > 1 && (cfg.StragglerRank < 0 || cfg.StragglerRank >= len(gpus)) {
		return nil, fmt.Errorf("train: straggler rank %d outside [0,%d)", cfg.StragglerRank, len(gpus))
	}
	buckets := cfg.Buckets
	if buckets == nil {
		buckets = collective.PerLayerBuckets(cfg.Job.Model)
	}
	copts := cfg.CollectiveOptions
	if cfg.Trace != nil {
		// Three-index append: never scribble on the caller's option slice.
		copts = append(copts[:len(copts):len(copts)], collective.WithTrace(cfg.Trace))
	}
	group, err := collective.NewGroup(eng, net, cfg.Topology, gpus, copts...)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	plan, err := newIterationPlan(cfg.Job, gpus[0].GPU, buckets)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	hook := cfg.HookOverhead
	if group.WorldSize() == 1 {
		hook = 0 // DDP hooks are not installed on single-GPU training
	}
	// Worker structs (with their bound continuation closures) live on the
	// engine's scratch arena: a pooled engine re-running training reuses
	// them instead of re-allocating one struct plus two closures per rank
	// per run.
	scratch, _ := eng.Arena(runArena).(*runScratch)
	if scratch == nil {
		scratch = &runScratch{}
		eng.SetArena(runArena, scratch)
	}
	for len(scratch.workers) < len(gpus) {
		w := &worker{rank: len(scratch.workers)}
		w.cont = w.step
		w.onBatch = w.batchDelivered
		scratch.workers = append(scratch.workers, w)
	}
	workers := scratch.workers[:len(gpus)]
	for rank, gpu := range gpus {
		w := workers[rank]
		w.reset(gpu, &cfg, plan, group, eng, hook, cfg.Warmup+cfg.Iterations)
		if !cfg.Synthetic {
			hp := cfg.Pipelines[gpu.Node]
			if hp == nil {
				return nil, fmt.Errorf("train: no pipeline for machine %d", gpu.Node)
			}
			hp.SetCacheMode(cfg.CacheMode)
			route, err := cfg.Topology.Route(cfg.Topology.Machines[gpu.Node].Host, gpu)
			if err != nil {
				return nil, fmt.Errorf("train: upload route: %w", err)
			}
			loader, err := hp.NewLoader(cfg.Job, route, cfg.Warmup+cfg.Iterations)
			if err != nil {
				return nil, fmt.Errorf("train: %w", err)
			}
			w.loader = loader
		}
	}
	for _, w := range workers {
		if w.loader != nil {
			w.loader.Start(fmt.Sprintf("loader-%d", w.rank))
		}
		w.task = eng.Spawn(fmt.Sprintf("worker-%d", w.rank), w.cont)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	res := &Result{
		Iterations:       cfg.Iterations,
		WorldSize:        len(gpus),
		ComputePerWorker: plan.computeTotal * time.Duration(cfg.Iterations),
		CommBusy:         group.BusyTime(),
	}
	for _, w := range workers {
		if measured := w.finish - w.warmupEnd; measured > res.Elapsed {
			res.Elapsed = measured
		}
		if w.dataWait > res.DataWaitMax {
			res.DataWaitMax = w.dataWait
		}
		if w.commWait > res.CommWaitMax {
			res.CommWaitMax = w.commWait
		}
	}
	res.PerIteration = res.Elapsed / time.Duration(cfg.Iterations)
	if res.Elapsed > 0 {
		res.SamplesPerSecond = float64(cfg.Iterations*cfg.Job.BatchPerGPU*len(gpus)) / res.Elapsed.Seconds()
	}
	// The group was created here and nothing outside this function saw it;
	// its statistics are already copied into res, so its storage can go
	// back to the engine's arena for the next run.
	group.Release()
	return res, nil
}

// runArena holds the per-engine training scratch (see Run).
var runArena = sim.NewArenaKey()

type runScratch struct {
	workers []*worker
}

// iterationPlan precomputes the compute timeline of one iteration:
// a single forward-pass duration, then backward-pass segments ending at
// each bucket's issue point.
type iterationPlan struct {
	forward time.Duration

	// backwardSegments[i] is the backward compute between bucket i-1's
	// issue point and bucket i's. backwardTail is the compute after the
	// final bucket issue (layers before the first parameter layer).
	backwardSegments []time.Duration
	backwardTail     time.Duration

	buckets      []collective.Bucket
	optimizer    time.Duration
	computeTotal time.Duration
}

func newIterationPlan(job workload.Job, gpu hw.GPUSpec, buckets []collective.Bucket) (*iterationPlan, error) {
	m := job.Model
	batch := float64(job.BatchPerGPU)
	eff := gpu.EffectiveFLOPS(batch * m.FwdFLOPsPerSample())

	// Activations stream per sample; weights are read once per pass
	// regardless of batch size.
	fwdTime := func(l dnn.Layer) time.Duration {
		mem := 2*batch*l.ActivationBytes + float64(l.Params)*dnn.BytesPerParam
		return gpu.LayerTime(batch*l.FwdFLOPs, mem, eff)
	}
	bwdTime := func(l dnn.Layer) time.Duration {
		mem := 4*batch*l.ActivationBytes + 3*float64(l.Params)*dnn.BytesPerParam
		return gpu.LayerTime(2*batch*l.FwdFLOPs, mem, eff)
	}

	p := &iterationPlan{buckets: buckets}
	for _, l := range m.Layers {
		p.forward += fwdTime(l)
	}

	// Map each layer index to the bucket issued when its gradient is
	// ready (the bucket whose earliest backward-order layer it is).
	issueAt := make(map[int]int) // layer index -> bucket index
	for bi, b := range buckets {
		if len(b.Layers) == 0 {
			return nil, fmt.Errorf("bucket %d has no layers", bi)
		}
		last := b.Layers[len(b.Layers)-1] // deepest layer in backward order
		issueAt[last] = bi
	}

	seg := time.Duration(0)
	nextBucket := 0
	for i := len(m.Layers) - 1; i >= 0; i-- {
		seg += bwdTime(m.Layers[i])
		if bi, ok := issueAt[i]; ok {
			if bi != nextBucket {
				return nil, fmt.Errorf("bucket %d issued out of order (expected %d)", bi, nextBucket)
			}
			p.backwardSegments = append(p.backwardSegments, seg)
			seg = 0
			nextBucket++
		}
	}
	if nextBucket != len(buckets) {
		return nil, fmt.Errorf("only %d of %d buckets have issue points", nextBucket, len(buckets))
	}
	p.backwardTail = seg

	// SGD+momentum touches three parameter-sized arrays.
	optBytes := 3 * float64(m.TotalParams()) * dnn.BytesPerParam
	p.optimizer = time.Duration(optBytes / gpu.MemBandwidth * float64(time.Second))

	p.computeTotal = p.forward + p.backwardTail + p.optimizer
	for _, s := range p.backwardSegments {
		p.computeTotal += s
	}
	return p, nil
}

// Worker states. The per-iteration loop is a run-to-completion state
// machine driven by step: each Sleep of the old process body became a
// Schedule(d, w.cont) followed by a return, each Await became an
// OnFire(w.cont), so the engine sees the exact event sequence the
// coroutine produced without any goroutine handoffs.
const (
	wIterStart = iota // top of the iteration loop (warmup bookkeeping, data fetch)
	wForward          // launch forward compute
	wForwardDone      // forward finished; start backward
	wSegOrTail        // next backward segment, or the tail when buckets are done
	wSegDone          // segment finished; charge the DDP hook
	wHookDone         // hook finished; issue the bucket's all-reduce
	wIssue            // issue all-reduce, overlap or block per config
	wBlockDone        // blocking (no-overlap) all-reduce finished
	wTailDone         // backward tail finished; drain overlapped collectives
	wDrain            // await pending all-reduces in issue order
	wOptDone          // optimizer finished; next iteration
)

type worker struct {
	rank   int
	gpu    *topo.Device
	cfg    *Config
	plan   *iterationPlan
	group  *collective.Group
	loader *pipeline.Loader
	task   *sim.Task
	eng    *sim.Engine
	hook   time.Duration
	total  int

	// cont and onBatch are bound once at spawn so scheduling a
	// continuation never mints a closure.
	cont    func()
	onBatch func(pipeline.Batch, bool)

	state   int
	it      int           // current iteration
	bi      int           // current backward bucket
	pi      int           // drain position in pending
	pending []*sim.Signal // overlapped all-reduces, reused across iterations

	// slow is the straggler compute multiplier (1 for normal workers).
	slow float64

	// Span/stall start times carried across blocking points.
	t0, c0, h0, o0, b0 time.Duration

	finish    time.Duration
	warmupEnd time.Duration
	dataWait  time.Duration
	commWait  time.Duration
}

// reset prepares a (possibly recycled) worker for a new run. The bound
// cont/onBatch closures and the pending slice's capacity are the storage
// being preserved; every per-run field is re-initialized here, so a
// recycled worker is indistinguishable from a fresh one.
func (w *worker) reset(gpu *topo.Device, cfg *Config, plan *iterationPlan, group *collective.Group, eng *sim.Engine, hook time.Duration, total int) {
	w.gpu = gpu
	w.cfg = cfg
	w.plan = plan
	w.group = group
	w.loader = nil
	w.task = nil
	w.eng = eng
	w.hook = hook
	w.total = total
	w.state = wIterStart
	w.it, w.bi, w.pi = 0, 0, 0
	w.pending = w.pending[:0]
	w.slow = 1
	if cfg.StragglerScale > 1 && w.rank == cfg.StragglerRank {
		w.slow = cfg.StragglerScale
	}
	w.t0, w.c0, w.h0, w.o0, w.b0 = 0, 0, 0, 0, 0
	w.finish, w.warmupEnd = 0, 0
	w.dataWait, w.commWait = 0, 0
}

// dur scales a compute duration by the worker's straggler factor.
func (w *worker) dur(d time.Duration) time.Duration {
	if w.slow > 1 {
		return time.Duration(float64(d) * w.slow)
	}
	return d
}

func (w *worker) span(kind trace.Kind, name string, start time.Duration) {
	w.cfg.Trace.Add(trace.Span{Worker: w.rank, Kind: kind, Name: name, Start: start, End: w.eng.Now()})
}

func (w *worker) iterName() string { return fmt.Sprintf("iter%d", w.it) }

// batchDelivered resumes the iteration once the loader hands over a
// batch (synchronously when one was prefetched).
func (w *worker) batchDelivered(_ pipeline.Batch, ok bool) {
	if !ok {
		panic(fmt.Sprintf("train: loader for rank %d exhausted at iteration %d", w.rank, w.it))
	}
	w.dataWait += w.eng.Now() - w.t0
	if w.cfg.Trace != nil {
		w.span(trace.KindDataWait, w.iterName(), w.t0)
	}
	w.state = wForward
	w.step()
}

// step advances the worker until it blocks (schedules its continuation)
// or the run completes.
func (w *worker) step() {
	tr := w.cfg.Trace
	for {
		switch w.state {
		case wIterStart:
			if w.it == w.total {
				w.finish = w.eng.Now()
				w.task.End()
				return
			}
			if w.it == w.cfg.Warmup {
				w.warmupEnd = w.eng.Now()
				w.dataWait, w.commWait = 0, 0
			}
			if w.loader != nil {
				w.t0 = w.eng.Now()
				w.loader.NextFunc(w.onBatch)
				return
			}
			w.state = wForward

		case wForward:
			w.t0 = w.eng.Now()
			w.state = wForwardDone
			w.eng.Schedule(w.dur(w.plan.forward), w.cont)
			return

		case wForwardDone:
			if tr != nil {
				w.span(trace.KindForward, w.iterName(), w.t0)
			}
			w.bi = 0
			w.pending = w.pending[:0]
			w.state = wSegOrTail

		case wSegOrTail:
			// Each backward segment gets its own span (recorded in
			// wSegDone/wTailDone), so hook and blocking comm-wait time
			// between segments is never double-counted inside a backward
			// span: a worker's spans partition its timeline.
			w.b0 = w.eng.Now()
			if w.bi < len(w.plan.backwardSegments) {
				w.state = wSegDone
				w.eng.Schedule(w.dur(w.plan.backwardSegments[w.bi]), w.cont)
			} else {
				w.state = wTailDone
				w.eng.Schedule(w.dur(w.plan.backwardTail), w.cont)
			}
			return

		case wSegDone:
			if tr != nil {
				w.span(trace.KindBackward, w.iterName(), w.b0)
			}
			if w.hook > 0 {
				w.h0 = w.eng.Now()
				w.state = wHookDone
				w.eng.Schedule(w.hook, w.cont)
				return
			}
			w.state = wIssue

		case wHookDone:
			if tr != nil {
				w.span(trace.KindHook, fmt.Sprintf("bucket%d", w.bi), w.h0)
			}
			w.state = wIssue

		case wIssue:
			bytes := w.plan.buckets[w.bi].Bytes * w.cfg.CompressionRatio
			sig := w.group.AllReduceAsync(w.rank, bytes)
			if w.cfg.DisableOverlap {
				w.c0 = w.eng.Now()
				w.state = wBlockDone
				if !sig.Fired() {
					sig.OnFire(w.cont)
					return
				}
				continue // completed synchronously
			}
			w.pending = append(w.pending, sig)
			w.bi++
			w.state = wSegOrTail

		case wBlockDone:
			w.commWait += w.eng.Now() - w.c0
			if tr != nil {
				w.span(trace.KindCommWait, fmt.Sprintf("bucket%d", w.bi), w.c0)
			}
			w.bi++
			w.state = wSegOrTail

		case wTailDone:
			if tr != nil {
				w.span(trace.KindBackward, w.iterName(), w.b0)
			}
			w.c0 = w.eng.Now()
			w.pi = 0
			w.state = wDrain

		case wDrain:
			for w.pi < len(w.pending) {
				if sig := w.pending[w.pi]; !sig.Fired() {
					sig.OnFire(w.cont)
					return
				}
				w.pi++
			}
			w.commWait += w.eng.Now() - w.c0
			if len(w.pending) > 0 && tr != nil {
				w.span(trace.KindCommWait, w.iterName(), w.c0)
			}
			w.o0 = w.eng.Now()
			w.state = wOptDone
			w.eng.Schedule(w.dur(w.plan.optimizer), w.cont)
			return

		case wOptDone:
			if tr != nil {
				w.span(trace.KindOptimizer, w.iterName(), w.o0)
			}
			w.it++
			w.state = wIterStart
		}
	}
}
