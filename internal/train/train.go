// Package train simulates synchronous data-parallel DNN training (the
// paper's PyTorch-DDP setup, §IV) on a simulated cluster: per-layer
// forward/backward compute on each GPU, gradient bucketing with
// communication overlapped into the backward pass, ring all-reduce over
// the topology, and optionally the full input pipeline (disk, cache, CPU
// prep, PCIe upload).
//
// Training can run on synthetic pre-populated data (no input pipeline,
// as in Stash's steps 1, 2 and 5) or on real data through per-worker
// dataloaders (DS-Analyzer's steps 3 and 4).
package train

import (
	"fmt"
	"time"

	"stash/internal/collective"
	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/pipeline"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
	"stash/internal/trace"
	"stash/internal/workload"
)

// Config describes one training run.
type Config struct {
	Job workload.Job

	// Topology is the provisioned cluster.
	Topology *topo.Topology

	// GPUs are the participating workers in rank order. Leave nil to use
	// every GPU in the topology. Stash's step 1 passes a single GPU of a
	// multi-GPU machine here.
	GPUs []*topo.Device

	// Iterations is the number of optimizer steps each worker executes.
	Iterations int

	// Synthetic pre-populates training data in GPU memory, eliminating
	// all pipeline stages before the GPU (steps 1, 2, 5).
	Synthetic bool

	// Pipelines maps machine node index to its input pipeline; required
	// when Synthetic is false for every machine that hosts a worker.
	Pipelines map[int]*pipeline.HostPipeline

	// CacheMode selects cold (step 3) or warm (step 4) caches for
	// real-data runs.
	CacheMode pipeline.CacheMode

	// Buckets overrides gradient bucketing; nil uses per-layer buckets.
	Buckets []collective.Bucket

	// CollectiveOptions configures the gradient-synchronization group
	// (algorithm, call overhead).
	CollectiveOptions []collective.Option

	// DisableOverlap makes every bucket's all-reduce block the backward
	// pass (no communication/computation overlap). Profilers set this on
	// clusters where transfers stage through host memory (PCIe peer
	// traffic, network paths), where real stacks lose the overlap; see
	// topo.Topology.SupportsAsyncCollectives.
	DisableOverlap bool

	// HookOverhead is the host-side cost DDP's autograd hook charges the
	// backward pass per gradient bucket, regardless of overlap. Zero uses
	// DefaultHookOverhead; negative disables it.
	HookOverhead time.Duration

	// Warmup is the number of leading iterations excluded from timing
	// (pipeline fill, first-touch effects). The run executes
	// Warmup+Iterations optimizer steps.
	Warmup int

	// CompressionRatio scales the gradient bytes each bucket carries,
	// modeling lossy gradient compression (top-k / quantization) schemes
	// from the communication-reduction literature the paper surveys
	// (SIII). 0 or 1 means no compression; 0.25 sends a quarter of the
	// bytes. Compute time is unaffected.
	CompressionRatio float64

	// Trace, when non-nil, records the per-worker execution timeline.
	Trace *trace.Recorder
}

// DefaultHookOverhead is the per-bucket host-side synchronization cost of
// the framework's gradient hook (Python autograd callback + NCCL enqueue
// serialization). Fitted so the per-layer stall slope of deep models
// matches the paper's Fig 16a.
const DefaultHookOverhead = 250 * time.Microsecond

// Result reports a completed run.
type Result struct {
	// Elapsed is the wall-clock (virtual) time from start to the last
	// worker finishing.
	Elapsed time.Duration

	// Iterations and WorldSize echo the configuration.
	Iterations int
	WorldSize  int

	// PerIteration is Elapsed / Iterations.
	PerIteration time.Duration

	// ComputePerWorker is the pure GPU compute time each worker spent
	// (identical across workers).
	ComputePerWorker time.Duration

	// DataWaitMax is the largest per-worker time spent blocked on the
	// input pipeline (fetch+prep+upload backpressure).
	DataWaitMax time.Duration

	// CommWaitMax is the largest per-worker time spent blocked on
	// gradient synchronization after backward compute finished.
	CommWaitMax time.Duration

	// CommBusy is the total time the collective group spent executing.
	CommBusy time.Duration

	// SamplesPerSecond is the aggregate training throughput.
	SamplesPerSecond float64
}

// Run executes the configured training on the engine that the topology's
// network lives on, driving the simulation to completion.
func Run(eng *sim.Engine, net *simnet.Network, cfg Config) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("train: nil topology")
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("train: iterations %d < 1", cfg.Iterations)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("train: warmup %d < 0", cfg.Warmup)
	}
	switch {
	case cfg.HookOverhead == 0:
		cfg.HookOverhead = DefaultHookOverhead
	case cfg.HookOverhead < 0:
		cfg.HookOverhead = 0
	}
	switch {
	//lint:allow floatcmp 0 is the unset-field sentinel of the zero Config, not a computed value
	case cfg.CompressionRatio == 0:
		cfg.CompressionRatio = 1
	case cfg.CompressionRatio < 0 || cfg.CompressionRatio > 1:
		return nil, fmt.Errorf("train: compression ratio %v outside (0, 1]", cfg.CompressionRatio)
	}
	if err := cfg.Job.Model.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	gpus := cfg.GPUs
	if gpus == nil {
		gpus = cfg.Topology.AllGPUs()
	}
	if len(gpus) == 0 {
		return nil, fmt.Errorf("train: no GPUs")
	}
	buckets := cfg.Buckets
	if buckets == nil {
		buckets = collective.PerLayerBuckets(cfg.Job.Model)
	}
	group, err := collective.NewGroup(eng, net, cfg.Topology, gpus, cfg.CollectiveOptions...)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	plan, err := newIterationPlan(cfg.Job, gpus[0].GPU, buckets)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	workers := make([]*worker, len(gpus))
	for rank, gpu := range gpus {
		w := &worker{
			rank:  rank,
			gpu:   gpu,
			cfg:   &cfg,
			plan:  plan,
			group: group,
		}
		if !cfg.Synthetic {
			hp := cfg.Pipelines[gpu.Node]
			if hp == nil {
				return nil, fmt.Errorf("train: no pipeline for machine %d", gpu.Node)
			}
			hp.SetCacheMode(cfg.CacheMode)
			route, err := cfg.Topology.Route(cfg.Topology.Machines[gpu.Node].Host, gpu)
			if err != nil {
				return nil, fmt.Errorf("train: upload route: %w", err)
			}
			loader, err := hp.NewLoader(cfg.Job, route, cfg.Warmup+cfg.Iterations)
			if err != nil {
				return nil, fmt.Errorf("train: %w", err)
			}
			w.loader = loader
		}
		workers[rank] = w
	}
	for _, w := range workers {
		if w.loader != nil {
			w.loader.Start(fmt.Sprintf("loader-%d", w.rank))
		}
		w.proc = eng.Go(fmt.Sprintf("worker-%d", w.rank), w.run)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	res := &Result{
		Iterations:       cfg.Iterations,
		WorldSize:        len(gpus),
		ComputePerWorker: plan.computeTotal * time.Duration(cfg.Iterations),
		CommBusy:         group.BusyTime(),
	}
	for _, w := range workers {
		if measured := w.finish - w.warmupEnd; measured > res.Elapsed {
			res.Elapsed = measured
		}
		if w.dataWait > res.DataWaitMax {
			res.DataWaitMax = w.dataWait
		}
		if w.commWait > res.CommWaitMax {
			res.CommWaitMax = w.commWait
		}
	}
	res.PerIteration = res.Elapsed / time.Duration(cfg.Iterations)
	if res.Elapsed > 0 {
		res.SamplesPerSecond = float64(cfg.Iterations*cfg.Job.BatchPerGPU*len(gpus)) / res.Elapsed.Seconds()
	}
	return res, nil
}

// iterationPlan precomputes the compute timeline of one iteration:
// a single forward-pass duration, then backward-pass segments ending at
// each bucket's issue point.
type iterationPlan struct {
	forward time.Duration

	// backwardSegments[i] is the backward compute between bucket i-1's
	// issue point and bucket i's. backwardTail is the compute after the
	// final bucket issue (layers before the first parameter layer).
	backwardSegments []time.Duration
	backwardTail     time.Duration

	buckets      []collective.Bucket
	optimizer    time.Duration
	computeTotal time.Duration
}

func newIterationPlan(job workload.Job, gpu hw.GPUSpec, buckets []collective.Bucket) (*iterationPlan, error) {
	m := job.Model
	batch := float64(job.BatchPerGPU)
	eff := gpu.EffectiveFLOPS(batch * m.FwdFLOPsPerSample())

	// Activations stream per sample; weights are read once per pass
	// regardless of batch size.
	fwdTime := func(l dnn.Layer) time.Duration {
		mem := 2*batch*l.ActivationBytes + float64(l.Params)*dnn.BytesPerParam
		return gpu.LayerTime(batch*l.FwdFLOPs, mem, eff)
	}
	bwdTime := func(l dnn.Layer) time.Duration {
		mem := 4*batch*l.ActivationBytes + 3*float64(l.Params)*dnn.BytesPerParam
		return gpu.LayerTime(2*batch*l.FwdFLOPs, mem, eff)
	}

	p := &iterationPlan{buckets: buckets}
	for _, l := range m.Layers {
		p.forward += fwdTime(l)
	}

	// Map each layer index to the bucket issued when its gradient is
	// ready (the bucket whose earliest backward-order layer it is).
	issueAt := make(map[int]int) // layer index -> bucket index
	for bi, b := range buckets {
		if len(b.Layers) == 0 {
			return nil, fmt.Errorf("bucket %d has no layers", bi)
		}
		last := b.Layers[len(b.Layers)-1] // deepest layer in backward order
		issueAt[last] = bi
	}

	seg := time.Duration(0)
	nextBucket := 0
	for i := len(m.Layers) - 1; i >= 0; i-- {
		seg += bwdTime(m.Layers[i])
		if bi, ok := issueAt[i]; ok {
			if bi != nextBucket {
				return nil, fmt.Errorf("bucket %d issued out of order (expected %d)", bi, nextBucket)
			}
			p.backwardSegments = append(p.backwardSegments, seg)
			seg = 0
			nextBucket++
		}
	}
	if nextBucket != len(buckets) {
		return nil, fmt.Errorf("only %d of %d buckets have issue points", nextBucket, len(buckets))
	}
	p.backwardTail = seg

	// SGD+momentum touches three parameter-sized arrays.
	optBytes := 3 * float64(m.TotalParams()) * dnn.BytesPerParam
	p.optimizer = time.Duration(optBytes / gpu.MemBandwidth * float64(time.Second))

	p.computeTotal = p.forward + p.backwardTail + p.optimizer
	for _, s := range p.backwardSegments {
		p.computeTotal += s
	}
	return p, nil
}

type worker struct {
	rank   int
	gpu    *topo.Device
	cfg    *Config
	plan   *iterationPlan
	group  *collective.Group
	loader *pipeline.Loader
	proc   *sim.Process

	finish    time.Duration
	warmupEnd time.Duration
	dataWait  time.Duration
	commWait  time.Duration
}

func (w *worker) run(p *sim.Process) {
	hook := w.cfg.HookOverhead
	if w.group.WorldSize() == 1 {
		hook = 0 // DDP hooks are not installed on single-GPU training
	}
	tr := w.cfg.Trace
	span := func(kind trace.Kind, name string, start time.Duration) {
		tr.Add(trace.Span{Worker: w.rank, Kind: kind, Name: name, Start: start, End: p.Now()})
	}
	total := w.cfg.Warmup + w.cfg.Iterations
	for it := 0; it < total; it++ {
		if it == w.cfg.Warmup {
			w.warmupEnd = p.Now()
			w.dataWait, w.commWait = 0, 0
		}
		iterName := fmt.Sprintf("iter%d", it)
		if w.loader != nil {
			t0 := p.Now()
			if _, ok := w.loader.Next(p); !ok {
				panic(fmt.Sprintf("train: loader for rank %d exhausted at iteration %d", w.rank, it))
			}
			w.dataWait += p.Now() - t0
			span(trace.KindDataWait, iterName, t0)
		}
		t0 := p.Now()
		p.Sleep(w.plan.forward)
		span(trace.KindForward, iterName, t0)

		var pending []*sim.Signal
		bwdStart := p.Now()
		for bi, seg := range w.plan.backwardSegments {
			p.Sleep(seg)
			if hook > 0 {
				h0 := p.Now()
				p.Sleep(hook)
				span(trace.KindHook, fmt.Sprintf("bucket%d", bi), h0)
			}
			bytes := w.plan.buckets[bi].Bytes * w.cfg.CompressionRatio
			sig := w.group.AllReduceAsync(w.rank, bytes)
			if w.cfg.DisableOverlap {
				c0 := p.Now()
				p.Await(sig)
				w.commWait += p.Now() - c0
				span(trace.KindCommWait, fmt.Sprintf("bucket%d", bi), c0)
			} else {
				pending = append(pending, sig)
			}
		}
		p.Sleep(w.plan.backwardTail)
		span(trace.KindBackward, iterName, bwdStart)

		c0 := p.Now()
		for _, sig := range pending {
			p.Await(sig)
		}
		w.commWait += p.Now() - c0
		if len(pending) > 0 {
			span(trace.KindCommWait, iterName, c0)
		}

		o0 := p.Now()
		p.Sleep(w.plan.optimizer)
		span(trace.KindOptimizer, iterName, o0)
	}
	w.finish = p.Now()
}
