package train

import (
	"testing"
	"time"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/dnn"
	"stash/internal/pipeline"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
	"stash/internal/workload"
)

// rig is a provisioned cluster ready for a training run.
type rig struct {
	eng *sim.Engine
	net *simnet.Network
	top *topo.Topology
	it  cloud.InstanceType
}

func newRig(t *testing.T, instance string, count int, policy cloud.SlicePolicy) *rig {
	t.Helper()
	it, err := cloud.ByName(instance)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	eng := sim.NewEngine()
	net := simnet.New(eng)
	top, err := cloud.NewProvisioner(policy, 1).Provision(net, it, count)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	return &rig{eng: eng, net: net, top: top, it: it}
}

func (r *rig) pipelines(t *testing.T) map[int]*pipeline.HostPipeline {
	t.Helper()
	ps := make(map[int]*pipeline.HostPipeline)
	for node := range r.top.Machines {
		hp, err := pipeline.New(r.eng, r.net, node, pipeline.Config{
			Storage:    r.it.Storage,
			CPU:        r.it.CPU(),
			CacheBytes: r.it.MainMemoryGB * 0.9e9,
		})
		if err != nil {
			t.Fatalf("pipeline.New: %v", err)
		}
		ps[node] = hp
	}
	return ps
}

func resnet18Job(t *testing.T, batch int) workload.Job {
	t.Helper()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	job, err := workload.NewJob(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestRunValidation(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	if _, err := Run(r.eng, r.net, Config{Job: job, Iterations: 1}); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := Run(r.eng, r.net, Config{Job: job, Topology: r.top, Iterations: 0}); err == nil {
		t.Error("zero iterations should fail")
	}
	if _, err := Run(r.eng, r.net, Config{Job: job, Topology: r.top, Iterations: 1, Synthetic: false}); err == nil {
		t.Error("real data without pipelines should fail")
	}
}

func TestSyntheticSingleGPU(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	res, err := Run(r.eng, r.net, Config{
		Job:        job,
		Topology:   r.top,
		GPUs:       r.top.AllGPUs()[:1],
		Iterations: 10,
		Synthetic:  true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WorldSize != 1 {
		t.Errorf("WorldSize = %d, want 1", res.WorldSize)
	}
	// Single GPU: no communication, elapsed == pure compute.
	if res.CommWaitMax != 0 {
		t.Errorf("CommWaitMax = %v, want 0 on single GPU", res.CommWaitMax)
	}
	if res.Elapsed != res.ComputePerWorker {
		t.Errorf("Elapsed %v != compute %v on single GPU", res.Elapsed, res.ComputePerWorker)
	}
	// Sanity: a ResNet18 bs32 iteration on V100 lands in tens of ms.
	if res.PerIteration < 20*time.Millisecond || res.PerIteration > 300*time.Millisecond {
		t.Errorf("PerIteration = %v, outside plausible V100 range", res.PerIteration)
	}
}

func TestDistributedAddsCommunicationStall(t *testing.T) {
	job := resnet18Job(t, 32)
	single := func() *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, GPUs: r.top.AllGPUs()[:1],
			Iterations: 10, Synthetic: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}()
	multi := func() *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top,
			Iterations: 10, Synthetic: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}()
	if multi.WorldSize != 8 {
		t.Fatalf("WorldSize = %d, want 8", multi.WorldSize)
	}
	if multi.Elapsed <= single.Elapsed {
		t.Errorf("8-GPU run %v not slower than 1-GPU %v (no interconnect stall?)", multi.Elapsed, single.Elapsed)
	}
	if multi.CommWaitMax == 0 {
		t.Error("8-GPU run reports zero comm wait")
	}
	if multi.CommBusy == 0 {
		t.Error("group busy time is zero")
	}
	// Per-GPU compute is identical (same per-GPU batch and samples).
	if multi.ComputePerWorker != single.ComputePerWorker {
		t.Errorf("compute changed: %v vs %v", multi.ComputePerWorker, single.ComputePerWorker)
	}
}

func TestNVLinkBeatsPCIeForSameModel(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(instance string) *Result {
		r := newRig(t, instance, 1, cloud.SliceDegraded)
		gpus := r.top.AllGPUs()
		if len(gpus) > 8 {
			gpus = gpus[:8]
		}
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, GPUs: gpus,
			Iterations: 5, Synthetic: true,
		})
		if err != nil {
			t.Fatalf("Run(%s): %v", instance, err)
		}
		return res
	}
	p3 := run("p3.16xlarge")
	p2 := run("p2.8xlarge")
	if p3.Elapsed >= p2.Elapsed {
		t.Errorf("p3.16xlarge (%v) not faster than p2.8xlarge (%v)", p3.Elapsed, p2.Elapsed)
	}
	if p3.CommWaitMax >= p2.CommWaitMax {
		t.Errorf("NVLink comm wait %v not below PCIe %v", p3.CommWaitMax, p2.CommWaitMax)
	}
}

func TestOverlapHidesCommunication(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(disable bool) *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top,
			Iterations: 5, Synthetic: true,
			DisableOverlap: disable,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	overlapped, sync := run(false), run(true)
	if overlapped.Elapsed > sync.Elapsed {
		t.Errorf("overlapped %v slower than synchronous %v", overlapped.Elapsed, sync.Elapsed)
	}
}

func TestRealDataWarmCacheMatchesPipelineFreeRun(t *testing.T) {
	// With warm caches and ample CPUs, real-data training should be only
	// slightly slower than synthetic (pipeline hidden by prefetch).
	job := resnet18Job(t, 32)
	r1 := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	synth, err := Run(r1.eng, r1.net, Config{
		Job: job, Topology: r1.top, Iterations: 10, Synthetic: true,
	})
	if err != nil {
		t.Fatalf("Run synthetic: %v", err)
	}
	r2 := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	real, err := Run(r2.eng, r2.net, Config{
		Job: job, Topology: r2.top, Iterations: 10,
		Pipelines: r2.pipelines(t), CacheMode: pipeline.CacheWarm,
	})
	if err != nil {
		t.Fatalf("Run real: %v", err)
	}
	if real.Elapsed < synth.Elapsed {
		t.Errorf("real-data run %v faster than synthetic %v", real.Elapsed, synth.Elapsed)
	}
	if ratio := real.Elapsed.Seconds() / synth.Elapsed.Seconds(); ratio > 1.35 {
		t.Errorf("warm-cache overhead ratio = %.2f, want close to 1", ratio)
	}
}

func TestColdCacheSlowerThanWarm(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(mode pipeline.CacheMode) *Result {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 10,
			Pipelines: r.pipelines(t), CacheMode: mode,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	warm, cold := run(pipeline.CacheWarm), run(pipeline.CacheCold)
	if cold.Elapsed <= warm.Elapsed {
		t.Errorf("cold run %v not slower than warm %v", cold.Elapsed, warm.Elapsed)
	}
	if cold.DataWaitMax <= warm.DataWaitMax {
		t.Errorf("cold data wait %v not above warm %v", cold.DataWaitMax, warm.DataWaitMax)
	}
}

func TestSizedBucketsReduceCollectiveCalls(t *testing.T) {
	job := resnet18Job(t, 32)
	sized, err := collective.SizedBuckets(job.Model, 25e6)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	res, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 3, Synthetic: true,
		Buckets: sized,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Elapsed == 0 {
		t.Fatal("no progress")
	}
	rPer := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	perLayer, err := Run(rPer.eng, rPer.net, Config{
		Job: job, Topology: rPer.top, Iterations: 3, Synthetic: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Coalescing amortizes per-call overhead but delays bucket starts;
	// the two should land close to each other, never wildly apart.
	ratio := res.Elapsed.Seconds() / perLayer.Elapsed.Seconds()
	if ratio > 1.2 || ratio < 0.5 {
		t.Errorf("sized buckets %v vs per-layer %v (ratio %.2f), want comparable", res.Elapsed, perLayer.Elapsed, ratio)
	}
}

func TestMultiNodeSlowerThanSingleNode(t *testing.T) {
	// Stash step 5 vs step 2: same world size, network-connected.
	job := resnet18Job(t, 32)
	r1 := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	intra, err := Run(r1.eng, r1.net, Config{
		Job: job, Topology: r1.top, Iterations: 5, Synthetic: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2 := newRig(t, "p3.8xlarge", 2, cloud.SliceDegraded)
	inter, err := Run(r2.eng, r2.net, Config{
		Job: job, Topology: r2.top, Iterations: 5, Synthetic: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if intra.WorldSize != inter.WorldSize {
		t.Fatalf("world sizes differ: %d vs %d", intra.WorldSize, inter.WorldSize)
	}
	if inter.Elapsed <= intra.Elapsed {
		t.Errorf("network run %v not slower than single instance %v", inter.Elapsed, intra.Elapsed)
	}
}

func TestThroughputAccounting(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	res, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 10, Synthetic: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantSamples := float64(10 * 32 * 8)
	got := res.SamplesPerSecond * res.Elapsed.Seconds()
	if diff := got - wantSamples; diff > 1 || diff < -1 {
		t.Errorf("throughput accounts for %v samples, want %v", got, wantSamples)
	}
}
