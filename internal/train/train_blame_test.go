package train

import (
	"testing"
	"time"

	"stash/internal/cloud"
	"stash/internal/trace"
)

// exclusiveKinds are the span kinds that claim a worker's timeline
// exclusively. KindBarrier deliberately overlaps comm-wait (it is a
// synchronization annotation recorded by the collective layer) and is
// excluded.
var exclusiveKinds = []trace.Kind{
	trace.KindDataWait, trace.KindForward, trace.KindBackward,
	trace.KindHook, trace.KindCommWait, trace.KindOptimizer,
}

// TestSpansPartitionWorkerTimeline pins the double-count fix: the old
// single backward span covered hook and blocking comm-wait time too, so
// a worker's summed span time exceeded its wall time. Now the exclusive
// spans must partition the timeline: their sum never exceeds the
// worker's first-to-last span window, in both overlap and blocking
// configurations.
func TestSpansPartitionWorkerTimeline(t *testing.T) {
	job := resnet18Job(t, 32)
	for _, tc := range []struct {
		name           string
		instance       string
		disableOverlap bool
	}{
		{"overlap-nvlink", "p3.16xlarge", false},
		{"blocking-pcie", "p2.8xlarge", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, tc.instance, 1, cloud.SliceDegraded)
			rec := trace.New()
			if _, err := Run(r.eng, r.net, Config{
				Job: job, Topology: r.top, Iterations: 3, Synthetic: true,
				DisableOverlap: tc.disableOverlap,
				Trace:          rec,
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			byWorker := map[int][]trace.Span{}
			for _, s := range rec.Spans() {
				if s.Worker >= 0 {
					byWorker[s.Worker] = append(byWorker[s.Worker], s)
				}
			}
			if len(byWorker) < 2 {
				t.Fatalf("only %d traced workers", len(byWorker))
			}
			for w, spans := range byWorker {
				first, last := spans[0].Start, spans[0].End
				var sum time.Duration
				busy := rec.WorkerBusy(w)
				for _, k := range exclusiveKinds {
					sum += busy[k]
				}
				for _, s := range spans {
					if s.Start < first {
						first = s.Start
					}
					if s.End > last {
						last = s.End
					}
				}
				if wall := last - first; sum > wall {
					t.Errorf("worker %d: exclusive span time %v exceeds wall window %v", w, sum, wall)
				}
			}
		})
	}
}

// TestBarrierSpansPerRank checks the collective layer records one
// KindBarrier span per rank per completed op, plus the group-level
// KindCollective span.
func TestBarrierSpansPerRank(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	rec := trace.New()
	res, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 2, Synthetic: true,
		Trace: rec,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perRank := map[int]int{}
	group := 0
	for _, s := range rec.Spans() {
		switch {
		case s.Kind == trace.KindBarrier:
			perRank[s.Worker]++
		case s.Kind == trace.KindCollective && s.Worker == -1:
			group++
		}
	}
	if group == 0 {
		t.Fatal("no group-level collective spans")
	}
	if len(perRank) != res.WorldSize {
		t.Fatalf("barrier spans on %d ranks, want %d", len(perRank), res.WorldSize)
	}
	for rank, n := range perRank {
		if n != group {
			t.Errorf("rank %d has %d barrier spans, want %d (one per op)", rank, n, group)
		}
	}
}

// TestStragglerBlamedFirst injects a slow rank and checks both the
// resulting comm-wait shift and that the frontier pass names it.
func TestStragglerBlamedFirst(t *testing.T) {
	job := resnet18Job(t, 32)
	run := func(rank int, scale float64) (*Result, *trace.Recorder) {
		r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
		rec := trace.New()
		res, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 3, Synthetic: true,
			StragglerRank: rank, StragglerScale: scale,
			Trace: rec,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, rec
	}
	base, _ := run(0, 1)
	slow, rec := run(5, 1.5)
	if slow.CommWaitMax <= base.CommWaitMax {
		t.Errorf("straggler run comm wait %v not above baseline %v",
			slow.CommWaitMax, base.CommWaitMax)
	}
	a := rec.Attribute()
	if len(a.Workers) == 0 || a.Workers[0].Worker != 5 {
		t.Fatalf("top blamed worker = %+v, want rank 5", a.Workers)
	}
	if a.Workers[0].Blamed == 0 {
		t.Error("straggler accumulated no blame")
	}
	if a.Unattributed != 0 {
		t.Errorf("Unattributed = %v, want 0 on a fully barrier-annotated run", a.Unattributed)
	}
	if a.Attributed+a.Unattributed != a.TotalCommWait {
		t.Errorf("conservation broken: %v + %v != %v", a.Attributed, a.Unattributed, a.TotalCommWait)
	}
}

func TestStragglerValidation(t *testing.T) {
	r := newRig(t, "p3.16xlarge", 1, cloud.SliceDegraded)
	job := resnet18Job(t, 32)
	for _, tc := range []struct {
		rank  int
		scale float64
	}{
		{0, 0.5},  // scale below 1
		{-1, 1.5}, // rank out of range
		{64, 1.5}, // rank out of range
	} {
		if _, err := Run(r.eng, r.net, Config{
			Job: job, Topology: r.top, Iterations: 1, Synthetic: true,
			StragglerRank: tc.rank, StragglerScale: tc.scale,
		}); err == nil {
			t.Errorf("rank %d scale %v accepted", tc.rank, tc.scale)
		}
	}
	// Scale 1 with any rank is the documented no-op.
	if _, err := Run(r.eng, r.net, Config{
		Job: job, Topology: r.top, Iterations: 1, Synthetic: true,
		StragglerRank: 99, StragglerScale: 1,
	}); err != nil {
		t.Errorf("scale 1 rejected: %v", err)
	}
}
