package workload

import (
	"math"
	"testing"
	"testing/quick"

	"stash/internal/dnn"
)

func TestDatasetSizesMatchTableII(t *testing.T) {
	if got := ImageNet1k.TotalBytes(); math.Abs(got-133e9) > 1e6 {
		t.Errorf("ImageNet = %v bytes, want 133 GB", got)
	}
	if got := SQuAD2.TotalBytes(); math.Abs(got-45e6) > 1e3 {
		t.Errorf("SQuAD = %v bytes, want 45 MB", got)
	}
	if ImageNet1k.Samples != 1281167 {
		t.Errorf("ImageNet samples = %d", ImageNet1k.Samples)
	}
}

func TestDatasetFor(t *testing.T) {
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	if DatasetFor(m).Name != "imagenet1k" {
		t.Error("vision model should use ImageNet")
	}
	if DatasetFor(dnn.BERTLarge()).Name != "squad2" {
		t.Error("BERT should use SQuAD")
	}
}

func TestNewJobValidation(t *testing.T) {
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob(nil, 32); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := NewJob(m, 0); err == nil {
		t.Error("zero batch should fail")
	}
	if _, err := NewJob(&dnn.Model{Name: "empty"}, 32); err == nil {
		t.Error("invalid model should fail")
	}
	j, err := NewJob(m, 32)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if j.Dataset.Name != "imagenet1k" || j.BatchPerGPU != 32 {
		t.Errorf("job = %+v", j)
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJob(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.IterationsPerEpoch(8); got != 1281167/(32*8) {
		t.Errorf("iterations = %d", got)
	}
	if got := j.SamplesPerGPUPerEpoch(8); got != (1281167/(32*8))*32 {
		t.Errorf("samples per GPU = %d", got)
	}
}

func TestBatchSweeps(t *testing.T) {
	small := SmallBatchSizes()
	if len(small) != 4 || small[0] != 32 || small[3] != 128 {
		t.Errorf("small sweep = %v", small)
	}
	large := LargeBatchSizes()
	if len(large) != 2 || large[0] != 32 {
		t.Errorf("large sweep = %v", large)
	}
}

// Property: per-GPU samples x world size never exceeds the dataset and
// covers it up to one effective batch (drop_last).
func TestQuickEpochCoverage(t *testing.T) {
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	f := func(batchRaw, worldRaw uint8) bool {
		batch, world := int(batchRaw)+1, int(worldRaw)+1
		j, err := NewJob(m, batch)
		if err != nil {
			return false
		}
		covered := j.SamplesPerGPUPerEpoch(world) * world
		return covered <= j.Dataset.Samples && j.Dataset.Samples-covered < batch*world
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
