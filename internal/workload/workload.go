// Package workload describes training workloads: the datasets of Table II
// and the job specifications (model, batch size, cluster shape) that the
// characterization sweeps over.
package workload

import (
	"fmt"

	"stash/internal/dnn"
)

// Dataset describes the on-disk training data.
type Dataset struct {
	Name string

	// Samples is the number of training samples per epoch.
	Samples int

	// DiskBytesPerSample is the average stored (encoded) size of one
	// sample, what the fetch stage reads.
	DiskBytesPerSample float64

	// PrepCostFactor scales the per-sample CPU pre-processing cost
	// relative to a standard ImageNet decode+augment (1.0).
	PrepCostFactor float64
}

// TotalBytes returns the dataset size on disk.
func (d Dataset) TotalBytes() float64 {
	return float64(d.Samples) * d.DiskBytesPerSample
}

// Datasets from Table II.
var (
	// ImageNet1k is the ILSVRC-2012 training set: 1.28 M JPEGs, 133 GB.
	ImageNet1k = Dataset{
		Name:               "imagenet1k",
		Samples:            1281167,
		DiskBytesPerSample: 133e9 / 1281167,
		PrepCostFactor:     1.0,
	}

	// SQuAD2 is the SQuAD 2.0 fine-tuning set: ~130 k features, 45 MB.
	// Tokenized text needs almost no pre-processing.
	SQuAD2 = Dataset{
		Name:               "squad2",
		Samples:            130319,
		DiskBytesPerSample: 45e6 / 130319,
		PrepCostFactor:     0.05,
	}
)

// DatasetFor returns the Table II dataset for a model.
func DatasetFor(m *dnn.Model) Dataset {
	if m.Family == "bert" {
		return SQuAD2
	}
	return ImageNet1k
}

// Job is one training configuration to simulate or profile.
type Job struct {
	Model   *dnn.Model
	Dataset Dataset

	// BatchPerGPU is the per-GPU mini-batch size; the effective batch is
	// BatchPerGPU x world size, as in §V.
	BatchPerGPU int
}

// NewJob pairs a model with its Table II dataset at the given per-GPU
// batch size.
func NewJob(m *dnn.Model, batchPerGPU int) (Job, error) {
	if m == nil {
		return Job{}, fmt.Errorf("workload: nil model")
	}
	if err := m.Validate(); err != nil {
		return Job{}, err
	}
	if batchPerGPU < 1 {
		return Job{}, fmt.Errorf("workload: batch %d < 1", batchPerGPU)
	}
	return Job{Model: m, Dataset: DatasetFor(m), BatchPerGPU: batchPerGPU}, nil
}

// IterationsPerEpoch returns the number of optimizer steps in one epoch
// with the given total GPU count (drop_last semantics).
func (j Job) IterationsPerEpoch(worldSize int) int {
	eff := j.BatchPerGPU * worldSize
	return j.Dataset.Samples / eff
}

// SamplesPerGPUPerEpoch returns how many samples each worker processes in
// one epoch.
func (j Job) SamplesPerGPUPerEpoch(worldSize int) int {
	return j.IterationsPerEpoch(worldSize) * j.BatchPerGPU
}

// SmallBatchSizes is the paper's small-model batch sweep (§V).
func SmallBatchSizes() []int { return []int{32, 64, 96, 128} }

// LargeBatchSizes is the paper's large-vision-model batch sweep.
func LargeBatchSizes() []int { return []int{32, 64} }
