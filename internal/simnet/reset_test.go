package simnet

import (
	"testing"

	"stash/internal/sim"
)

// TestRecycleReusesFlowStorage proves the opt-in free list: a recycled
// flow's storage backs the next StartFlow, with its done signal re-armed.
func TestRecycleReusesFlowStorage(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("l", 1*gb, 0)
	f1 := n.StartFlow(1e6, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !f1.Completed() {
		t.Fatal("flow did not complete")
	}
	n.Recycle(f1)
	f2 := n.StartFlow(2e6, []*Link{l})
	if f2 != f1 {
		t.Error("StartFlow after Recycle minted fresh storage")
	}
	if f2.Completed() || f2.Done().Fired() {
		t.Error("recycled flow kept completed state")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !f2.Completed() || !f2.Done().Fired() {
		t.Error("recycled flow did not complete its second transfer")
	}
	if got := f2.Throughput(); !almostEqual(got, 1*gb, 1e-6) {
		t.Errorf("recycled flow throughput = %v, want %v", got, 1*gb)
	}
}

func TestRecycleIncompleteFlowPanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("l", 1*gb, 0)
	f := n.StartFlow(1e6, []*Link{l})
	defer func() {
		if recover() == nil {
			t.Error("Recycle of an in-flight flow did not panic")
		}
	}()
	n.Recycle(f)
}

// TestNetworkResetMatchesFreshBuild is the world-reuse guarantee the core
// pool depends on: after Engine.Reset + Network.Reset, a transfer over
// the surviving links behaves exactly like one on a brand-new network,
// and the link statistics start from zero.
func TestNetworkResetMatchesFreshBuild(t *testing.T) {
	run := func(e *sim.Engine, n *Network, l *Link) (float64, float64) {
		a := n.StartFlow(3e6, []*Link{l})
		b := n.StartFlow(3e6, []*Link{l})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return a.Throughput(), b.Throughput()
	}

	fresh := sim.NewEngine()
	freshNet := New(fresh)
	freshLink := freshNet.NewLink("l", 1*gb, 0)
	wantA, wantB := run(fresh, freshNet, freshLink)

	used := sim.NewEngine()
	usedNet := New(used)
	usedLink := usedNet.NewLink("l", 1*gb, 0)
	// Foreign history: an unrelated flow left mid-flight, then the world
	// is recycled.
	usedNet.StartFlow(1e12, []*Link{usedLink})
	if err := used.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	used.Reset()
	usedNet.Reset()
	//lint:allow floatcmp Reset stores the literal 0; any other bit pattern is a bug
	if usedLink.BytesCarried() != 0 || usedLink.FlowsCarried() != 0 {
		t.Errorf("link stats survived Reset: %v bytes, %d flows",
			usedLink.BytesCarried(), usedLink.FlowsCarried())
	}
	if usedNet.NumLinks() != 1 || usedNet.ActiveFlows() != 0 {
		t.Errorf("Reset network has %d links and %d active flows, want 1 and 0",
			usedNet.NumLinks(), usedNet.ActiveFlows())
	}
	gotA, gotB := run(used, usedNet, usedLink)
	//lint:allow floatcmp byte-identity is the property under test: recycled worlds must match fresh ones exactly
	if gotA != wantA || gotB != wantB {
		t.Errorf("recycled world differs from fresh: got (%v, %v), want (%v, %v)",
			gotA, gotB, wantA, wantB)
	}
}
