package simnet

import (
	"testing"
	"time"

	"stash/internal/sim"
)

// BenchmarkFlowLifecycle measures start-to-completion cost of sequential
// flows on one link.
func BenchmarkFlowLifecycle(b *testing.B) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("l", 1e9, time.Microsecond)
	done := 0
	var next func()
	next = func() {
		f := n.StartFlow(1e6, []*Link{l})
		e.Schedule(0, func() {
			_ = f
		})
		done++
		if done < b.N {
			e.Schedule(time.Millisecond, next)
		}
	}
	e.Schedule(0, next)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecompute16Way measures the max-min fair recomputation with a
// 16-flow contention set (the p2.16xlarge ring shape).
func BenchmarkRecompute16Way(b *testing.B) {
	e := sim.NewEngine()
	n := New(e)
	bus := n.NewLink("bus", 1e12, 0)
	var up, down []*Link
	for i := 0; i < 16; i++ {
		up = append(up, n.NewLink("up", 1e10, 0))
		down = append(down, n.NewLink("down", 1e10, 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			n.StartFlow(1e5, []*Link{up[j], bus, down[(j+1)%16]})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
