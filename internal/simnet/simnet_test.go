package simnet

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"stash/internal/sim"
)

const gb = 1e9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowFullCapacity(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("pcie", 10*gb, 0)
	f := n.StartFlow(10*gb, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !f.Completed() {
		t.Fatal("flow did not complete")
	}
	if got := f.Duration(); got < time.Second || got > time.Second+time.Microsecond {
		t.Errorf("duration = %v, want ~1s", got)
	}
}

func TestLatencyAddsToCompletion(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("net", 1*gb, 100*time.Millisecond)
	f := n.StartFlow(1*gb, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 1100 * time.Millisecond
	if got := f.Duration(); got < want || got > want+time.Microsecond {
		t.Errorf("duration = %v, want ~%v", got, want)
	}
}

func TestZeroByteFlowCompletesAfterLatency(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("net", 1*gb, 50*time.Millisecond)
	f := n.StartFlow(0, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := f.Duration(); got != 50*time.Millisecond {
		t.Errorf("duration = %v, want 50ms", got)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("bus", 10*gb, 0)
	f1 := n.StartFlow(10*gb, []*Link{l})
	f2 := n.StartFlow(10*gb, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each gets 5 GB/s, so both finish at 2s.
	for i, f := range []*Flow{f1, f2} {
		if got := f.Duration(); got < 2*time.Second || got > 2*time.Second+time.Microsecond {
			t.Errorf("flow %d duration = %v, want ~2s", i, got)
		}
	}
}

func TestLateFlowSpeedsUpAfterFirstFinishes(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("bus", 10*gb, 0)
	// f1: 5 GB. f2: 15 GB. Both start together at 5 GB/s each.
	// f1 done at t=1s. f2 then has 10 GB left at 10 GB/s -> done at t=2s.
	f1 := n.StartFlow(5*gb, []*Link{l})
	f2 := n.StartFlow(15*gb, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := f1.Duration().Seconds(); !almostEqual(got, 1, 1e-6) {
		t.Errorf("f1 duration = %vs, want 1s", got)
	}
	if got := f2.Duration().Seconds(); !almostEqual(got, 2, 1e-6) {
		t.Errorf("f2 duration = %vs, want 2s", got)
	}
}

func TestStaggeredStart(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("bus", 10*gb, 0)
	f1 := n.StartFlow(10*gb, []*Link{l})
	var f2 *Flow
	e.Schedule(500*time.Millisecond, func() {
		f2 = n.StartFlow(10*gb, []*Link{l})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// f1 alone for 0.5s (5 GB done), then shares: 5 GB left at 5 GB/s ->
	// finishes at 1.5s. f2 then solo: started 0.5, transferred 5 GB by 1.5,
	// 5 GB left at 10 GB/s -> finishes at 2.0s.
	if got := f1.finished.Seconds(); !almostEqual(got, 1.5, 1e-6) {
		t.Errorf("f1 finished at %vs, want 1.5s", got)
	}
	if got := f2.finished.Seconds(); !almostEqual(got, 2.0, 1e-6) {
		t.Errorf("f2 finished at %vs, want 2.0s", got)
	}
}

func TestBottleneckOnSharedMiddleLink(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	a := n.NewLink("a", 100*gb, 0)
	b := n.NewLink("b", 100*gb, 0)
	shared := n.NewLink("shared", 10*gb, 0)
	f1 := n.StartFlow(10*gb, []*Link{a, shared})
	f2 := n.StartFlow(10*gb, []*Link{b, shared})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, f := range []*Flow{f1, f2} {
		if got := f.Duration().Seconds(); !almostEqual(got, 2, 1e-6) {
			t.Errorf("flow %d duration = %vs, want 2s (5 GB/s shared)", i, got)
		}
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Classic max-min example: flows A(l1), B(l1,l2), C(l2).
	// l1 cap 10, l2 cap 4. B and C bottleneck on l2 at 2 each; A then gets
	// the l1 residual: 8.
	e := sim.NewEngine()
	n := New(e)
	l1 := n.NewLink("l1", 10, 0)
	l2 := n.NewLink("l2", 4, 0)
	fa := n.StartFlow(1e12, []*Link{l1})
	fb := n.StartFlow(1e12, []*Link{l1, l2})
	fc := n.StartFlow(1e12, []*Link{l2})
	// Let rates be computed, then inspect before anything completes.
	if err := e.RunUntil(time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !almostEqual(fa.Rate(), 8, 1e-9) {
		t.Errorf("rate A = %v, want 8", fa.Rate())
	}
	if !almostEqual(fb.Rate(), 2, 1e-9) {
		t.Errorf("rate B = %v, want 2", fb.Rate())
	}
	if !almostEqual(fc.Rate(), 2, 1e-9) {
		t.Errorf("rate C = %v, want 2", fc.Rate())
	}
}

func TestPerGPUBandwidthDropsWithContention(t *testing.T) {
	// The Fig-7 phenomenon: per-flow achieved bandwidth falls as more
	// flows share a fixed aggregate bus.
	perGPU := func(nflows int) float64 {
		e := sim.NewEngine()
		n := New(e)
		bus := n.NewLink("rootcomplex", 48*gb, 0)
		var flows []*Flow
		for i := 0; i < nflows; i++ {
			flows = append(flows, n.StartFlow(4.8*gb, []*Link{bus}))
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return flows[0].Throughput()
	}
	bw1, bw8, bw16 := perGPU(1), perGPU(8), perGPU(16)
	if !(bw1 > bw8 && bw8 > bw16) {
		t.Errorf("bandwidth not monotonically degrading: 1=%v 8=%v 16=%v", bw1, bw8, bw16)
	}
	if !almostEqual(bw16, 3*gb, 1e-6) {
		t.Errorf("16-way share = %v, want 3 GB/s", bw16)
	}
}

func TestTransferBlocksProcess(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("link", 1*gb, 0)
	var elapsed time.Duration
	e.Go("sender", func(p *sim.Process) {
		n.Transfer(p, 2*gb, []*Link{l})
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := elapsed.Seconds(); !almostEqual(got, 2, 1e-6) {
		t.Errorf("Transfer returned at %vs, want 2s", got)
	}
}

func TestLinkStatistics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("link", 1*gb, 0)
	n.StartFlow(1*gb, []*Link{l})
	n.StartFlow(2*gb, []*Link{l})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l.BytesCarried(); !almostEqual(got, 3*gb, 1e-6) {
		t.Errorf("BytesCarried = %v, want 3 GB", got)
	}
	if got := l.FlowsCarried(); got != 2 {
		t.Errorf("FlowsCarried = %d, want 2", got)
	}
}

func TestActiveFlowsBookkeeping(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := n.NewLink("link", 1*gb, 0)
	n.StartFlow(1*gb, []*Link{l})
	if err := e.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if n.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d mid-transfer, want 1", n.ActiveFlows())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows = %d after drain, want 0", n.ActiveFlows())
	}
}

// Property: total bytes delivered equals sum of flow sizes, and per-flow
// durations are at least size/capacity.
func TestQuickConservationAndLowerBound(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		e := sim.NewEngine()
		n := New(e)
		l := n.NewLink("bus", 1e6, 0)
		var flows []*Flow
		var total float64
		for _, s := range sizes {
			sz := float64(s) + 1
			total += sz
			flows = append(flows, n.StartFlow(sz, []*Link{l}))
		}
		if err := e.Run(); err != nil {
			return false
		}
		for _, fl := range flows {
			if !fl.Completed() {
				return false
			}
			minDur := fl.bytes / l.Capacity()
			if fl.Duration().Seconds() < minDur-1e-9 {
				return false
			}
		}
		return almostEqual(l.BytesCarried(), total, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with a single shared link, all concurrent equal-size flows
// finish simultaneously (fair sharing is symmetric).
func TestQuickFairnessSymmetry(t *testing.T) {
	f := func(nRaw uint8, sizeRaw uint16) bool {
		nflows := int(nRaw%16) + 2
		size := float64(sizeRaw) + 1000
		e := sim.NewEngine()
		net := New(e)
		l := net.NewLink("bus", 1e6, 0)
		var flows []*Flow
		for i := 0; i < nflows; i++ {
			flows = append(flows, net.StartFlow(size, []*Link{l}))
		}
		if err := e.Run(); err != nil {
			return false
		}
		first := flows[0].finished
		for _, fl := range flows {
			if d := (fl.finished - first).Seconds(); math.Abs(d) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
