// Package simnet models data transfer over a network of capacity-limited
// links using a fluid-flow approximation: at any instant every active flow
// transfers at its max-min fair rate, computed by progressive filling over
// the links of its route. When flows start or finish the rates are
// recomputed, so contention effects (e.g. 16 GPUs sharing one PCIe root
// complex) emerge naturally.
//
// simnet runs on the virtual clock of an internal/sim Engine. Rate
// recomputation is coalesced: any number of flow arrivals and departures
// at one instant trigger a single progressive-filling pass.
package simnet

import (
	"fmt"
	"math"
	"time"

	"stash/internal/sim"
)

// epsilonBytes is the residual below which a flow counts as finished,
// absorbing float rounding from repeated settlement.
const epsilonBytes = 1e-6

// Link is a unidirectionally-modeled communication link with a fixed
// capacity. (Full-duplex hardware is modeled as two Links or, where the
// paper's contention story is about an aggregate bus budget, one shared
// Link.)
type Link struct {
	name     string
	capacity float64 // bytes per second
	latency  time.Duration

	// Progressive-filling scratch state.
	residual float64
	unfrozen int

	// Statistics.
	bytesCarried float64
	flowsCarried int
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link capacity in bytes per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Latency returns the link's per-traversal propagation latency.
func (l *Link) Latency() time.Duration { return l.latency }

// BytesCarried returns the total bytes transferred over the link by
// completed and in-progress flows (settled so far).
func (l *Link) BytesCarried() float64 { return l.bytesCarried }

// FlowsCarried returns the number of flows that have used this link.
func (l *Link) FlowsCarried() int { return l.flowsCarried }

// Flow is an in-flight transfer across a route of links.
type Flow struct {
	route     []*Link
	remaining float64
	bytes     float64
	rate      float64
	index     int // position in Network.flows, -1 when inactive
	frozen    bool
	completed bool
	started   time.Duration
	finished  time.Duration
	done      sim.Signal // embedded to keep a flow at one allocation
}

// Done returns a signal fired when the flow completes.
func (f *Flow) Done() *sim.Signal { return &f.done }

// Completed reports whether the flow has finished.
func (f *Flow) Completed() bool { return f.completed }

// Rate returns the flow's current fair-share rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Duration returns the wall-clock (virtual) time the flow took, valid
// after completion.
func (f *Flow) Duration() time.Duration { return f.finished - f.started }

// Throughput returns achieved bytes/sec over the flow's lifetime, valid
// after completion. Zero-duration flows report +Inf for non-zero sizes.
func (f *Flow) Throughput() float64 {
	d := f.Duration().Seconds()
	//lint:allow floatcmp zero-duration guard against the exact integer-tick conversion, not computed arithmetic
	if d == 0 {
		//lint:allow floatcmp zero-size flows are constructed with the literal 0
		if f.bytes == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return f.bytes / d
}

// Network owns a set of links and the flows crossing them.
type Network struct {
	eng        *sim.Engine
	links      []*Link
	flows      []*Flow
	free       []*Flow // recycled flows (see Recycle)
	lastSettle time.Duration
	completion sim.Event
	dirty      bool

	// Long-lived callbacks, bound once so the per-flow and per-settle
	// scheduling operations never mint closures.
	activateFn   func(arg any)
	settleFn     func()
	completionFn func()
}

// New returns an empty network bound to the engine.
func New(eng *sim.Engine) *Network {
	n := &Network{eng: eng}
	n.activateFn = func(arg any) { n.activate(arg.(*Flow)) }
	n.settleFn = func() {
		n.dirty = false
		n.settle()
		n.recompute()
	}
	n.completionFn = n.onCompletion
	return n
}

// NewLink adds a link with the given capacity (bytes/sec) and latency.
func (n *Network) NewLink(name string, capacity float64, latency time.Duration) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: link %q capacity %v <= 0", name, capacity))
	}
	l := &Link{name: name, capacity: capacity, latency: latency}
	n.links = append(n.links, l)
	return l
}

// RouteLatency returns the total propagation latency across a route.
func RouteLatency(route []*Link) time.Duration {
	var d time.Duration
	for _, l := range route {
		d += l.latency
	}
	return d
}

// StartFlow begins transferring bytes across route. The flow first waits
// out the route's propagation latency, then competes for bandwidth. The
// returned flow's Done signal fires on completion. A zero-byte flow
// completes after the latency alone. Route must be non-empty unless
// bytes == 0.
func (n *Network) StartFlow(bytes float64, route []*Link) *Flow {
	return n.StartFlowLatency(bytes, route, RouteLatency(route))
}

// StartFlowLatency is StartFlow with an explicit startup latency instead
// of the route's propagation latency. Pipelined protocols (e.g. ring
// all-reduce slices after the first) use zero here because their path is
// already streaming.
func (n *Network) StartFlowLatency(bytes float64, route []*Link, latency time.Duration) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative flow size %v", bytes))
	}
	if len(route) == 0 && bytes > 0 {
		panic("simnet: non-zero flow with empty route")
	}
	if latency < 0 {
		latency = 0
	}
	var f *Flow
	if k := len(n.free); k > 0 {
		// Reuse recycled storage; the done signal was re-armed at Recycle
		// time. index is already -1 (finish/activate leave it there).
		f = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		f.route = route
		f.remaining = bytes
		f.bytes = bytes
		f.rate = 0
		f.frozen = false
		f.completed = false
		f.started = n.eng.Now()
		f.finished = 0
	} else {
		f = &Flow{
			route:     route,
			remaining: bytes,
			bytes:     bytes,
			index:     -1,
			started:   n.eng.Now(),
			done:      sim.MakeSignal(n.eng),
		}
	}
	n.eng.ScheduleArg(latency, n.activateFn, f)
	return f
}

// Recycle returns a completed flow's storage to the network for reuse by
// a later StartFlow, re-arming its done signal. Recycling is strictly
// opt-in: only call it when you exclusively own the flow and every
// observer of its completion has run — a retained *Flow or Done() pointer
// becomes a handle to an unrelated future transfer the moment the storage
// is reused. Callers that read Duration/Throughput after the run (probes,
// link-stat tests) simply never recycle. Panics if the flow has not
// completed or if waiters are still parked on its signal.
func (n *Network) Recycle(f *Flow) {
	if !f.completed || f.index != -1 {
		panic("simnet: Recycle of an incomplete flow")
	}
	f.done.Rearm()
	f.route = nil
	n.free = append(n.free, f)
}

// Reset returns the network to its just-constructed state while keeping
// what is expensive to rebuild: the links (with statistics and
// progressive-filling scratch zeroed) and the flow free list. Active and
// latency-phase flows are dropped, not recycled — their completion state
// is undefined once their events are gone. Reset must be paired with a
// Reset of the owning engine (the network's pending settle/activate/
// completion events have to die with it); the pair makes a pooled
// (engine, network, topology) world byte-identical to a fresh build.
func (n *Network) Reset() {
	for i := range n.flows {
		n.flows[i] = nil
	}
	n.flows = n.flows[:0]
	n.lastSettle = 0
	n.dirty = false
	n.completion = sim.Event{}
	for _, l := range n.links {
		l.residual = 0
		l.unfrozen = 0
		l.bytesCarried = 0
		l.flowsCarried = 0
	}
}

// Transfer starts a flow and blocks the process until it completes.
//
//lint:allow hotpath thin blocking wrapper for process-style callers; hot paths use StartFlow + Done().OnFire
func (n *Network) Transfer(p *sim.Process, bytes float64, route []*Link) *Flow {
	f := n.StartFlow(bytes, route)
	p.Await(&f.done)
	return f
}

func (n *Network) activate(f *Flow) {
	for _, l := range f.route {
		l.flowsCarried++
	}
	if f.remaining <= epsilonBytes {
		n.finish(f)
		return
	}
	n.settle()
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	n.markDirty()
}

func (n *Network) finish(f *Flow) {
	f.completed = true
	f.finished = n.eng.Now()
	f.rate = 0
	f.done.Fire()
}

// removeFlow drops an active flow by swap-removal.
func (n *Network) removeFlow(f *Flow) {
	last := len(n.flows) - 1
	i := f.index
	n.flows[i] = n.flows[last]
	n.flows[i].index = i
	n.flows[last] = nil
	n.flows = n.flows[:last]
	f.index = -1
}

// markDirty schedules a single rate recomputation at the current instant,
// coalescing any number of same-instant arrivals and departures.
func (n *Network) markDirty() {
	if n.dirty {
		return
	}
	n.dirty = true
	n.eng.Schedule(0, n.settleFn)
}

// settle advances all active flows' progress from lastSettle to now at
// their current rates.
func (n *Network) settle() {
	now := n.eng.Now()
	dt := (now - n.lastSettle).Seconds()
	n.lastSettle = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.route {
			l.bytesCarried += moved
		}
	}
}

// recompute runs progressive filling to assign max-min fair rates, then
// reschedules the next completion event.
func (n *Network) recompute() {
	// Cancel of a stale or zero handle is a no-op, so no pending check.
	n.eng.Cancel(n.completion)
	n.completion = sim.Event{}
	if len(n.flows) == 0 {
		return
	}

	// Reset scratch state on links touched by active flows.
	for _, f := range n.flows {
		f.rate = 0
		f.frozen = false
		for _, l := range f.route {
			l.residual = l.capacity
			l.unfrozen = 0
		}
	}
	for _, f := range n.flows {
		for _, l := range f.route {
			l.unfrozen++
		}
	}

	remaining := len(n.flows)
	for remaining > 0 {
		// Find the tightest link share among links with unfrozen flows.
		share := math.Inf(1)
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			for _, l := range f.route {
				if l.unfrozen > 0 {
					if s := l.residual / float64(l.unfrozen); s < share {
						share = s
					}
				}
			}
		}
		if math.IsInf(share, 1) {
			// No capacity-constrained links (cannot happen with non-empty
			// routes); freeze at an arbitrary large rate to terminate.
			for _, f := range n.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = math.MaxFloat64
					remaining--
				}
			}
			break
		}
		if share < 0 {
			share = 0
		}
		// Freeze every unfrozen flow crossing a bottleneck link.
		progressed := false
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			bottlenecked := false
			for _, l := range f.route {
				if l.unfrozen > 0 && l.residual/float64(l.unfrozen) <= share*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			f.frozen = true
			f.rate = share
			remaining--
			progressed = true
			for _, l := range f.route {
				l.residual -= share
				if l.residual < 0 {
					l.residual = 0
				}
				l.unfrozen--
			}
		}
		if !progressed {
			// Numerical corner: freeze everything left at the share.
			for _, f := range n.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = share
					remaining--
				}
			}
		}
	}

	// Schedule the earliest completion.
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	// Clamp to a horizon far beyond any experiment but safely inside
	// time.Duration's range; enormous flows re-settle there instead of
	// overflowing into a negative (immediate) delay.
	const maxHorizonSeconds = 1e9 // ~31 years
	if next > maxHorizonSeconds {
		next = maxHorizonSeconds
	}
	delay := time.Duration(math.Ceil(next * float64(time.Second)))
	n.completion = n.eng.Schedule(delay, n.completionFn)
}

func (n *Network) onCompletion() {
	n.completion = sim.Event{}
	n.settle()
	for i := 0; i < len(n.flows); {
		f := n.flows[i]
		if f.remaining <= epsilonBytes {
			n.removeFlow(f)
			n.finish(f)
			continue // swapped element now at i
		}
		i++
	}
	n.recompute()
}

// ActiveFlows reports the number of flows currently competing for
// bandwidth (excludes flows still in their latency phase).
func (n *Network) ActiveFlows() int { return len(n.flows) }

// NumLinks reports the number of links registered on the network. Links
// are never removed, so pooled-network owners use this to decide when
// accumulated links make a rebuild cheaper than another Reset.
func (n *Network) NumLinks() int { return len(n.links) }
