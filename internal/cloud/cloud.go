// Package cloud models the AWS side of the paper: the P-family GPU
// instance catalog with Table I's hardware specs and N. Virginia prices,
// a provisioner that turns instance types into simulated machines
// (including the probabilistic NVLink-crossbar slicing of p3.8xlarge,
// §V-B1), and on-demand cost accounting.
package cloud

import (
	"fmt"
	"math/rand"
	"time"

	"stash/internal/hw"
	"stash/internal/simnet"
	"stash/internal/topo"
)

// InstanceType is one row of Table I plus the modeling parameters the
// simulator needs.
type InstanceType struct {
	Name   string
	Family string // "P2", "P3" or "P4"

	GPU   hw.GPUSpec
	NGPUs int
	VCPUs int

	// InterconnectDesc is the human-readable Table I column.
	InterconnectDesc string

	// GPUMemoryGB and MainMemoryGB are the Table I capacity columns.
	GPUMemoryGB  float64
	MainMemoryGB float64

	// NetworkGbps is the headline network rating; NetworkDesc keeps
	// Table I's qualifier ("up to 10").
	NetworkGbps float64
	NetworkDesc string

	// PricePerHour is the N. Virginia on-demand price in USD.
	PricePerHour float64

	// Interconnect is the topology class used when provisioning.
	Interconnect topo.Interconnect

	// RootComplexBandwidth is the machine's aggregate PCIe budget. AWS
	// does not scale it with GPU count within a family, which is what
	// starves p2.16xlarge (Fig 7).
	RootComplexBandwidth float64

	// Storage is the volume training data is read from.
	Storage hw.StorageSpec

	// DegradedSliceProb is the probability that provisioning this type
	// yields a sliced (partially PCIe-routed) NVLink allocation instead
	// of a whole crossbar. Non-zero only for p3.8xlarge, whose GPUs may
	// straddle two tenants' half-crossbars.
	DegradedSliceProb float64
}

// GPUMemPerGPU returns the device memory available to each GPU, in bytes.
func (it InstanceType) GPUMemPerGPU() float64 {
	return it.GPUMemoryGB * 1e9 / float64(it.NGPUs)
}

// CPU returns the host CPU spec.
func (it InstanceType) CPU() hw.CPUSpec { return hw.Xeon(it.VCPUs) }

// Cost returns the on-demand cost of running n instances of this type for
// the given duration, prorated per second.
func (it InstanceType) Cost(d time.Duration, n int) float64 {
	return it.PricePerHour * d.Hours() * float64(n)
}

// Catalog returns Table I: the AWS P-family GPU instances.
func Catalog() []InstanceType {
	return []InstanceType{
		{
			Name: "p4d.24xlarge", Family: "P4",
			GPU: hw.A100, NGPUs: 8, VCPUs: 96,
			InterconnectDesc: "NVSwitch",
			GPUMemoryGB:      320, MainMemoryGB: 1152,
			NetworkGbps: 400, NetworkDesc: "400",
			PricePerHour:         32.7726,
			Interconnect:         topo.InterconnectNVSwitch,
			RootComplexBandwidth: 64 * hw.GB,
			Storage:              hw.LocalNVMe,
		},
		{
			Name: "p3.2xlarge", Family: "P3",
			GPU: hw.V100, NGPUs: 1, VCPUs: 8,
			InterconnectDesc: "PCIe",
			GPUMemoryGB:      16, MainMemoryGB: 61,
			NetworkGbps: 10, NetworkDesc: "up to 10",
			PricePerHour:         3.06,
			Interconnect:         topo.InterconnectPCIe,
			RootComplexBandwidth: 12 * hw.GB,
			Storage:              hw.GP2SSD,
		},
		{
			Name: "p3.8xlarge", Family: "P3",
			GPU: hw.V100, NGPUs: 4, VCPUs: 32,
			InterconnectDesc: "PCIe + NVLink",
			GPUMemoryGB:      64, MainMemoryGB: 244,
			NetworkGbps: 10, NetworkDesc: "10",
			PricePerHour:         12.24,
			Interconnect:         topo.InterconnectNVLink,
			RootComplexBandwidth: 48 * hw.GB,
			Storage:              hw.GP2SSD,
			DegradedSliceProb:    0.75,
		},
		{
			Name: "p3.16xlarge", Family: "P3",
			GPU: hw.V100, NGPUs: 8, VCPUs: 64,
			InterconnectDesc: "PCIe + NVLink",
			GPUMemoryGB:      128, MainMemoryGB: 488,
			NetworkGbps: 25, NetworkDesc: "25",
			PricePerHour:         24.48,
			Interconnect:         topo.InterconnectNVLink,
			RootComplexBandwidth: 48 * hw.GB,
			Storage:              hw.GP2SSD,
		},
		{
			Name: "p3.24xlarge", Family: "P3",
			GPU: hw.V100x32, NGPUs: 8, VCPUs: 96,
			InterconnectDesc: "PCIe + NVLink",
			GPUMemoryGB:      256, MainMemoryGB: 768,
			NetworkGbps: 100, NetworkDesc: "100",
			PricePerHour:         31.218,
			Interconnect:         topo.InterconnectNVLink,
			RootComplexBandwidth: 48 * hw.GB,
			Storage:              hw.LocalNVMe,
		},
		{
			Name: "p2.xlarge", Family: "P2",
			GPU: hw.K80, NGPUs: 1, VCPUs: 4,
			InterconnectDesc: "PCIe",
			GPUMemoryGB:      12, MainMemoryGB: 61,
			NetworkGbps: 10, NetworkDesc: "< 10",
			PricePerHour:         0.90,
			Interconnect:         topo.InterconnectPCIe,
			RootComplexBandwidth: 12 * hw.GB,
			Storage:              hw.GP2SSD,
		},
		{
			Name: "p2.8xlarge", Family: "P2",
			GPU: hw.K80, NGPUs: 8, VCPUs: 32,
			InterconnectDesc: "PCIe",
			GPUMemoryGB:      96, MainMemoryGB: 488,
			NetworkGbps: 10, NetworkDesc: "10",
			PricePerHour: 7.20,
			Interconnect: topo.InterconnectPCIe,
			// AWS keeps the same per-host PCIe fabric budget as the
			// 1-GPU xlarge while packing 8 GPUs onto it.
			RootComplexBandwidth: 12 * hw.GB,
			Storage:              hw.GP2SSD,
		},
		{
			Name: "p2.16xlarge", Family: "P2",
			GPU: hw.K80, NGPUs: 16, VCPUs: 64,
			InterconnectDesc: "PCIe",
			GPUMemoryGB:      192, MainMemoryGB: 732,
			NetworkGbps: 25, NetworkDesc: "25",
			PricePerHour: 14.40,
			Interconnect: topo.InterconnectPCIe,
			// The 16xlarge shares the same physical PCIe fabric budget as
			// smaller P2 hosts but hangs 16 GPUs off it; oversubscribed
			// switch arbitration leaves each GPU a sliver (Fig 7).
			RootComplexBandwidth: 6 * hw.GB,
			Storage:              hw.GP2SSD,
		},
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (InstanceType, error) {
	for _, it := range Catalog() {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
}

// SlicePolicy controls how the provisioner resolves the p3.8xlarge
// crossbar lottery.
type SlicePolicy int

// Slice policies.
const (
	// SliceLottery draws from DegradedSliceProb with the provisioner's
	// RNG -- what a real tenant experiences.
	SliceLottery SlicePolicy = iota + 1

	// SliceDegraded forces the sliced allocation (the common case the
	// paper observed and the default for reproducible experiments).
	SliceDegraded

	// SliceClean forces a whole-crossbar allocation (the lucky tenant).
	SliceClean
)

// Provisioner turns instance types into simulated machines.
type Provisioner struct {
	rng           *rand.Rand
	policy        SlicePolicy
	networkJitter float64
}

// NewProvisioner returns a provisioner with the given slicing policy.
// The seed drives the slice lottery and network jitter draws.
func NewProvisioner(policy SlicePolicy, seed int64) *Provisioner {
	return &Provisioner{rng: rand.New(rand.NewSource(seed)), policy: policy}
}

// SetNetworkJitter makes each provisioned machine draw its network
// rating from [1-frac, 1] x the headline Gbps, modeling the temporal and
// tenant-dependent VPC QoS variance the paper calls "hard to
// definitively characterize" (SI, SIII). frac must be in [0, 1).
func (p *Provisioner) SetNetworkJitter(frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("cloud: network jitter %v outside [0, 1)", frac)
	}
	p.networkJitter = frac
	return nil
}

// MachineSpec resolves an instance type into a concrete machine spec,
// rolling the crossbar lottery if applicable.
func (p *Provisioner) MachineSpec(it InstanceType) topo.MachineSpec {
	ic := it.Interconnect
	if ic == topo.InterconnectNVLink && it.DegradedSliceProb > 0 {
		switch p.policy {
		case SliceDegraded:
			ic = topo.InterconnectNVLinkDegraded
		case SliceClean:
			// keep the full crossbar
		default:
			if p.rng.Float64() < it.DegradedSliceProb {
				ic = topo.InterconnectNVLinkDegraded
			}
		}
	}
	gbps := it.NetworkGbps
	if p.networkJitter > 0 {
		gbps *= 1 - p.rng.Float64()*p.networkJitter
	}
	return topo.MachineSpec{
		GPU:                  it.GPU,
		NGPUs:                it.NGPUs,
		Interconnect:         ic,
		PCIe:                 hw.PCIeGen3x16,
		RootComplexBandwidth: it.RootComplexBandwidth,
		NVLink:               hw.NVLink2,
		NetworkGbps:          gbps,
	}
}

// Provision builds a cluster of count instances of the given type on the
// network. Each instance rolls its own lottery.
func (p *Provisioner) Provision(net *simnet.Network, it InstanceType, count int) (*topo.Topology, error) {
	if count < 1 {
		return nil, fmt.Errorf("cloud: instance count %d < 1", count)
	}
	specs := make([]topo.MachineSpec, count)
	for i := range specs {
		specs[i] = p.MachineSpec(it)
	}
	t, err := topo.BuildCluster(net, specs)
	if err != nil {
		return nil, fmt.Errorf("provision %s x%d: %w", it.Name, count, err)
	}
	return t, nil
}
