package cloud

import (
	"math"
	"testing"
	"time"

	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
)

func TestCatalogMatchesTableI(t *testing.T) {
	want := []struct {
		name   string
		ngpus  int
		vcpus  int
		gpuMem float64
		price  float64
	}{
		{"p4d.24xlarge", 8, 96, 320, 32.7726},
		{"p3.2xlarge", 1, 8, 16, 3.06},
		{"p3.8xlarge", 4, 32, 64, 12.24},
		{"p3.16xlarge", 8, 64, 128, 24.48},
		{"p3.24xlarge", 8, 96, 256, 31.218},
		{"p2.xlarge", 1, 4, 12, 0.90},
		{"p2.8xlarge", 8, 32, 96, 7.20},
		{"p2.16xlarge", 16, 64, 192, 14.40},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d rows, want %d", len(cat), len(want))
	}
	for i, w := range want {
		it := cat[i]
		if it.Name != w.name || it.NGPUs != w.ngpus || it.VCPUs != w.vcpus ||
			it.GPUMemoryGB != w.gpuMem || it.PricePerHour != w.price {
			t.Errorf("row %d = %+v, want %+v", i, it, w)
		}
	}
}

func TestByName(t *testing.T) {
	it, err := ByName("p3.16xlarge")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if it.GPU.Name != "V100" || it.NGPUs != 8 {
		t.Errorf("p3.16xlarge = %s x%d", it.GPU.Name, it.NGPUs)
	}
	if _, err := ByName("m5.large"); err == nil {
		t.Error("ByName(m5.large) should fail")
	}
}

func TestGPUMemPerGPU(t *testing.T) {
	p3x16, _ := ByName("p3.16xlarge")
	if got := p3x16.GPUMemPerGPU(); got != 16e9 {
		t.Errorf("p3.16xlarge per-GPU memory = %v, want 16e9", got)
	}
	p324, _ := ByName("p3.24xlarge")
	if got := p324.GPUMemPerGPU(); got != 32e9 {
		t.Errorf("p3.24xlarge per-GPU memory = %v, want 32e9", got)
	}
}

func TestCost(t *testing.T) {
	it, _ := ByName("p3.16xlarge")
	got := it.Cost(30*time.Minute, 2)
	want := 24.48 * 0.5 * 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if c := it.Cost(0, 5); c != 0 {
		t.Errorf("zero-duration cost = %v", c)
	}
}

func TestPriceOrdering(t *testing.T) {
	// Bigger instances in a family cost more.
	prices := map[string]float64{}
	for _, it := range Catalog() {
		prices[it.Name] = it.PricePerHour
	}
	if !(prices["p2.xlarge"] < prices["p2.8xlarge"] && prices["p2.8xlarge"] < prices["p2.16xlarge"]) {
		t.Error("P2 prices not increasing")
	}
	if !(prices["p3.2xlarge"] < prices["p3.8xlarge"] && prices["p3.8xlarge"] < prices["p3.16xlarge"] && prices["p3.16xlarge"] < prices["p3.24xlarge"]) {
		t.Error("P3 prices not increasing")
	}
}

func TestP2RootBudgetAnomaly(t *testing.T) {
	// The Fig-7 quirk: per-GPU root-complex share collapses on 16xlarge.
	p8, _ := ByName("p2.8xlarge")
	p16, _ := ByName("p2.16xlarge")
	share8 := p8.RootComplexBandwidth / float64(p8.NGPUs)
	share16 := p16.RootComplexBandwidth / float64(p16.NGPUs)
	if share16 >= share8/2 {
		t.Errorf("p2.16xlarge per-GPU share %v should be far below p2.8xlarge %v", share16, share8)
	}
	// And it is below even the instance's network rating, the condition
	// that makes 8xlarge*2 beat 16xlarge (§V-A1).
	if share16 >= p16.NetworkGbps*hw.GbpsBytes {
		t.Error("p2.16xlarge per-GPU interconnect share should be below network bandwidth")
	}
}

func TestProvisionerPolicies(t *testing.T) {
	it, _ := ByName("p3.8xlarge")
	deg := NewProvisioner(SliceDegraded, 1).MachineSpec(it)
	if deg.Interconnect != topo.InterconnectNVLinkDegraded {
		t.Errorf("SliceDegraded gave %v", deg.Interconnect)
	}
	clean := NewProvisioner(SliceClean, 1).MachineSpec(it)
	if clean.Interconnect != topo.InterconnectNVLink {
		t.Errorf("SliceClean gave %v", clean.Interconnect)
	}
}

func TestProvisionerLotteryRate(t *testing.T) {
	it, _ := ByName("p3.8xlarge")
	p := NewProvisioner(SliceLottery, 42)
	degraded := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.MachineSpec(it).Interconnect == topo.InterconnectNVLinkDegraded {
			degraded++
		}
	}
	rate := float64(degraded) / n
	if math.Abs(rate-it.DegradedSliceProb) > 0.05 {
		t.Errorf("lottery rate = %v, want ~%v", rate, it.DegradedSliceProb)
	}
}

func TestLotteryNeverDegradesWholeCrossbarTypes(t *testing.T) {
	p := NewProvisioner(SliceLottery, 7)
	for _, name := range []string{"p3.16xlarge", "p3.24xlarge"} {
		it, _ := ByName(name)
		for i := 0; i < 100; i++ {
			if p.MachineSpec(it).Interconnect != topo.InterconnectNVLink {
				t.Errorf("%s got degraded interconnect", name)
			}
		}
	}
	it, _ := ByName("p2.16xlarge")
	if p.MachineSpec(it).Interconnect != topo.InterconnectPCIe {
		t.Error("P2 interconnect should stay PCIe")
	}
}

func TestProvisionBuildsCluster(t *testing.T) {
	e := sim.NewEngine()
	net := simnet.New(e)
	it, _ := ByName("p3.8xlarge")
	p := NewProvisioner(SliceDegraded, 1)
	top, err := p.Provision(net, it, 2)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if top.NumGPUs() != 8 {
		t.Errorf("cluster GPUs = %d, want 8", top.NumGPUs())
	}
	if len(top.Machines) != 2 {
		t.Errorf("machines = %d, want 2", len(top.Machines))
	}
	if _, err := p.Provision(net, it, 0); err == nil {
		t.Error("Provision with count 0 should fail")
	}
}

func TestLotteryDeterministicPerSeed(t *testing.T) {
	it, _ := ByName("p3.8xlarge")
	draw := func(seed int64) []topo.Interconnect {
		p := NewProvisioner(SliceLottery, seed)
		var out []topo.Interconnect
		for i := 0; i < 20; i++ {
			out = append(out, p.MachineSpec(it).Interconnect)
		}
		return out
	}
	a, b := draw(123), draw(123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different lottery outcomes")
		}
	}
}

func TestNetworkJitter(t *testing.T) {
	it, _ := ByName("p3.8xlarge")
	p := NewProvisioner(SliceDegraded, 3)
	if err := p.SetNetworkJitter(0.4); err != nil {
		t.Fatalf("SetNetworkJitter: %v", err)
	}
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		spec := p.MachineSpec(it)
		if spec.NetworkGbps > it.NetworkGbps || spec.NetworkGbps < it.NetworkGbps*0.6 {
			t.Fatalf("jittered rating %v outside [%v, %v]", spec.NetworkGbps, it.NetworkGbps*0.6, it.NetworkGbps)
		}
		seen[spec.NetworkGbps] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct ratings", len(seen))
	}
	// Without jitter the rating is exact.
	clean := NewProvisioner(SliceDegraded, 3).MachineSpec(it)
	if clean.NetworkGbps != it.NetworkGbps {
		t.Errorf("unjittered rating = %v", clean.NetworkGbps)
	}
}

func TestNetworkJitterValidation(t *testing.T) {
	p := NewProvisioner(SliceDegraded, 1)
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		if err := p.SetNetworkJitter(bad); err == nil {
			t.Errorf("jitter %v should be rejected", bad)
		}
	}
}
