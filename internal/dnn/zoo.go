package dnn

import (
	"fmt"
	"strconv"
	"strings"
)

// ZooEntry pairs a model with its Table II metadata.
type ZooEntry struct {
	Model *Model

	// Domain is "Vision" or "NLP".
	Domain string

	// Size is the paper's Small/Large classification.
	Size string

	// PaperGradientM is Table II's reported gradient size in millions of
	// parameters, used to validate the reconstruction.
	PaperGradientM float64

	// Dataset is the input dataset name from Table II.
	Dataset string
}

// Zoo returns the full Table II model set in the paper's order.
func Zoo() []ZooEntry {
	resnet18, err := ResNet(18)
	if err != nil {
		panic(err) // depths are compile-time constants here
	}
	resnet50, err := ResNet(50)
	if err != nil {
		panic(err)
	}
	vgg11, err := VGG(11)
	if err != nil {
		panic(err)
	}
	return []ZooEntry{
		{Model: AlexNet(), Domain: "Vision", Size: "Small", PaperGradientM: 9.63, Dataset: "imagenet1k"},
		{Model: MobileNetV2(), Domain: "Vision", Size: "Small", PaperGradientM: 3.4, Dataset: "imagenet1k"},
		{Model: SqueezeNet(), Domain: "Vision", Size: "Small", PaperGradientM: 0.73, Dataset: "imagenet1k"},
		{Model: ShuffleNetV2(), Domain: "Vision", Size: "Small", PaperGradientM: 1.8, Dataset: "imagenet1k"},
		{Model: resnet18, Domain: "Vision", Size: "Small", PaperGradientM: 11.18, Dataset: "imagenet1k"},
		{Model: resnet50, Domain: "Vision", Size: "Large", PaperGradientM: 23.59, Dataset: "imagenet1k"},
		{Model: vgg11, Domain: "Vision", Size: "Large", PaperGradientM: 132.8, Dataset: "imagenet1k"},
		{Model: BERTLarge(), Domain: "NLP", Size: "Large", PaperGradientM: 345, Dataset: "squad2"},
	}
}

// SmallModels returns the paper's five small vision models.
func SmallModels() []*Model {
	var ms []*Model
	for _, e := range Zoo() {
		if e.Size == "Small" {
			ms = append(ms, e.Model)
		}
	}
	return ms
}

// LargeImageModels returns the large vision models (ResNet50, VGG11).
func LargeImageModels() []*Model {
	var ms []*Model
	for _, e := range Zoo() {
		if e.Size == "Large" && e.Domain == "Vision" {
			ms = append(ms, e.Model)
		}
	}
	return ms
}

// ByName returns the zoo model with the given name.
func ByName(name string) (*Model, error) {
	for _, e := range Zoo() {
		if e.Model.Name == name {
			return e.Model, nil
		}
	}
	return nil, fmt.Errorf("dnn: no zoo model %q", name)
}

// Resolve maps a user-supplied model name to a model: any Table II zoo
// entry (ByName) plus the parametric families the CLI and stashd
// accept — resnet<N>, vgg<N> and densenet<N> at their standard depths,
// resnext50, wide_resnet50, bert-base and gpt2-small.
func Resolve(name string) (*Model, error) {
	if m, err := ByName(name); err == nil {
		return m, nil
	}
	if depth, ok := strings.CutPrefix(name, "resnet"); ok {
		if d, err := strconv.Atoi(depth); err == nil {
			return ResNet(d)
		}
	}
	if depth, ok := strings.CutPrefix(name, "vgg"); ok {
		if d, err := strconv.Atoi(depth); err == nil {
			return VGG(d)
		}
	}
	if depth, ok := strings.CutPrefix(name, "densenet"); ok {
		if d, err := strconv.Atoi(depth); err == nil {
			return DenseNet(d)
		}
	}
	switch name {
	case "bert-base":
		return BERTBase(), nil
	case "gpt2-small":
		return GPT2Small(), nil
	case "resnext50":
		return ResNeXt50()
	case "wide_resnet50":
		return WideResNet50()
	}
	return nil, fmt.Errorf("dnn: unknown model %q", name)
}
