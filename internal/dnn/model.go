// Package dnn provides layer-level descriptions of the DNN models the
// paper trains (Table II), plus synthetic-variant builders used by the
// micro characterization (§VI-A): ResNet-N and VGG-N at several depths,
// with batch-norm and residual connections individually removable.
//
// A model here is the information Stash's substrate needs and nothing
// more: for every layer, its trainable parameter count (gradient volume),
// its forward FLOPs per sample (compute time) and its activation size
// (GPU memory). Weights are never materialized.
package dnn

import (
	"fmt"
)

// BytesPerParam is the size of one fp32 parameter or gradient.
const BytesPerParam = 4

// LayerKind classifies a layer.
type LayerKind int

// Layer kinds.
const (
	KindConv LayerKind = iota + 1
	KindFC
	KindBatchNorm
	KindLayerNorm
	KindPool
	KindActivation
	KindAdd // residual connection
	KindEmbedding
	KindAttention
	KindDropout
)

// String returns the kind name.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "Conv"
	case KindFC:
		return "FC"
	case KindBatchNorm:
		return "BatchNorm"
	case KindLayerNorm:
		return "LayerNorm"
	case KindPool:
		return "Pool"
	case KindActivation:
		return "Activation"
	case KindAdd:
		return "Add"
	case KindEmbedding:
		return "Embedding"
	case KindAttention:
		return "Attention"
	case KindDropout:
		return "Dropout"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is one module in a model's execution order.
type Layer struct {
	Kind LayerKind
	Name string

	// Params is the number of trainable parameters (0 for pools etc.).
	Params int64

	// FwdFLOPs is the forward-pass floating point operations per sample.
	// The backward pass is charged 2x this.
	FwdFLOPs float64

	// ActivationBytes is the output activation size per sample; it is
	// retained for the backward pass and counts toward GPU memory.
	ActivationBytes float64
}

// GradientBytes returns the bytes of gradient this layer contributes per
// iteration.
func (l Layer) GradientBytes() float64 { return float64(l.Params) * BytesPerParam }

// Model is an ordered list of layers plus workload metadata.
type Model struct {
	Name string

	// Family groups variants ("resnet", "vgg", ...).
	Family string

	// Layers in forward execution order.
	Layers []Layer

	// SampleBytes is the size of one pre-processed input sample as
	// uploaded to the GPU (e.g. a decoded 224x224x3 fp32 image).
	SampleBytes float64
}

// TotalParams returns the trainable parameter count.
func (m *Model) TotalParams() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params
	}
	return n
}

// GradientBytes returns the per-iteration gradient volume in bytes.
func (m *Model) GradientBytes() float64 {
	return float64(m.TotalParams()) * BytesPerParam
}

// FwdFLOPsPerSample returns the forward-pass FLOPs for one sample.
func (m *Model) FwdFLOPsPerSample() float64 {
	var f float64
	for _, l := range m.Layers {
		f += l.FwdFLOPs
	}
	return f
}

// TrainFLOPsPerSample returns forward+backward FLOPs for one sample
// (backward costed at 2x forward, the standard approximation).
func (m *Model) TrainFLOPsPerSample() float64 { return 3 * m.FwdFLOPsPerSample() }

// NumParamLayers returns the number of layers that carry gradients; with
// per-layer bucketing this is the number of all-reduce calls per
// iteration, the L of the paper's §VI-A2 model.
func (m *Model) NumParamLayers() int {
	n := 0
	for _, l := range m.Layers {
		if l.Params > 0 {
			n++
		}
	}
	return n
}

// ActivationBytesPerSample returns the total retained activation memory
// per sample across the whole network.
func (m *Model) ActivationBytesPerSample() float64 {
	var b float64
	for _, l := range m.Layers {
		b += l.ActivationBytes
	}
	return b
}

// TrainingMemoryBytes estimates the per-GPU device memory needed to train
// with the given per-GPU batch size: weights + gradients + SGD momentum
// (3 copies of the parameters), retained activations for the batch, the
// input batch itself, and a fixed framework/cuDNN workspace.
func (m *Model) TrainingMemoryBytes(batch int) float64 {
	const workspace = 1.2e9 // CUDA context + cuDNN workspace
	states := 3 * float64(m.TotalParams()) * BytesPerParam
	acts := m.ActivationBytesPerSample() * float64(batch)
	input := m.SampleBytes * float64(batch)
	return states + acts + input + workspace
}

// MaxBatch returns the largest per-GPU batch size that fits in gpuMem
// bytes, or 0 if even batch 1 does not fit.
func (m *Model) MaxBatch(gpuMem float64) int {
	perSample := m.ActivationBytesPerSample() + m.SampleBytes
	fixed := m.TrainingMemoryBytes(0)
	if fixed+perSample > gpuMem {
		return 0
	}
	return int((gpuMem - fixed) / perSample)
}

// Validate checks structural invariants of the model.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dnn: model has no name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.Params < 0 || l.FwdFLOPs < 0 || l.ActivationBytes < 0 {
			return fmt.Errorf("dnn: model %s layer %d (%s) has negative attribute", m.Name, i, l.Name)
		}
	}
	if m.TotalParams() == 0 {
		return fmt.Errorf("dnn: model %s has no trainable parameters", m.Name)
	}
	return nil
}

// String implements fmt.Stringer with a compact summary.
func (m *Model) String() string {
	return fmt.Sprintf("%s(params=%.2fM, layers=%d, fwd=%.2f GFLOPs/sample)",
		m.Name, float64(m.TotalParams())/1e6, m.NumParamLayers(), m.FwdFLOPsPerSample()/1e9)
}
