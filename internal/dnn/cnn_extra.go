package dnn

import "fmt"

// DenseNet returns DenseNet-121/169/201: the extreme point of the
// paper's layers-vs-gradients spectrum (even more sync points per
// gradient byte than ResNet), useful for extending the §VI-A micro study.
// Like the Table II ResNets, the classifier is not included.
func DenseNet(depth int) (*Model, error) {
	var blocks [4]int
	switch depth {
	case 121:
		blocks = [4]int{6, 12, 24, 16}
	case 169:
		blocks = [4]int{6, 12, 32, 32}
	case 201:
		blocks = [4]int{6, 12, 48, 32}
	default:
		return nil, fmt.Errorf("dnn: no DenseNet-%d; depths are 121/169/201", depth)
	}
	const growth = 32
	b := newConvBuilder(fmt.Sprintf("densenet%d", depth), "densenet")
	b.conv("conv1", 64, 7, 2, 3, 1)
	b.bn("bn1")
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 1)

	channels := 64
	for stage, n := range blocks {
		for l := 0; l < n; l++ {
			prefix := fmt.Sprintf("dense%d.%d", stage+1, l)
			// Bottleneck dense layer: BN-ReLU-1x1(4k) + BN-ReLU-3x3(k),
			// concatenated onto the running feature map.
			b.c = channels
			b.bn(prefix + ".bn1")
			b.relu(prefix + ".relu1")
			b.conv(prefix+".conv1", 4*growth, 1, 1, 0, 1)
			b.bn(prefix + ".bn2")
			b.relu(prefix + ".relu2")
			b.conv(prefix+".conv2", growth, 3, 1, 1, 1)
			channels += growth
			b.c = channels // concat
		}
		if stage < 3 {
			// Transition: BN + 1x1 halving channels + 2x2 avg pool.
			prefix := fmt.Sprintf("transition%d", stage+1)
			b.bn(prefix + ".bn")
			b.relu(prefix + ".relu")
			channels /= 2
			b.conv(prefix+".conv", channels, 1, 1, 0, 1)
			b.maxPool(prefix+".pool", 2, 2, 0)
		}
	}
	b.bn("bn_final")
	b.relu("relu_final")
	b.globalPool("avgpool")
	return b.m, nil
}

// ResNeXt50 returns ResNeXt-50 (32x4d): ResNet50's shape with grouped
// 3x3 convolutions. Same sync-point count as ResNet50 with slightly
// fewer gradients -- a useful control for the micro study.
func ResNeXt50() (*Model, error) {
	return resnextLike("resnext50_32x4d", [4]int{3, 4, 6, 3}, 32, 4)
}

func resnextLike(name string, blocks [4]int, groups, widthPerGroup int) (*Model, error) {
	b := newConvBuilder(name, "resnext")
	b.conv("conv1", 64, 7, 2, 3, 1)
	b.bn("bn1")
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 1)

	stageChannels := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		ch := stageChannels[stage]
		width := ch * groups * widthPerGroup / 64
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			cout := 4 * ch
			b.conv(prefix+".conv1", width, 1, 1, 0, 1)
			b.bn(prefix + ".bn1")
			b.relu(prefix + ".relu1")
			b.conv(prefix+".conv2", width, 3, stride, 1, groups)
			b.bn(prefix + ".bn2")
			b.relu(prefix + ".relu2")
			b.conv(prefix+".conv3", cout, 1, 1, 0, 1)
			b.bn(prefix + ".bn3")
			if blk == 0 {
				b.projection(prefix+".downsample", cout, stride, false)
			}
			b.add(prefix + ".add")
			b.relu(prefix + ".relu3")
		}
	}
	b.globalPool("avgpool")
	return b.m, nil
}

// WideResNet50 returns Wide ResNet-50-2: ResNet50's depth with doubled
// bottleneck width, nearly tripling the gradient volume at the same
// sync-point count -- the intra-family bandwidth/latency contrast.
func WideResNet50() (*Model, error) {
	b := newConvBuilder("wide_resnet50_2", "resnet")
	b.conv("conv1", 64, 7, 2, 3, 1)
	b.bn("bn1")
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 1)

	blocks := [4]int{3, 4, 6, 3}
	stageChannels := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		ch := stageChannels[stage]
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			cout := 4 * ch
			mid := 2 * ch // the "wide" factor
			b.conv(prefix+".conv1", mid, 1, 1, 0, 1)
			b.bn(prefix + ".bn1")
			b.relu(prefix + ".relu1")
			b.conv(prefix+".conv2", mid, 3, stride, 1, 1)
			b.bn(prefix + ".bn2")
			b.relu(prefix + ".relu2")
			b.conv(prefix+".conv3", cout, 1, 1, 0, 1)
			b.bn(prefix + ".bn3")
			if blk == 0 {
				b.projection(prefix+".downsample", cout, stride, false)
			}
			b.add(prefix + ".add")
			b.relu(prefix + ".relu3")
		}
	}
	b.globalPool("avgpool")
	return b.m, nil
}
