package dnn

import "fmt"

// bertConfig holds transformer dimensions.
type bertConfig struct {
	name         string
	layers       int
	hidden       int
	heads        int
	intermediate int
	seqLen       int
	vocab        int
}

// BERTLarge returns BERT-large (24 layers, hidden 1024) configured for
// SQuAD 2.0 fine-tuning at sequence length 384, matching Table II's 345 M
// gradient volume.
func BERTLarge() *Model {
	return buildBERT(bertConfig{
		name:         "bert-large",
		layers:       24,
		hidden:       1024,
		heads:        16,
		intermediate: 4096,
		seqLen:       384,
		vocab:        30522,
	})
}

// BERTBase returns BERT-base (12 layers, hidden 768), used by tests and
// examples as a smaller transformer.
func BERTBase() *Model {
	return buildBERT(bertConfig{
		name:         "bert-base",
		layers:       12,
		hidden:       768,
		heads:        12,
		intermediate: 3072,
		seqLen:       384,
		vocab:        30522,
	})
}

func buildBERT(cfg bertConfig) *Model {
	t := float64(cfg.seqLen)
	h := float64(cfg.hidden)

	m := &Model{
		Name:   cfg.name,
		Family: "bert",
		// One sample is the token ids + attention mask for the sequence.
		SampleBytes: float64(cfg.seqLen) * 2 * BytesPerParam,
	}

	// Token + position + segment embeddings. Embedding lookup is a
	// gather: negligible FLOPs, full gradient volume.
	embedParams := int64(cfg.vocab+512+2) * int64(cfg.hidden)
	m.Layers = append(m.Layers, Layer{
		Kind:            KindEmbedding,
		Name:            "embeddings",
		Params:          embedParams,
		FwdFLOPs:        t * h,
		ActivationBytes: t * h * BytesPerParam,
	})
	m.Layers = append(m.Layers, layerNorm("embeddings.ln", cfg))

	// actFactor inflates retained activations per block to account for
	// dropout masks, GELU intermediates and backward workspace; it is
	// what limits BERT-large to small per-GPU batches on 16 GB V100s
	// (the paper trains at batch 4).
	const actFactor = 1.8

	for i := 0; i < cfg.layers; i++ {
		prefix := fmt.Sprintf("encoder.%d", i)

		// Self-attention: Q, K, V projections + output projection.
		projParams := int64(cfg.hidden)*int64(cfg.hidden) + int64(cfg.hidden)
		projFLOPs := 2 * t * h * h
		for _, p := range []string{"q", "k", "v"} {
			m.Layers = append(m.Layers, Layer{
				Kind:            KindFC,
				Name:            fmt.Sprintf("%s.attn.%s", prefix, p),
				Params:          projParams,
				FwdFLOPs:        projFLOPs,
				ActivationBytes: actFactor * t * h * BytesPerParam,
			})
		}
		// Scaled dot-product attention: QK^T and attention-weighted V.
		attnFLOPs := 2 * 2 * t * t * h
		attnAct := actFactor * 2 * float64(cfg.heads) * t * t * BytesPerParam
		m.Layers = append(m.Layers, Layer{
			Kind:            KindAttention,
			Name:            prefix + ".attn.scores",
			FwdFLOPs:        attnFLOPs,
			ActivationBytes: attnAct,
		})
		m.Layers = append(m.Layers, Layer{
			Kind:            KindFC,
			Name:            prefix + ".attn.out",
			Params:          projParams,
			FwdFLOPs:        projFLOPs,
			ActivationBytes: actFactor * t * h * BytesPerParam,
		})
		m.Layers = append(m.Layers, layerNorm(prefix+".ln1", cfg))

		// Feed-forward network.
		ffParams := int64(cfg.hidden)*int64(cfg.intermediate) + int64(cfg.intermediate)
		m.Layers = append(m.Layers, Layer{
			Kind:            KindFC,
			Name:            prefix + ".ffn.up",
			Params:          ffParams,
			FwdFLOPs:        2 * t * h * float64(cfg.intermediate),
			ActivationBytes: actFactor * t * float64(cfg.intermediate) * BytesPerParam,
		})
		m.Layers = append(m.Layers, Layer{
			Kind:            KindFC,
			Name:            prefix + ".ffn.down",
			Params:          int64(cfg.intermediate)*int64(cfg.hidden) + int64(cfg.hidden),
			FwdFLOPs:        2 * t * h * float64(cfg.intermediate),
			ActivationBytes: actFactor * t * h * BytesPerParam,
		})
		m.Layers = append(m.Layers, layerNorm(prefix+".ln2", cfg))
	}

	// SQuAD span-prediction head: start/end logits per token.
	m.Layers = append(m.Layers, Layer{
		Kind:            KindFC,
		Name:            "qa_outputs",
		Params:          int64(cfg.hidden)*2 + 2,
		FwdFLOPs:        2 * t * h * 2,
		ActivationBytes: t * 2 * BytesPerParam,
	})
	return m
}

func layerNorm(name string, cfg bertConfig) Layer {
	t := float64(cfg.seqLen)
	h := float64(cfg.hidden)
	return Layer{
		Kind:            KindLayerNorm,
		Name:            name,
		Params:          2 * int64(cfg.hidden),
		FwdFLOPs:        5 * t * h,
		ActivationBytes: t * h * BytesPerParam,
	}
}
