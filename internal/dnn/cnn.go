package dnn

import (
	"fmt"
)

// Standard ImageNet input: a decoded 224x224x3 fp32 tensor.
const imageNetSampleBytes = 224 * 224 * 3 * BytesPerParam

// convBuilder accumulates layers of a feed-forward CNN while tracking the
// spatial dimensions of the activation flowing through it.
type convBuilder struct {
	m       *Model
	h, w, c int
}

func newConvBuilder(name, family string) *convBuilder {
	return &convBuilder{
		m: &Model{Name: name, Family: family, SampleBytes: imageNetSampleBytes},
		h: 224, w: 224, c: 3,
	}
}

func outDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// conv appends a (possibly grouped) convolution with bias and updates the
// tracked dimensions.
func (b *convBuilder) conv(name string, cout, k, stride, pad, groups int) {
	hout := outDim(b.h, k, stride, pad)
	wout := outDim(b.w, k, stride, pad)
	cinPerGroup := b.c / groups
	params := int64(cout)*int64(cinPerGroup)*int64(k)*int64(k) + int64(cout)
	macs := float64(k*k*cinPerGroup) * float64(hout*wout*cout)
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindConv,
		Name:            name,
		Params:          params,
		FwdFLOPs:        2 * macs,
		ActivationBytes: float64(cout*hout*wout) * BytesPerParam,
	})
	b.h, b.w, b.c = hout, wout, cout
}

// bn appends a batch normalization over the current channels.
func (b *convBuilder) bn(name string) {
	elems := float64(b.c * b.h * b.w)
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindBatchNorm,
		Name:            name,
		Params:          2 * int64(b.c),
		FwdFLOPs:        4 * elems,
		ActivationBytes: elems * BytesPerParam,
	})
}

// relu appends an in-place activation (no extra memory retained).
func (b *convBuilder) relu(name string) {
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:     KindActivation,
		Name:     name,
		FwdFLOPs: float64(b.c * b.h * b.w),
	})
}

// add appends a residual addition (no parameters, in-place).
func (b *convBuilder) add(name string) {
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:     KindAdd,
		Name:     name,
		FwdFLOPs: float64(b.c * b.h * b.w),
	})
}

// maxPool appends a pooling layer and updates dimensions.
func (b *convBuilder) maxPool(name string, k, stride, pad int) {
	hout := outDim(b.h, k, stride, pad)
	wout := outDim(b.w, k, stride, pad)
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindPool,
		Name:            name,
		FwdFLOPs:        float64(k * k * b.c * hout * wout),
		ActivationBytes: float64(b.c*hout*wout) * BytesPerParam,
	})
	b.h, b.w = hout, wout
}

// globalPool collapses the spatial dimensions to 1x1.
func (b *convBuilder) globalPool(name string) {
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindPool,
		Name:            name,
		FwdFLOPs:        float64(b.c * b.h * b.w),
		ActivationBytes: float64(b.c) * BytesPerParam,
	})
	b.h, b.w = 1, 1
}

// fc appends a fully connected layer from the flattened activation.
func (b *convBuilder) fc(name string, cout int) {
	cin := b.c * b.h * b.w
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindFC,
		Name:            name,
		Params:          int64(cin)*int64(cout) + int64(cout),
		FwdFLOPs:        2 * float64(cin) * float64(cout),
		ActivationBytes: float64(cout) * BytesPerParam,
	})
	b.h, b.w, b.c = 1, 1, cout
}

// AlexNet returns the paper's AlexNet variant. The convolutional trunk is
// the standard torchvision AlexNet; the classifier is compacted so that
// the total gradient volume matches Table II's 9.63 M parameters (the
// stock 61 M-parameter classifier would be a different workload than the
// one the paper profiled).
func AlexNet() *Model {
	b := newConvBuilder("alexnet", "alexnet")
	b.conv("conv1", 64, 11, 4, 2, 1)
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 0)
	b.conv("conv2", 192, 5, 1, 2, 1)
	b.relu("relu2")
	b.maxPool("pool2", 3, 2, 0)
	b.conv("conv3", 384, 3, 1, 1, 1)
	b.relu("relu3")
	b.conv("conv4", 256, 3, 1, 1, 1)
	b.relu("relu4")
	b.conv("conv5", 256, 3, 1, 1, 1)
	b.relu("relu5")
	b.maxPool("pool5", 3, 2, 0)
	b.fc("fc6", 700)
	b.relu("relu6")
	b.fc("fc7", 1000)
	return b.m
}

// VGGOption modifies a VGG under construction.
type VGGOption func(*vggConfig)

type vggConfig struct {
	batchNorm bool
}

// VGGWithBatchNorm adds a batch-norm layer after every convolution (the
// vgg*_bn torchvision variants).
func VGGWithBatchNorm() VGGOption {
	return func(c *vggConfig) { c.batchNorm = true }
}

// vggCfgs maps depth to the torchvision layer configuration; 0 marks a
// max-pool.
var vggCfgs = map[int][]int{
	11: {64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0},
	13: {64, 64, 0, 128, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0},
	16: {64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0},
	19: {64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512, 512, 0},
}

// VGG returns the standard VGG-<depth> (11, 13, 16 or 19), 132.8 M
// parameters at depth 11 as in Table II.
func VGG(depth int, opts ...VGGOption) (*Model, error) {
	cfg, ok := vggCfgs[depth]
	if !ok {
		return nil, fmt.Errorf("dnn: no VGG-%d; depths are 11/13/16/19", depth)
	}
	var vc vggConfig
	for _, o := range opts {
		o(&vc)
	}
	name := fmt.Sprintf("vgg%d", depth)
	if vc.batchNorm {
		name += "_bn"
	}
	b := newConvBuilder(name, "vgg")
	ci := 0
	for _, c := range cfg {
		if c == 0 {
			b.maxPool(fmt.Sprintf("pool%d", ci), 2, 2, 0)
			continue
		}
		ci++
		b.conv(fmt.Sprintf("conv%d", ci), c, 3, 1, 1, 1)
		if vc.batchNorm {
			b.bn(fmt.Sprintf("bn%d", ci))
		}
		b.relu(fmt.Sprintf("relu%d", ci))
	}
	b.fc("fc1", 4096)
	b.relu("relu_fc1")
	b.fc("fc2", 4096)
	b.relu("relu_fc2")
	b.fc("fc3", 1000)
	return b.m, nil
}

// ResNetOption modifies a ResNet under construction (micro-study knobs of
// §VI-A3).
type ResNetOption func(*resnetConfig)

type resnetConfig struct {
	noBatchNorm bool
	noResidual  bool
}

// ResNetWithoutBatchNorm removes every batch-norm layer; the paper uses
// this to show that fewer layers means fewer synchronization points and
// lower communication stalls.
func ResNetWithoutBatchNorm() ResNetOption {
	return func(c *resnetConfig) { c.noBatchNorm = true }
}

// ResNetWithoutResidual removes the (parameter-free) skip connections;
// the paper uses this to show they have minimal communication impact.
func ResNetWithoutResidual() ResNetOption {
	return func(c *resnetConfig) { c.noResidual = true }
}

// resnetBlocks maps depth to (bottleneck?, blocks per stage).
var resnetBlocks = map[int]struct {
	bottleneck bool
	blocks     [4]int
}{
	18:  {false, [4]int{2, 2, 2, 2}},
	34:  {false, [4]int{3, 4, 6, 3}},
	50:  {true, [4]int{3, 4, 6, 3}},
	101: {true, [4]int{3, 4, 23, 3}},
	152: {true, [4]int{3, 8, 36, 3}},
}

// ResNet returns the standard ResNet-<depth> backbone (18/34/50/101/152).
// Following Table II's parameter accounting, the final ImageNet classifier
// is not included (ResNet18 = 11.18 M, ResNet50 = 23.5 M).
func ResNet(depth int, opts ...ResNetOption) (*Model, error) {
	spec, ok := resnetBlocks[depth]
	if !ok {
		return nil, fmt.Errorf("dnn: no ResNet-%d; depths are 18/34/50/101/152", depth)
	}
	var rc resnetConfig
	for _, o := range opts {
		o(&rc)
	}
	name := fmt.Sprintf("resnet%d", depth)
	if rc.noBatchNorm {
		name += "_nobn"
	}
	if rc.noResidual {
		name += "_nores"
	}
	b := newConvBuilder(name, "resnet")
	maybeBN := func(n string) {
		if !rc.noBatchNorm {
			b.bn(n)
		}
	}
	maybeAdd := func(n string) {
		if !rc.noResidual {
			b.add(n)
		}
	}

	b.conv("conv1", 64, 7, 2, 3, 1)
	maybeBN("bn1")
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 1)

	stageChannels := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		ch := stageChannels[stage]
		for blk := 0; blk < spec.blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			if spec.bottleneck {
				cout := 4 * ch
				needDS := blk == 0 // expansion or stride change
				b.conv(prefix+".conv1", ch, 1, 1, 0, 1)
				maybeBN(prefix + ".bn1")
				b.relu(prefix + ".relu1")
				b.conv(prefix+".conv2", ch, 3, stride, 1, 1)
				maybeBN(prefix + ".bn2")
				b.relu(prefix + ".relu2")
				b.conv(prefix+".conv3", cout, 1, 1, 0, 1)
				maybeBN(prefix + ".bn3")
				if needDS {
					// Downsample path parameters live on the skip branch;
					// dimensions already reflect the main branch output.
					b.projection(prefix+".downsample", cout, stride, rc.noBatchNorm)
				}
				maybeAdd(prefix + ".add")
				b.relu(prefix + ".relu3")
			} else {
				needDS := blk == 0 && stage > 0
				b.conv(prefix+".conv1", ch, 3, stride, 1, 1)
				maybeBN(prefix + ".bn1")
				b.relu(prefix + ".relu1")
				b.conv(prefix+".conv2", ch, 3, 1, 1, 1)
				maybeBN(prefix + ".bn2")
				if needDS {
					b.projection(prefix+".downsample", ch, stride, rc.noBatchNorm)
				}
				maybeAdd(prefix + ".add")
				b.relu(prefix + ".relu2")
			}
		}
	}
	b.globalPool("avgpool")
	return b.m, nil
}

// projection appends a 1x1 downsample convolution on the residual branch.
// Its input channel count differs from the builder's current (main
// branch) output, so the parameters are computed explicitly; the tracked
// dimensions are left at the main branch output.
func (b *convBuilder) projection(name string, cout, stride int, noBN bool) {
	// The skip branch input had cout/stride... reconstructing exactly is
	// fiddly; the standard identity holds: a stage's first block projects
	// from the previous stage's output channels. Derive it from cout.
	var cin int
	switch {
	case stride == 1: // stage 1 bottleneck expansion: 64 -> 256
		cin = cout / 4
	default: // later stages: previous output is cout/2
		cin = cout / 2
	}
	params := int64(cin)*int64(cout) + int64(cout)
	macs := float64(cin*cout) * float64(b.h*b.w)
	b.m.Layers = append(b.m.Layers, Layer{
		Kind:            KindConv,
		Name:            name,
		Params:          params,
		FwdFLOPs:        2 * macs,
		ActivationBytes: float64(cout*b.h*b.w) * BytesPerParam,
	})
	if !noBN {
		elems := float64(cout * b.h * b.w)
		b.m.Layers = append(b.m.Layers, Layer{
			Kind:            KindBatchNorm,
			Name:            name + ".bn",
			Params:          2 * int64(cout),
			FwdFLOPs:        4 * elems,
			ActivationBytes: elems * BytesPerParam,
		})
	}
}

// MobileNetV2 returns the standard 3.5 M-parameter MobileNet-v2.
func MobileNetV2() *Model {
	b := newConvBuilder("mobilenet_v2", "mobilenet")
	b.conv("conv1", 32, 3, 2, 1, 1)
	b.bn("bn1")
	b.relu("relu1")

	// (expansion t, output channels c, repeats n, first stride s)
	blocks := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	bi := 0
	for _, blk := range blocks {
		for r := 0; r < blk.n; r++ {
			bi++
			stride := 1
			if r == 0 {
				stride = blk.s
			}
			cin := b.c
			prefix := fmt.Sprintf("block%d", bi)
			hidden := blk.t * cin
			if blk.t != 1 {
				b.conv(prefix+".expand", hidden, 1, 1, 0, 1)
				b.bn(prefix + ".expand_bn")
				b.relu(prefix + ".expand_relu")
			}
			b.conv(prefix+".dw", hidden, 3, stride, 1, hidden)
			b.bn(prefix + ".dw_bn")
			b.relu(prefix + ".dw_relu")
			b.conv(prefix+".project", blk.c, 1, 1, 0, 1)
			b.bn(prefix + ".project_bn")
			if stride == 1 && cin == blk.c {
				b.add(prefix + ".add")
			}
		}
	}
	b.conv("conv_last", 1280, 1, 1, 0, 1)
	b.bn("bn_last")
	b.relu("relu_last")
	b.globalPool("avgpool")
	b.fc("classifier", 1000)
	return b.m
}

// SqueezeNet returns SqueezeNet 1.1. Per Table II's 0.73 M parameter
// accounting, the 1000-way classifier convolution is not included (the
// fire-module trunk alone is 0.72 M parameters).
func SqueezeNet() *Model {
	b := newConvBuilder("squeezenet1_1", "squeezenet")
	b.conv("conv1", 64, 3, 2, 0, 1)
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 0)
	fire := func(name string, squeeze, expand int) {
		b.conv(name+".squeeze", squeeze, 1, 1, 0, 1)
		b.relu(name + ".squeeze_relu")
		// The two expand branches (1x1 and 3x3) run on the squeezed input
		// and concatenate. Model them as two convs from the squeezed
		// channels, then set channels to the concatenated width.
		h, w := b.h, b.w
		sIn := b.c
		b.conv(name+".expand1x1", expand, 1, 1, 0, 1)
		b.h, b.w, b.c = h, w, sIn // rewind to squeezed input for the 3x3 branch
		b.conv(name+".expand3x3", expand, 3, 1, 1, 1)
		b.c = 2 * expand // concat
		b.relu(name + ".expand_relu")
	}
	fire("fire2", 16, 64)
	fire("fire3", 16, 64)
	b.maxPool("pool3", 3, 2, 0)
	fire("fire4", 32, 128)
	fire("fire5", 32, 128)
	b.maxPool("pool5", 3, 2, 0)
	fire("fire6", 48, 192)
	fire("fire7", 48, 192)
	fire("fire8", 64, 256)
	fire("fire9", 64, 256)
	b.globalPool("avgpool")
	return b.m
}

// ShuffleNetV2 returns the standard ShuffleNet-v2 x1.0 (2.3 M parameters
// end to end; Table II reports 1.8 M, which matches the v1 parameter
// count -- the difference is immaterial at this model scale).
func ShuffleNetV2() *Model {
	b := newConvBuilder("shufflenet_v2", "shufflenet")
	b.conv("conv1", 24, 3, 2, 1, 1)
	b.bn("bn1")
	b.relu("relu1")
	b.maxPool("pool1", 3, 2, 1)

	unit := func(name string, cout int, down bool) {
		cin := b.c
		h, w := b.h, b.w
		branch := cout / 2
		if down {
			// Downsample unit: both branches process the full input.
			// Branch 1: dw conv + 1x1.
			b.conv(name+".b1_dw", cin, 3, 2, 1, cin)
			b.bn(name + ".b1_dw_bn")
			b.conv(name+".b1_pw", branch, 1, 1, 0, 1)
			b.bn(name + ".b1_pw_bn")
			b.relu(name + ".b1_relu")
			// Branch 2 from the original input.
			b.h, b.w, b.c = h, w, cin
			b.conv(name+".b2_pw1", branch, 1, 1, 0, 1)
			b.bn(name + ".b2_pw1_bn")
			b.relu(name + ".b2_relu1")
			b.conv(name+".b2_dw", branch, 3, 2, 1, branch)
			b.bn(name + ".b2_dw_bn")
			b.conv(name+".b2_pw2", branch, 1, 1, 0, 1)
			b.bn(name + ".b2_pw2_bn")
			b.relu(name + ".b2_relu2")
			b.c = cout // concat
		} else {
			// Basic unit: channel split, one branch transformed.
			b.c = cin / 2
			b.conv(name+".pw1", branch, 1, 1, 0, 1)
			b.bn(name + ".pw1_bn")
			b.relu(name + ".relu1")
			b.conv(name+".dw", branch, 3, 1, 1, branch)
			b.bn(name + ".dw_bn")
			b.conv(name+".pw2", branch, 1, 1, 0, 1)
			b.bn(name + ".pw2_bn")
			b.relu(name + ".relu2")
			b.c = cout // concat with the untouched half
		}
	}
	stages := []struct{ cout, repeat int }{{116, 4}, {232, 8}, {464, 4}}
	for si, st := range stages {
		for r := 0; r < st.repeat; r++ {
			unit(fmt.Sprintf("stage%d.%d", si+2, r), st.cout, r == 0)
		}
	}
	b.conv("conv5", 1024, 1, 1, 0, 1)
	b.bn("bn5")
	b.relu("relu5")
	b.globalPool("avgpool")
	b.fc("fc", 1000)
	return b.m
}
