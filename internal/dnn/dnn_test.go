package dnn

import (
	"math"
	"testing"
	"testing/quick"
)

// paramTolerance is the acceptable relative deviation from Table II's
// gradient sizes (our reconstructions are exact module graphs, but the
// paper's accounting of classifier heads varies by model).
const paramTolerance = 0.08

func TestZooMatchesTableII(t *testing.T) {
	for _, e := range Zoo() {
		gotM := float64(e.Model.TotalParams()) / 1e6
		tol := paramTolerance
		if e.Model.Family == "shufflenet" {
			// Table II's 1.8 M matches ShuffleNet v1; our faithful v2
			// build is 2.3 M (documented in EXPERIMENTS.md).
			tol = 0.30
		}
		if rel := math.Abs(gotM-e.PaperGradientM) / e.PaperGradientM; rel > tol {
			t.Errorf("%s: params = %.2fM, Table II says %.2fM (rel err %.1f%% > %.0f%%)",
				e.Model.Name, gotM, e.PaperGradientM, rel*100, tol*100)
		}
		if err := e.Model.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", e.Model.Name, err)
		}
	}
}

func TestZooFLOPsSanity(t *testing.T) {
	// Published forward GMACs (x2 = our FLOPs) for the 224x224 models.
	wantGMACs := map[string]float64{
		"alexnet":       0.66, // compact-classifier variant: conv trunk dominates
		"mobilenet_v2":  0.32,
		"squeezenet1_1": 0.35,
		"shufflenet_v2": 0.15,
		"resnet18":      1.82,
		"resnet50":      4.09,
		"vgg11":         7.6,
	}
	for _, e := range Zoo() {
		want, ok := wantGMACs[e.Model.Name]
		if !ok {
			continue
		}
		gotGMACs := e.Model.FwdFLOPsPerSample() / 2 / 1e9
		if rel := math.Abs(gotGMACs-want) / want; rel > 0.25 {
			t.Errorf("%s: fwd = %.2f GMACs, published %.2f (rel err %.0f%%)",
				e.Model.Name, gotGMACs, want, rel*100)
		}
	}
}

func TestBERTLargeShape(t *testing.T) {
	m := BERTLarge()
	gotM := float64(m.TotalParams()) / 1e6
	if gotM < 330 || gotM > 360 {
		t.Errorf("BERT-large params = %.1fM, want ~345M", gotM)
	}
	// 24 encoder blocks x 8 param layers + embeddings + ln + head.
	if l := m.NumParamLayers(); l < 24*8 || l > 24*9+4 {
		t.Errorf("BERT-large param layers = %d, want ~200", l)
	}
	// Forward FLOPs should be in the hundreds of GFLOPs at seq 384.
	if gf := m.FwdFLOPsPerSample() / 1e9; gf < 180 || gf > 400 {
		t.Errorf("BERT-large fwd = %.0f GFLOPs/sample, want 180-400", gf)
	}
}

func TestBERTBaseSmallerThanLarge(t *testing.T) {
	base, large := BERTBase(), BERTLarge()
	if base.TotalParams() >= large.TotalParams() {
		t.Error("BERT-base should have fewer params than BERT-large")
	}
	if base.FwdFLOPsPerSample() >= large.FwdFLOPsPerSample() {
		t.Error("BERT-base should have fewer FLOPs than BERT-large")
	}
}

func TestResNetDepthFamily(t *testing.T) {
	var prevParams int64
	var prevLayers int
	for _, depth := range []int{18, 34, 50, 101, 152} {
		m, err := ResNet(depth)
		if err != nil {
			t.Fatalf("ResNet(%d): %v", depth, err)
		}
		if m.TotalParams() <= prevParams {
			t.Errorf("ResNet%d params %d not > ResNet previous %d", depth, m.TotalParams(), prevParams)
		}
		if m.NumParamLayers() <= prevLayers {
			t.Errorf("ResNet%d layer count %d not > previous %d", depth, m.NumParamLayers(), prevLayers)
		}
		prevParams, prevLayers = m.TotalParams(), m.NumParamLayers()
	}
}

func TestResNetKnownParamCounts(t *testing.T) {
	// Backbone (no classifier) counts: torchvision totals minus fc.
	want := map[int]float64{18: 11.18, 34: 21.28, 50: 23.51, 101: 42.50, 152: 58.14}
	for depth, wantM := range want {
		m, err := ResNet(depth)
		if err != nil {
			t.Fatalf("ResNet(%d): %v", depth, err)
		}
		gotM := float64(m.TotalParams()) / 1e6
		if rel := math.Abs(gotM-wantM) / wantM; rel > 0.03 {
			t.Errorf("ResNet%d params = %.2fM, want %.2fM", depth, gotM, wantM)
		}
	}
}

func TestResNetInvalidDepth(t *testing.T) {
	if _, err := ResNet(99); err == nil {
		t.Error("ResNet(99) should fail")
	}
}

func TestResNetWithoutBatchNorm(t *testing.T) {
	full, err := ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	noBN, err := ResNet(50, ResNetWithoutBatchNorm())
	if err != nil {
		t.Fatal(err)
	}
	if noBN.NumParamLayers() >= full.NumParamLayers() {
		t.Errorf("no-BN layers %d not < full %d", noBN.NumParamLayers(), full.NumParamLayers())
	}
	// BN params are tiny: total params barely change.
	rel := float64(full.TotalParams()-noBN.TotalParams()) / float64(full.TotalParams())
	if rel < 0 || rel > 0.01 {
		t.Errorf("removing BN changed params by %.2f%%, want < 1%%", rel*100)
	}
	// Roughly half the sync points disappear (conv+bn pairs -> conv).
	if ratio := float64(noBN.NumParamLayers()) / float64(full.NumParamLayers()); ratio > 0.6 {
		t.Errorf("no-BN layer ratio = %.2f, want ~0.5", ratio)
	}
	if noBN.Name != "resnet50_nobn" {
		t.Errorf("name = %q", noBN.Name)
	}
}

func TestResNetWithoutResidual(t *testing.T) {
	full, err := ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	noRes, err := ResNet(18, ResNetWithoutResidual())
	if err != nil {
		t.Fatal(err)
	}
	// Residual connections carry no parameters: identical gradient volume
	// and sync points (paper §VI-A3: "minimal impact").
	if full.TotalParams() != noRes.TotalParams() {
		t.Errorf("params changed: %d -> %d", full.TotalParams(), noRes.TotalParams())
	}
	if full.NumParamLayers() != noRes.NumParamLayers() {
		t.Error("param layer count changed by removing residuals")
	}
	adds := 0
	for _, l := range noRes.Layers {
		if l.Kind == KindAdd {
			adds++
		}
	}
	if adds != 0 {
		t.Errorf("%d Add layers remain", adds)
	}
}

func TestVGGFamily(t *testing.T) {
	var prevParams int64
	for _, depth := range []int{11, 13, 16, 19} {
		m, err := VGG(depth)
		if err != nil {
			t.Fatalf("VGG(%d): %v", depth, err)
		}
		if m.NumParamLayers() != depth {
			t.Errorf("VGG%d has %d param layers, want %d", depth, m.NumParamLayers(), depth)
		}
		if m.TotalParams() <= prevParams {
			t.Errorf("VGG%d params not increasing", depth)
		}
		prevParams = m.TotalParams()
	}
	if _, err := VGG(12); err == nil {
		t.Error("VGG(12) should fail")
	}
}

func TestVGG11KnownParams(t *testing.T) {
	m, err := VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	gotM := float64(m.TotalParams()) / 1e6
	if gotM < 131 || gotM > 134.5 {
		t.Errorf("VGG11 params = %.2fM, want ~132.9M", gotM)
	}
}

func TestVGGWithBatchNorm(t *testing.T) {
	plain, err := VGG(16)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := VGG(16, VGGWithBatchNorm())
	if err != nil {
		t.Fatal(err)
	}
	if bn.NumParamLayers() != plain.NumParamLayers()+13 {
		t.Errorf("VGG16_bn param layers = %d, want %d (one BN per conv)",
			bn.NumParamLayers(), plain.NumParamLayers()+13)
	}
	if bn.Name != "vgg16_bn" {
		t.Errorf("name = %q", bn.Name)
	}
}

func TestVGGvsResNetCommunicationProfile(t *testing.T) {
	// The §VI-A2 contrast: VGG has few layers and many gradients; ResNet
	// has many layers and few gradients.
	vgg, err := VGG(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResNet(152)
	if err != nil {
		t.Fatal(err)
	}
	if vgg.TotalParams() <= 2*res.TotalParams() {
		t.Errorf("VGG16 grads (%dM) should dwarf ResNet152 (%dM)",
			vgg.TotalParams()/1e6, res.TotalParams()/1e6)
	}
	if res.NumParamLayers() <= 10*vgg.NumParamLayers() {
		t.Errorf("ResNet152 layers (%d) should dwarf VGG16 (%d)",
			res.NumParamLayers(), vgg.NumParamLayers())
	}
}

func TestGradientBytes(t *testing.T) {
	m, err := ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.GradientBytes(), float64(m.TotalParams())*4; got != want {
		t.Errorf("GradientBytes = %v, want %v", got, want)
	}
}

func TestTrainingMemoryAndMaxBatch(t *testing.T) {
	m, err := ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	const v100Mem = 16e9
	if mem := m.TrainingMemoryBytes(32); mem >= v100Mem {
		t.Errorf("ResNet50 bs32 memory = %.1f GB, should fit a 16 GB V100", mem/1e9)
	}
	mb := m.MaxBatch(v100Mem)
	if mb < 32 || mb > 256 {
		t.Errorf("ResNet50 MaxBatch(16GB) = %d, want tens-to-low-hundreds", mb)
	}
	// Memory grows with batch.
	if m.TrainingMemoryBytes(64) <= m.TrainingMemoryBytes(32) {
		t.Error("memory not increasing with batch")
	}
}

func TestBERTMaxBatchIsSmall(t *testing.T) {
	m := BERTLarge()
	mb := m.MaxBatch(16e9)
	// The paper trains BERT-large at batch 4 on 16 GB V100s as "the
	// maximum size that allows the resultant data to fit".
	if mb < 3 || mb > 8 {
		t.Errorf("BERT-large MaxBatch(16GB) = %d, want 3..8", mb)
	}
	if mb32 := m.MaxBatch(32e9); mb32 <= mb {
		t.Errorf("MaxBatch(32GB) = %d not > MaxBatch(16GB) = %d", mb32, mb)
	}
}

func TestMaxBatchZeroWhenTooSmall(t *testing.T) {
	m := BERTLarge()
	if mb := m.MaxBatch(1e9); mb != 0 {
		t.Errorf("MaxBatch(1GB) = %d, want 0", mb)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
	}{
		{"no name", &Model{}},
		{"no layers", &Model{Name: "x"}},
		{"negative", &Model{Name: "x", Layers: []Layer{{Name: "l", Params: -1}}}},
		{"no params", &Model{Name: "x", Layers: []Layer{{Name: "l", Kind: KindPool}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("resnet18")
	if err != nil || m.Name != "resnet18" {
		t.Errorf("ByName(resnet18) = %v, %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestSmallAndLargeSelections(t *testing.T) {
	if got := len(SmallModels()); got != 5 {
		t.Errorf("SmallModels = %d, want 5", got)
	}
	large := LargeImageModels()
	if len(large) != 2 {
		t.Fatalf("LargeImageModels = %d, want 2", len(large))
	}
	if large[0].Name != "resnet50" || large[1].Name != "vgg11" {
		t.Errorf("large models = %s, %s", large[0].Name, large[1].Name)
	}
}

func TestLayerKindString(t *testing.T) {
	if KindConv.String() != "Conv" || KindAttention.String() != "Attention" {
		t.Error("LayerKind strings wrong")
	}
	if LayerKind(99).String() != "LayerKind(99)" {
		t.Error("unknown LayerKind string wrong")
	}
}

func TestModelString(t *testing.T) {
	m, err := ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}

// Property: for every zoo model, aggregate quantities equal the sum over
// layers (no double counting in the helpers).
func TestQuickAggregatesConsistent(t *testing.T) {
	for _, e := range Zoo() {
		m := e.Model
		var params int64
		var flops, acts float64
		for _, l := range m.Layers {
			params += l.Params
			flops += l.FwdFLOPs
			acts += l.ActivationBytes
		}
		if params != m.TotalParams() {
			t.Errorf("%s: param sum mismatch", m.Name)
		}
		if flops != m.FwdFLOPsPerSample() {
			t.Errorf("%s: FLOP sum mismatch", m.Name)
		}
		if acts != m.ActivationBytesPerSample() {
			t.Errorf("%s: activation sum mismatch", m.Name)
		}
	}
}

// Property: training memory is affine and increasing in batch size.
func TestQuickMemoryAffineInBatch(t *testing.T) {
	m, err := ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b1Raw, b2Raw uint8) bool {
		b1, b2 := int(b1Raw)+1, int(b2Raw)+1
		m1, m2 := m.TrainingMemoryBytes(b1), m.TrainingMemoryBytes(b2)
		perSample := m.ActivationBytesPerSample() + m.SampleBytes
		want := float64(b2-b1) * perSample
		return math.Abs((m2-m1)-want) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
