package dnn

import "fmt"

// TransformerConfig parameterizes a generic encoder/decoder stack so
// users can profile their own NLP workloads (the paper's BERT entries are
// instances of this builder).
type TransformerConfig struct {
	Name string

	// Layers is the number of transformer blocks.
	Layers int

	// Hidden is the model dimension.
	Hidden int

	// Heads is the attention head count.
	Heads int

	// Intermediate is the feed-forward expansion width (0 = 4*Hidden).
	Intermediate int

	// SeqLen is the training sequence length.
	SeqLen int

	// Vocab is the (tied) embedding vocabulary size.
	Vocab int
}

// Validate checks the configuration.
func (c TransformerConfig) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("dnn: transformer needs a name")
	case c.Layers < 1:
		return fmt.Errorf("dnn: layers %d < 1", c.Layers)
	case c.Hidden < 1 || c.Heads < 1 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("dnn: hidden %d not divisible into %d heads", c.Hidden, c.Heads)
	case c.SeqLen < 1:
		return fmt.Errorf("dnn: sequence length %d < 1", c.SeqLen)
	case c.Vocab < 1:
		return fmt.Errorf("dnn: vocab %d < 1", c.Vocab)
	}
	return nil
}

// Transformer builds a model from the configuration.
func Transformer(c TransformerConfig) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	inter := c.Intermediate
	if inter == 0 {
		inter = 4 * c.Hidden
	}
	m := buildBERT(bertConfig{
		name:         c.Name,
		layers:       c.Layers,
		hidden:       c.Hidden,
		heads:        c.Heads,
		intermediate: inter,
		seqLen:       c.SeqLen,
		vocab:        c.Vocab,
	})
	m.Family = "transformer"
	return m, nil
}

// GPT2Small returns the 124 M-parameter GPT-2 decoder at sequence length
// 1024, a causal-LM counterpart to BERT for NLP profiling.
func GPT2Small() *Model {
	m, err := Transformer(TransformerConfig{
		Name:   "gpt2-small",
		Layers: 12,
		Hidden: 768,
		Heads:  12,
		SeqLen: 1024,
		Vocab:  50257,
	})
	if err != nil {
		// The configuration is a compile-time constant.
		panic(err)
	}
	m.Family = "gpt"
	return m
}
