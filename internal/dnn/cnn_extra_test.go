package dnn

import (
	"math"
	"testing"
)

func TestDenseNetKnownParams(t *testing.T) {
	// Backbone counts (torchvision totals minus the 1k classifier).
	want := map[int]float64{121: 6.95, 169: 12.48, 201: 18.09}
	for depth, wantM := range want {
		m, err := DenseNet(depth)
		if err != nil {
			t.Fatalf("DenseNet(%d): %v", depth, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		gotM := float64(m.TotalParams()) / 1e6
		if rel := math.Abs(gotM-wantM) / wantM; rel > 0.05 {
			t.Errorf("DenseNet%d params = %.2fM, want ~%.2fM", depth, gotM, wantM)
		}
	}
	if _, err := DenseNet(99); err == nil {
		t.Error("DenseNet(99) should fail")
	}
}

func TestDenseNetExtremeSyncPointDensity(t *testing.T) {
	// DenseNet's raison d'etre in this repo: even more sync points per
	// gradient byte than ResNet, extending the Fig-16 spectrum.
	dense, err := DenseNet(121)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	denseDensity := float64(dense.NumParamLayers()) / dense.GradientBytes()
	resDensity := float64(res.NumParamLayers()) / res.GradientBytes()
	if denseDensity <= 1.5*resDensity {
		t.Errorf("DenseNet sync density %.3g not well above ResNet50 %.3g", denseDensity, resDensity)
	}
}

func TestResNeXt50(t *testing.T) {
	m, err := ResNeXt50()
	if err != nil {
		t.Fatal(err)
	}
	gotM := float64(m.TotalParams()) / 1e6
	// torchvision 25.03M minus 2.05M classifier.
	if gotM < 21.5 || gotM > 24.5 {
		t.Errorf("ResNeXt50 params = %.2fM, want ~23M", gotM)
	}
	res50, err := ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParamLayers() != res50.NumParamLayers() {
		t.Errorf("ResNeXt50 layers = %d, want ResNet50's %d", m.NumParamLayers(), res50.NumParamLayers())
	}
}

func TestWideResNet50(t *testing.T) {
	m, err := WideResNet50()
	if err != nil {
		t.Fatal(err)
	}
	gotM := float64(m.TotalParams()) / 1e6
	// torchvision 68.88M minus 2.05M classifier.
	if gotM < 63 || gotM > 70 {
		t.Errorf("WideResNet50 params = %.2fM, want ~67M", gotM)
	}
	res50, err := ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	// Same sync points, ~3x the gradients: the intra-family contrast.
	if m.NumParamLayers() != res50.NumParamLayers() {
		t.Errorf("layer counts differ: %d vs %d", m.NumParamLayers(), res50.NumParamLayers())
	}
	if ratio := m.GradientBytes() / res50.GradientBytes(); ratio < 2.4 || ratio > 3.2 {
		t.Errorf("gradient ratio = %.2f, want ~2.8", ratio)
	}
}

func TestTransformerBuilder(t *testing.T) {
	m, err := Transformer(TransformerConfig{
		Name: "tiny", Layers: 2, Hidden: 64, Heads: 4, SeqLen: 128, Vocab: 1000,
	})
	if err != nil {
		t.Fatalf("Transformer: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Family != "transformer" {
		t.Errorf("family = %q", m.Family)
	}
}

func TestTransformerValidation(t *testing.T) {
	bad := []TransformerConfig{
		{Layers: 2, Hidden: 64, Heads: 4, SeqLen: 128, Vocab: 100},            // no name
		{Name: "x", Hidden: 64, Heads: 4, SeqLen: 128, Vocab: 100},            // no layers
		{Name: "x", Layers: 2, Hidden: 65, Heads: 4, SeqLen: 128, Vocab: 100}, // indivisible
		{Name: "x", Layers: 2, Hidden: 64, Heads: 4, Vocab: 100},              // no seq
		{Name: "x", Layers: 2, Hidden: 64, Heads: 4, SeqLen: 128},             // no vocab
	}
	for i, c := range bad {
		if _, err := Transformer(c); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestGPT2Small(t *testing.T) {
	m := GPT2Small()
	gotM := float64(m.TotalParams()) / 1e6
	if gotM < 110 || gotM > 140 {
		t.Errorf("GPT-2 small params = %.1fM, want ~124M", gotM)
	}
	if m.Family != "gpt" {
		t.Errorf("family = %q", m.Family)
	}
	// Long sequences make attention a visible share of FLOPs.
	if gf := m.FwdFLOPsPerSample() / 1e9; gf < 150 || gf > 600 {
		t.Errorf("GPT-2 fwd = %.0f GFLOPs/sample, want hundreds at seq 1024", gf)
	}
}

func TestIntermediateDefaultsTo4x(t *testing.T) {
	a, err := Transformer(TransformerConfig{Name: "a", Layers: 1, Hidden: 64, Heads: 4, SeqLen: 32, Vocab: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transformer(TransformerConfig{Name: "b", Layers: 1, Hidden: 64, Heads: 4, SeqLen: 32, Vocab: 100, Intermediate: 256})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalParams() != b.TotalParams() {
		t.Errorf("default intermediate != 4x hidden: %d vs %d", a.TotalParams(), b.TotalParams())
	}
}
