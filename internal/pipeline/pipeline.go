// Package pipeline simulates the DNN input pipeline of one machine: a
// storage volume shared by all dataloader workers, the OS page cache, a
// CPU pre-processing pool, and the PCIe upload to each GPU. Fetch (disk)
// and prep (CPU) stalls emerge when the pipeline cannot keep up with the
// GPUs, exactly the phenomena DS-Analyzer's steps measure (§II-B).
//
// Contention is modeled with fluid flows: the disk and the CPU pool are
// simnet links whose capacity all concurrent workers share max-min
// fairly, so 16 workers hammering one gp2 volume starve each other the
// way Fig 4b shows.
package pipeline

import (
	"fmt"

	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/workload"
)

// CacheMode selects the page-cache state for a run, mirroring
// DS-Analyzer's methodology.
type CacheMode int

// Cache modes.
const (
	// CacheCold models step 3: caches dropped before the run, every
	// sample is read from the volume (each exactly once per epoch).
	CacheCold CacheMode = iota + 1

	// CacheWarm models step 4: the dataset was fully read in a previous
	// epoch; reads hit DRAM up to the cache capacity.
	CacheWarm
)

// String returns the mode name.
func (m CacheMode) String() string {
	switch m {
	case CacheCold:
		return "cold"
	case CacheWarm:
		return "warm"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// Config describes one machine's input-pipeline hardware.
type Config struct {
	Storage hw.StorageSpec
	CPU     hw.CPUSpec

	// CacheBytes is the DRAM available for the page cache (main memory
	// minus framework overhead).
	CacheBytes float64

	// PrefetchDepth is how many batches each dataloader keeps in flight
	// ahead of the consumer (PyTorch DataLoader prefetch); 0 uses the
	// default of 2.
	PrefetchDepth int
}

// HostPipeline is the shared input-pipeline state of one machine.
type HostPipeline struct {
	eng  *sim.Engine
	net  *simnet.Network
	cfg  Config
	disk *simnet.Link
	iops *simnet.Link
	cpu  *simnet.Link
	mode CacheMode
}

// New builds a host pipeline on the machine's network. Node namespaces
// the link names.
func New(eng *sim.Engine, net *simnet.Network, node int, cfg Config) (*HostPipeline, error) {
	if cfg.Storage.Throughput <= 0 {
		return nil, fmt.Errorf("pipeline: storage throughput %v <= 0", cfg.Storage.Throughput)
	}
	if cfg.CPU.VCPUs < 1 || cfg.CPU.PrepRate <= 0 {
		return nil, fmt.Errorf("pipeline: bad CPU spec %+v", cfg.CPU)
	}
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("pipeline: negative cache size")
	}
	if cfg.PrefetchDepth == 0 {
		cfg.PrefetchDepth = 4
	}
	if cfg.PrefetchDepth < 0 {
		return nil, fmt.Errorf("pipeline: negative prefetch depth")
	}
	hp := &HostPipeline{
		eng:  eng,
		net:  net,
		cfg:  cfg,
		mode: CacheWarm,
		disk: net.NewLink(fmt.Sprintf("node%d/disk", node), cfg.Storage.Throughput, cfg.Storage.RequestLatency),
		// The CPU pool is a fluid resource measured in samples/sec.
		cpu: net.NewLink(fmt.Sprintf("node%d/cpu", node), float64(cfg.CPU.VCPUs)*cfg.CPU.PrepRate, 0),
	}
	if cfg.Storage.IOPS > 0 {
		// Random small-file reads are bounded by the volume's operation
		// budget as well as its byte throughput (one read op per sample).
		hp.iops = net.NewLink(fmt.Sprintf("node%d/disk-iops", node), cfg.Storage.IOPS, 0)
	}
	return hp, nil
}

// SetCacheMode switches between the cold (step 3) and warm (step 4)
// cache regimes for subsequent reads.
func (hp *HostPipeline) SetCacheMode(m CacheMode) { hp.mode = m }

// CacheMode returns the current cache regime.
func (hp *HostPipeline) CacheMode() CacheMode { return hp.mode }

// hitFraction returns the fraction of reads served from DRAM for the
// given dataset.
func (hp *HostPipeline) hitFraction(ds workload.Dataset) float64 {
	if hp.mode == CacheCold {
		return 0
	}
	total := ds.TotalBytes()
	if total <= hp.cfg.CacheBytes {
		return 1
	}
	return hp.cfg.CacheBytes / total
}

// Batch is one ready-to-train mini-batch produced by a loader.
type Batch struct {
	Index int
}

// Loader is one GPU worker's dataloader: it fetches, preps and uploads
// batches ahead of the consumer.
type Loader struct {
	hp         *HostPipeline
	job        workload.Job
	uploadTo   []*simnet.Link
	iterations int
	queue      *sim.Queue[Batch]
	credits    *sim.Resource
	proc       *sim.Process
}

// NewLoader creates a dataloader that will produce the given number of
// batches for job, uploading each decoded batch along uploadTo (the
// host-to-GPU route). Call Start to spawn its producer process.
func (hp *HostPipeline) NewLoader(job workload.Job, uploadTo []*simnet.Link, iterations int) (*Loader, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("pipeline: iterations %d < 1", iterations)
	}
	if len(uploadTo) == 0 {
		return nil, fmt.Errorf("pipeline: empty upload route")
	}
	return &Loader{
		hp:         hp,
		job:        job,
		uploadTo:   uploadTo,
		iterations: iterations,
		queue:      sim.NewQueue[Batch](hp.eng),
		credits:    sim.NewResource(hp.eng, hp.cfg.PrefetchDepth),
	}, nil
}

// Start spawns the loader's stage processes. Fetch, prep and upload run
// as a three-stage pipeline (as PyTorch DataLoader workers plus the
// pinned-memory uploader do), so steady-state loader throughput is set by
// the slowest stage, not their sum. Name prefixes the process names.
func (l *Loader) Start(name string) {
	batch := float64(l.job.BatchPerGPU)
	ds := l.job.Dataset
	fetched := sim.NewQueue[Batch](l.hp.eng)
	prepped := sim.NewQueue[Batch](l.hp.eng)

	l.proc = l.hp.eng.Go(name+"/fetch", func(p *sim.Process) {
		for i := 0; i < l.iterations; i++ {
			l.credits.Acquire(p)
			// Read the encoded batch from the volume, minus cache hits.
			// Bytes and read operations are separate budgets consumed
			// concurrently; the slower one gates the fetch.
			missFrac := 1 - l.hp.hitFraction(ds)
			diskBytes := batch * ds.DiskBytesPerSample * missFrac
			if diskBytes > 0 {
				bytesFlow := l.hp.net.StartFlow(diskBytes, []*simnet.Link{l.hp.disk})
				if l.hp.iops != nil {
					opsFlow := l.hp.net.StartFlowLatency(batch*missFrac, []*simnet.Link{l.hp.iops}, 0)
					p.Await(opsFlow.Done())
				}
				p.Await(bytesFlow.Done())
			}
			fetched.Put(Batch{Index: i})
		}
		fetched.Close()
	})
	l.hp.eng.Go(name+"/prep", func(p *sim.Process) {
		for {
			b, ok := fetched.Get(p)
			if !ok {
				prepped.Close()
				return
			}
			// Decode+augment on the shared CPU pool. The "bytes" of this
			// flow are samples of standard prep work.
			if prepWork := batch * ds.PrepCostFactor; prepWork > 0 {
				l.hp.net.Transfer(p, prepWork, []*simnet.Link{l.hp.cpu})
			}
			prepped.Put(b)
		}
	})
	l.hp.eng.Go(name+"/upload", func(p *sim.Process) {
		for {
			b, ok := prepped.Get(p)
			if !ok {
				l.queue.Close()
				return
			}
			// Upload the decoded batch to the GPU over PCIe.
			l.hp.net.Transfer(p, batch*l.job.Model.SampleBytes, l.uploadTo)
			l.queue.Put(b)
		}
	})
}

// Next blocks the consumer until a batch is ready; ok is false after the
// final batch. The time spent blocked here is the worker's fetch+prep
// stall.
func (l *Loader) Next(p *sim.Process) (Batch, bool) {
	b, ok := l.queue.Get(p)
	if ok {
		l.credits.Release()
	}
	return b, ok
}

// NextFunc is Next for continuation-style consumers: fn receives the next
// batch synchronously when one is buffered, otherwise when the upload
// stage produces it. The prefetch credit is returned before fn runs,
// exactly as Next returns it before its caller resumes, so the producer
// side observes an identical event sequence either way.
func (l *Loader) NextFunc(fn func(Batch, bool)) {
	l.queue.GetFunc(func(b Batch, ok bool) {
		if ok {
			l.credits.Release()
		}
		fn(b, ok)
	})
}

// DiskLink exposes the machine's storage link (for probes and tests).
func (hp *HostPipeline) DiskLink() *simnet.Link { return hp.disk }

// CPULink exposes the machine's prep-pool link (for probes and tests).
func (hp *HostPipeline) CPULink() *simnet.Link { return hp.cpu }
