package pipeline

import (
	"math"
	"testing"
	"time"

	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/workload"
)

// testRig bundles an engine, a network and a host pipeline.
type testRig struct {
	eng    *sim.Engine
	net    *simnet.Network
	hp     *HostPipeline
	upload *simnet.Link
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	net := simnet.New(eng)
	hp, err := New(eng, net, 0, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &testRig{
		eng:    eng,
		net:    net,
		hp:     hp,
		upload: net.NewLink("upload", 12*hw.GB, 5*time.Microsecond),
	}
}

func smallJob(t *testing.T, batch int) workload.Job {
	t.Helper()
	job, err := workload.NewJob(mustResNet18(t), batch)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	return job
}

func defaultCfg() Config {
	return Config{
		Storage:    hw.GP2SSD,
		CPU:        hw.Xeon(32),
		CacheBytes: 200e9,
	}
}

// consume drains n batches, sleeping computeTime per batch, and returns
// the total elapsed virtual time.
func (r *testRig) consume(t *testing.T, l *Loader, computeTime time.Duration) time.Duration {
	t.Helper()
	var elapsed time.Duration
	r.eng.Go("consumer", func(p *sim.Process) {
		for {
			if _, ok := l.Next(p); !ok {
				break
			}
			p.Sleep(computeTime)
		}
		elapsed = p.Now()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return elapsed
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := simnet.New(eng)
	bad := []Config{
		{CPU: hw.Xeon(8)},    // no storage
		{Storage: hw.GP2SSD}, // no CPU
		{Storage: hw.GP2SSD, CPU: hw.Xeon(8), CacheBytes: -1},    // negative cache
		{Storage: hw.GP2SSD, CPU: hw.Xeon(8), PrefetchDepth: -2}, // negative prefetch
	}
	for i, cfg := range bad {
		if _, err := New(eng, net, 0, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestLoaderValidation(t *testing.T) {
	r := newRig(t, defaultCfg())
	job := smallJob(t, 32)
	if _, err := r.hp.NewLoader(job, []*simnet.Link{r.upload}, 0); err == nil {
		t.Error("zero iterations should fail")
	}
	if _, err := r.hp.NewLoader(job, nil, 5); err == nil {
		t.Error("empty route should fail")
	}
}

func TestWarmCacheSkipsDisk(t *testing.T) {
	cfg := defaultCfg()
	cfg.CacheBytes = 200e9 // dataset (133 GB) fits
	r := newRig(t, cfg)
	r.hp.SetCacheMode(CacheWarm)
	l, err := r.hp.NewLoader(smallJob(t, 32), []*simnet.Link{r.upload}, 10)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	r.consume(t, l, time.Millisecond)
	if got := r.hp.DiskLink().BytesCarried(); got != 0 {
		t.Errorf("warm cache read %v bytes from disk, want 0", got)
	}
}

func TestColdCacheReadsEverything(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.hp.SetCacheMode(CacheCold)
	job := smallJob(t, 32)
	const iters = 10
	l, err := r.hp.NewLoader(job, []*simnet.Link{r.upload}, iters)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	r.consume(t, l, time.Millisecond)
	want := float64(iters) * 32 * job.Dataset.DiskBytesPerSample
	got := r.hp.DiskLink().BytesCarried()
	if diff := got - want; diff > 1 || diff < -1 {
		t.Errorf("disk bytes = %v, want %v", got, want)
	}
}

func TestPartialCacheReducesDiskTraffic(t *testing.T) {
	cfg := defaultCfg()
	cfg.CacheBytes = workload.ImageNet1k.TotalBytes() / 2 // half fits
	r := newRig(t, cfg)
	r.hp.SetCacheMode(CacheWarm)
	job := smallJob(t, 32)
	const iters = 10
	l, err := r.hp.NewLoader(job, []*simnet.Link{r.upload}, iters)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	r.consume(t, l, time.Millisecond)
	full := float64(iters) * 32 * job.Dataset.DiskBytesPerSample
	got := r.hp.DiskLink().BytesCarried()
	if got <= 0.4*full || got >= 0.6*full {
		t.Errorf("half-cached disk bytes = %v, want ~%v", got, full/2)
	}
}

func TestSlowConsumerSeesNoStall(t *testing.T) {
	// A consumer much slower than the pipeline should spend ~all its time
	// computing: total ~= iters x compute.
	r := newRig(t, defaultCfg())
	r.hp.SetCacheMode(CacheWarm)
	const iters = 20
	compute := 100 * time.Millisecond
	l, err := r.hp.NewLoader(smallJob(t, 32), []*simnet.Link{r.upload}, iters)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	total := r.consume(t, l, compute)
	ideal := time.Duration(iters) * compute
	if total > ideal+ideal/10 {
		t.Errorf("total = %v, want close to compute-bound %v", total, ideal)
	}
}

func TestFastConsumerStallsOnColdDisk(t *testing.T) {
	// A consumer much faster than the disk must be fetch-bound: total ~=
	// disk time.
	r := newRig(t, defaultCfg())
	r.hp.SetCacheMode(CacheCold)
	const iters = 20
	job := smallJob(t, 128)
	l, err := r.hp.NewLoader(job, []*simnet.Link{r.upload}, iters)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	total := r.consume(t, l, time.Millisecond)
	byteSeconds := float64(iters) * 128 * job.Dataset.DiskBytesPerSample / hw.GP2SSD.Throughput
	iopsSeconds := float64(iters) * 128 / hw.GP2SSD.IOPS
	diskSeconds := math.Max(byteSeconds, iopsSeconds)
	if total.Seconds() < diskSeconds {
		t.Errorf("total %v below disk lower bound %vs", total, diskSeconds)
	}
	if total.Seconds() > diskSeconds*1.3 {
		t.Errorf("total %v far above disk bound %vs: unexplained stall", total, diskSeconds)
	}
}

func TestTwoLoadersContendOnDisk(t *testing.T) {
	elapsed := func(nLoaders int) time.Duration {
		r := newRig(t, defaultCfg())
		r.hp.SetCacheMode(CacheCold)
		const iters = 10
		var loaders []*Loader
		for i := 0; i < nLoaders; i++ {
			l, err := r.hp.NewLoader(smallJob(t, 64), []*simnet.Link{r.upload}, iters)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			l.Start("loader")
			loaders = append(loaders, l)
		}
		var max time.Duration
		done := make([]time.Duration, nLoaders)
		for i, l := range loaders {
			i, l := i, l
			r.eng.Go("consumer", func(p *sim.Process) {
				for {
					if _, ok := l.Next(p); !ok {
						break
					}
					p.Sleep(time.Millisecond)
				}
				done[i] = p.Now()
			})
		}
		if err := r.eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, d := range done {
			if d > max {
				max = d
			}
		}
		return max
	}
	one, four := elapsed(1), elapsed(4)
	if ratio := four.Seconds() / one.Seconds(); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4-loader slowdown = %.2fx, want ~4x (shared disk)", ratio)
	}
}

func TestPrepUsesCPUPool(t *testing.T) {
	// With a tiny CPU, prep dominates: total ~= batch*iters/prepRate.
	cfg := defaultCfg()
	cfg.CPU = hw.CPUSpec{Name: "tiny", VCPUs: 1, PrepRate: 100}
	r := newRig(t, cfg)
	r.hp.SetCacheMode(CacheWarm)
	const iters, batch = 10, 128
	l, err := r.hp.NewLoader(smallJob(t, batch), []*simnet.Link{r.upload}, iters)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Start("loader")
	total := r.consume(t, l, time.Millisecond)
	prepSeconds := float64(iters*batch) / 100
	if total.Seconds() < prepSeconds || total.Seconds() > prepSeconds*1.2 {
		t.Errorf("total = %v, want ~%vs (prep-bound)", total, prepSeconds)
	}
}

func TestBERTPrepIsCheap(t *testing.T) {
	job, err := workload.NewJob(mustBERT(t), 4)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if job.Dataset.Name != "squad2" {
		t.Fatalf("BERT dataset = %s, want squad2", job.Dataset.Name)
	}
	if job.Dataset.PrepCostFactor >= workload.ImageNet1k.PrepCostFactor {
		t.Error("tokenized text prep should be cheaper than image decode")
	}
}

func TestCacheModeString(t *testing.T) {
	if CacheCold.String() != "cold" || CacheWarm.String() != "warm" {
		t.Error("CacheMode strings wrong")
	}
	if CacheMode(0).String() != "CacheMode(0)" {
		t.Error("unknown CacheMode string wrong")
	}
}
