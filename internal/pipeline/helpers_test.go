package pipeline

import (
	"testing"

	"stash/internal/dnn"
)

func mustResNet18(t *testing.T) *dnn.Model {
	t.Helper()
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatalf("ResNet(18): %v", err)
	}
	return m
}

func mustBERT(t *testing.T) *dnn.Model {
	t.Helper()
	return dnn.BERTLarge()
}
