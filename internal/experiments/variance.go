package experiments

import (
	"fmt"
	"math"
	"time"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/train"
)

// NetworkVariance studies how the VPC's QoS variance (§I, §III) spreads
// multi-node training times: the same 2x p3.8xlarge VGG11 job is
// provisioned repeatedly with jittered network ratings, and the spread
// of epoch-scale iteration times shows why one-shot bandwidth probes
// (the Srifty discussion, §VI-B) mislead.
func NetworkVariance(cfg Config) ([]*report.Table, error) {
	m, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		return nil, err
	}
	c := cfg.normalize()

	run := func(seed int64, jitter float64) (time.Duration, error) {
		eng := sim.NewEngine()
		net := simnet.New(eng)
		prov := cloud.NewProvisioner(cloud.SliceDegraded, seed)
		if err := prov.SetNetworkJitter(jitter); err != nil {
			return 0, err
		}
		top, err := prov.Provision(net, it, 2)
		if err != nil {
			return 0, err
		}
		res, err := train.Run(eng, net, train.Config{
			Job:            job,
			Topology:       top,
			Iterations:     c.Iterations,
			Warmup:         2,
			Synthetic:      true,
			DisableOverlap: true,
		})
		if err != nil {
			return 0, err
		}
		return res.PerIteration, nil
	}

	t := report.NewTable("EXT: VPC network QoS variance (vgg11, 2x p3.8xlarge, batch 32)",
		"jitter", "draws", "min iter", "mean iter", "max iter", "spread")
	jitters := []float64{0, 0.2, 0.4}
	const draws = 10
	// Every (jitter, draw) pair provisions its own engine, so the whole
	// grid sweeps concurrently; aggregates are folded in order afterwards.
	iters := make([]time.Duration, len(jitters)*draws)
	if err := cfg.forEach(len(iters), func(i int) error {
		var err error
		iters[i], err = run(c.Seed+int64(i%draws), jitters[i/draws])
		return err
	}); err != nil {
		return nil, err
	}
	for ji, jitter := range jitters {
		minT, maxT := time.Duration(math.MaxInt64), time.Duration(0)
		var sum time.Duration
		for _, iter := range iters[ji*draws : (ji+1)*draws] {
			sum += iter
			if iter < minT {
				minT = iter
			}
			if iter > maxT {
				maxT = iter
			}
		}
		t.AddRow(
			fmt.Sprintf("%.0f%%", jitter*100),
			fmt.Sprintf("%d", draws),
			report.Dur(minT),
			report.Dur(sum/draws),
			report.Dur(maxT),
			fmt.Sprintf("%.2fx", maxT.Seconds()/minT.Seconds()),
		)
	}
	return []*report.Table{t}, nil
}
