package experiments

import (
	"fmt"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/report"
)

// TableI regenerates the AWS P-family catalog table.
func TableI(Config) ([]*report.Table, error) {
	t := report.NewTable("Table I: AWS GPU instance types with prices (N. Virginia)",
		"Instance", "GPU(s)", "vCPUs", "Interconnect", "GPU Mem (GB)", "Main Mem (GB)", "Network (Gbps)", "Price/hr")
	for _, it := range cloud.Catalog() {
		t.AddRow(
			it.Name,
			fmt.Sprintf("%dx%s", it.NGPUs, it.GPU.Name),
			fmt.Sprintf("%d", it.VCPUs),
			it.InterconnectDesc,
			fmt.Sprintf("%.0f", it.GPUMemoryGB),
			fmt.Sprintf("%.0f", it.MainMemoryGB),
			it.NetworkDesc,
			report.Money(it.PricePerHour),
		)
	}
	return []*report.Table{t}, nil
}

// TableII regenerates the model-zoo table with our reconstructed
// gradient sizes next to the paper's.
func TableII(Config) ([]*report.Table, error) {
	t := report.NewTable("Table II: DDL models used",
		"Domain", "Type", "Name", "Gradient size", "Paper says", "Param layers", "Fwd GFLOPs/sample", "Dataset")
	for _, e := range dnn.Zoo() {
		m := e.Model
		t.AddRow(
			e.Domain,
			e.Size,
			m.Name,
			fmt.Sprintf("%.2fM", float64(m.TotalParams())/1e6),
			fmt.Sprintf("%.2fM", e.PaperGradientM),
			fmt.Sprintf("%d", m.NumParamLayers()),
			fmt.Sprintf("%.2f", m.FwdFLOPsPerSample()/1e9),
			e.Dataset,
		)
	}
	return []*report.Table{t}, nil
}
