// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I-II, Figs 4-16) plus the in-text case studies, as
// plain-text tables. Each experiment drives the Stash profiler
// (internal/core) over the instance catalog and model zoo exactly as the
// paper's methodology prescribes.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/workload"
)

// Config tunes experiment execution.
type Config struct {
	// Iterations is the profiling window per scenario (larger = smoother
	// steady state, slower to simulate). 0 uses the default.
	Iterations int

	// Seed feeds the provisioner (matters only under lottery slicing).
	Seed int64

	// Parallelism bounds how many scenario cells (and, under RunMany,
	// experiments) run concurrently: 0 or negative = GOMAXPROCS (the
	// core.WithParallelism convention), 1 = serial. Output
	// is byte-identical at every setting — cells land in index-ordered
	// slots and rows are assembled in paper order. Parallelism is not
	// part of the shared-profiler identity (profilerKey), so serial and
	// parallel runs of the same configuration share one scenario cache.
	Parallelism int

	// Pool, when non-nil, is the profiler every sweep of this
	// configuration uses instead of the process-wide shared LRU. A
	// long-lived server (stashd) sets it so its scenario cache is its
	// own — isolated from other servers in the same process (in-process
	// cluster tests run several replicas side by side) and eligible for
	// a per-server cluster remote-resolver hook (core.SetRemote). The
	// caller must construct the pool with the same Iterations, Seed and
	// Parallelism as this Config, or sweep results will not match the
	// configuration they claim to describe. Experiments that need extra
	// profiler options still build fresh unshared profilers.
	Pool *core.Profiler

	// ctx, when set via WithContext, cancels the configuration's sweeps:
	// forEach stops dispatching new cells once ctx is done and the
	// experiment returns ctx.Err(). It deliberately stays out of
	// profilerKey — cancellation never changes what a scenario computes,
	// only whether it starts.
	ctx context.Context
}

// WithContext returns a copy of the configuration whose sweeps observe
// ctx: cancellation (a server request timeout, SIGTERM drain) is
// checked between grid cells and between experiments, so an abandoned
// run stops within one cell's simulation time. The zero Config uses
// context.Background.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

// context returns the configured context, defaulting to Background.
func (c Config) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// DefaultConfig returns the configuration the benches and CLIs use.
func DefaultConfig() Config {
	return Config{Iterations: 12, Seed: 1}
}

func (c Config) normalize() Config {
	if c.Iterations < 1 {
		c.Iterations = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// Negative Parallelism means GOMAXPROCS, same as 0: the semantics
	// are defined once, by core.WithParallelism / core.ForEach ("0 or
	// negative = GOMAXPROCS"), and this layer must not remap them.
	if c.Parallelism < 0 {
		c.Parallelism = 0
	}
	return c
}

// profilerKey identifies the profiler a configuration shares. It
// excludes Parallelism: the scenario results are the same at any worker
// count, so serial and parallel sweeps share one cache.
type profilerKey struct {
	iterations int
	seed       int64
}

// maxSharedProfilers bounds the shared-profiler LRU. Each profiler owns
// a full scenario cache, so an unbounded map leaks one cache per
// distinct bench seed; sweeps only ever interleave a handful of
// configurations at a time.
const maxSharedProfilers = 8

// sharedProfilers memoizes plain profilers per configuration so that
// experiments reuse each other's deterministic scenario results (the
// profiler itself caches runs). Least-recently-used entries are evicted
// beyond maxSharedProfilers.
var sharedProfilers = struct {
	sync.Mutex
	m     map[profilerKey]*core.Profiler
	order []profilerKey // LRU order, oldest first
}{m: make(map[profilerKey]*core.Profiler)}

// profiler builds (or reuses) a Stash profiler for this configuration.
// Passing extra options always builds a fresh, unshared profiler.
func (c Config) profiler(opts ...core.Option) *core.Profiler {
	c = c.normalize()
	base := []core.Option{
		core.WithIterations(c.Iterations),
		core.WithSeed(c.Seed),
		core.WithParallelism(c.Parallelism),
	}
	if len(opts) > 0 {
		return core.New(append(base, opts...)...)
	}
	if c.Pool != nil {
		return c.Pool
	}
	key := profilerKey{iterations: c.Iterations, seed: c.Seed}
	sharedProfilers.Lock()
	defer sharedProfilers.Unlock()
	if p, ok := sharedProfilers.m[key]; ok {
		touchProfiler(key)
		return p
	}
	if len(sharedProfilers.order) >= maxSharedProfilers {
		oldest := sharedProfilers.order[0]
		sharedProfilers.order = sharedProfilers.order[1:]
		delete(sharedProfilers.m, oldest)
	}
	p := core.New(base...)
	sharedProfilers.m[key] = p
	sharedProfilers.order = append(sharedProfilers.order, key)
	return p
}

// touchProfiler moves key to the most-recently-used end. Callers hold
// the sharedProfilers lock.
func touchProfiler(key profilerKey) {
	for i, k := range sharedProfilers.order {
		if k == key {
			sharedProfilers.order = append(append(sharedProfilers.order[:i:i], sharedProfilers.order[i+1:]...), key)
			return
		}
	}
}

// peekProfiler is the read-only counterpart of profiler: it returns the
// configuration's shared profiler if one already exists, without
// inserting a new entry, evicting an old one, or refreshing LRU order.
// Observability paths (SchedulerStats, the stashd /metrics scrape) must
// use this: a scrape that allocated a profiler would report freshly
// zeroed counters and could evict a profiler whose scenario cache a
// running sweep is reusing.
func (c Config) peekProfiler() (*core.Profiler, bool) {
	if c.Pool != nil {
		return c.Pool, true
	}
	c = c.normalize()
	key := profilerKey{iterations: c.Iterations, seed: c.Seed}
	sharedProfilers.Lock()
	defer sharedProfilers.Unlock()
	p, ok := sharedProfilers.m[key]
	return p, ok
}

// SchedulerStats reports the shared profiler's scenario-scheduler
// counters for this configuration (requests, simulations, cache hits,
// single-flight waits, cancellations). It is a pure read: if no sweep
// has built the configuration's profiler yet, it reports zero counters
// instead of allocating one, and it never perturbs the shared-profiler
// LRU — repeated scrapes leave the counters monotonically
// non-decreasing.
func SchedulerStats(cfg Config) core.Stats {
	p, ok := cfg.peekProfiler()
	if !ok {
		return core.Stats{}
	}
	return p.Stats()
}

// SchedulerTenantStats reports the shared profiler's per-tenant
// scenario counters for this configuration (core.Profiler.TenantStats).
// Like SchedulerStats it is a pure read: no profiler is allocated and
// the LRU is untouched; nil when no sweep has built the profiler yet.
func SchedulerTenantStats(cfg Config) map[string]core.Stats {
	p, ok := cfg.peekProfiler()
	if !ok {
		return nil
	}
	return p.TenantStats()
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the short handle ("fig5", "table1", ...).
	ID string

	// Title describes the paper artifact.
	Title string

	// Run executes the experiment.
	Run func(Config) ([]*report.Table, error)
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: AWS GPU instance types with prices", Run: TableI},
		{ID: "table2", Title: "Table II: DDL models used", Run: TableII},
		{ID: "fig4", Title: "Fig 4: CPU and disk stall % of training time, P2 small models", Run: Fig4},
		{ID: "fig5", Title: "Fig 5: Interconnect stall %, small models, P2 and P3", Run: Fig5},
		{ID: "fig6", Title: "Fig 6: Training time and cost, P2 small models", Run: Fig6},
		{ID: "fig7", Title: "Fig 7: Per-GPU PCIe bandwidth measured in P2", Run: Fig7},
		{ID: "fig8", Title: "Fig 8: CPU and disk stall %, P3 small models", Run: Fig8},
		{ID: "fig9", Title: "Fig 9: CPU and disk stall %, P3 large models", Run: Fig9},
		{ID: "fig10", Title: "Fig 10: Training time and cost, P3 small models", Run: Fig10},
		{ID: "fig11", Title: "Fig 11: Interconnect stall %, P3 small and large models", Run: Fig11},
		{ID: "fig12", Title: "Fig 12: Training time and cost, P3 large models", Run: Fig12},
		{ID: "fig13", Title: "Fig 13: Network stall of two p3.8xlarge instances", Run: Fig13},
		{ID: "fig14", Title: "Fig 14: P2 vs P3 training time and cost per epoch", Run: Fig14},
		{ID: "fig15", Title: "Fig 15: GPU memory utilization, P2 vs P3", Run: Fig15},
		{ID: "fig16", Title: "Fig 16: Communication stalls vs number of layers (micro)", Run: Fig16},
		{ID: "large-on-p2", Title: "SV-A: large-model-on-P2 pathology (ResNet50)", Run: LargeModelOnP2},
		{ID: "bert-24xl", Title: "SV-B: BERT-large on p3.24xlarge at doubled batch", Run: BERT24xl},
		{ID: "ps-vs-allreduce", Title: "SIII: parameter server vs ring all-reduce", Run: PSvsAllReduce},
		{ID: "ablate-overlap", Title: "EXT: ablation of communication/computation overlap", Run: AblateOverlap},
		{ID: "ablate-bucket", Title: "EXT: ablation of gradient bucket size", Run: AblateBucketSize},
		{ID: "ablate-compression", Title: "EXT: ablation of gradient compression", Run: AblateCompression},
		{ID: "slice-lottery", Title: "EXT: p3.8xlarge NVLink slice lottery study", Run: SliceLottery},
		{ID: "multi-epoch", Title: "EXT: stall evolution across epochs (DRAM caching)", Run: MultiEpoch},
		{ID: "p4-preview", Title: "EXT: P4 (A100/NVSwitch) preview", Run: P4Preview},
		{ID: "network-variance", Title: "EXT: VPC network QoS variance study", Run: NetworkVariance},
		{ID: "claims", Title: "Paper claims (SVIII), re-verified against live measurements", Run: Claims},
	}
}

// ByID returns the registered experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// clusterConfig is one bar group of the figures: an instance type and how
// many of them are tied together over the network.
type clusterConfig struct {
	label    string
	instance string
	count    int
}

func p2Configs() []clusterConfig {
	return []clusterConfig{
		{"p2.xlarge", "p2.xlarge", 1},
		{"p2.8xlarge", "p2.8xlarge", 1},
		{"p2.8xlarge*2", "p2.8xlarge", 2},
		{"p2.16xlarge", "p2.16xlarge", 1},
	}
}

func p3Configs() []clusterConfig {
	return []clusterConfig{
		{"p3.2xlarge", "p3.2xlarge", 1},
		{"p3.8xlarge", "p3.8xlarge", 1},
		{"p3.8xlarge*2", "p3.8xlarge", 2},
		{"p3.16xlarge", "p3.16xlarge", 1},
	}
}

func p3LargeConfigs() []clusterConfig {
	return append(p3Configs(), clusterConfig{"p3.24xlarge", "p3.24xlarge", 1})
}

// multiGPU filters out single-GPU configurations (which have no
// interconnect stall by construction).
func multiGPU(cfgs []clusterConfig) []clusterConfig {
	var out []clusterConfig
	for _, c := range cfgs {
		it, err := cloud.ByName(c.instance)
		if err != nil {
			continue
		}
		if it.NGPUs*c.count > 1 {
			out = append(out, c)
		}
	}
	return out
}

func instanceOf(c clusterConfig) (cloud.InstanceType, error) {
	return cloud.ByName(c.instance)
}

func newJob(m *dnn.Model, batch int) (workload.Job, error) {
	return workload.NewJob(m, batch)
}

// cellErr renders an error cell: OOM cells are expected for oversize
// batches; anything else propagates.
func cellErr(err error) (string, error) {
	var oom *core.OOMError
	if errors.As(err, &oom) {
		return "OOM", nil
	}
	return "", err
}

func smallModels() []*dnn.Model { return dnn.SmallModels() }

// largeJobs returns the paper's large-model workload cells: ResNet50 and
// VGG11 at two batch sizes plus BERT-large at its maximum batch.
func largeJobs() ([]workload.Job, error) {
	var jobs []workload.Job
	for _, m := range dnn.LargeImageModels() {
		for _, bs := range workload.LargeBatchSizes() {
			j, err := newJob(m, bs)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	bert, err := newJob(dnn.BERTLarge(), 4)
	if err != nil {
		return nil, err
	}
	return append(jobs, bert), nil
}

func jobLabel(j workload.Job) string {
	return fmt.Sprintf("%s/bs%d", j.Model.Name, j.BatchPerGPU)
}
