package experiments

import (
	"fmt"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/workload"
)

// jobsFor pairs each model with one batch size.
func jobsFor(models []*dnn.Model, batch int) ([]workload.Job, error) {
	var jobs []workload.Job
	for _, m := range models {
		j, err := newJob(m, batch)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func configLabels(cfgs []clusterConfig) []string {
	labels := make([]string, len(cfgs))
	for i, c := range cfgs {
		labels[i] = c.label
	}
	return labels
}

// assembleRows fills tables (one cell string per table per grid entry)
// from the concurrently computed grid, in fixed job-then-config order.
func assembleRows(grid [][]string, jobs []workload.Job, nConfigs int, tables ...*report.Table) {
	for ji, job := range jobs {
		rows := make([][]string, len(tables))
		for ti := range rows {
			rows[ti] = []string{jobLabel(job)}
		}
		for ci := 0; ci < nConfigs; ci++ {
			cell := grid[ji*nConfigs+ci]
			for ti := range tables {
				rows[ti] = append(rows[ti], cell[ti])
			}
		}
		for ti, t := range tables {
			t.AddRow(rows[ti]...)
		}
	}
}

// dataStallPair produces the CPU-stall and disk-stall tables of a Fig
// 4/8/9-style panel.
func dataStallPair(cfg Config, title string, jobs []workload.Job, configs []clusterConfig) ([]*report.Table, error) {
	cols := append([]string{"model"}, configLabels(configs)...)
	cpu := report.NewTable(title+" - CPU stall % of training time", cols...)
	disk := report.NewTable(title+" - disk stall % of training time", cols...)
	grid, err := gridCells(cfg, jobs, configs, 2, func(p *core.Profiler, job workload.Job, it cloud.InstanceType, cc clusterConfig) ([]string, error) {
		ds, err := p.ClusterDataStalls(job, it, cc.count)
		if err != nil {
			return nil, err
		}
		return []string{report.Pct(ds.PrepPct), report.Pct(ds.FetchPct)}, nil
	})
	if err != nil {
		return nil, err
	}
	assembleRows(grid, jobs, len(configs), cpu, disk)
	return []*report.Table{cpu, disk}, nil
}

// icStallTable produces a Fig 5/11-style interconnect-stall table.
func icStallTable(cfg Config, title string, jobs []workload.Job, configs []clusterConfig) (*report.Table, error) {
	cols := append([]string{"model"}, configLabels(configs)...)
	t := report.NewTable(title, cols...)
	grid, err := gridCells(cfg, jobs, configs, 1, func(p *core.Profiler, job workload.Job, it cloud.InstanceType, cc clusterConfig) ([]string, error) {
		s, err := p.ClusterCommStall(job, it, cc.count)
		if err != nil {
			return nil, err
		}
		return []string{report.Pct(s.Pct)}, nil
	})
	if err != nil {
		return nil, err
	}
	assembleRows(grid, jobs, len(configs), t)
	return t, nil
}

// timeCostPair produces the epoch-time and epoch-cost tables of a Fig
// 6/10/12/14-style panel.
func timeCostPair(cfg Config, title string, jobs []workload.Job, configs []clusterConfig) ([]*report.Table, error) {
	cols := append([]string{"model"}, configLabels(configs)...)
	times := report.NewTable(title+" - training time per epoch", cols...)
	costs := report.NewTable(title+" - training cost per epoch", cols...)
	grid, err := gridCells(cfg, jobs, configs, 2, func(p *core.Profiler, job workload.Job, it cloud.InstanceType, cc clusterConfig) ([]string, error) {
		est, err := p.Epoch(job, it, cc.count)
		if err != nil {
			return nil, err
		}
		return []string{report.Dur(est.Time), report.Money(est.Cost)}, nil
	})
	if err != nil {
		return nil, err
	}
	assembleRows(grid, jobs, len(configs), times, costs)
	return []*report.Table{times, costs}, nil
}

// Fig4 regenerates the P2 CPU/disk stall panels.
func Fig4(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, bs := range []int{32, 128} {
		jobs, err := jobsFor(smallModels(), bs)
		if err != nil {
			return nil, err
		}
		pair, err := dataStallPair(cfg, fmt.Sprintf("Fig 4, P2, batch %d", bs), jobs, p2Configs())
		if err != nil {
			return nil, err
		}
		tables = append(tables, pair...)
	}
	return tables, nil
}

// Fig5 regenerates the interconnect-stall panels for small models on P2
// and P3.
func Fig5(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, family := range []struct {
		name    string
		configs []clusterConfig
	}{
		{"P2 (K80)", multiGPU(p2Configs())},
		{"P3 (V100)", multiGPU(p3Configs())},
	} {
		for _, bs := range []int{32, 128} {
			jobs, err := jobsFor(smallModels(), bs)
			if err != nil {
				return nil, err
			}
			t, err := icStallTable(cfg, fmt.Sprintf("Fig 5, %s, batch %d - I/C stall %% of single-GPU time", family.name, bs), jobs, family.configs)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig6 regenerates the P2 small-model time/cost panels.
func Fig6(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, bs := range []int{32, 128} {
		jobs, err := jobsFor(smallModels(), bs)
		if err != nil {
			return nil, err
		}
		pair, err := timeCostPair(cfg, fmt.Sprintf("Fig 6, P2, batch %d", bs), jobs, p2Configs())
		if err != nil {
			return nil, err
		}
		tables = append(tables, pair...)
	}
	return tables, nil
}

// Fig7 regenerates the per-GPU PCIe bandwidth measurement on P2.
func Fig7(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	t := report.NewTable("Fig 7: per-GPU PCIe bandwidth measured in P2 (all GPUs concurrent)",
		"instance", "GPUs", "per-GPU bandwidth", "vs network rating")
	names := []string{"p2.xlarge", "p2.8xlarge", "p2.16xlarge"}
	rows := make([][]string, len(names))
	err := cfg.forEach(len(names), func(i int) error {
		it, err := cloud.ByName(names[i])
		if err != nil {
			return err
		}
		probe, err := p.PCIeBandwidthProbe(it)
		if err != nil {
			return err
		}
		verdict := "above"
		if probe.MinPerGPU() < it.NetworkGbps*1e9/8 {
			verdict = "below"
		}
		rows[i] = []string{names[i], fmt.Sprintf("%d", it.NGPUs), report.GBps(probe.MinPerGPU()),
			fmt.Sprintf("%s %s Gbps", verdict, it.NetworkDesc)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}

// Fig8 regenerates the P3 small-model CPU/disk stall panels.
func Fig8(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, bs := range []int{32, 128} {
		jobs, err := jobsFor(smallModels(), bs)
		if err != nil {
			return nil, err
		}
		pair, err := dataStallPair(cfg, fmt.Sprintf("Fig 8, P3, batch %d", bs), jobs, p3Configs())
		if err != nil {
			return nil, err
		}
		tables = append(tables, pair...)
	}
	return tables, nil
}

// Fig9 regenerates the P3 large-model CPU/disk stall panels.
func Fig9(cfg Config) ([]*report.Table, error) {
	jobs, err := largeJobs()
	if err != nil {
		return nil, err
	}
	return dataStallPair(cfg, "Fig 9, P3 large models", jobs, p3LargeConfigs())
}

// Fig10 regenerates the P3 small-model time/cost panels.
func Fig10(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, bs := range []int{32, 128} {
		jobs, err := jobsFor(smallModels(), bs)
		if err != nil {
			return nil, err
		}
		pair, err := timeCostPair(cfg, fmt.Sprintf("Fig 10, P3, batch %d", bs), jobs, p3Configs())
		if err != nil {
			return nil, err
		}
		tables = append(tables, pair...)
	}
	return tables, nil
}

// Fig11 regenerates the P3 interconnect-stall panels for small and large
// models.
func Fig11(cfg Config) ([]*report.Table, error) {
	var tables []*report.Table
	for _, bs := range []int{32, 128} {
		jobs, err := jobsFor(smallModels(), bs)
		if err != nil {
			return nil, err
		}
		t, err := icStallTable(cfg, fmt.Sprintf("Fig 11a, P3 small models, batch %d - I/C stall %%", bs), jobs, multiGPU(p3Configs()))
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	large, err := largeJobs()
	if err != nil {
		return nil, err
	}
	t, err := icStallTable(cfg, "Fig 11b, P3 large models - I/C stall %", large, multiGPU(p3LargeConfigs()))
	if err != nil {
		return nil, err
	}
	return append(tables, t), nil
}

// Fig12 regenerates the P3 large-model time/cost panels.
func Fig12(cfg Config) ([]*report.Table, error) {
	jobs, err := largeJobs()
	if err != nil {
		return nil, err
	}
	return timeCostPair(cfg, "Fig 12, P3 large models", jobs, p3LargeConfigs())
}

// Fig13 regenerates the network-stall sweep of two p3.8xlarge instances.
// The single-instance baseline depends on the NVLink-slice lottery
// (§V-B1), so both outcomes are reported; the paper's "up to 500%" lands
// between them.
func Fig13(cfg Config) ([]*report.Table, error) {
	degraded := cfg.profiler()
	clean := cfg.profiler(core.WithSlicePolicy(cloud.SliceClean))
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		return nil, err
	}
	resnet, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	vgg, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 13: network stall % of two p3.8xlarge instances (vs one)",
		"batch size",
		resnet.Name+" (sliced)", vgg.Name+" (sliced)",
		resnet.Name+" (whole)", vgg.Name+" (whole)")
	// One cell per (batch size, slice outcome, model); the two slice
	// outcomes use distinct profilers, so all cells are independent.
	batches := workload.SmallBatchSizes()
	profilers := []*core.Profiler{degraded, clean}
	models := []*dnn.Model{resnet, vgg}
	perRow := len(profilers) * len(models)
	cells := make([]string, len(batches)*perRow)
	err = cfg.forEach(len(cells), func(i int) error {
		bs := batches[i/perRow]
		p := profilers[(i%perRow)/len(models)]
		m := models[i%len(models)]
		job, err := newJob(m, bs)
		if err != nil {
			return err
		}
		s, err := p.NetworkStall(job, it, 2)
		if err != nil {
			cell, cerr := cellErr(err)
			if cerr != nil {
				return cerr
			}
			cells[i] = cell
			return nil
		}
		cells[i] = report.Pct(s.Pct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, bs := range batches {
		row := append([]string{fmt.Sprintf("%d", bs)}, cells[bi*perRow:(bi+1)*perRow]...)
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}

// Fig14 regenerates the P2-vs-P3 per-epoch time and cost comparison.
func Fig14(cfg Config) ([]*report.Table, error) {
	configs := []clusterConfig{
		{"p2.xlarge", "p2.xlarge", 1},
		{"p2.8xlarge", "p2.8xlarge", 1},
		{"p2.16xlarge", "p2.16xlarge", 1},
		{"p3.2xlarge", "p3.2xlarge", 1},
		{"p3.8xlarge", "p3.8xlarge", 1},
		{"p3.16xlarge", "p3.16xlarge", 1},
	}
	jobs, err := jobsFor(smallModels(), 64)
	if err != nil {
		return nil, err
	}
	return timeCostPair(cfg, "Fig 14, P2 vs P3, batch 64", jobs, configs)
}

// Fig15 regenerates the GPU memory utilization comparison.
func Fig15(cfg Config) ([]*report.Table, error) {
	instances := []string{"p2.xlarge", "p2.8xlarge", "p2.16xlarge", "p3.2xlarge", "p3.8xlarge", "p3.16xlarge"}
	resnet, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	models := []*dnn.Model{dnn.ShuffleNetV2(), resnet}
	t := report.NewTable("Fig 15: GPU memory utilization %, P2 vs P3",
		append([]string{"model/batch"}, instances...)...)
	for _, m := range models {
		for _, bs := range []int{32, 64, 128} {
			job, err := newJob(m, bs)
			if err != nil {
				return nil, err
			}
			row := []string{jobLabel(job)}
			for _, name := range instances {
				it, err := cloud.ByName(name)
				if err != nil {
					return nil, err
				}
				row = append(row, report.Pct(core.MemoryUtilization(job, it)))
			}
			t.AddRow(row...)
		}
	}
	return []*report.Table{t}, nil
}
