package experiments

import (
	"fmt"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
)

// microVariant is one synthetic model of the §VI-A study.
type microVariant struct {
	series string
	model  *dnn.Model
}

func microVariants() ([]microVariant, error) {
	var out []microVariant
	for _, depth := range []int{18, 34, 50, 101, 152} {
		plain, err := dnn.ResNet(depth)
		if err != nil {
			return nil, err
		}
		noBN, err := dnn.ResNet(depth, dnn.ResNetWithoutBatchNorm())
		if err != nil {
			return nil, err
		}
		noRes, err := dnn.ResNet(depth, dnn.ResNetWithoutResidual())
		if err != nil {
			return nil, err
		}
		out = append(out,
			microVariant{"resnet", plain},
			microVariant{"resnet-nobn", noBN},
			microVariant{"resnet-noskip", noRes},
		)
	}
	for _, depth := range []int{11, 13, 16, 19} {
		vgg, err := dnn.VGG(depth)
		if err != nil {
			return nil, err
		}
		out = append(out, microVariant{"vgg", vgg})
	}
	return out, nil
}

// Fig16 regenerates the micro characterization: interconnect and network
// stalls of ResNet/VGG variants as their layer counts vary, all on
// p3.16xlarge with per-GPU batch 32 (§VI-A).
func Fig16(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	variants, err := microVariants()
	if err != nil {
		return nil, err
	}
	ic := report.NewTable("Fig 16a: I/C stall % vs number of layers (p3.16xlarge, batch 32)",
		"series", "model", "param layers", "gradient MB", "I/C stall %", "I/C stall time")
	nw := report.NewTable("Fig 16b: N/W stall % vs number of layers (2 nodes, batch 32)",
		"series", "model", "param layers", "gradient MB", "N/W stall %", "N/W stall time")
	for _, v := range variants {
		job, err := newJob(v.model, 32)
		if err != nil {
			return nil, err
		}
		ics, err := p.InterconnectStall(job, it)
		if err != nil {
			return nil, fmt.Errorf("fig16 I/C %s: %w", v.model.Name, err)
		}
		nws, err := p.NetworkStall(job, it, 2)
		if err != nil {
			return nil, fmt.Errorf("fig16 N/W %s: %w", v.model.Name, err)
		}
		ic.AddRow(v.series, v.model.Name,
			fmt.Sprintf("%d", v.model.NumParamLayers()),
			fmt.Sprintf("%.1f", v.model.GradientBytes()/1e6),
			report.Pct(ics.Pct), report.Dur(ics.Stall))
		nw.AddRow(v.series, v.model.Name,
			fmt.Sprintf("%d", v.model.NumParamLayers()),
			fmt.Sprintf("%.1f", v.model.GradientBytes()/1e6),
			report.Pct(nws.Pct), report.Dur(nws.Stall))
	}
	return []*report.Table{ic, nw}, nil
}

// LargeModelOnP2 reproduces §V-A's in-text pathology: training ResNet50
// on p2.16xlarge suffers extreme interconnect stalls and costs a
// multiple of the P3 price per epoch.
func LargeModelOnP2(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	resnet50, err := dnn.ResNet(50)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("SV-A: ResNet50 on P2 vs P3 (the large-model pathology)",
		"instance", "batch", "I/C stall %", "epoch time", "epoch cost", "cost vs p3.16xlarge")
	var p3Cost float64
	type cell struct {
		instance string
		batch    int
	}
	cells := []cell{
		{"p3.16xlarge", 32},
		{"p2.16xlarge", 32},
		{"p2.16xlarge", 8},
	}
	for _, c := range cells {
		it, err := cloud.ByName(c.instance)
		if err != nil {
			return nil, err
		}
		job, err := newJob(resnet50, c.batch)
		if err != nil {
			return nil, err
		}
		ic, err := p.InterconnectStall(job, it)
		if err != nil {
			return nil, err
		}
		est, err := p.Epoch(job, it, 1)
		if err != nil {
			return nil, err
		}
		if c.instance == "p3.16xlarge" {
			p3Cost = est.Cost
		}
		rel := "1.0x"
		if p3Cost > 0 {
			rel = fmt.Sprintf("%.1fx", est.Cost/p3Cost)
		}
		t.AddRow(c.instance, fmt.Sprintf("%d", c.batch), report.Pct(ic.Pct),
			report.Dur(est.Time), report.Money(est.Cost), rel)
	}
	return []*report.Table{t}, nil
}

// BERT24xl reproduces §V-B's in-text comparison: BERT-large on
// p3.24xlarge at doubled batch size improves time per epoch but costs
// more than the 16xlarge run.
func BERT24xl(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	bert := dnn.BERTLarge()
	t := report.NewTable("SV-B: BERT-large, p3.16xlarge vs p3.24xlarge",
		"instance", "batch", "epoch time", "epoch cost", "time vs 16xlarge bs4")
	var base float64
	for _, c := range []struct {
		instance string
		batch    int
	}{
		{"p3.16xlarge", 4},
		{"p3.24xlarge", 4},
		{"p3.24xlarge", 8},
	} {
		it, err := cloud.ByName(c.instance)
		if err != nil {
			return nil, err
		}
		job, err := newJob(bert, c.batch)
		if err != nil {
			return nil, err
		}
		est, err := p.Epoch(job, it, 1)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = est.Time.Seconds()
		}
		t.AddRow(c.instance, fmt.Sprintf("%d", c.batch), report.Dur(est.Time),
			report.Money(est.Cost),
			fmt.Sprintf("%+.1f%%", 100*(est.Time.Seconds()-base)/base))
	}
	return []*report.Table{t}, nil
}

// PSvsAllReduce verifies §III's premise that parameter-server gradient
// exchange is strictly slower than collective all-reduce.
func PSvsAllReduce(cfg Config) ([]*report.Table, error) {
	ring := cfg.profiler()
	ps := cfg.profiler(core.WithCollectiveOptions(collective.WithAlgorithm(collective.ParameterServer)))
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	resnet, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	vgg, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("SIII: ring all-reduce vs parameter server (p3.16xlarge, batch 32)",
		"model", "ring I/C stall %", "PS I/C stall %", "PS/ring stall-time ratio")
	for _, m := range []*dnn.Model{resnet, vgg} {
		job, err := newJob(m, 32)
		if err != nil {
			return nil, err
		}
		r, err := ring.InterconnectStall(job, it)
		if err != nil {
			return nil, err
		}
		s, err := ps.InterconnectStall(job, it)
		if err != nil {
			return nil, err
		}
		ratio := "inf"
		if r.Stall > 0 {
			ratio = fmt.Sprintf("%.1fx", s.Stall.Seconds()/r.Stall.Seconds())
		}
		t.AddRow(m.Name, report.Pct(r.Pct), report.Pct(s.Pct), ratio)
	}
	return []*report.Table{t}, nil
}
