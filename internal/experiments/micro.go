package experiments

import (
	"fmt"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
)

// microVariant is one synthetic model of the §VI-A study.
type microVariant struct {
	series string
	model  *dnn.Model
}

func microVariants() ([]microVariant, error) {
	var out []microVariant
	for _, depth := range []int{18, 34, 50, 101, 152} {
		plain, err := dnn.ResNet(depth)
		if err != nil {
			return nil, err
		}
		noBN, err := dnn.ResNet(depth, dnn.ResNetWithoutBatchNorm())
		if err != nil {
			return nil, err
		}
		noRes, err := dnn.ResNet(depth, dnn.ResNetWithoutResidual())
		if err != nil {
			return nil, err
		}
		out = append(out,
			microVariant{"resnet", plain},
			microVariant{"resnet-nobn", noBN},
			microVariant{"resnet-noskip", noRes},
		)
	}
	for _, depth := range []int{11, 13, 16, 19} {
		vgg, err := dnn.VGG(depth)
		if err != nil {
			return nil, err
		}
		out = append(out, microVariant{"vgg", vgg})
	}
	return out, nil
}

// Fig16 regenerates the micro characterization: interconnect and network
// stalls of ResNet/VGG variants as their layer counts vary, all on
// p3.16xlarge with per-GPU batch 32 (§VI-A).
func Fig16(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	variants, err := microVariants()
	if err != nil {
		return nil, err
	}
	ic := report.NewTable("Fig 16a: I/C stall % vs number of layers (p3.16xlarge, batch 32)",
		"series", "model", "param layers", "gradient MB", "I/C stall %", "I/C stall time")
	nw := report.NewTable("Fig 16b: N/W stall % vs number of layers (2 nodes, batch 32)",
		"series", "model", "param layers", "gradient MB", "N/W stall %", "N/W stall time")
	type stalls struct {
		ic core.ICStall
		nw core.NWStall
	}
	cells := make([]stalls, len(variants))
	err = cfg.forEach(len(variants), func(i int) error {
		v := variants[i]
		job, err := newJob(v.model, 32)
		if err != nil {
			return err
		}
		if cells[i].ic, err = p.InterconnectStall(job, it); err != nil {
			return fmt.Errorf("fig16 I/C %s: %w", v.model.Name, err)
		}
		if cells[i].nw, err = p.NetworkStall(job, it, 2); err != nil {
			return fmt.Errorf("fig16 N/W %s: %w", v.model.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		ic.AddRow(v.series, v.model.Name,
			fmt.Sprintf("%d", v.model.NumParamLayers()),
			fmt.Sprintf("%.1f", v.model.GradientBytes()/1e6),
			report.Pct(cells[i].ic.Pct), report.Dur(cells[i].ic.Stall))
		nw.AddRow(v.series, v.model.Name,
			fmt.Sprintf("%d", v.model.NumParamLayers()),
			fmt.Sprintf("%.1f", v.model.GradientBytes()/1e6),
			report.Pct(cells[i].nw.Pct), report.Dur(cells[i].nw.Stall))
	}
	return []*report.Table{ic, nw}, nil
}

// LargeModelOnP2 reproduces §V-A's in-text pathology: training ResNet50
// on p2.16xlarge suffers extreme interconnect stalls and costs a
// multiple of the P3 price per epoch.
func LargeModelOnP2(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	resnet50, err := dnn.ResNet(50)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("SV-A: ResNet50 on P2 vs P3 (the large-model pathology)",
		"instance", "batch", "I/C stall %", "epoch time", "epoch cost", "cost vs p3.16xlarge")
	var p3Cost float64
	type cell struct {
		instance string
		batch    int
	}
	cells := []cell{
		{"p3.16xlarge", 32},
		{"p2.16xlarge", 32},
		{"p2.16xlarge", 8},
	}
	// Measure all cells concurrently; the cost-relative column depends
	// on the p3 baseline, so rows are derived serially afterwards.
	type measured struct {
		ic  core.ICStall
		est core.EpochEstimate
	}
	ms := make([]measured, len(cells))
	err = cfg.forEach(len(cells), func(i int) error {
		it, err := cloud.ByName(cells[i].instance)
		if err != nil {
			return err
		}
		job, err := newJob(resnet50, cells[i].batch)
		if err != nil {
			return err
		}
		if ms[i].ic, err = p.InterconnectStall(job, it); err != nil {
			return err
		}
		ms[i].est, err = p.Epoch(job, it, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if c.instance == "p3.16xlarge" {
			p3Cost = ms[i].est.Cost
		}
		rel := "1.0x"
		if p3Cost > 0 {
			rel = fmt.Sprintf("%.1fx", ms[i].est.Cost/p3Cost)
		}
		t.AddRow(c.instance, fmt.Sprintf("%d", c.batch), report.Pct(ms[i].ic.Pct),
			report.Dur(ms[i].est.Time), report.Money(ms[i].est.Cost), rel)
	}
	return []*report.Table{t}, nil
}

// BERT24xl reproduces §V-B's in-text comparison: BERT-large on
// p3.24xlarge at doubled batch size improves time per epoch but costs
// more than the 16xlarge run.
func BERT24xl(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	bert := dnn.BERTLarge()
	t := report.NewTable("SV-B: BERT-large, p3.16xlarge vs p3.24xlarge",
		"instance", "batch", "epoch time", "epoch cost", "time vs 16xlarge bs4")
	cells := []struct {
		instance string
		batch    int
	}{
		{"p3.16xlarge", 4},
		{"p3.24xlarge", 4},
		{"p3.24xlarge", 8},
	}
	ests := make([]core.EpochEstimate, len(cells))
	err := cfg.forEach(len(cells), func(i int) error {
		it, err := cloud.ByName(cells[i].instance)
		if err != nil {
			return err
		}
		job, err := newJob(bert, cells[i].batch)
		if err != nil {
			return err
		}
		ests[i], err = p.Epoch(job, it, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	base := ests[0].Time.Seconds()
	for i, c := range cells {
		t.AddRow(c.instance, fmt.Sprintf("%d", c.batch), report.Dur(ests[i].Time),
			report.Money(ests[i].Cost),
			fmt.Sprintf("%+.1f%%", 100*(ests[i].Time.Seconds()-base)/base))
	}
	return []*report.Table{t}, nil
}

// PSvsAllReduce verifies §III's premise that parameter-server gradient
// exchange is strictly slower than collective all-reduce.
func PSvsAllReduce(cfg Config) ([]*report.Table, error) {
	ring := cfg.profiler()
	ps := cfg.profiler(core.WithCollectiveOptions(collective.WithAlgorithm(collective.ParameterServer)))
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	resnet, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	vgg, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("SIII: ring all-reduce vs parameter server (p3.16xlarge, batch 32)",
		"model", "ring I/C stall %", "PS I/C stall %", "PS/ring stall-time ratio")
	// One cell per (model, algorithm): the two algorithms live on
	// separate profilers, so all four measurements are independent.
	models := []*dnn.Model{resnet, vgg}
	profilers := []*core.Profiler{ring, ps}
	cells := make([]core.ICStall, len(models)*len(profilers))
	err = cfg.forEach(len(cells), func(i int) error {
		job, err := newJob(models[i/len(profilers)], 32)
		if err != nil {
			return err
		}
		cells[i], err = profilers[i%len(profilers)].InterconnectStall(job, it)
		return err
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		r, s := cells[mi*len(profilers)], cells[mi*len(profilers)+1]
		ratio := "inf"
		if r.Stall > 0 {
			ratio = fmt.Sprintf("%.1fx", s.Stall.Seconds()/r.Stall.Seconds())
		}
		t.AddRow(m.Name, report.Pct(r.Pct), report.Pct(s.Pct), ratio)
	}
	return []*report.Table{t}, nil
}
