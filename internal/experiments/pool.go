package experiments

import (
	"fmt"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/report"
	"stash/internal/workload"
)

// forEach runs fn(0..n-1) on a worker pool bounded by the config's
// Parallelism (0 or negative = GOMAXPROCS, 1 = serial). Failures are
// deterministic:
// the lowest-index error wins regardless of completion order. The
// config's context (WithContext) cancels the sweep between cells.
func (c Config) forEach(n int, fn func(i int) error) error {
	return core.ForEachCtx(c.context(), c.normalize().Parallelism, n, fn)
}

// gridCells computes the jobs x configs cell grid of a figure panel
// concurrently: cell is called once per (job, cluster config) pair and
// returns one rendered string per output table. OOM cells render as
// "OOM" in every table; other errors abort the panel. The grid comes
// back indexed [job*len(configs)+config], so callers assemble rows in
// fixed order and the rendered tables are byte-identical at any
// parallelism.
func gridCells(cfg Config, jobs []workload.Job, configs []clusterConfig, tables int,
	cell func(p *core.Profiler, job workload.Job, it cloud.InstanceType, cc clusterConfig) ([]string, error),
) ([][]string, error) {
	p := cfg.profiler()
	grid := make([][]string, len(jobs)*len(configs))
	err := cfg.forEach(len(grid), func(i int) error {
		job, cc := jobs[i/len(configs)], configs[i%len(configs)]
		it, err := instanceOf(cc)
		if err != nil {
			return err
		}
		out, err := cell(p, job, it, cc)
		if err != nil {
			s, cerr := cellErr(err)
			if cerr != nil {
				return fmt.Errorf("%s on %s: %w", jobLabel(job), cc.label, cerr)
			}
			out = make([]string, tables)
			for t := range out {
				out[t] = s
			}
		}
		grid[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}

// RunResult is one experiment's outcome from RunMany.
type RunResult struct {
	Experiment Experiment
	Tables     []*report.Table
	Elapsed    time.Duration
	Err        error
}

// RunMany executes experiments on a worker pool bounded by
// cfg.Parallelism. All experiments share the configuration's memoized
// profiler, so overlapping cells (every figure re-measures the same
// step-1 baselines, for example) simulate once; results come back in
// input order so callers print in paper order.
func RunMany(cfg Config, exps []Experiment) []RunResult {
	results := make([]RunResult, len(exps))
	// Experiment errors are reported per result, never aborting the
	// sweep, so forEach's own error path stays unused here.
	_ = cfg.forEach(len(exps), func(i int) error {
		start := time.Now() //lint:allow wallclock per-experiment Elapsed metric, reported alongside tables but never inside one
		tables, err := exps[i].Run(cfg)
		results[i] = RunResult{
			Experiment: exps[i],
			Tables:     tables,
			//lint:allow wallclock per-experiment Elapsed metric, reported alongside tables but never inside one
			Elapsed: time.Since(start),
			Err:     err,
		}
		return nil
	})
	return results
}
