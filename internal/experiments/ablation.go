package experiments

import (
	"fmt"
	"time"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/train"
	"stash/internal/workload"
)

// rawRun executes a single training scenario directly on the substrate
// (bypassing the profiler) so ablations can vary train.Config knobs the
// profiler fixes.
func rawRun(cfg Config, instance string, count int, job workload.Job, policy cloud.SlicePolicy, mutate func(*train.Config)) (*train.Result, error) {
	c := cfg.normalize()
	it, err := cloud.ByName(instance)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net := simnet.New(eng)
	top, err := cloud.NewProvisioner(policy, c.Seed).Provision(net, it, count)
	if err != nil {
		return nil, err
	}
	tc := train.Config{
		Job:            job,
		Topology:       top,
		Iterations:     c.Iterations,
		Warmup:         2,
		Synthetic:      true,
		DisableOverlap: !top.SupportsAsyncCollectives(),
	}
	if mutate != nil {
		mutate(&tc)
	}
	return train.Run(eng, net, tc)
}

// AblateOverlap quantifies what communication/computation overlap buys on
// a whole NVLink crossbar: the design choice behind the simulator's
// additive cost model on PCIe paths (DESIGN.md §5.3).
func AblateOverlap(cfg Config) ([]*report.Table, error) {
	t := report.NewTable("EXT ablation: communication/computation overlap (p3.16xlarge, batch 32)",
		"model", "overlapped iter", "serialized iter", "overlap saves")
	for _, name := range []string{"resnet50", "vgg11"} {
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		job, err := newJob(m, 32)
		if err != nil {
			return nil, err
		}
		over, err := rawRun(cfg, "p3.16xlarge", 1, job, cloud.SliceDegraded, func(tc *train.Config) {
			tc.DisableOverlap = false
		})
		if err != nil {
			return nil, err
		}
		serial, err := rawRun(cfg, "p3.16xlarge", 1, job, cloud.SliceDegraded, func(tc *train.Config) {
			tc.DisableOverlap = true
		})
		if err != nil {
			return nil, err
		}
		saving := 100 * (serial.PerIteration - over.PerIteration).Seconds() / serial.PerIteration.Seconds()
		t.AddRow(m.Name, report.Dur(over.PerIteration), report.Dur(serial.PerIteration),
			report.Pct(saving))
	}
	return []*report.Table{t}, nil
}

// AblateBucketSize sweeps DDP's gradient bucket size: small buckets pay
// per-call latency, huge buckets lose overlap and pipelining.
func AblateBucketSize(cfg Config) ([]*report.Table, error) {
	m, err := dnn.ResNet(152)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("EXT ablation: gradient bucket size (resnet152, batch 32)",
		"bucketing", "buckets", "p3.16xlarge iter", "p3.8xlarge*2 iter")
	type bucketing struct {
		label string
		bytes float64 // 0 = per-layer
	}
	for _, bk := range []bucketing{
		{"per-layer", 0},
		{"5 MB", 5e6},
		{"25 MB (DDP default)", 25e6},
		{"100 MB", 100e6},
	} {
		var buckets []collective.Bucket
		if bk.bytes == 0 {
			buckets = collective.PerLayerBuckets(m)
		} else {
			buckets, err = collective.SizedBuckets(m, bk.bytes)
			if err != nil {
				return nil, err
			}
		}
		mutate := func(tc *train.Config) { tc.Buckets = buckets }
		intra, err := rawRun(cfg, "p3.16xlarge", 1, job, cloud.SliceDegraded, mutate)
		if err != nil {
			return nil, err
		}
		inter, err := rawRun(cfg, "p3.8xlarge", 2, job, cloud.SliceDegraded, mutate)
		if err != nil {
			return nil, err
		}
		t.AddRow(bk.label, fmt.Sprintf("%d", len(buckets)),
			report.Dur(intra.PerIteration), report.Dur(inter.PerIteration))
	}
	return []*report.Table{t}, nil
}

// AblateCompression sweeps lossy gradient compression on the
// network-bound configuration: the remedy the communication-reduction
// literature (§III) proposes for exactly the stalls Stash measures.
func AblateCompression(cfg Config) ([]*report.Table, error) {
	m, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("EXT ablation: gradient compression (vgg11, 2x p3.8xlarge, batch 32)",
		"compression", "iter time", "comm wait", "vs uncompressed")
	var base time.Duration
	for _, ratio := range []float64{1, 0.5, 0.25, 0.1} {
		res, err := rawRun(cfg, "p3.8xlarge", 2, job, cloud.SliceDegraded, func(tc *train.Config) {
			tc.CompressionRatio = ratio
		})
		if err != nil {
			return nil, err
		}
		if ratio == 1 {
			base = res.PerIteration
		}
		t.AddRow(fmt.Sprintf("%.0fx", 1/ratio), report.Dur(res.PerIteration),
			report.Dur(res.CommWaitMax/time.Duration(res.Iterations)),
			fmt.Sprintf("%.2fx", base.Seconds()/res.PerIteration.Seconds()))
	}
	return []*report.Table{t}, nil
}

// SliceLottery studies the p3.8xlarge crossbar lottery the paper calls
// "probabilistic in nature" (§V-B1): the interconnect stall a tenant
// should expect across many provisioning draws.
func SliceLottery(cfg Config) ([]*report.Table, error) {
	m, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		return nil, err
	}
	const draws = 12
	minPct, maxPct, sumPct := 1e9, 0.0, 0.0
	for d := 0; d < draws; d++ {
		p := core.New(
			core.WithIterations(cfg.normalize().Iterations),
			core.WithSlicePolicy(cloud.SliceLottery),
			core.WithSeed(cfg.normalize().Seed+int64(d)),
		)
		s, err := p.InterconnectStall(job, it)
		if err != nil {
			return nil, err
		}
		sumPct += s.Pct
		if s.Pct < minPct {
			minPct = s.Pct
		}
		if s.Pct > maxPct {
			maxPct = s.Pct
		}
	}
	t := report.NewTable("EXT: p3.8xlarge NVLink slice lottery (resnet18, batch 32)",
		"draws", "mean I/C stall", "best draw", "worst draw", "worst/best")
	t.AddRow(fmt.Sprintf("%d", draws), report.Pct(sumPct/draws),
		report.Pct(minPct), report.Pct(maxPct),
		fmt.Sprintf("%.1fx", maxPct/minPct))
	return []*report.Table{t}, nil
}

// MultiEpoch shows the paper's §I claim in motion: DRAM caching
// eliminates fetch stalls after the first epoch, while communication
// stalls recur every iteration forever.
func MultiEpoch(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	m, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	est, err := p.Epoch(job, it, 1)
	if err != nil {
		return nil, err
	}
	ic, err := p.InterconnectStall(job, it)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("EXT: stalls across epochs (resnet18, p3.16xlarge, batch 32)",
		"epoch", "per-iteration", "fetch component", "comm component")
	commPart := ic.Stall
	for epoch := 1; epoch <= 5; epoch++ {
		iter := est.WarmIteration
		fetch := time.Duration(0)
		if epoch == 1 {
			iter = est.ColdIteration
			fetch = est.ColdIteration - est.WarmIteration
		}
		t.AddRow(fmt.Sprintf("%d", epoch), report.Dur(iter), report.Dur(fetch), report.Dur(commPart))
	}
	return []*report.Table{t}, nil
}

// P4Preview extends the characterization to the P4 family the paper
// leaves out ("a dedicated offering not considered herein"). The A100s
// finish epochs faster, but because the per-bucket hook cost is fixed,
// the *relative* interconnect stall actually grows on the faster GPUs --
// and the premium price keeps P3 on the cost-effectiveness frontier for
// these models.
func P4Preview(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	t := report.NewTable("EXT: P4 (A100/NVSwitch) vs P3 preview",
		"model", "instance", "I/C stall %", "epoch time", "epoch cost")
	for _, name := range []string{"resnet50", "bert-large"} {
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		batch := 32
		if name == "bert-large" {
			batch = 4
		}
		job, err := newJob(m, batch)
		if err != nil {
			return nil, err
		}
		for _, instance := range []string{"p3.16xlarge", "p4d.24xlarge"} {
			it, err := cloud.ByName(instance)
			if err != nil {
				return nil, err
			}
			ic, err := p.InterconnectStall(job, it)
			if err != nil {
				return nil, err
			}
			est, err := p.Epoch(job, it, 1)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, instance, report.Pct(ic.Pct), report.Dur(est.Time), report.Money(est.Cost))
		}
	}
	return []*report.Table{t}, nil
}
