package experiments

import (
	"fmt"
	"time"

	"stash/internal/cloud"
	"stash/internal/collective"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/report"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/train"
	"stash/internal/workload"
)

// rawRun executes a single training scenario directly on the substrate
// (bypassing the profiler) so ablations can vary train.Config knobs the
// profiler fixes.
func rawRun(cfg Config, instance string, count int, job workload.Job, policy cloud.SlicePolicy, mutate func(*train.Config)) (*train.Result, error) {
	c := cfg.normalize()
	it, err := cloud.ByName(instance)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net := simnet.New(eng)
	top, err := cloud.NewProvisioner(policy, c.Seed).Provision(net, it, count)
	if err != nil {
		return nil, err
	}
	tc := train.Config{
		Job:            job,
		Topology:       top,
		Iterations:     c.Iterations,
		Warmup:         2,
		Synthetic:      true,
		DisableOverlap: !top.SupportsAsyncCollectives(),
	}
	if mutate != nil {
		mutate(&tc)
	}
	return train.Run(eng, net, tc)
}

// AblateOverlap quantifies what communication/computation overlap buys on
// a whole NVLink crossbar: the design choice behind the simulator's
// additive cost model on PCIe paths (DESIGN.md §5.3).
func AblateOverlap(cfg Config) ([]*report.Table, error) {
	t := report.NewTable("EXT ablation: communication/computation overlap (p3.16xlarge, batch 32)",
		"model", "overlapped iter", "serialized iter", "overlap saves")
	names := []string{"resnet50", "vgg11"}
	// One cell per (model, overlap setting); rawRun builds a private
	// engine per cell, so all four simulate concurrently.
	results := make([]*train.Result, 2*len(names))
	err := cfg.forEach(len(results), func(i int) error {
		m, err := dnn.ByName(names[i/2])
		if err != nil {
			return err
		}
		job, err := newJob(m, 32)
		if err != nil {
			return err
		}
		disable := i%2 == 1
		results[i], err = rawRun(cfg, "p3.16xlarge", 1, job, cloud.SliceDegraded, func(tc *train.Config) {
			tc.DisableOverlap = disable
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		over, serial := results[2*ni], results[2*ni+1]
		saving := 100 * (serial.PerIteration - over.PerIteration).Seconds() / serial.PerIteration.Seconds()
		t.AddRow(name, report.Dur(over.PerIteration), report.Dur(serial.PerIteration),
			report.Pct(saving))
	}
	return []*report.Table{t}, nil
}

// AblateBucketSize sweeps DDP's gradient bucket size: small buckets pay
// per-call latency, huge buckets lose overlap and pipelining.
func AblateBucketSize(cfg Config) ([]*report.Table, error) {
	m, err := dnn.ResNet(152)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("EXT ablation: gradient bucket size (resnet152, batch 32)",
		"bucketing", "buckets", "p3.16xlarge iter", "p3.8xlarge*2 iter")
	type bucketing struct {
		label string
		bytes float64 // 0 = per-layer
	}
	bucketings := []bucketing{
		{"per-layer", 0},
		{"5 MB", 5e6},
		{"25 MB (DDP default)", 25e6},
		{"100 MB", 100e6},
	}
	type row struct {
		buckets      int
		intra, inter *train.Result
	}
	rows := make([]row, len(bucketings))
	err = cfg.forEach(len(bucketings), func(i int) error {
		bk := bucketings[i]
		var buckets []collective.Bucket
		var err error
		//lint:allow floatcmp 0 is the per-layer-bucketing sentinel literal, not a computed value
		if bk.bytes == 0 {
			buckets = collective.PerLayerBuckets(m)
		} else {
			buckets, err = collective.SizedBuckets(m, bk.bytes)
			if err != nil {
				return err
			}
		}
		mutate := func(tc *train.Config) { tc.Buckets = buckets }
		rows[i].buckets = len(buckets)
		if rows[i].intra, err = rawRun(cfg, "p3.16xlarge", 1, job, cloud.SliceDegraded, mutate); err != nil {
			return err
		}
		rows[i].inter, err = rawRun(cfg, "p3.8xlarge", 2, job, cloud.SliceDegraded, mutate)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, bk := range bucketings {
		t.AddRow(bk.label, fmt.Sprintf("%d", rows[i].buckets),
			report.Dur(rows[i].intra.PerIteration), report.Dur(rows[i].inter.PerIteration))
	}
	return []*report.Table{t}, nil
}

// AblateCompression sweeps lossy gradient compression on the
// network-bound configuration: the remedy the communication-reduction
// literature (§III) proposes for exactly the stalls Stash measures.
func AblateCompression(cfg Config) ([]*report.Table, error) {
	m, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("EXT ablation: gradient compression (vgg11, 2x p3.8xlarge, batch 32)",
		"compression", "iter time", "comm wait", "vs uncompressed")
	ratios := []float64{1, 0.5, 0.25, 0.1}
	results := make([]*train.Result, len(ratios))
	err = cfg.forEach(len(ratios), func(i int) error {
		var err error
		results[i], err = rawRun(cfg, "p3.8xlarge", 2, job, cloud.SliceDegraded, func(tc *train.Config) {
			tc.CompressionRatio = ratios[i]
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	base := results[0].PerIteration // ratio 1 = uncompressed baseline
	for i, ratio := range ratios {
		res := results[i]
		t.AddRow(fmt.Sprintf("%.0fx", 1/ratio), report.Dur(res.PerIteration),
			report.Dur(res.CommWaitMax/time.Duration(res.Iterations)),
			fmt.Sprintf("%.2fx", base.Seconds()/res.PerIteration.Seconds()))
	}
	return []*report.Table{t}, nil
}

// SliceLottery studies the p3.8xlarge crossbar lottery the paper calls
// "probabilistic in nature" (§V-B1): the interconnect stall a tenant
// should expect across many provisioning draws.
func SliceLottery(cfg Config) ([]*report.Table, error) {
	m, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		return nil, err
	}
	const draws = 12
	pcts := make([]float64, draws)
	err = cfg.forEach(draws, func(d int) error {
		p := core.New(
			core.WithIterations(cfg.normalize().Iterations),
			core.WithSlicePolicy(cloud.SliceLottery),
			core.WithSeed(cfg.normalize().Seed+int64(d)),
		)
		s, err := p.InterconnectStall(job, it)
		if err != nil {
			return err
		}
		pcts[d] = s.Pct
		return nil
	})
	if err != nil {
		return nil, err
	}
	minPct, maxPct, sumPct := 1e9, 0.0, 0.0
	for _, pct := range pcts {
		sumPct += pct
		if pct < minPct {
			minPct = pct
		}
		if pct > maxPct {
			maxPct = pct
		}
	}
	t := report.NewTable("EXT: p3.8xlarge NVLink slice lottery (resnet18, batch 32)",
		"draws", "mean I/C stall", "best draw", "worst draw", "worst/best")
	t.AddRow(fmt.Sprintf("%d", draws), report.Pct(sumPct/draws),
		report.Pct(minPct), report.Pct(maxPct),
		fmt.Sprintf("%.1fx", maxPct/minPct))
	return []*report.Table{t}, nil
}

// MultiEpoch shows the paper's §I claim in motion: DRAM caching
// eliminates fetch stalls after the first epoch, while communication
// stalls recur every iteration forever.
func MultiEpoch(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	m, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	job, err := newJob(m, 32)
	if err != nil {
		return nil, err
	}
	it, err := cloud.ByName("p3.16xlarge")
	if err != nil {
		return nil, err
	}
	// The two measurements overlap on the shared scenario cache, so run
	// them as a two-cell sweep.
	var est core.EpochEstimate
	var ic core.ICStall
	if err := cfg.forEach(2, func(i int) error {
		var err error
		if i == 0 {
			est, err = p.Epoch(job, it, 1)
		} else {
			ic, err = p.InterconnectStall(job, it)
		}
		return err
	}); err != nil {
		return nil, err
	}
	t := report.NewTable("EXT: stalls across epochs (resnet18, p3.16xlarge, batch 32)",
		"epoch", "per-iteration", "fetch component", "comm component")
	commPart := ic.Stall
	for epoch := 1; epoch <= 5; epoch++ {
		iter := est.WarmIteration
		fetch := time.Duration(0)
		if epoch == 1 {
			iter = est.ColdIteration
			fetch = est.ColdIteration - est.WarmIteration
		}
		t.AddRow(fmt.Sprintf("%d", epoch), report.Dur(iter), report.Dur(fetch), report.Dur(commPart))
	}
	return []*report.Table{t}, nil
}

// P4Preview extends the characterization to the P4 family the paper
// leaves out ("a dedicated offering not considered herein"). The A100s
// finish epochs faster, but because the per-bucket hook cost is fixed,
// the *relative* interconnect stall actually grows on the faster GPUs --
// and the premium price keeps P3 on the cost-effectiveness frontier for
// these models.
func P4Preview(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	t := report.NewTable("EXT: P4 (A100/NVSwitch) vs P3 preview",
		"model", "instance", "I/C stall %", "epoch time", "epoch cost")
	names := []string{"resnet50", "bert-large"}
	instances := []string{"p3.16xlarge", "p4d.24xlarge"}
	rows := make([][]string, len(names)*len(instances))
	err := cfg.forEach(len(rows), func(i int) error {
		name, instance := names[i/len(instances)], instances[i%len(instances)]
		m, err := dnn.ByName(name)
		if err != nil {
			return err
		}
		batch := 32
		if name == "bert-large" {
			batch = 4
		}
		job, err := newJob(m, batch)
		if err != nil {
			return err
		}
		it, err := cloud.ByName(instance)
		if err != nil {
			return err
		}
		ic, err := p.InterconnectStall(job, it)
		if err != nil {
			return err
		}
		est, err := p.Epoch(job, it, 1)
		if err != nil {
			return err
		}
		rows[i] = []string{m.Name, instance, report.Pct(ic.Pct), report.Dur(est.Time), report.Money(est.Cost)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}
