package experiments

import (
	"fmt"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/report"
)

// Claims re-verifies the paper's concluding observations (§VIII and the
// per-section recommendations) against live measurements and prints a
// verdict per claim — the reproduction, checking itself. Claims are
// mutually independent, so they fan out on the worker pool; rows are
// emitted in claim order.
func Claims(cfg Config) ([]*report.Table, error) {
	p := cfg.profiler()
	t := report.NewTable("Paper claims, re-verified on the simulated substrate",
		"claim", "paper says", "measured", "verdict")

	verdict := func(ok bool) string {
		if ok {
			return "HOLDS"
		}
		return "FAILS"
	}

	resnet18, err := dnn.ResNet(18)
	if err != nil {
		return nil, err
	}
	vgg11, err := dnn.VGG(11)
	if err != nil {
		return nil, err
	}
	jobR18, err := newJob(resnet18, 32)
	if err != nil {
		return nil, err
	}
	jobVGG, err := newJob(vgg11, 32)
	if err != nil {
		return nil, err
	}
	instance := func(name string) (cloud.InstanceType, error) { return cloud.ByName(name) }

	claims := []func() ([]string, error){
		// C1 (§V-A1 / Fig 7): p2.16xlarge per-GPU PCIe bandwidth collapses
		// below every other P2 type and below its own network rating.
		func() ([]string, error) {
			p16, err := instance("p2.16xlarge")
			if err != nil {
				return nil, err
			}
			p8, err := instance("p2.8xlarge")
			if err != nil {
				return nil, err
			}
			b16, err := p.PCIeBandwidthProbe(p16)
			if err != nil {
				return nil, err
			}
			b8, err := p.PCIeBandwidthProbe(p8)
			if err != nil {
				return nil, err
			}
			ok := b16.MinPerGPU() < b8.MinPerGPU() && b16.MinPerGPU() < p16.NetworkGbps*hw.GbpsBytes
			return []string{"C1 PCIe collapse on p2.16xlarge",
				"per-GPU bw below all P2 types and below network",
				fmt.Sprintf("%s vs %s (8xl), network %.1f GB/s",
					report.GBps(b16.MinPerGPU()), report.GBps(b8.MinPerGPU()), p16.NetworkGbps/8),
				verdict(ok)}, nil
		},

		// C2 (§VIII): interconnect overhead reaches a large share of total
		// training time on P2.
		func() ([]string, error) {
			alex, err := newJob(dnn.AlexNet(), 32)
			if err != nil {
				return nil, err
			}
			it, err := instance("p2.16xlarge")
			if err != nil {
				return nil, err
			}
			s, err := p.InterconnectStall(alex, it)
			if err != nil {
				return nil, err
			}
			frac := 100 * s.Stall.Seconds() / s.AllGPU.Seconds()
			return []string{"C2 I/C stall dominates P2 training",
				"up to ~90% of training time",
				fmt.Sprintf("%.0f%% of total (alexnet/bs32)", frac),
				verdict(frac > 50)}, nil
		},

		// C3 (§VIII / Fig 13): network stalls reach hundreds of percent.
		func() ([]string, error) {
			it, err := instance("p3.8xlarge")
			if err != nil {
				return nil, err
			}
			clean := cfg.profiler(core.WithSlicePolicy(cloud.SliceClean))
			s, err := clean.NetworkStall(jobVGG, it, 2)
			if err != nil {
				return nil, err
			}
			return []string{"C3 network stall up to 500%",
				"as high as 500% of single-instance time",
				fmt.Sprintf("%.0f%% (vgg11, whole-crossbar baseline)", s.Pct),
				verdict(s.Pct > 300)}, nil
		},

		// C4 (§V-A2): two 8xlarges beat one 16xlarge on P2, on both time
		// and cost.
		func() ([]string, error) {
			p8, err := instance("p2.8xlarge")
			if err != nil {
				return nil, err
			}
			p16, err := instance("p2.16xlarge")
			if err != nil {
				return nil, err
			}
			two, err := p.Epoch(jobR18, p8, 2)
			if err != nil {
				return nil, err
			}
			one, err := p.Epoch(jobR18, p16, 1)
			if err != nil {
				return nil, err
			}
			ok := two.Time < one.Time && two.Cost < one.Cost
			return []string{"C4 2x p2.8xlarge beats p2.16xlarge",
				"lower time and cost",
				fmt.Sprintf("%v/$%.2f vs %v/$%.2f", report.Dur(two.Time), two.Cost, report.Dur(one.Time), one.Cost),
				verdict(ok)}, nil
		},

		// C5 (§V-B1): the sliced p3.8xlarge has higher I/C stall than the
		// p3.16xlarge.
		func() ([]string, error) {
			p8, err := instance("p3.8xlarge")
			if err != nil {
				return nil, err
			}
			p16, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			s8, err := p.InterconnectStall(jobR18, p8)
			if err != nil {
				return nil, err
			}
			s16, err := p.InterconnectStall(jobR18, p16)
			if err != nil {
				return nil, err
			}
			return []string{"C5 p3.8xlarge slicing anomaly",
				"8xlarge stalls more than 16xlarge",
				fmt.Sprintf("%.1f%% vs %.1f%%", s8.Pct, s16.Pct),
				verdict(s8.Pct > s16.Pct)}, nil
		},

		// C6 (§V-B1): p3.24xlarge is not faster than p3.16xlarge (same
		// NVLink fabric).
		func() ([]string, error) {
			p16, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			p24, err := instance("p3.24xlarge")
			if err != nil {
				return nil, err
			}
			bert, err := newJob(dnn.BERTLarge(), 4)
			if err != nil {
				return nil, err
			}
			e16, err := p.Epoch(bert, p16, 1)
			if err != nil {
				return nil, err
			}
			e24, err := p.Epoch(bert, p24, 1)
			if err != nil {
				return nil, err
			}
			ratio := e24.Time.Seconds() / e16.Time.Seconds()
			return []string{"C6 24xlarge not faster than 16xlarge",
				"same NVLink, same stalls",
				fmt.Sprintf("epoch ratio %.2f (bert-large/bs4)", ratio),
				verdict(ratio > 0.95)}, nil
		},

		// C7 (§V-A1): CPU stalls are negligible on AWS.
		func() ([]string, error) {
			it, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			worst := 0.0
			for _, m := range dnn.SmallModels() {
				job, err := newJob(m, 32)
				if err != nil {
					return nil, err
				}
				ds, err := p.DataStallAnalysis(job, it)
				if err != nil {
					return nil, err
				}
				if ds.PrepPct > worst {
					worst = ds.PrepPct
				}
			}
			return []string{"C7 CPU stalls negligible",
				"vCPUs at AWS are sufficient",
				fmt.Sprintf("worst prep stall %.1f%% across small models", worst),
				verdict(worst < 5)}, nil
		},

		// C8 (§V-B2): disk stalls scale with GPUs per volume.
		func() ([]string, error) {
			p8, err := instance("p3.8xlarge")
			if err != nil {
				return nil, err
			}
			p16, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			d8, err := p.DataStallAnalysis(jobR18, p8)
			if err != nil {
				return nil, err
			}
			d16, err := p.DataStallAnalysis(jobR18, p16)
			if err != nil {
				return nil, err
			}
			return []string{"C8 disk stall grows with GPU count",
				"16xlarge highest",
				fmt.Sprintf("%.1f%% (8xl) vs %.1f%% (16xl)", d8.FetchPct, d16.FetchPct),
				verdict(d16.FetchPct > d8.FetchPct)}, nil
		},

		// C9 (§VI-A2): VGG has lower I/C stall time but higher N/W stall
		// time than ResNet.
		func() ([]string, error) {
			it, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			icR, err := p.InterconnectStall(jobR18, it)
			if err != nil {
				return nil, err
			}
			icV, err := p.InterconnectStall(jobVGG, it)
			if err != nil {
				return nil, err
			}
			nwR, err := p.NetworkStall(jobR18, it, 2)
			if err != nil {
				return nil, err
			}
			nwV, err := p.NetworkStall(jobVGG, it, 2)
			if err != nil {
				return nil, err
			}
			ok := icV.Stall < icR.Stall && nwV.Stall > nwR.Stall
			return []string{"C9 latency vs bandwidth regimes",
				"VGG: low I/C, high N/W; ResNet: opposite",
				fmt.Sprintf("I/C %v vs %v; N/W %v vs %v",
					report.Dur(icV.Stall), report.Dur(icR.Stall),
					report.Dur(nwV.Stall), report.Dur(nwR.Stall)),
				verdict(ok)}, nil
		},

		// C10 (§VI-A3): removing batch norm lowers communication stalls;
		// removing residual connections has minimal impact.
		func() ([]string, error) {
			it, err := instance("p3.16xlarge")
			if err != nil {
				return nil, err
			}
			full, err := p.InterconnectStall(jobR18, it)
			if err != nil {
				return nil, err
			}
			noBNModel, err := dnn.ResNet(18, dnn.ResNetWithoutBatchNorm())
			if err != nil {
				return nil, err
			}
			noBNJob, err := newJob(noBNModel, 32)
			if err != nil {
				return nil, err
			}
			noBN, err := p.InterconnectStall(noBNJob, it)
			if err != nil {
				return nil, err
			}
			noResModel, err := dnn.ResNet(18, dnn.ResNetWithoutResidual())
			if err != nil {
				return nil, err
			}
			noResJob, err := newJob(noResModel, 32)
			if err != nil {
				return nil, err
			}
			noRes, err := p.InterconnectStall(noResJob, it)
			if err != nil {
				return nil, err
			}
			resDelta := (noRes.Stall - full.Stall).Abs().Seconds() / full.Stall.Seconds()
			ok := noBN.Stall < full.Stall*8/10 && resDelta < 0.05
			return []string{"C10 BN drives sync points, residuals free",
				"no-BN lowers stalls; no-skip changes nothing",
				fmt.Sprintf("no-BN %v vs %v; no-skip within %.1f%%",
					report.Dur(noBN.Stall), report.Dur(full.Stall), 100*resDelta),
				verdict(ok)}, nil
		},

		// C11 (§V-C): small models are cheapest on P2, big ones on P3.
		func() ([]string, error) {
			p2, err := instance("p2.xlarge")
			if err != nil {
				return nil, err
			}
			p3, err := instance("p3.2xlarge")
			if err != nil {
				return nil, err
			}
			shuffle, err := newJob(dnn.ShuffleNetV2(), 64)
			if err != nil {
				return nil, err
			}
			r18b64, err := newJob(resnet18, 64)
			if err != nil {
				return nil, err
			}
			sP2, err := p.Epoch(shuffle, p2, 1)
			if err != nil {
				return nil, err
			}
			sP3, err := p.Epoch(shuffle, p3, 1)
			if err != nil {
				return nil, err
			}
			rP2, err := p.Epoch(r18b64, p2, 1)
			if err != nil {
				return nil, err
			}
			rP3, err := p.Epoch(r18b64, p3, 1)
			if err != nil {
				return nil, err
			}
			ok := sP2.Cost < sP3.Cost && rP3.Cost < rP2.Cost
			return []string{"C11 P2/P3 cost crossover",
				"ShuffleNet cheapest on P2, ResNet18 on P3",
				fmt.Sprintf("shufflenet $%.2f vs $%.2f; resnet18 $%.2f vs $%.2f",
					sP2.Cost, sP3.Cost, rP2.Cost, rP3.Cost),
				verdict(ok)}, nil
		},
	}

	rows := make([][]string, len(claims))
	if err := cfg.forEach(len(claims), func(i int) error {
		row, err := claims[i]()
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}
