package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"stash/internal/report"
)

// renderAll concatenates every table of an experiment run into one
// string, the byte-level artifact the determinism guarantee covers.
func renderAll(t *testing.T, cfg Config, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteString(tb.CSV())
	}
	return b.String()
}

// TestParallelOutputByteIdentical is the scheduler's core contract:
// rendered tables are byte-identical between the serial path and a wide
// worker pool, for a representative figure and for the claim sweep.
func TestParallelOutputByteIdentical(t *testing.T) {
	for _, id := range []string{"fig11", "claims", "fig13", "network-variance"} {
		serial := renderAll(t, Config{Iterations: 4, Seed: 1, Parallelism: 1}, id)
		parallel := renderAll(t, Config{Iterations: 4, Seed: 1, Parallelism: 8}, id)
		if serial != parallel {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestRunManyOrderAndSharing checks the registry runner: results come
// back in input order and reuse the configuration's shared profiler.
func TestRunManyOrderAndSharing(t *testing.T) {
	cfg := Config{Iterations: 4, Seed: 1, Parallelism: 4}
	exps := []Experiment{}
	for _, id := range []string{"table1", "fig7", "table2", "multi-epoch"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	results := RunMany(cfg, exps)
	if len(results) != len(exps) {
		t.Fatalf("got %d results, want %d", len(results), len(exps))
	}
	for i, r := range results {
		if r.Experiment.ID != exps[i].ID {
			t.Errorf("result %d is %s, want %s (order not preserved)", i, r.Experiment.ID, exps[i].ID)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Experiment.ID, r.Err)
		}
		if len(r.Tables) == 0 {
			t.Errorf("%s: no tables", r.Experiment.ID)
		}
	}
	if st := SchedulerStats(cfg); st.Simulated == 0 {
		t.Error("shared profiler saw no simulations — experiments not sharing it")
	}
}

// TestRunManyReportsPerExperimentErrors: a failing experiment must not
// abort its siblings — its error is carried in its own result slot.
func TestRunManyReportsPerExperimentErrors(t *testing.T) {
	errBoom := errors.New("boom")
	bad := Experiment{ID: "boom", Title: "always fails", Run: func(Config) ([]*report.Table, error) {
		return nil, errBoom
	}}
	good, err := ByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	results := RunMany(Config{Iterations: 4, Seed: 1, Parallelism: 4}, []Experiment{bad, good})
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if !errors.Is(results[0].Err, errBoom) {
		t.Errorf("bad experiment error = %v, want boom", results[0].Err)
	}
	if results[1].Err != nil || len(results[1].Tables) == 0 {
		t.Errorf("sibling experiment aborted: err=%v tables=%d", results[1].Err, len(results[1].Tables))
	}
}

// TestSharedProfilerLRUBound: the shared map must not grow without
// bound — distinct seeds beyond the cap evict the oldest entry, and a
// re-requested evicted configuration gets a fresh profiler.
func TestSharedProfilerLRUBound(t *testing.T) {
	base := Config{Iterations: 7, Seed: 1000}
	first := base.profiler()
	for i := 1; i <= maxSharedProfilers; i++ {
		c := base
		c.Seed = base.Seed + int64(i)
		c.profiler()
	}
	sharedProfilers.Lock()
	size, order := len(sharedProfilers.m), len(sharedProfilers.order)
	sharedProfilers.Unlock()
	if size > maxSharedProfilers || order != size {
		t.Fatalf("shared map size %d (order %d), cap %d", size, order, maxSharedProfilers)
	}
	if again := base.profiler(); again == first {
		t.Error("evicted profiler still shared — LRU not evicting")
	}
}

// TestSharedProfilerLRUTouch: re-using a configuration refreshes its
// LRU position, so the hot profiler survives churn from other seeds.
func TestSharedProfilerLRUTouch(t *testing.T) {
	base := Config{Iterations: 9, Seed: 2000}
	hot := base.profiler()
	for i := 1; i < maxSharedProfilers; i++ {
		c := base
		c.Seed = base.Seed + int64(i)
		c.profiler()
		if base.profiler() != hot {
			t.Fatalf("hot profiler evicted after %d other configs despite reuse", i)
		}
	}
}

// TestParallelismExcludedFromSharing: serial and parallel sweeps of the
// same configuration must share one scenario cache.
func TestParallelismExcludedFromSharing(t *testing.T) {
	a := Config{Iterations: 6, Seed: 3000, Parallelism: 1}.profiler()
	b := Config{Iterations: 6, Seed: 3000, Parallelism: 8}.profiler()
	if a != b {
		t.Error("Parallelism must not split the shared profiler cache")
	}
}

func TestConfigNormalizeParallelism(t *testing.T) {
	// "0 or negative = GOMAXPROCS" is core.WithParallelism's contract;
	// this layer must not remap negative to serial (the pre-fix bug).
	if got := (Config{Parallelism: -3}).normalize().Parallelism; got != 0 {
		t.Errorf("negative Parallelism normalized to %d, want 0 (GOMAXPROCS at pool)", got)
	}
	if got := (Config{}).normalize().Parallelism; got != 0 {
		t.Errorf("zero Parallelism normalized to %d, want 0 (GOMAXPROCS at pool)", got)
	}
}

// sanity: forEach propagates the lowest-index error through a grid.
func TestForEachErrorDeterministic(t *testing.T) {
	cfg := Config{Parallelism: 8}
	for trial := 0; trial < 5; trial++ {
		err := cfg.forEach(10, func(i int) error {
			if i >= 4 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 4 failed" {
			t.Fatalf("trial %d: got %v, want cell 4's error", trial, err)
		}
	}
}
