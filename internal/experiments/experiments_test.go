package experiments

import (
	"fmt"
	"strings"
	"testing"

	"stash/internal/report"
)

// fastCfg keeps experiment tests quick; stall ratios are deterministic
// steady-state values, so a short window is exact.
func fastCfg() Config { return Config{Iterations: 4, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 26 {
		t.Fatalf("registry has %d experiments, want 26", len(reg))
	}
	wantIDs := []string{
		"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"large-on-p2", "bert-24xl", "ps-vs-allreduce",
		"ablate-overlap", "ablate-bucket", "ablate-compression",
		"slice-lottery", "multi-epoch", "p4-preview", "network-variance",
		"claims",
	}
	for i, want := range wantIDs {
		if reg[i].ID != want {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, want)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Errorf("%s: incomplete registration", want)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil || e.ID != "fig7" {
		t.Errorf("ByID(fig7) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID(fig99) should fail")
	}
}

func TestTableI(t *testing.T) {
	tables, err := TableI(fastCfg())
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(tables) != 1 || tables[0].NumRows() != 8 {
		t.Fatalf("Table I shape wrong: %d tables, %d rows", len(tables), tables[0].NumRows())
	}
	s := tables[0].String()
	for _, want := range []string{"p2.16xlarge", "p3.24xlarge", "$24.48", "NVSwitch"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	tables, err := TableII(fastCfg())
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	if tables[0].NumRows() != 8 {
		t.Fatalf("Table II rows = %d, want 8", tables[0].NumRows())
	}
	s := tables[0].String()
	for _, want := range []string{"bert-large", "squad2", "132.86M"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

// checkTables asserts the structural invariants every figure experiment
// must satisfy: at least one table, every table titled, every row full.
func checkTables(t *testing.T, tables []*report.Table, wantTables, wantRowsEach int) {
	t.Helper()
	if len(tables) != wantTables {
		t.Fatalf("got %d tables, want %d", len(tables), wantTables)
	}
	for ti, tb := range tables {
		if tb.Title == "" {
			t.Errorf("table %d untitled", ti)
		}
		if tb.NumRows() != wantRowsEach {
			t.Errorf("table %d (%s) has %d rows, want %d", ti, tb.Title, tb.NumRows(), wantRowsEach)
		}
		for ri, row := range tb.Rows() {
			if len(row) != len(tb.Columns) {
				t.Errorf("table %d row %d has %d cells, want %d", ti, ri, len(row), len(tb.Columns))
			}
			for ci, cell := range row {
				if cell == "" {
					t.Errorf("table %d (%s) row %d col %d empty", ti, tb.Title, ri, ci)
				}
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tables, err := Fig4(fastCfg())
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	// 2 batch sizes x (cpu, disk), 5 small models each.
	checkTables(t, tables, 4, 5)
}

func TestFig5Shape(t *testing.T) {
	tables, err := Fig5(fastCfg())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	checkTables(t, tables, 4, 5)
	// The headline finding must be visible in the rendered table: the
	// p2.16xlarge column exists.
	if !strings.Contains(tables[0].String(), "p2.16xlarge") {
		t.Error("Fig5 P2 table missing 16xlarge column")
	}
}

func TestFig6Shape(t *testing.T) {
	tables, err := Fig6(fastCfg())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	checkTables(t, tables, 4, 5)
}

func TestFig7Shape(t *testing.T) {
	tables, err := Fig7(fastCfg())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	checkTables(t, tables, 1, 3)
	s := tables[0].String()
	if !strings.Contains(s, "below 25 Gbps") {
		t.Errorf("Fig7 should flag 16xlarge below network rating:\n%s", s)
	}
}

func TestFig8Shape(t *testing.T) {
	tables, err := Fig8(fastCfg())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	checkTables(t, tables, 4, 5)
}

func TestFig9Shape(t *testing.T) {
	tables, err := Fig9(fastCfg())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	// resnet50 x2 batches, vgg11 x2, bert = 5 rows; cpu + disk tables.
	checkTables(t, tables, 2, 5)
}

func TestFig10Shape(t *testing.T) {
	tables, err := Fig10(fastCfg())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	checkTables(t, tables, 4, 5)
}

func TestFig11Shape(t *testing.T) {
	tables, err := Fig11(fastCfg())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	checkTables(t, tables, 3, 5)
}

func TestFig12Shape(t *testing.T) {
	tables, err := Fig12(fastCfg())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	checkTables(t, tables, 2, 5)
}

func TestFig13Shape(t *testing.T) {
	tables, err := Fig13(fastCfg())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	checkTables(t, tables, 1, 4)
	if got := len(tables[0].Columns); got != 5 {
		t.Errorf("Fig13 columns = %d, want 5 (batch + 2 models x 2 slice outcomes)", got)
	}
}

func TestFig14Shape(t *testing.T) {
	tables, err := Fig14(fastCfg())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	checkTables(t, tables, 2, 5)
}

func TestFig15Shape(t *testing.T) {
	tables, err := Fig15(fastCfg())
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	checkTables(t, tables, 1, 6) // 2 models x 3 batch sizes
}

func TestFig16Shape(t *testing.T) {
	tables, err := Fig16(fastCfg())
	if err != nil {
		t.Fatalf("Fig16: %v", err)
	}
	// 5 resnet depths x 3 variants + 4 vgg depths = 19 rows, IC + NW.
	checkTables(t, tables, 2, 19)
}

func TestCaseStudies(t *testing.T) {
	for _, id := range []string{"large-on-p2", "bert-24xl", "ps-vs-allreduce"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 || tables[0].NumRows() < 2 {
			t.Errorf("%s: unexpected shape", id)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	shapes := map[string]struct{ tables, rows int }{
		"ablate-overlap":     {1, 2},
		"ablate-bucket":      {1, 4},
		"ablate-compression": {1, 4},
		"slice-lottery":      {1, 1},
		"multi-epoch":        {1, 5},
		"p4-preview":         {1, 4},
		"network-variance":   {1, 3},
	}
	for id, want := range shapes {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		checkTables(t, tables, want.tables, want.rows)
	}
}

func TestMultiEpochColdOnlyFirst(t *testing.T) {
	tables, err := MultiEpoch(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	if rows[0][2] == "0s" {
		t.Error("first epoch should have a fetch component")
	}
	for _, row := range rows[1:] {
		if row[2] != "0s" {
			t.Errorf("epoch %s still shows fetch stall %s", row[0], row[2])
		}
		if row[3] == "0s" {
			t.Errorf("epoch %s lost its comm component", row[0])
		}
	}
}

func TestCompressionAblationMonotone(t *testing.T) {
	tables, err := AblateCompression(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	// Speedup column strictly increases with compression.
	prev := 0.0
	for _, row := range rows {
		var speed float64
		if _, err := fmt.Sscanf(row[3], "%fx", &speed); err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		if speed < prev {
			t.Errorf("speedup not monotone: %v after %v", speed, prev)
		}
		prev = speed
	}
}

func TestClaimsAllHold(t *testing.T) {
	tables, err := Claims(fastCfg())
	if err != nil {
		t.Fatalf("Claims: %v", err)
	}
	checkTables(t, tables, 1, 11)
	for _, row := range tables[0].Rows() {
		if row[3] != "HOLDS" {
			t.Errorf("%s: %s -> %s", row[0], row[2], row[3])
		}
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Iterations < 1 || c.Seed == 0 {
		t.Errorf("normalize() = %+v", c)
	}
}

func TestSharedProfilerReuse(t *testing.T) {
	a := Config{Iterations: 4, Seed: 1}.profiler()
	b := Config{Iterations: 4, Seed: 1}.profiler()
	if a != b {
		t.Error("same config should share a profiler")
	}
	c := Config{Iterations: 5, Seed: 1}.profiler()
	if a == c {
		t.Error("different configs must not share")
	}
}
