package experiments

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"stash/internal/cloud"
	"stash/internal/dnn"
	"stash/internal/workload"
)

// exerciseProfiler runs one cheap measurement on the configuration's
// shared profiler so its scheduler counters are non-zero.
func exerciseProfiler(t *testing.T, cfg Config) {
	t.Helper()
	model, err := dnn.Resolve("shufflenet_v2")
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	j, err := workload.NewJob(model, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.profiler().InterconnectStall(j, it); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerStatsZeroOnMiss: scraping a configuration no sweep has
// touched reports zero counters and must NOT allocate a profiler — a
// scrape that inserted one would report freshly zeroed counters forever
// and churn the shared LRU.
func TestSchedulerStatsZeroOnMiss(t *testing.T) {
	cfg := Config{Iterations: 5, Seed: 6000}
	sharedProfilers.Lock()
	before := len(sharedProfilers.m)
	sharedProfilers.Unlock()
	if st := SchedulerStats(cfg); st.Requests != 0 || st.Simulated != 0 {
		t.Errorf("unused configuration reports non-zero stats: %v", st)
	}
	sharedProfilers.Lock()
	defer sharedProfilers.Unlock()
	if len(sharedProfilers.m) != before {
		t.Errorf("scrape of an unused configuration changed the shared map: %d -> %d entries",
			before, len(sharedProfilers.m))
	}
	if _, ok := sharedProfilers.m[profilerKey{iterations: 5, seed: 6000}]; ok {
		t.Error("scrape inserted a profiler for the scraped configuration")
	}
}

// TestSchedulerStatsScrapeDoesNotEvict is the /metrics-scrape regression
// test: repeated scrapes for foreign configurations (a dashboard asking
// about seeds nobody is running) must leave a live sweep's counters
// monotonically non-decreasing. Pre-fix, SchedulerStats allocated a
// profiler per scraped configuration, churning the size-bounded LRU
// until the active profiler was evicted — the next scrape of the active
// configuration then reported freshly zeroed counters.
func TestSchedulerStatsScrapeDoesNotEvict(t *testing.T) {
	active := Config{Iterations: 5, Seed: 4000}
	exerciseProfiler(t, active)
	st1 := SchedulerStats(active)
	if st1.Simulated == 0 {
		t.Fatalf("exercised profiler reports no simulations: %v", st1)
	}

	// A scrape round asks about more foreign configurations than the
	// shared-profiler cap holds.
	for i := 0; i < 2*maxSharedProfilers; i++ {
		SchedulerStats(Config{Iterations: 5, Seed: 5000 + int64(i)})
	}

	st2 := SchedulerStats(active)
	if st2.Simulated < st1.Simulated || st2.Requests < st1.Requests {
		t.Errorf("scrapes reset the active pool's counters: %v -> %v", st1, st2)
	}
	sharedProfilers.Lock()
	defer sharedProfilers.Unlock()
	for k := range sharedProfilers.m {
		if k.seed >= 5000 && k.seed < 5000+2*int64(maxSharedProfilers) {
			t.Errorf("scrape inserted profiler for foreign configuration %+v", k)
		}
	}
}

// TestNegativeParallelismRunsConcurrently: Parallelism < 0 must mean
// GOMAXPROCS (core.ForEach's convention), not serial. Two cells
// rendezvous inside the pool; if the pre-fix normalization mapped
// negative to 1 they would run one after the other and the first would
// time out waiting for the second.
func TestNegativeParallelismRunsConcurrently(t *testing.T) {
	// The rendezvous needs the pool sized >= 2, not physical cores:
	// blocked goroutines interleave fine on one CPU.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	go func() {
		<-arrived
		<-arrived
		close(release)
	}()
	cfg := Config{Parallelism: -1}
	err := cfg.forEach(2, func(i int) error {
		arrived <- struct{}{}
		select {
		case <-release:
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("rendezvous timed out: cells ran serially")
		}
	})
	if err != nil {
		t.Fatalf("negative parallelism did not run cells concurrently: %v", err)
	}
}
