package collective

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"stash/internal/dnn"
	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
)

// rig builds an engine+network+cluster for collective tests.
type rig struct {
	eng *sim.Engine
	net *simnet.Network
	top *topo.Topology
}

func newRig(t *testing.T, specs ...topo.MachineSpec) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := simnet.New(eng)
	top, err := topo.BuildCluster(net, specs)
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	return &rig{eng: eng, net: net, top: top}
}

func nvlinkMachine(n int) topo.MachineSpec {
	return topo.MachineSpec{
		GPU: hw.V100, NGPUs: n,
		Interconnect:         topo.InterconnectNVLink,
		PCIe:                 hw.PCIeGen3x16,
		RootComplexBandwidth: 48 * hw.GB,
		NVLink:               hw.NVLink2,
		NetworkGbps:          25,
	}
}

func pcieMachine(n int, rootBW float64) topo.MachineSpec {
	return topo.MachineSpec{
		GPU: hw.K80, NGPUs: n,
		Interconnect:         topo.InterconnectPCIe,
		PCIe:                 hw.PCIeGen3x16,
		RootComplexBandwidth: rootBW,
		NetworkGbps:          10,
	}
}

// runAllReduce has every rank issue one all-reduce of bytes and returns
// the completion time.
func runAllReduce(t *testing.T, r *rig, g *Group, bytes float64) time.Duration {
	t.Helper()
	var done time.Duration
	for rank := 0; rank < g.WorldSize(); rank++ {
		rank := rank
		r.eng.Go("worker", func(p *sim.Process) {
			g.AllReduce(p, rank, bytes)
			if t := p.Now(); t > done {
				done = t
			}
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return done
}

func TestGroupValidation(t *testing.T) {
	r := newRig(t, nvlinkMachine(4))
	if _, err := NewGroup(r.eng, r.net, r.top, nil); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs(), WithAlgorithm(Algorithm(99))); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestSingleRankIsFree(t *testing.T) {
	r := newRig(t, nvlinkMachine(4))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs()[:1])
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	d := runAllReduce(t, r, g, 100*hw.MB)
	if d != 0 {
		t.Errorf("single-rank all-reduce took %v, want 0", d)
	}
}

func TestRingTimeMatchesClosedForm(t *testing.T) {
	// On a full crossbar with dedicated links, ring time is
	// callOverhead + 2(p-1) x (routeLatency + chunk/bw).
	const world = 8
	bytes := 480 * hw.MB
	r := newRig(t, nvlinkMachine(world))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	got := runAllReduce(t, r, g, bytes)
	chunk := bytes / world
	stepSeconds := chunk / hw.NVLink2.Bandwidth
	want := DefaultCallOverhead +
		time.Duration(2*(world-1))*(hw.NVLink2.Latency+time.Duration(stepSeconds*float64(time.Second)))
	if diff := (got - want).Abs(); diff > want/50 {
		t.Errorf("ring time = %v, want ~%v", got, want)
	}
}

func TestRingThrottledByNetworkHop(t *testing.T) {
	// Two 2-GPU machines: the ring crosses the 10 Gbps NIC twice, so the
	// whole collective runs at network speed even though NVLink is free.
	r := newRig(t, nvlinkMachine(2), nvlinkMachine(2))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	bytes := 100 * hw.MB
	got := runAllReduce(t, r, g, bytes)
	// Lower bound: total bytes crossing one NIC direction at 25 Gbps wait,
	// nvlinkMachine says 25 Gbps: steps x chunk / nicBW.
	nicBW := 25.0 * hw.GbpsBytes
	minSeconds := 6 * (bytes / 4) / nicBW
	if got.Seconds() < minSeconds {
		t.Errorf("ring over network = %v, below NIC bound %vs", got, minSeconds)
	}
	// And far slower than the same world size on one machine.
	r2 := newRig(t, nvlinkMachine(4))
	g2, err := NewGroup(r2.eng, r2.net, r2.top, r2.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	intra := runAllReduce(t, r2, g2, bytes)
	if got < 3*intra {
		t.Errorf("network ring %v not >> intra-node ring %v", got, intra)
	}
}

func TestPCIeRingContention(t *testing.T) {
	// 8 K80s on a shared 24 GB/s root: all 8 ring flows cross it, so each
	// step runs at ~3 GB/s per flow, not PCIe's 12.
	const world = 8
	bytes := 96 * hw.MB
	r := newRig(t, pcieMachine(world, 24*hw.GB))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs(), WithCallOverhead(0))
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	got := runAllReduce(t, r, g, bytes)
	chunk := bytes / world
	perFlowBW := 24 * hw.GB / float64(world)
	want := 2 * (world - 1) * (chunk / perFlowBW)
	if math.Abs(got.Seconds()-want)/want > 0.05 {
		t.Errorf("PCIe ring = %v, want ~%vs (root-complex shared)", got, want)
	}
}

func TestSmallerRootBudgetIsSlower(t *testing.T) {
	run := func(rootBW float64, world int) time.Duration {
		r := newRig(t, pcieMachine(world, rootBW))
		g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs())
		if err != nil {
			t.Fatalf("NewGroup: %v", err)
		}
		return runAllReduce(t, r, g, 40*hw.MB)
	}
	// The p2.16xlarge pathology: more GPUs on less fabric.
	if t8, t16 := run(24*hw.GB, 8), run(6*hw.GB, 16); t16 < 4*t8 {
		t.Errorf("16-GPU/6GBps ring %v not >> 8-GPU/24GBps ring %v", t16, t8)
	}
}

func TestPSSlowerThanRingAcrossNetwork(t *testing.T) {
	// §III: parameter-server performance is strictly worse than
	// all-reduce (every byte converges on one server link).
	specs := []topo.MachineSpec{nvlinkMachine(2), nvlinkMachine(2)}
	bytes := 50 * hw.MB

	r1 := newRig(t, specs...)
	ring, err := NewGroup(r1.eng, r1.net, r1.top, r1.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup(ring): %v", err)
	}
	ringTime := runAllReduce(t, r1, ring, bytes)

	r2 := newRig(t, specs...)
	ps, err := NewGroup(r2.eng, r2.net, r2.top, r2.top.AllGPUs(), WithAlgorithm(ParameterServer))
	if err != nil {
		t.Fatalf("NewGroup(ps): %v", err)
	}
	psTime := runAllReduce(t, r2, ps, bytes)

	if psTime <= ringTime {
		t.Errorf("PS %v not slower than ring %v", psTime, ringTime)
	}
}

func TestCollectivesSerializeInOrder(t *testing.T) {
	// Two back-to-back all-reduces take ~2x one (stream serialization).
	r := newRig(t, nvlinkMachine(4))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs(), WithCallOverhead(0))
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	bytes := 120 * hw.MB
	var done time.Duration
	for rank := 0; rank < 4; rank++ {
		rank := rank
		r.eng.Go("worker", func(p *sim.Process) {
			s1 := g.AllReduceAsync(rank, bytes)
			s2 := g.AllReduceAsync(rank, bytes)
			p.Await(s1)
			p.Await(s2)
			done = p.Now()
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r1 := newRig(t, nvlinkMachine(4))
	g1, err := NewGroup(r1.eng, r1.net, r1.top, r1.top.AllGPUs(), WithCallOverhead(0))
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	one := runAllReduce(t, r1, g1, bytes)
	if ratio := done.Seconds() / one.Seconds(); ratio < 1.9 || ratio > 2.1 {
		t.Errorf("two collectives = %.2fx one, want ~2x", ratio)
	}
	if g.OpsCompleted() != 2 {
		t.Errorf("OpsCompleted = %d, want 2", g.OpsCompleted())
	}
	if got := g.BytesReduced(); got != 2*bytes {
		t.Errorf("BytesReduced = %v, want %v", got, 2*bytes)
	}
}

func TestAllReduceWaitsForAllRanks(t *testing.T) {
	// The collective cannot start until the slowest rank issues it.
	r := newRig(t, nvlinkMachine(4))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs(), WithCallOverhead(0))
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	var done time.Duration
	for rank := 0; rank < 4; rank++ {
		rank := rank
		r.eng.Go("worker", func(p *sim.Process) {
			if rank == 3 {
				p.Sleep(time.Second) // straggler
			}
			g.AllReduce(p, rank, hw.MB)
			if p.Now() > done {
				done = p.Now()
			}
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done < time.Second {
		t.Errorf("collective finished at %v, before straggler arrived", done)
	}
}

func TestMismatchedBytesPanics(t *testing.T) {
	r := newRig(t, nvlinkMachine(2))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	g.AllReduceAsync(0, 100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched bytes")
		}
	}()
	g.AllReduceAsync(1, 200)
}

func TestRankOutOfRangePanics(t *testing.T) {
	r := newRig(t, nvlinkMachine(2))
	g, err := NewGroup(r.eng, r.net, r.top, r.top.AllGPUs())
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad rank")
		}
	}()
	g.AllReduceAsync(5, 100)
}

func TestAlgorithmString(t *testing.T) {
	if Ring.String() != "ring-allreduce" || ParameterServer.String() != "parameter-server" {
		t.Error("Algorithm strings wrong")
	}
	if Algorithm(0).String() != "Algorithm(0)" {
		t.Error("unknown Algorithm string wrong")
	}
}

func TestPerLayerBuckets(t *testing.T) {
	m, err := dnn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	buckets := PerLayerBuckets(m)
	if len(buckets) != m.NumParamLayers() {
		t.Errorf("buckets = %d, want %d (one per param layer)", len(buckets), m.NumParamLayers())
	}
	if got, want := TotalBytes(buckets), m.GradientBytes(); math.Abs(got-want) > 1 {
		t.Errorf("bucket bytes = %v, want %v", got, want)
	}
	// Backward order: first bucket is the model's last param layer.
	last := -1
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if m.Layers[i].Params > 0 {
			last = i
			break
		}
	}
	if buckets[0].Layers[0] != last {
		t.Errorf("first bucket layer = %d, want %d (backward order)", buckets[0].Layers[0], last)
	}
}

func TestSizedBuckets(t *testing.T) {
	m, err := dnn.VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	buckets, err := SizedBuckets(m, 25*hw.MB)
	if err != nil {
		t.Fatalf("SizedBuckets: %v", err)
	}
	if got, want := TotalBytes(buckets), m.GradientBytes(); math.Abs(got-want) > 1 {
		t.Errorf("bucket bytes = %v, want %v", got, want)
	}
	perLayer := PerLayerBuckets(m)
	if len(buckets) >= len(perLayer) {
		t.Errorf("sized buckets (%d) should coalesce below per-layer (%d)", len(buckets), len(perLayer))
	}
	// All but the last bucket must meet the cap.
	for i, b := range buckets[:len(buckets)-1] {
		if b.Bytes < 25*hw.MB {
			t.Errorf("bucket %d = %v bytes, below cap", i, b.Bytes)
		}
	}
	if _, err := SizedBuckets(m, 0); err == nil {
		t.Error("zero bucket size should fail")
	}
}

// Property: sized buckets partition the param layers exactly once for any
// cap.
func TestQuickSizedBucketsPartition(t *testing.T) {
	m, err := dnn.ResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	f := func(capMB uint16) bool {
		buckets, err := SizedBuckets(m, float64(capMB+1)*hw.MB)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, b := range buckets {
			for _, li := range b.Layers {
				if seen[li] {
					return false
				}
				seen[li] = true
			}
		}
		return len(seen) == m.NumParamLayers() &&
			math.Abs(TotalBytes(buckets)-m.GradientBytes()) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
