package collective

import (
	"fmt"

	"stash/internal/dnn"
)

// Bucket is one gradient synchronization unit: the gradients of one or
// more consecutive (in backward order) parameter layers, all-reduced in a
// single collective call.
type Bucket struct {
	// Bytes is the gradient payload.
	Bytes float64

	// Layers holds the model layer indices whose gradients the bucket
	// carries, in backward-pass order.
	Layers []int
}

// PerLayerBuckets returns one bucket per parameter layer in backward
// order. This is the synchronization granularity of the paper's §VI-A2
// model: L sync points of G/L bytes each.
func PerLayerBuckets(m *dnn.Model) []Bucket {
	var buckets []Bucket
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		if l.Params == 0 {
			continue
		}
		buckets = append(buckets, Bucket{Bytes: l.GradientBytes(), Layers: []int{i}})
	}
	return buckets
}

// SizedBuckets coalesces parameter layers in backward order into buckets
// of at least maxBytes (PyTorch DDP's bucket_cap_mb behavior, 25 MB by
// default). Used by the bucketing ablation bench.
func SizedBuckets(m *dnn.Model, maxBytes float64) ([]Bucket, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("collective: bucket size %v <= 0", maxBytes)
	}
	var buckets []Bucket
	var cur Bucket
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		if l.Params == 0 {
			continue
		}
		cur.Bytes += l.GradientBytes()
		cur.Layers = append(cur.Layers, i)
		if cur.Bytes >= maxBytes {
			buckets = append(buckets, cur)
			cur = Bucket{}
		}
	}
	if len(cur.Layers) > 0 {
		buckets = append(buckets, cur)
	}
	return buckets, nil
}

// TotalBytes sums the payloads of a bucket list.
func TotalBytes(buckets []Bucket) float64 {
	var b float64
	for _, bk := range buckets {
		b += bk.Bytes
	}
	return b
}
