package collective

import (
	"testing"

	"stash/internal/hw"
	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
)

// benchRing measures a full ring all-reduce on an 8-GPU NVLink machine.
func benchRing(b *testing.B, bytes float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := simnet.New(e)
		top, err := topo.BuildCluster(net, []topo.MachineSpec{{
			GPU: hw.V100, NGPUs: 8,
			Interconnect:         topo.InterconnectNVLink,
			PCIe:                 hw.PCIeGen3x16,
			RootComplexBandwidth: 48 * hw.GB,
			NVLink:               hw.NVLink2,
		}})
		if err != nil {
			b.Fatal(err)
		}
		g, err := NewGroup(e, net, top, top.AllGPUs())
		if err != nil {
			b.Fatal(err)
		}
		for rank := 0; rank < 8; rank++ {
			rank := rank
			e.Go("w", func(p *sim.Process) { g.AllReduce(p, rank, bytes) })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingAllReduce1MB(b *testing.B)   { benchRing(b, 1e6) }
func BenchmarkRingAllReduce100MB(b *testing.B) { benchRing(b, 1e8) }
