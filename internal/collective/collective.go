// Package collective implements gradient-synchronization primitives over
// a simulated topology: the ring all-reduce used by PyTorch DDP (the
// paper's setup, §IV) and a parameter-server baseline (whose performance
// the paper notes is strictly worse, §III). Collectives issued on a group
// execute in FIFO order, one at a time, as NCCL does on a stream.
package collective

import (
	"fmt"
	"time"

	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
)

// Algorithm selects the synchronization strategy.
type Algorithm int

// Algorithms.
const (
	// Ring is bandwidth-optimal collective all-reduce: 2(p-1) steps of
	// concurrent neighbor transfers of 1/p of the data.
	Ring Algorithm = iota + 1

	// ParameterServer gathers all gradients at a central server and
	// broadcasts the update back.
	ParameterServer
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring-allreduce"
	case ParameterServer:
		return "parameter-server"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// DefaultCallOverhead is the device-side cost of launching one collective
// (NCCL kernel setup). The larger host-side autograd-hook cost lives in
// the training loop (train.Config.HookOverhead), where it blocks the
// backward pass.
const DefaultCallOverhead = 30 * time.Microsecond

// Option configures a Group.
type Option func(*Group)

// WithAlgorithm selects the synchronization algorithm (default Ring).
func WithAlgorithm(a Algorithm) Option {
	return func(g *Group) { g.algorithm = a }
}

// WithCallOverhead overrides the per-collective fixed cost.
func WithCallOverhead(d time.Duration) Option {
	return func(g *Group) { g.callOverhead = d }
}

// Group is a set of GPU ranks that synchronize gradients together.
type Group struct {
	eng          *sim.Engine
	net          *simnet.Network
	topology     *topo.Topology
	gpus         []*topo.Device
	algorithm    Algorithm
	callOverhead time.Duration

	nextSeq   []int // per-rank counter of issued collectives
	ops       map[int]*op
	ready     []*op
	executing bool

	// Statistics.
	opsCompleted int
	bytesReduced float64
	busyTime     time.Duration
}

type op struct {
	seq     int
	bytes   float64
	arrived int
	done    *sim.Signal
}

// NewGroup creates a synchronization group over the given GPUs (in rank
// order) of a topology. All GPU pairs that the algorithm needs must be
// routable.
func NewGroup(eng *sim.Engine, net *simnet.Network, t *topo.Topology, gpus []*topo.Device, opts ...Option) (*Group, error) {
	if len(gpus) == 0 {
		return nil, fmt.Errorf("collective: empty group")
	}
	g := &Group{
		eng:          eng,
		net:          net,
		topology:     t,
		gpus:         gpus,
		algorithm:    Ring,
		callOverhead: DefaultCallOverhead,
		nextSeq:      make([]int, len(gpus)),
		ops:          make(map[int]*op),
	}
	for _, o := range opts {
		o(g)
	}
	// Validate routes up front so failures surface at construction.
	if len(gpus) > 1 {
		switch g.algorithm {
		case Ring:
			for i := range gpus {
				if _, err := t.Route(gpus[i], gpus[(i+1)%len(gpus)]); err != nil {
					return nil, fmt.Errorf("collective: ring: %w", err)
				}
			}
		case ParameterServer:
			server := t.Machines[gpus[0].Node].Host
			for _, gpu := range gpus {
				if gpu.Node == server.Node {
					continue
				}
				if _, err := t.Route(gpu, server); err != nil {
					return nil, fmt.Errorf("collective: ps: %w", err)
				}
			}
		default:
			return nil, fmt.Errorf("collective: unknown algorithm %v", g.algorithm)
		}
	}
	return g, nil
}

// WorldSize returns the number of ranks.
func (g *Group) WorldSize() int { return len(g.gpus) }

// OpsCompleted returns how many collectives have finished.
func (g *Group) OpsCompleted() int { return g.opsCompleted }

// BytesReduced returns the total payload bytes across completed
// collectives.
func (g *Group) BytesReduced() float64 { return g.bytesReduced }

// BusyTime returns the cumulative wall-clock (virtual) time the group
// spent executing collectives.
func (g *Group) BusyTime() time.Duration { return g.busyTime }

// AllReduceAsync issues rank's next collective carrying bytes of
// gradient. It returns a signal that fires when the collective completes
// globally. The collective starts only after every rank has issued it,
// and collectives execute in issue order.
func (g *Group) AllReduceAsync(rank int, bytes float64) *sim.Signal {
	if rank < 0 || rank >= len(g.gpus) {
		panic(fmt.Sprintf("collective: rank %d out of range [0,%d)", rank, len(g.gpus)))
	}
	seq := g.nextSeq[rank]
	g.nextSeq[rank]++
	o, ok := g.ops[seq]
	if !ok {
		o = &op{seq: seq, bytes: bytes, done: sim.NewSignal(g.eng)}
		g.ops[seq] = o
	}
	//lint:allow floatcmp ranks must hand in bit-identical sizes; any difference is a caller bug worth a panic
	if o.bytes != bytes {
		panic(fmt.Sprintf("collective: rank %d op %d carries %v bytes, others sent %v", rank, seq, bytes, o.bytes))
	}
	o.arrived++
	if o.arrived == len(g.gpus) {
		delete(g.ops, seq)
		g.ready = append(g.ready, o)
		g.maybeStart()
	}
	return o.done
}

// AllReduce issues the collective and blocks the calling process until it
// completes.
func (g *Group) AllReduce(p *sim.Process, rank int, bytes float64) {
	p.Await(g.AllReduceAsync(rank, bytes))
}

func (g *Group) maybeStart() {
	if g.executing || len(g.ready) == 0 {
		return
	}
	g.executing = true
	o := g.ready[0]
	g.ready = g.ready[1:]
	g.eng.Go(fmt.Sprintf("allreduce-%d", o.seq), func(p *sim.Process) {
		start := p.Now()
		g.execute(p, o)
		g.busyTime += p.Now() - start
		g.opsCompleted++
		g.bytesReduced += o.bytes
		g.executing = false
		o.done.Fire()
		g.maybeStart()
	})
}

func (g *Group) execute(p *sim.Process, o *op) {
	world := len(g.gpus)
	if world == 1 {
		// Single rank: DDP skips communication entirely.
		return
	}
	p.Sleep(g.callOverhead)
	if o.bytes <= 0 {
		return
	}
	switch g.algorithm {
	case Ring:
		g.runRing(p, o.bytes)
	case ParameterServer:
		g.runPS(p, o.bytes)
	}
}

// runRing performs 2(p-1) ring steps; in each, every rank forwards a
// 1/p chunk to its successor concurrently. Step time is set by the
// slowest route, which is how a single network hop throttles the whole
// ring (§IV-B2).
func (g *Group) runRing(p *sim.Process, bytes float64) {
	world := len(g.gpus)
	chunk := bytes / float64(world)
	steps := 2 * (world - 1)
	routes := make([][]*simnet.Link, world)
	for i := range g.gpus {
		r, err := g.topology.Route(g.gpus[i], g.gpus[(i+1)%world])
		if err != nil {
			// Routes were validated at construction.
			panic(fmt.Sprintf("collective: %v", err))
		}
		routes[i] = r
	}
	for s := 0; s < steps; s++ {
		flows := make([]*simnet.Flow, world)
		for i := range routes {
			// The first step pays route latency; later steps stream over
			// the already-pipelined path (NCCL slices the chunk so their
			// latency hides behind the previous step's tail).
			if s == 0 {
				flows[i] = g.net.StartFlow(chunk, routes[i])
			} else {
				flows[i] = g.net.StartFlowLatency(chunk, routes[i], 0)
			}
		}
		for _, f := range flows {
			p.Await(f.Done())
		}
	}
}

// runPS gathers full gradients at the lead machine's host and broadcasts
// the averaged update back: 2 phases of p concurrent full-size transfers
// through the server's links.
func (g *Group) runPS(p *sim.Process, bytes float64) {
	server := g.topology.Machines[g.gpus[0].Node].Host
	transferAll := func(toServer bool) {
		var flows []*simnet.Flow
		for _, gpu := range g.gpus {
			from, to := gpu, server
			if !toServer {
				from, to = server, gpu
			}
			route, err := g.topology.Route(from, to)
			if err != nil {
				panic(fmt.Sprintf("collective: %v", err))
			}
			flows = append(flows, g.net.StartFlow(bytes, route))
		}
		for _, f := range flows {
			p.Await(f.Done())
		}
	}
	transferAll(true)  // push gradients
	transferAll(false) // pull updated parameters
}
