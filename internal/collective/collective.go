// Package collective implements gradient-synchronization primitives over
// a simulated topology: the ring all-reduce used by PyTorch DDP (the
// paper's setup, §IV) and a parameter-server baseline (whose performance
// the paper notes is strictly worse, §III). Collectives issued on a group
// execute in FIFO order, one at a time, as NCCL does on a stream.
package collective

import (
	"fmt"
	"time"

	"stash/internal/sim"
	"stash/internal/simnet"
	"stash/internal/topo"
	"stash/internal/trace"
)

// Algorithm selects the synchronization strategy.
type Algorithm int

// Algorithms.
const (
	// Ring is bandwidth-optimal collective all-reduce: 2(p-1) steps of
	// concurrent neighbor transfers of 1/p of the data.
	Ring Algorithm = iota + 1

	// ParameterServer gathers all gradients at a central server and
	// broadcasts the update back.
	ParameterServer
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring-allreduce"
	case ParameterServer:
		return "parameter-server"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// DefaultCallOverhead is the device-side cost of launching one collective
// (NCCL kernel setup). The larger host-side autograd-hook cost lives in
// the training loop (train.Config.HookOverhead), where it blocks the
// backward pass.
const DefaultCallOverhead = 30 * time.Microsecond

// Option configures a Group.
type Option func(*Group)

// WithAlgorithm selects the synchronization algorithm (default Ring).
func WithAlgorithm(a Algorithm) Option {
	return func(g *Group) { g.algorithm = a }
}

// WithCallOverhead overrides the per-collective fixed cost.
func WithCallOverhead(d time.Duration) Option {
	return func(g *Group) { g.callOverhead = d }
}

// WithTrace records the group's synchronization timeline on r: one
// per-rank KindBarrier span per completed collective (that rank's
// arrival to global completion) and one group-level KindCollective span
// (execution start to completion, Worker = -1). These feed the frontier
// blame pass (trace.Attribute).
func WithTrace(r *trace.Recorder) Option {
	return func(g *Group) { g.tr = r }
}

// Group is a set of GPU ranks that synchronize gradients together.
type Group struct {
	eng          *sim.Engine
	net          *simnet.Network
	topology     *topo.Topology
	gpus         []*topo.Device
	algorithm    Algorithm
	callOverhead time.Duration
	tr           *trace.Recorder

	nextSeq   []int // per-rank counter of issued collectives
	ops       map[int]*op
	ready     []*op
	freeOps   []*op // completed op structs awaiting reuse
	executing bool

	x exec // the group's single continuation executor (ops run one at a time)

	// Route caches: the topology is static, so neighbor and server paths
	// are resolved once instead of per collective.
	ringPaths [][]*simnet.Link // rank i -> rank i+1
	psPush    [][]*simnet.Link // rank i -> server
	psPull    [][]*simnet.Link // server -> rank i

	// Statistics.
	opsCompleted int
	bytesReduced float64
	busyTime     time.Duration
}

type op struct {
	seq     int
	bytes   float64
	arrived int
	done    *sim.Signal

	// arrivals[rank] is when that rank issued this op; populated (and
	// sized) only when the group records a trace.
	arrivals []time.Duration
}

// groupArena holds released groups on each engine's scratch arena, so a
// recycled engine re-running a scenario reuses its group storage (op free
// list, rank slices, exec scratch) instead of re-growing it.
var groupArena = sim.NewArenaKey()

type groupCache struct{ free []*Group }

// NewGroup creates a synchronization group over the given GPUs (in rank
// order) of a topology. All GPU pairs that the algorithm needs must be
// routable. If a previously Released group is available on the engine's
// arena, its storage is reused.
func NewGroup(eng *sim.Engine, net *simnet.Network, t *topo.Topology, gpus []*topo.Device, opts ...Option) (*Group, error) {
	if len(gpus) == 0 {
		return nil, fmt.Errorf("collective: empty group")
	}
	var g *Group
	if cache, _ := eng.Arena(groupArena).(*groupCache); cache != nil && len(cache.free) > 0 {
		k := len(cache.free) - 1
		g = cache.free[k]
		cache.free[k] = nil
		cache.free = cache.free[:k]
		g.reuse(eng, net, t, gpus)
	} else {
		g = &Group{
			nextSeq: make([]int, len(gpus)),
			ops:     make(map[int]*op),
		}
		g.eng, g.net, g.topology, g.gpus = eng, net, t, gpus
	}
	g.algorithm = Ring
	g.callOverhead = DefaultCallOverhead
	g.tr = nil
	for _, o := range opts {
		o(g)
	}
	g.x.init(g)
	// Validate routes up front so failures surface at construction.
	if len(gpus) > 1 {
		switch g.algorithm {
		case Ring:
			for i := range gpus {
				if _, err := t.Route(gpus[i], gpus[(i+1)%len(gpus)]); err != nil {
					return nil, fmt.Errorf("collective: ring: %w", err)
				}
			}
		case ParameterServer:
			server := t.Machines[gpus[0].Node].Host
			for _, gpu := range gpus {
				if gpu.Node == server.Node {
					continue
				}
				if _, err := t.Route(gpu, server); err != nil {
					return nil, fmt.Errorf("collective: ps: %w", err)
				}
			}
		default:
			return nil, fmt.Errorf("collective: unknown algorithm %v", g.algorithm)
		}
	}
	return g, nil
}

// reuse re-initializes a released group's identity fields while keeping
// its recycled storage (rank slice capacity, op map, op free list, exec
// scratch). Option-set fields are re-defaulted by NewGroup.
func (g *Group) reuse(eng *sim.Engine, net *simnet.Network, t *topo.Topology, gpus []*topo.Device) {
	g.eng, g.net, g.topology, g.gpus = eng, net, t, gpus
	if cap(g.nextSeq) >= len(gpus) {
		g.nextSeq = g.nextSeq[:len(gpus)]
		for i := range g.nextSeq {
			g.nextSeq[i] = 0
		}
	} else {
		g.nextSeq = make([]int, len(gpus))
	}
	clear(g.ops)
	g.ready = g.ready[:0]
	g.executing = false
	// Route caches depend on the (possibly new) topology and rank set.
	g.ringPaths, g.psPush, g.psPull = nil, nil, nil
	g.opsCompleted = 0
	g.bytesReduced = 0
	g.busyTime = 0
}

// Release returns the group's storage to its engine's scratch arena so a
// later NewGroup on the same engine reuses it. Call only when the group
// is idle (no collective in flight) and every reference obtained from it
// — op done signals included — has been dropped; statistics copied out
// beforehand stay valid. The arena survives Engine.Reset, which is the
// point: a pooled engine re-running training carries its warmed-up group
// storage with it.
func (g *Group) Release() {
	cache, _ := g.eng.Arena(groupArena).(*groupCache)
	if cache == nil {
		cache = &groupCache{}
		g.eng.SetArena(groupArena, cache)
	}
	cache.free = append(cache.free, g)
}

// WorldSize returns the number of ranks.
func (g *Group) WorldSize() int { return len(g.gpus) }

// OpsCompleted returns how many collectives have finished.
func (g *Group) OpsCompleted() int { return g.opsCompleted }

// BytesReduced returns the total payload bytes across completed
// collectives.
func (g *Group) BytesReduced() float64 { return g.bytesReduced }

// BusyTime returns the cumulative wall-clock (virtual) time the group
// spent executing collectives.
func (g *Group) BusyTime() time.Duration { return g.busyTime }

// AllReduceAsync issues rank's next collective carrying bytes of
// gradient. It returns a signal that fires when the collective completes
// globally. The collective starts only after every rank has issued it,
// and collectives execute in issue order.
func (g *Group) AllReduceAsync(rank int, bytes float64) *sim.Signal {
	if rank < 0 || rank >= len(g.gpus) {
		panic(fmt.Sprintf("collective: rank %d out of range [0,%d)", rank, len(g.gpus)))
	}
	seq := g.nextSeq[rank]
	g.nextSeq[rank]++
	o, ok := g.ops[seq]
	if !ok {
		if k := len(g.freeOps); k > 0 {
			o = g.freeOps[k-1]
			g.freeOps[k-1] = nil
			g.freeOps = g.freeOps[:k-1]
			o.seq, o.bytes, o.arrived = seq, bytes, 0
		} else {
			o = &op{seq: seq, bytes: bytes}
		}
		// Each use gets a fresh done signal: callers may retain the
		// previous one well past its op's completion (train holds them
		// until the end-of-iteration drain), so it cannot be re-armed.
		o.done = sim.NewSignal(g.eng)
		if g.tr != nil {
			if cap(o.arrivals) >= len(g.gpus) {
				o.arrivals = o.arrivals[:len(g.gpus)]
			} else {
				o.arrivals = make([]time.Duration, len(g.gpus))
			}
		}
		g.ops[seq] = o
	}
	if g.tr != nil {
		o.arrivals[rank] = g.eng.Now()
	}
	//lint:allow floatcmp ranks must hand in bit-identical sizes; any difference is a caller bug worth a panic
	if o.bytes != bytes {
		panic(fmt.Sprintf("collective: rank %d op %d carries %v bytes, others sent %v", rank, seq, bytes, o.bytes))
	}
	o.arrived++
	if o.arrived == len(g.gpus) {
		delete(g.ops, seq)
		g.ready = append(g.ready, o)
		g.maybeStart()
	}
	return o.done
}

// AllReduce issues the collective and blocks the calling process until it
// completes.
//
//lint:allow hotpath thin blocking wrapper for process-style callers; train's hot loop awaits AllReduceAsync continuations
func (g *Group) AllReduce(p *sim.Process, rank int, bytes float64) {
	p.Await(g.AllReduceAsync(rank, bytes))
}

func (g *Group) maybeStart() {
	if g.executing || len(g.ready) == 0 {
		return
	}
	g.executing = true
	o := g.ready[0]
	g.ready = g.ready[1:]
	g.x.begin(o)
}

// ringRoutes resolves (once) the rank->successor route of every rank.
func (g *Group) ringRoutes() [][]*simnet.Link {
	if g.ringPaths == nil {
		world := len(g.gpus)
		g.ringPaths = make([][]*simnet.Link, world)
		for i := range g.gpus {
			r, err := g.topology.Route(g.gpus[i], g.gpus[(i+1)%world])
			if err != nil {
				// Routes were validated at construction.
				panic(fmt.Sprintf("collective: %v", err))
			}
			g.ringPaths[i] = r
		}
	}
	return g.ringPaths
}

// psRoutes resolves (once) every rank's route to and from the parameter
// server (the lead machine's host).
func (g *Group) psRoutes(toServer bool) [][]*simnet.Link {
	if g.psPush == nil {
		server := g.topology.Machines[g.gpus[0].Node].Host
		g.psPush = make([][]*simnet.Link, len(g.gpus))
		g.psPull = make([][]*simnet.Link, len(g.gpus))
		for i, gpu := range g.gpus {
			up, err := g.topology.Route(gpu, server)
			if err != nil {
				panic(fmt.Sprintf("collective: %v", err))
			}
			down, err := g.topology.Route(server, gpu)
			if err != nil {
				panic(fmt.Sprintf("collective: %v", err))
			}
			g.psPush[i] = up
			g.psPull[i] = down
		}
	}
	if toServer {
		return g.psPush
	}
	return g.psPull
}

// exec runs the group's collectives as a continuation-style state machine
// on the engine's event loop: no goroutine handoffs, and its flow scratch
// and step closure are reused across ops so steady-state execution does
// not allocate. Ops execute one at a time (g.executing), so a single exec
// per group suffices.
//
// The state transitions reproduce, event for event, the retired process
// implementation: a spawn event at issue, one timer for the call
// overhead, then per phase a batch of flow starts awaited in rank order.
type exec struct {
	g     *Group
	o     *op
	task  *sim.Task
	cont  func() // run, bound once
	start time.Duration
	state int

	chunk float64        // ring: per-step chunk size
	step  int            // ring: current step of 2(world-1)
	idx   int            // await progress within flows
	flows []*simnet.Flow // scratch, one slot per rank
}

// exec states.
const (
	xStart       = iota // spawn event fired; charge call overhead
	xDispatch           // overhead elapsed; choose algorithm
	xRingLaunch         // start this ring step's flows
	xRingAwait          // await this ring step's flows in rank order
	xPSPush             // start all gradient pushes to the server
	xPSPushAwait        // await pushes
	xPSPull             // start all parameter pulls from the server
	xPSPullAwait        // await pulls; op complete
)

// init prepares the executor for (re)use, preserving recycled capacity:
// the bound continuation is minted once per exec lifetime and the flow
// scratch only grows.
func (x *exec) init(g *Group) {
	x.g = g
	if x.cont == nil {
		x.cont = x.run
	}
	if cap(x.flows) >= len(g.gpus) {
		x.flows = x.flows[:len(g.gpus)]
		for i := range x.flows {
			x.flows[i] = nil
		}
	} else {
		x.flows = make([]*simnet.Flow, len(g.gpus))
	}
}

// begin starts executing op o: like the process it replaces, the op's
// body runs in a fresh event at the current instant, after anything
// already queued.
func (x *exec) begin(o *op) {
	x.o = o
	x.state = xStart
	x.task = x.g.eng.Spawn("allreduce", x.cont)
}

func (x *exec) run() {
	g := x.g
	for {
		switch x.state {
		case xStart:
			x.start = g.eng.Now()
			if len(g.gpus) == 1 {
				// Single rank: DDP skips communication entirely.
				x.finish()
				return
			}
			x.state = xDispatch
			g.eng.Schedule(g.callOverhead, x.cont)
			return

		case xDispatch:
			if x.o.bytes <= 0 {
				x.finish()
				return
			}
			switch g.algorithm {
			case Ring:
				x.chunk = x.o.bytes / float64(len(g.gpus))
				x.step = 0
				x.state = xRingLaunch
			case ParameterServer:
				x.state = xPSPush
			}

		case xRingLaunch:
			// One ring step: every rank forwards a 1/p chunk to its
			// successor concurrently. Step time is set by the slowest
			// route, which is how a single network hop throttles the
			// whole ring (§IV-B2).
			routes := g.ringRoutes()
			for i := range routes {
				// The first step pays route latency; later steps stream
				// over the already-pipelined path (NCCL slices the chunk
				// so their latency hides behind the previous step's tail).
				if x.step == 0 {
					x.flows[i] = g.net.StartFlow(x.chunk, routes[i])
				} else {
					x.flows[i] = g.net.StartFlowLatency(x.chunk, routes[i], 0)
				}
			}
			x.idx = 0
			x.state = xRingAwait

		case xRingAwait:
			if !x.awaitFlows() {
				return
			}
			x.recycleFlows()
			x.step++
			if x.step < 2*(len(g.gpus)-1) {
				x.state = xRingLaunch
				continue
			}
			x.finish()
			return

		case xPSPush, xPSPull:
			// One PS phase: p concurrent full-size transfers through the
			// server's links (push gradients, then pull updates).
			routes := g.psRoutes(x.state == xPSPush)
			for i := range routes {
				x.flows[i] = g.net.StartFlow(x.o.bytes, routes[i])
			}
			x.idx = 0
			x.state++ // the matching await state follows each launch state

		case xPSPushAwait:
			if !x.awaitFlows() {
				return
			}
			x.recycleFlows()
			x.state = xPSPull

		case xPSPullAwait:
			if !x.awaitFlows() {
				return
			}
			x.recycleFlows()
			x.finish()
			return
		}
	}
}

// awaitFlows advances x.idx across the current flow batch, subscribing
// the continuation to the first unfinished flow. It reports whether the
// whole batch has completed — false means run must return and will be
// re-entered when the blocking flow finishes.
func (x *exec) awaitFlows() bool {
	for x.idx < len(x.flows) {
		sig := x.flows[x.idx].Done()
		if !sig.Fired() {
			sig.OnFire(x.cont)
			return false
		}
		x.idx++
	}
	return true
}

// recycleFlows returns the just-awaited batch to the network's free list.
// Safe because the exec exclusively owns its phase flows and awaitFlows
// only returns true once every flow has fired (so no waiter, including
// x.cont itself, is still parked on any of them).
func (x *exec) recycleFlows() {
	for i, f := range x.flows {
		x.g.net.Recycle(f)
		x.flows[i] = nil
	}
}

func (x *exec) finish() {
	g := x.g
	g.busyTime += g.eng.Now() - x.start
	g.opsCompleted++
	g.bytesReduced += x.o.bytes
	g.executing = false
	o := x.o
	done := o.done
	task := x.task
	// Barrier spans go out before the op struct is recycled: per rank,
	// arrival to global completion — the raw material of frontier blame
	// attribution — plus the group-level execution span on its own row.
	if g.tr != nil {
		now := g.eng.Now()
		name := fmt.Sprintf("op%d", o.seq)
		for rank := range g.gpus {
			g.tr.Add(trace.Span{Worker: rank, Kind: trace.KindBarrier, Name: name, Start: o.arrivals[rank], End: now})
		}
		g.tr.Add(trace.Span{Worker: -1, Kind: trace.KindCollective, Name: name, Start: x.start, End: now})
	}
	x.o, x.task = nil, nil
	// The op struct is reusable immediately — its callers only ever hold
	// the done signal, which each use replaces with a fresh one.
	o.done = nil
	g.freeOps = append(g.freeOps, o)
	done.Fire()
	// maybeStart may re-begin this exec for the next ready op, so the
	// locals above must be captured before it runs.
	g.maybeStart()
	task.End()
}
