package audit

import (
	"context"
	"strings"
	"testing"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

// hasViolation reports whether res contains a violation of the named
// check.
func hasViolation(res *Result, check string) bool {
	for _, v := range res.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}

// TestQuickClean: the bounded audit slice (the healthz?deep=1 payload)
// must pass on the repository as shipped, and must be cheap enough to
// live under a request timeout.
func TestQuickClean(t *testing.T) {
	res, err := Quick(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("quick audit found violations:\n%s", strings.Join(res.Strings(), "\n"))
	}
	if res.Checks == 0 {
		t.Fatal("quick audit evaluated no checks")
	}
}

// TestQuickCancelled: a context that is already expired aborts the
// audit with its error instead of reporting fake violations.
func TestQuickCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Quick(ctx, Options{})
	if err == nil {
		t.Fatalf("cancelled audit returned result %v, want error", res)
	}
}

// report profiles one known-good cell so the broken-fake tests start
// from an internally consistent report.
func testReport(t *testing.T) *core.Report {
	t.Helper()
	model, err := dnn.Resolve("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	it, err := cloud.ByName("p3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	job, err := workload.NewJob(model, 32)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.New(core.WithIterations(4)).Profile(job, it)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCheckReportClean: a genuine profile satisfies every physical
// invariant.
func TestCheckReportClean(t *testing.T) {
	res := CheckReport(testReport(t))
	if !res.Ok() {
		t.Fatalf("clean report violates invariants:\n%s", strings.Join(res.Strings(), "\n"))
	}
}

// TestCheckReportBrokenFakes: each physical invariant fires on a report
// with that specific field deliberately corrupted.
func TestCheckReportBrokenFakes(t *testing.T) {
	cases := []struct {
		name  string
		check string
		mutil func(*core.Report)
	}{
		{"ordering t1>t2", "t1<=t2", func(r *core.Report) {
			r.IC.SingleGPU, r.IC.AllGPU = r.IC.AllGPU+time.Millisecond, r.IC.SingleGPU
		}},
		{"negative pre-clamp prep", "prep-preclamp", func(r *core.Report) {
			r.Data.WarmCache = r.Data.Synthetic - time.Nanosecond
		}},
		{"negative pre-clamp fetch", "fetch-preclamp", func(r *core.Report) {
			r.Data.ColdCache = r.Data.WarmCache - time.Nanosecond
		}},
		{"stall pct over 100", "stall-pct-bounds", func(r *core.Report) {
			r.Data.PrepPct, r.Data.FetchPct = 60, 50
		}},
		{"ic stall not t2-t1", "ic-stall-derivation", func(r *core.Report) {
			r.IC.Stall += time.Millisecond
		}},
		{"t2 disagreement", "t2-agreement", func(r *core.Report) {
			r.Data.Synthetic += time.Nanosecond
		}},
		{"nw t2 disagreement", "t2-agreement-nw", func(r *core.Report) {
			r.NW.SingleInstance += time.Nanosecond
		}},
		{"warm above cold", "warm<=cold", func(r *core.Report) {
			r.Epoch.WarmIteration = r.Epoch.ColdIteration + time.Millisecond
		}},
		{"epoch time mismatch", "epoch-time-derivation", func(r *core.Report) {
			r.Epoch.Time += time.Second
		}},
		{"epoch not from data stalls", "epoch-warm-agreement", func(r *core.Report) {
			r.Epoch.WarmIteration += time.Nanosecond
		}},
		{"zero epoch cost", "epoch-positive", func(r *core.Report) {
			r.Epoch.Cost = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := testReport(t)
			nw := *rep.NW
			rep.NW = &nw // mutate a copy, testReport shares the profiler cache per call
			tc.mutil(rep)
			res := CheckReport(rep)
			if !hasViolation(res, tc.check) {
				t.Errorf("corrupted report passed %q; violations: %v", tc.check, res.Strings())
			}
		})
	}
}

// TestCheckStats: the conservation checker accepts balanced snapshots
// and flags leaks, over-delivery, and negative counters.
func TestCheckStats(t *testing.T) {
	balanced := core.Stats{Requests: 10, Simulated: 4, CacheHits: 3, Waits: 2, Cancelled: 1}
	if res := CheckStats(balanced); !res.Ok() {
		t.Errorf("balanced stats flagged: %v", res.Strings())
	}
	leaked := balanced
	leaked.Requests = 11 // one admitted request never reached an outcome
	if res := CheckStats(leaked); !hasViolation(res, "balance-quiesced") {
		t.Errorf("leaked request not flagged: %v", res.Strings())
	}
	negative := balanced
	negative.Waits = -1
	if res := CheckStats(negative); !hasViolation(res, "counters-nonnegative") {
		t.Errorf("negative counter not flagged: %v", res.Strings())
	}
}

// TestCheckStatsLive: mid-flight snapshots may run a positive balance
// but never a negative one.
func TestCheckStatsLive(t *testing.T) {
	inflight := core.Stats{Requests: 10, Simulated: 4, CacheHits: 3}
	if res := CheckStatsLive(inflight); !res.Ok() {
		t.Errorf("in-flight stats flagged: %v", res.Strings())
	}
	broken := core.Stats{Requests: 3, Simulated: 4}
	if res := CheckStatsLive(broken); !hasViolation(res, "balance-live") {
		t.Errorf("outcomes exceeding admissions not flagged: %v", res.Strings())
	}
	if res := CheckStats(inflight); !hasViolation(res, "balance-quiesced") {
		t.Errorf("quiesced checker accepted an unbalanced snapshot: %v", res.Strings())
	}
}

// TestViolationRendering pins the report formats the CLIs print.
func TestViolationRendering(t *testing.T) {
	v := Violation{Family: FamilyPhysical, Check: "t1<=t2", Detail: "boom"}
	if got, want := v.String(), "physical/t1<=t2: boom"; got != want {
		t.Errorf("Violation.String() = %q, want %q", got, want)
	}
	clean := &Result{Checks: 7}
	if got := clean.String(); !strings.Contains(got, "7 checks") || !strings.Contains(got, "all invariants hold") {
		t.Errorf("clean Result.String() = %q", got)
	}
	dirty := &Result{Checks: 7, Violations: []Violation{v}}
	if got := dirty.String(); !strings.Contains(got, "1 violated") || !strings.Contains(got, v.String()) {
		t.Errorf("dirty Result.String() = %q", got)
	}
	if dirty.Ok() {
		t.Error("Result with violations reports Ok")
	}
}

// TestOptionsNormalize pins the defaulting rules, including the shared
// "0 or negative = GOMAXPROCS" parallelism convention.
func TestOptionsNormalize(t *testing.T) {
	full := Options{}.normalize(false)
	if full.Iterations != DefaultIterations || full.Seed != 1 || len(full.Profiles) == 0 || len(full.Experiments) == 0 {
		t.Errorf("full defaults: %+v", full)
	}
	quick := Options{}.normalize(true)
	if quick.Iterations != quickIterations || len(quick.Profiles) != len(QuickProfileCells()) ||
		len(quick.Experiments) != len(QuickExperiments()) {
		t.Errorf("quick defaults: %+v", quick)
	}
	if got := (Options{Parallelism: -2}).normalize(false).Parallelism; got != 0 {
		t.Errorf("negative parallelism normalized to %d, want 0 (GOMAXPROCS)", got)
	}
}

// TestOOMCellAudits: a matrix of only the expected-OOM cell still
// audits cleanly — the memory-model consistency check accepts the OOM
// and the conservation audit copes with zero admitted requests.
func TestOOMCellAudits(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Iterations:  4,
		Profiles:    []ProfileCell{{Model: "bert-large", Batch: 64, Instance: "p3.2xlarge"}},
		Experiments: []string{"table2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("OOM-only matrix audit: %s", strings.Join(res.Strings(), "\n"))
	}
}
