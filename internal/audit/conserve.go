package audit

import (
	"context"
	"sync"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

// CheckStats checks a quiesced scheduler-counter snapshot: no counter
// may be negative, and the conservation law must hold exactly — every
// admitted request ended in exactly one of the five outcomes
// (Requests == Simulated + CacheHits + RemoteHits + Waits + Cancelled),
// so Balance is zero. It is a pure function over the snapshot, so tests
// can feed it deliberately broken fakes.
func CheckStats(s core.Stats) *Result {
	res := checkStatsCommon(s)
	res.check(FamilyConservation, "balance-quiesced", s.Balance() == 0,
		"quiesced profiler leaks requests: %v (balance %d)", s, s.Balance())
	return res
}

// CheckStatsLive checks a snapshot that may have been taken mid-flight:
// counters are non-negative and Balance is >= 0 (admission is counted
// before the outcome, so the outcome sum can trail Requests but never
// lead it). stashd's deep health probe applies this to its live pools.
func CheckStatsLive(s core.Stats) *Result {
	res := checkStatsCommon(s)
	res.check(FamilyConservation, "balance-live", s.Balance() >= 0,
		"outcomes exceed admissions: %v (balance %d)", s, s.Balance())
	return res
}

func checkStatsCommon(s core.Stats) *Result {
	res := &Result{}
	res.check(FamilyConservation, "counters-nonnegative",
		s.Requests >= 0 && s.Simulated >= 0 && s.CacheHits >= 0 && s.RemoteHits >= 0 && s.Waits >= 0 && s.Cancelled >= 0,
		"negative scheduler counter: %v", s)
	return res
}

// auditConservation checks the scenario scheduler's counter accounting
// on the profiler the physical audit just exercised: the quiesced
// snapshot must balance, and after a concurrent burst of duplicate and
// deliberately pre-cancelled requests it must balance again, with every
// counter monotonically non-decreasing and the cancellations actually
// attributed to Cancelled (the pre-fix scheduler folded them into
// Waits).
func auditConservation(ctx context.Context, opts Options, p *core.Profiler, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	before := p.Stats()
	res.merge(CheckStats(before))

	job, it, ok := fittingCell(opts)
	if !ok {
		// An all-OOM matrix admits nothing; the quiesced check above is
		// all that can be said.
		return nil
	}
	res.check(FamilyConservation, "profiler-exercised", before.Requests > 0,
		"physical audit admitted no scenario requests: %v", before)

	// Concurrent exercise: even indices re-request the already-profiled
	// cell (served from cache), odd indices carry a context that is
	// already expired, so the scheduler must charge each of them to
	// Cancelled on admission.
	cancelledCtx, cancel := context.WithCancel(ctx)
	cancel()
	const burst = 8
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		c := ctx
		if i%2 == 1 {
			c = cancelledCtx
		}
		wg.Add(1)
		go func(c context.Context) {
			defer wg.Done()
			p.ProfileContext(c, job, it) //nolint:errcheck // cancelled calls fail by design
		}(c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	after := p.Stats()
	res.merge(CheckStats(after))
	res.check(FamilyConservation, "counters-monotonic",
		after.Requests >= before.Requests && after.Simulated >= before.Simulated &&
			after.CacheHits >= before.CacheHits && after.RemoteHits >= before.RemoteHits &&
			after.Waits >= before.Waits && after.Cancelled >= before.Cancelled,
		"counters regressed across exercise: before %v, after %v", before, after)
	res.check(FamilyConservation, "cancelled-attributed", after.Cancelled >= before.Cancelled+burst/2,
		"%d pre-cancelled requests but Cancelled moved %d -> %d (folded into Waits?)",
		burst/2, before.Cancelled, after.Cancelled)
	res.check(FamilyConservation, "served-from-cache", after.CacheHits > before.CacheHits,
		"duplicate profile of a cached cell recorded no cache hits: before %v, after %v", before, after)
	return nil
}

// fittingCell returns a job/instance pair from the options' matrix that
// passes the GPU-memory fit check, if any — the conservation exercise
// needs a cell the scheduler will actually admit.
func fittingCell(opts Options) (workload.Job, cloud.InstanceType, bool) {
	for _, cell := range opts.Profiles {
		model, err := dnn.Resolve(cell.Model)
		if err != nil {
			continue
		}
		it, err := cloud.ByName(cell.Instance)
		if err != nil {
			continue
		}
		job, err := workload.NewJob(model, cell.Batch)
		if err != nil {
			continue
		}
		if model.TrainingMemoryBytes(cell.Batch) <= it.GPUMemPerGPU() {
			return job, it, true
		}
	}
	return workload.Job{}, cloud.InstanceType{}, false
}
