// Cluster-mode invariants: the checks that hold a distributed stashd to
// the same standards as a single process.
//
// Two properties define cluster correctness here:
//
//   - Conservation: each replica's scheduler counters obey the live
//     balance law locally, and across the whole cluster the work is
//     single-flight — the sum of Simulated over all replicas never
//     exceeds the number of unique scenarios that were requested.
//     Remote fills land in RemoteHits, so double-charging a peer's
//     simulation to Simulated shows up immediately as a violation.
//
//   - Determinism: a sweep split into stolen cell ranges and merged in
//     index order must produce output byte-identical to the same sweep
//     on a single node. Anything less means the merge (or a replica's
//     configuration) leaked into the artifact.
package audit

import (
	"bytes"

	"stash/internal/core"
)

// ClusterReplica is one replica's observed scheduler counters, as
// scraped from its /metrics or carried by health gossip.
type ClusterReplica struct {
	Name  string
	Stats core.Stats
}

// CheckClusterSingleFlight audits a set of replica snapshots against
// the cluster conservation contract: every replica individually
// satisfies the live balance law (its snapshot may be mid-flight), and
// cluster-wide at most uniqueScenarios simulations ran — the
// consistent-hash single-flight guarantee. uniqueScenarios is the
// number of distinct scenario keys the workload can request (for a
// sweep: the single-node run's Simulated count).
func CheckClusterSingleFlight(replicas []ClusterReplica, uniqueScenarios int64) *Result {
	res := &Result{}
	res.check(FamilyConservation, "cluster-replicas", len(replicas) > 0,
		"no replica snapshots to audit")
	var total int64
	for _, r := range replicas {
		per := CheckStatsLive(r.Stats)
		res.Checks += per.Checks
		for _, v := range per.Violations {
			res.Violations = append(res.Violations, Violation{
				Family: v.Family,
				Check:  "replica-" + r.Name + "-" + v.Check,
				Detail: v.Detail,
			})
		}
		total += r.Stats.Simulated
	}
	res.check(FamilyConservation, "cluster-single-flight", total <= uniqueScenarios,
		"cluster simulated %d scenarios but only %d are unique: remote fills are being re-simulated",
		total, uniqueScenarios)
	return res
}

// CheckMergeIdentity audits the distributed sweep determinism contract:
// the artifact assembled from stolen cell ranges (merged) must be
// byte-identical to the artifact the same sweep produces on a single
// node. label names the artifact form under audit (for a sweep both the
// table and JSON forms are checked, each with its own label).
func CheckMergeIdentity(label string, singleNode, merged []byte) *Result {
	res := &Result{}
	if bytes.Equal(singleNode, merged) {
		res.check(FamilyDeterminism, "merge-identity-"+label, true, "")
		return res
	}
	// Name the first divergent byte: "outputs differ" alone makes the
	// operator diff multi-megabyte artifacts by hand.
	n := len(singleNode)
	if len(merged) < n {
		n = len(merged)
	}
	at := n
	for i := 0; i < n; i++ {
		if singleNode[i] != merged[i] {
			at = i
			break
		}
	}
	res.check(FamilyDeterminism, "merge-identity-"+label, false,
		"%s: merged sweep diverges from single-node at byte %d (single-node %d bytes, merged %d bytes)",
		label, at, len(singleNode), len(merged))
	return res
}
