package audit

import (
	"context"
	"reflect"
	"strings"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/experiments"
	"stash/internal/workload"
)

// registryIDs lists every experiment in the registry, in registry
// order — the full determinism audit covers all of them.
func registryIDs() []string {
	reg := experiments.Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// auditDeterminism checks the byte-stability guarantee the repository
// documents (docs/API.md "Determinism"): at a fixed seed, every
// registry artifact renders byte-identically serial vs parallel and
// run vs rerun. It closes with a profiler cache-key completeness check:
// a result computed on a cold cache must equal one computed after the
// cache was warmed with foreign scenarios — if a key field were
// missing, the warmed profiler would serve the wrong entry.
func auditDeterminism(ctx context.Context, opts Options, res *Result) error {
	serialCfg := experiments.Config{
		Iterations: opts.Iterations, Seed: opts.Seed, Parallelism: 1,
	}.WithContext(ctx)
	parallelCfg := experiments.Config{
		Iterations: opts.Iterations, Seed: opts.Seed, Parallelism: 8,
	}.WithContext(ctx)

	for _, id := range opts.Experiments {
		if err := ctx.Err(); err != nil {
			return err
		}
		e, err := experiments.ByID(id)
		if err != nil {
			res.check(FamilyDeterminism, "experiment-known", false, "%v", err)
			continue
		}
		serial, err := renderExperiment(e, serialCfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.check(FamilyDeterminism, "experiment-runs", false, "%s (serial): %v", id, err)
			continue
		}
		res.check(FamilyDeterminism, "experiment-nonempty", serial != "",
			"%s rendered no table bytes", id)
		parallel, err := renderExperiment(e, parallelCfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.check(FamilyDeterminism, "experiment-runs", false, "%s (parallel): %v", id, err)
			continue
		}
		res.check(FamilyDeterminism, "serial-vs-parallel", serial == parallel,
			"%s renders differently at parallelism 1 vs 8 (%d vs %d bytes)", id, len(serial), len(parallel))
		rerun, err := renderExperiment(e, serialCfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.check(FamilyDeterminism, "experiment-runs", false, "%s (rerun): %v", id, err)
			continue
		}
		res.check(FamilyDeterminism, "run-vs-rerun", serial == rerun,
			"%s renders differently across reruns at seed %d (%d vs %d bytes)", id, opts.Seed, len(serial), len(rerun))
	}

	if err := auditCacheKey(ctx, opts, res); err != nil {
		return err
	}
	return auditWarmPrefix(ctx, opts, res)
}

// auditWarmPrefix checks the warm-prefix forking guarantee: a profile
// computed with forking enabled (the default — synthetic scenarios skip
// simulating their warmup prefix and reconstruct CommBusy exactly) must
// be deeply equal to one computed with forking disabled, which simulates
// every warmup iteration. Any divergence means synthetic training is not
// lockstep-periodic from iteration zero and the fork is unsound.
func auditWarmPrefix(ctx context.Context, opts Options, res *Result) error {
	job, it, ok := fittingCell(opts)
	if !ok {
		return nil
	}
	mk := func(fork bool) *core.Profiler {
		return core.New(
			core.WithIterations(opts.Iterations),
			core.WithSeed(opts.Seed),
			core.WithParallelism(opts.Parallelism),
			core.WithWarmPrefixFork(fork),
		)
	}
	forked, err := mk(true).ProfileContext(ctx, job, it)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "warm-prefix-profile", false, "forked profile: %v", err)
		return nil
	}
	full, err := mk(false).ProfileContext(ctx, job, it)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "warm-prefix-profile", false, "unforked profile: %v", err)
		return nil
	}
	res.check(FamilyDeterminism, "forked-vs-unforked", reflect.DeepEqual(forked, full),
		"%s@%s profiles differently with warm-prefix forking on vs off — synthetic warmup prefix is not a replica of the measured window",
		job.Model.Name, it.Name)
	return nil
}

// renderExperiment concatenates every table of one experiment run into
// a single string — the byte-level artifact the determinism guarantee
// covers (the same rendering the CLIs and stashd emit).
func renderExperiment(e experiments.Experiment, cfg experiments.Config) (string, error) {
	tables, err := e.Run(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteString(tb.CSV())
	}
	return b.String(), nil
}

// auditCacheKey checks scenario-cache key completeness: two profilers
// built with identical options must report the same profile for a cell
// whether or not foreign scenarios were simulated first. A scenarioKey
// missing a distinguishing field would make the warmed profiler return
// a foreign cached result here.
func auditCacheKey(ctx context.Context, opts Options, res *Result) error {
	job, it, ok := fittingCell(opts)
	if !ok {
		return nil
	}
	foreign, foreignIt, haveForeign := foreignCell(opts, job, it)

	mk := func() *core.Profiler {
		return core.New(
			core.WithIterations(opts.Iterations),
			core.WithSeed(opts.Seed),
			core.WithParallelism(opts.Parallelism),
		)
	}
	cold := mk()
	warmed := mk()
	if haveForeign {
		if _, err := warmed.ProfileContext(ctx, foreign, foreignIt); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.check(FamilyDeterminism, "cache-key-warmup", false,
				"warming profile %s@%s: %v", foreign.Model.Name, foreignIt.Name, err)
			return nil
		}
	}
	a, err := cold.ProfileContext(ctx, job, it)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "cache-key-profile", false, "cold profile: %v", err)
		return nil
	}
	b, err := warmed.ProfileContext(ctx, job, it)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "cache-key-profile", false, "warmed profile: %v", err)
		return nil
	}
	res.check(FamilyDeterminism, "cache-key-complete", reflect.DeepEqual(a, b),
		"%s@%s profiles differently on a cache warmed with %s@%s — scenario key incomplete",
		job.Model.Name, it.Name, foreign.Model.Name, foreignIt.Name)
	return nil
}

// foreignCell returns a second admittable cell from the matrix that
// differs from (job, it); when the matrix has no second fitting cell it
// falls back to profiling the same model on a different instance.
func foreignCell(opts Options, job workload.Job, it cloud.InstanceType) (workload.Job, cloud.InstanceType, bool) {
	for _, cell := range opts.Profiles {
		model, err := dnn.Resolve(cell.Model)
		if err != nil {
			continue
		}
		cit, err := cloud.ByName(cell.Instance)
		if err != nil {
			continue
		}
		if model.Name == job.Model.Name && cit.Name == it.Name {
			continue
		}
		cjob, err := workload.NewJob(model, cell.Batch)
		if err != nil {
			continue
		}
		if model.TrainingMemoryBytes(cell.Batch) <= cit.GPUMemPerGPU() {
			return cjob, cit, true
		}
	}
	for _, name := range []string{"p2.xlarge", "p3.2xlarge", "p3.8xlarge"} {
		if name == it.Name {
			continue
		}
		cit, err := cloud.ByName(name)
		if err != nil {
			continue
		}
		if job.Model.TrainingMemoryBytes(job.BatchPerGPU) <= cit.GPUMemPerGPU() {
			return job, cit, true
		}
	}
	return workload.Job{}, cloud.InstanceType{}, false
}
