package audit

import (
	"context"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/workload"
)

// auditStragglerScale is the synthetic straggler injected by the blame
// audit: pronounced enough that the slowed rank must dominate the table
// on any multi-GPU cell.
const auditStragglerScale = 1.5

// blameCell picks the first multi-GPU cell of the options' matrix that
// fits in memory — frontier attribution needs at least two ranks to
// have a frontier.
func blameCell(opts Options) (workload.Job, cloud.InstanceType, bool) {
	for _, cell := range opts.Profiles {
		sub := opts
		sub.Profiles = []ProfileCell{cell}
		if job, it, ok := fittingCell(sub); ok && it.NGPUs >= 2 {
			return job, it, true
		}
	}
	return workload.Job{}, cloud.InstanceType{}, false
}

// auditBlame checks the frontier blame attribution (core.BlameContext):
//
//   - conservation: attributed + unattributed comm-wait equals the
//     measured KindCommWait total exactly, and with per-rank barrier
//     spans recorded nothing stays unattributed;
//   - the per-worker table itself sums to the attributed total;
//   - physical: an injected straggler must rank first with a positive
//     blame score;
//   - determinism: the rendered blame table is byte-identical run vs
//     rerun and on a serial vs parallel profiler.
func auditBlame(ctx context.Context, opts Options, res *Result) error {
	job, it, ok := blameCell(opts)
	if !ok {
		// No multi-GPU cell in the matrix; nothing to attribute.
		return nil
	}
	mk := func(par int) *core.Profiler {
		return core.New(
			core.WithIterations(opts.Iterations),
			core.WithSeed(opts.Seed),
			core.WithParallelism(par),
		)
	}
	opt := core.BlameOptions{StragglerRank: it.NGPUs - 1, StragglerScale: auditStragglerScale}
	rep, err := mk(1).BlameContext(ctx, job, it, opt)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyConservation, "blame-runs", false, "%s on %s: %v", job.Model.Name, it.Name, err)
		return nil
	}

	res.check(FamilyConservation, "blame-conservation",
		rep.Attributed+rep.Unattributed == rep.TotalCommWait,
		"%s on %s: attributed %v + unattributed %v != comm-wait total %v",
		job.Model.Name, it.Name, rep.Attributed, rep.Unattributed, rep.TotalCommWait)
	res.check(FamilyConservation, "blame-lossless", rep.Unattributed == 0,
		"%s on %s: %v comm-wait not attributed to any barrier frontier",
		job.Model.Name, it.Name, rep.Unattributed)
	var sum time.Duration
	for _, w := range rep.Workers {
		sum += w.Blamed
	}
	res.check(FamilyConservation, "blame-table-sums", sum == rep.Attributed,
		"%s on %s: per-worker blame sums to %v, attributed total is %v",
		job.Model.Name, it.Name, sum, rep.Attributed)

	top := core.WorkerBlameRow{Rank: -1}
	if len(rep.Workers) > 0 {
		top = rep.Workers[0]
	}
	res.check(FamilyPhysical, "blame-straggler-first",
		top.Rank == opt.StragglerRank && top.Blamed > 0,
		"%s on %s: injected straggler rank %d, top blamed rank %d (%v)",
		job.Model.Name, it.Name, opt.StragglerRank, top.Rank, top.Blamed)

	rerun, err := mk(1).BlameContext(ctx, job, it, opt)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "blame-rerun-runs", false, "%v", err)
		return nil
	}
	res.check(FamilyDeterminism, "blame-run-vs-rerun", rep.String() == rerun.String(),
		"%s on %s: blame table differs between identical runs", job.Model.Name, it.Name)
	parallel, err := mk(8).BlameContext(ctx, job, it, opt)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res.check(FamilyDeterminism, "blame-parallel-runs", false, "%v", err)
		return nil
	}
	res.check(FamilyDeterminism, "blame-serial-vs-parallel", rep.String() == parallel.String(),
		"%s on %s: blame table differs between serial and parallel profilers", job.Model.Name, it.Name)
	return nil
}
