package audit

// JobCounters is one tenant's job-admission accounting as the stashd
// v2 job API reports it. The counters extend the PR-3 conservation
// family one layer up: every job the admission layer accepts is, at
// any consistent snapshot, in exactly one of five places — still
// queued, running, or terminally done/failed/cancelled — so
//
//	Accepted == Queued + Running + Done + Failed + Cancelled
//
// holds exactly, not just at quiescence: the job store performs state
// transitions and snapshots under one lock. Rejected counts jobs the
// admission layer bounced (quota, store full, draining) — they were
// never accepted, so they stay outside the balance, mirroring how the
// scenario scheduler keeps fit-check rejections out of Requests.
type JobCounters struct {
	// Accepted counts jobs admitted past quota and capacity checks.
	Accepted int64

	// Rejected counts submissions bounced at admission (never queued).
	Rejected int64

	// Done, Failed and Cancelled count terminal outcomes. Store
	// eviction frees a terminal job's result but never decrements these.
	Done, Failed, Cancelled int64

	// Queued and Running are live gauges of non-terminal jobs.
	Queued, Running int64

	// Cells counts scenario cells completed by this tenant's jobs; it
	// is informational (progress accounting) and not part of the
	// balance.
	Cells int64
}

// Balance is Accepted minus the sum of the five states. Zero at every
// consistent snapshot; anything else means a job leaked out of (or was
// double-counted into) the lifecycle.
func (c JobCounters) Balance() int64 {
	return c.Accepted - (c.Queued + c.Running + c.Done + c.Failed + c.Cancelled)
}

// CheckJobCounters audits one tenant's job accounting: all counters
// non-negative and the lifecycle balance exactly zero. stashd's deep
// health probe applies it to every tenant the job store has seen.
func CheckJobCounters(tenant string, c JobCounters) *Result {
	res := &Result{}
	res.check(FamilyConservation, "job-counters-nonnegative",
		c.Accepted >= 0 && c.Rejected >= 0 && c.Done >= 0 && c.Failed >= 0 &&
			c.Cancelled >= 0 && c.Queued >= 0 && c.Running >= 0 && c.Cells >= 0,
		"tenant %q has a negative job counter: %+v", tenant, c)
	res.check(FamilyConservation, "job-balance",
		c.Balance() == 0,
		"tenant %q leaks jobs: %+v (balance %d)", tenant, c, c.Balance())
	return res
}
