package audit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"stash/internal/cloud"
	"stash/internal/core"
	"stash/internal/dnn"
	"stash/internal/workload"
)

// pctEps tolerates float re-derivation noise in percentage checks. The
// durations themselves are exact integers, so only the percentage
// arithmetic needs a tolerance.
const pctEps = 1e-9

// auditPhysical profiles every cell of the options' matrix on a fresh,
// unshared profiler and checks the physical invariants of each report,
// plus the OOM-consistency invariant against the dnn memory model. It
// returns the profiler so the conservation audit can inspect (and
// further exercise) its counters.
func auditPhysical(ctx context.Context, opts Options, res *Result) (*core.Profiler, error) {
	p := core.New(
		core.WithIterations(opts.Iterations),
		core.WithSeed(opts.Seed),
		core.WithParallelism(opts.Parallelism),
	)
	for _, cell := range opts.Profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		label := cellLabel(cell)
		model, err := dnn.Resolve(cell.Model)
		if err != nil {
			res.check(FamilyPhysical, "cell-model", false, "%s: %v", label, err)
			continue
		}
		it, err := cloud.ByName(cell.Instance)
		if err != nil {
			res.check(FamilyPhysical, "cell-instance", false, "%s: %v", label, err)
			continue
		}
		job, err := workload.NewJob(model, cell.Batch)
		if err != nil {
			res.check(FamilyPhysical, "cell-job", false, "%s: %v", label, err)
			continue
		}

		// The memory model decides OOM before any simulation runs; the
		// profiler's outcome must agree with it exactly.
		need := model.TrainingMemoryBytes(cell.Batch)
		have := it.GPUMemPerGPU()
		rep, err := p.ProfileContext(ctx, job, it)
		var oom *core.OOMError
		switch {
		case errors.As(err, &oom):
			res.check(FamilyPhysical, "oom-consistency", need > have,
				"%s: profiler reported OOM but model needs %.1f GB of %.1f GB", label, need/1e9, have/1e9)
			//lint:allow floatcmp the OOM error must carry the memory model's exact values; bit-equality is the invariant
			res.check(FamilyPhysical, "oom-detail", oom.Required == need && oom.Available == have,
				"%s: OOM error carries %.0f/%.0f bytes, memory model says %.0f/%.0f",
				label, oom.Required, oom.Available, need, have)
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			res.check(FamilyPhysical, "profile-runs", false, "%s: %v", label, err)
		default:
			res.check(FamilyPhysical, "oom-consistency", need <= have,
				"%s: profile succeeded but model needs %.1f GB of %.1f GB", label, need/1e9, have/1e9)
			// Step 5 exists exactly when the instance has an even,
			// multi-GPU count to split across two machines.
			wantNW := it.NGPUs >= 2 && it.NGPUs%2 == 0
			res.check(FamilyPhysical, "nw-presence", (rep.NW != nil) == wantNW,
				"%s: network stall present=%v, want %v for %d GPUs", label, rep.NW != nil, wantNW, it.NGPUs)
			res.merge(CheckReport(rep))
		}
	}
	return p, nil
}

func cellLabel(c ProfileCell) string {
	return fmt.Sprintf("%s/bs%d@%s", c.Model, c.Batch, c.Instance)
}

// CheckReport checks the physical invariants of one complete profile:
// the §IV-B time orderings, pre-clamp stall non-negativity, percentage
// bounds and re-derivations, epoch positivity, and cross-measurement
// agreement on the scenarios the measurements share. It is a pure
// function over the report, so tests can feed it deliberately broken
// fakes.
func CheckReport(rep *core.Report) *Result {
	res := &Result{}
	label := rep.Model + "@" + rep.Instance

	// Interconnect (steps 1 and 2): t① ≤ t②, and the stall is exactly
	// the difference the paper defines.
	ic := rep.IC
	res.check(FamilyPhysical, "ic-positive-times", ic.SingleGPU > 0 && ic.AllGPU > 0,
		"%s: non-positive step times t1=%v t2=%v", label, ic.SingleGPU, ic.AllGPU)
	res.check(FamilyPhysical, "t1<=t2", ic.SingleGPU <= ic.AllGPU,
		"%s: single-GPU iteration %v exceeds all-GPU %v", label, ic.SingleGPU, ic.AllGPU)
	res.check(FamilyPhysical, "ic-stall-derivation", ic.Stall == ic.AllGPU-ic.SingleGPU,
		"%s: I/C stall %v != t2-t1 = %v", label, ic.Stall, ic.AllGPU-ic.SingleGPU)
	res.check(FamilyPhysical, "ic-pct-derivation", pctAgrees(ic.Pct, ic.Stall.Seconds(), ic.SingleGPU.Seconds()),
		"%s: I/C stall%% %.6f != 100*stall/t1", label, ic.Pct)

	// Data stalls (steps 2, 3, 4): the DS-Analyzer differences must be
	// non-negative *before* the public fields' clamp — a warm-cache run
	// faster than synthetic, or a cold run faster than warm, is
	// physically impossible in the model.
	d := rep.Data
	res.check(FamilyPhysical, "data-positive-times", d.Synthetic > 0 && d.ColdCache > 0 && d.WarmCache > 0,
		"%s: non-positive data-stall times t2=%v t3=%v t4=%v", label, d.Synthetic, d.ColdCache, d.WarmCache)
	res.check(FamilyPhysical, "prep-preclamp", d.WarmCache >= d.Synthetic,
		"%s: pre-clamp prep stall t4-t2 = %v < 0", label, d.WarmCache-d.Synthetic)
	res.check(FamilyPhysical, "fetch-preclamp", d.ColdCache >= d.WarmCache,
		"%s: pre-clamp fetch stall t3-t4 = %v < 0", label, d.ColdCache-d.WarmCache)
	res.check(FamilyPhysical, "prep-stall-derivation", d.PrepStall == max(0, d.WarmCache-d.Synthetic),
		"%s: prep stall %v != max(0, t4-t2)", label, d.PrepStall)
	res.check(FamilyPhysical, "fetch-stall-derivation", d.FetchStall == max(0, d.ColdCache-d.WarmCache),
		"%s: fetch stall %v != max(0, t3-t4)", label, d.FetchStall)
	res.check(FamilyPhysical, "stall-pct-bounds",
		d.PrepPct >= 0 && d.FetchPct >= 0 && d.PrepPct+d.FetchPct <= 100+pctEps,
		"%s: prep%%+fetch%% = %.6f+%.6f outside [0,100]", label, d.PrepPct, d.FetchPct)
	res.check(FamilyPhysical, "prep-pct-derivation", pctAgrees(d.PrepPct, d.PrepStall.Seconds(), d.ColdCache.Seconds()),
		"%s: prep%% %.6f != 100*prep/t3", label, d.PrepPct)
	res.check(FamilyPhysical, "fetch-pct-derivation", pctAgrees(d.FetchPct, d.FetchStall.Seconds(), d.ColdCache.Seconds()),
		"%s: fetch%% %.6f != 100*fetch/t3", label, d.FetchPct)

	// The three measurements share step 2 (one instance, all GPUs,
	// synthetic data): the interconnect's all-GPU time, the data
	// analysis's synthetic time, and — when present — the network
	// stall's single-instance time must be the same number.
	res.check(FamilyPhysical, "t2-agreement", ic.AllGPU == d.Synthetic,
		"%s: step-2 disagreement: interconnect t2=%v, data t2=%v", label, ic.AllGPU, d.Synthetic)

	if nw := rep.NW; nw != nil {
		res.check(FamilyPhysical, "nw-nodes", nw.Nodes >= 2,
			"%s: network stall over %d nodes", label, nw.Nodes)
		res.check(FamilyPhysical, "t2<=t5", nw.SingleInstance <= nw.MultiInstance,
			"%s: single-instance iteration %v exceeds %d-node %v", label, nw.SingleInstance, nw.Nodes, nw.MultiInstance)
		res.check(FamilyPhysical, "nw-stall-derivation", nw.Stall == nw.MultiInstance-nw.SingleInstance,
			"%s: N/W stall %v != t5-t2 = %v", label, nw.Stall, nw.MultiInstance-nw.SingleInstance)
		res.check(FamilyPhysical, "nw-pct-derivation", pctAgrees(nw.Pct, nw.Stall.Seconds(), nw.SingleInstance.Seconds()),
			"%s: N/W stall%% %.6f != 100*stall/t2", label, nw.Pct)
		res.check(FamilyPhysical, "t2-agreement-nw", nw.SingleInstance == d.Synthetic,
			"%s: step-2 disagreement: network t2=%v, data t2=%v", label, nw.SingleInstance, d.Synthetic)
	}

	// Epoch estimate: positive extent, warm ≤ amortized ≤ cold, and
	// agreement with the data-stall scenarios it is built from.
	e := rep.Epoch
	res.check(FamilyPhysical, "epoch-positive", e.Time > 0 && e.Cost > 0 && e.Iterations > 0 && e.WorldSize >= 1,
		"%s: epoch time=%v cost=%.4f iters=%d world=%d", label, e.Time, e.Cost, e.Iterations, e.WorldSize)
	res.check(FamilyPhysical, "warm<=cold", e.WarmIteration <= e.ColdIteration,
		"%s: warm iteration %v exceeds cold %v", label, e.WarmIteration, e.ColdIteration)
	res.check(FamilyPhysical, "epoch-amortization-bounds",
		e.PerIteration >= e.WarmIteration && e.PerIteration <= e.ColdIteration,
		"%s: amortized iteration %v outside [warm %v, cold %v]", label, e.PerIteration, e.WarmIteration, e.ColdIteration)
	res.check(FamilyPhysical, "epoch-time-derivation", e.Time == e.PerIteration*time.Duration(e.Iterations),
		"%s: epoch time %v != per-iteration %v * %d", label, e.Time, e.PerIteration, e.Iterations)
	res.check(FamilyPhysical, "epoch-warm-agreement", e.WarmIteration == d.WarmCache,
		"%s: epoch warm iteration %v != data t4 %v", label, e.WarmIteration, d.WarmCache)
	res.check(FamilyPhysical, "epoch-cold-agreement", e.ColdIteration == d.ColdCache,
		"%s: epoch cold iteration %v != data t3 %v", label, e.ColdIteration, d.ColdCache)

	return res
}

// pctAgrees re-derives a percentage as 100*num/den and compares with a
// relative tolerance; a zero denominator requires a zero percentage
// (the profiler's guarded division).
func pctAgrees(got, num, den float64) bool {
	if den <= 0 {
		//lint:allow floatcmp the profiler's guarded division emits exactly 0 here; bit-equality is the invariant
		return got == 0
	}
	want := 100 * num / den
	return math.Abs(got-want) <= pctEps*math.Max(1, math.Abs(want))
}
