package audit

import (
	"strings"
	"testing"
)

func TestCheckJobCountersClean(t *testing.T) {
	c := JobCounters{
		Accepted: 10, Rejected: 3,
		Done: 5, Failed: 1, Cancelled: 2,
		Queued: 1, Running: 1,
		Cells: 40,
	}
	if c.Balance() != 0 {
		t.Fatalf("balance = %d, want 0", c.Balance())
	}
	res := CheckJobCounters("acme", c)
	if !res.Ok() {
		t.Errorf("clean counters flagged: %v", res.Strings())
	}
	if res.Checks != 2 {
		t.Errorf("checks = %d, want 2", res.Checks)
	}
}

func TestCheckJobCountersLeak(t *testing.T) {
	c := JobCounters{Accepted: 5, Done: 3} // 2 jobs vanished
	if c.Balance() != 2 {
		t.Fatalf("balance = %d, want 2", c.Balance())
	}
	res := CheckJobCounters("acme", c)
	if res.Ok() {
		t.Fatal("leaking counters passed the audit")
	}
	found := false
	for _, v := range res.Violations {
		if v.Check == "job-balance" && strings.Contains(v.Detail, `"acme"`) {
			found = true
		}
		if v.Family != FamilyConservation {
			t.Errorf("violation family = %q, want %q", v.Family, FamilyConservation)
		}
	}
	if !found {
		t.Errorf("no job-balance violation naming the tenant: %v", res.Strings())
	}
}

func TestCheckJobCountersNegative(t *testing.T) {
	res := CheckJobCounters("acme", JobCounters{Accepted: 1, Queued: 2, Running: -1})
	if res.Ok() {
		t.Fatal("negative gauge passed the audit")
	}
	names := make(map[string]bool)
	for _, v := range res.Violations {
		names[v.Check] = true
	}
	if !names["job-counters-nonnegative"] {
		t.Errorf("missing nonnegative violation: %v", res.Strings())
	}
}
