package audit

import (
	"strings"
	"testing"

	"stash/internal/core"
)

func TestCheckClusterSingleFlightHolds(t *testing.T) {
	replicas := []ClusterReplica{
		{Name: "a", Stats: core.Stats{Requests: 10, Simulated: 4, CacheHits: 4, RemoteHits: 2}},
		{Name: "b", Stats: core.Stats{Requests: 6, Simulated: 2, RemoteHits: 3, Waits: 1}},
	}
	if res := CheckClusterSingleFlight(replicas, 6); !res.Ok() {
		t.Fatalf("conforming cluster flagged: %v", res)
	}
}

func TestCheckClusterSingleFlightCatchesResimulation(t *testing.T) {
	replicas := []ClusterReplica{
		{Name: "a", Stats: core.Stats{Requests: 5, Simulated: 5}},
		{Name: "b", Stats: core.Stats{Requests: 5, Simulated: 5}},
	}
	res := CheckClusterSingleFlight(replicas, 5)
	if res.Ok() {
		t.Fatal("10 simulations of 5 unique scenarios passed the single-flight check")
	}
	if !strings.Contains(res.String(), "cluster-single-flight") {
		t.Fatalf("violation does not name the check: %v", res)
	}
}

func TestCheckClusterSingleFlightNamesBrokenReplica(t *testing.T) {
	replicas := []ClusterReplica{
		{Name: "good", Stats: core.Stats{Requests: 3, Simulated: 3}},
		// Outcomes exceed admissions: a broken live balance.
		{Name: "bad", Stats: core.Stats{Requests: 1, Simulated: 2}},
	}
	res := CheckClusterSingleFlight(replicas, 5)
	if res.Ok() {
		t.Fatal("negative-balance replica passed")
	}
	if !strings.Contains(res.String(), "replica-bad-") {
		t.Fatalf("violation does not name the replica: %v", res)
	}
}

func TestCheckMergeIdentity(t *testing.T) {
	single := []byte(`{"experiments":[1,2,3]}` + "\n")
	if res := CheckMergeIdentity("json", single, append([]byte(nil), single...)); !res.Ok() {
		t.Fatalf("identical artifacts flagged: %v", res)
	}
	diverged := []byte(`{"experiments":[1,2,4]}` + "\n")
	res := CheckMergeIdentity("json", single, diverged)
	if res.Ok() {
		t.Fatal("diverging merged artifact passed the identity check")
	}
	if !strings.Contains(res.String(), "byte 20") {
		t.Fatalf("violation does not locate the divergence: %v", res)
	}
}
