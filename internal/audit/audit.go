// Package audit is the cross-layer invariant auditor: it re-derives
// and machine-checks the consistency properties the paper's methodology
// implies, over live runs of the profiler and the experiment registry.
//
// Stash's entire contribution is arithmetic over elapsed times — the
// I/C stall is t② − t①, the N/W stall t⑤ − t②, prep/fetch come from
// DS-Analyzer's t③/t④ (§IV-B) — so a single accounting bug anywhere in
// the profiler, the scenario scheduler, or the API silently corrupts
// every downstream figure. Golden files catch value drift but cannot
// say *why* a number is trustworthy; this package re-derives the
// relations the numbers must satisfy and fails loudly when one does
// not.
//
// Three invariant families:
//
//   - physical: per-scenario time orderings (t① ≤ t② ≤ t⑤, warm ≤ cold
//     iteration), pre-clamp non-negativity of the prep/fetch stalls,
//     stall-percentage bounds, epoch time/cost positivity, cross-
//     measurement agreement on shared scenarios, and OOM outcomes
//     consistent with the dnn memory model;
//   - conservation: the scenario scheduler's counters balance — every
//     admitted request ends in exactly one of simulated / cache hit /
//     single-flight wait / cancelled (core.Stats.Balance);
//   - determinism: byte-identical tables serial-vs-parallel and
//     run-vs-rerun at a fixed seed, and profiler cache-key completeness
//     (a result simulated from a cold cache equals one from a warmed
//     cache).
//
// The frontier blame attribution (core.BlameContext) is audited across
// all three families: attribution must conserve the measured comm-wait
// total exactly (lossless, per-worker rows summing back), an injected
// straggler must rank first, and the rendered table must be
// byte-identical run-vs-rerun and serial-vs-parallel.
//
// Entry points: Run executes the full suite (cmd/stash -selfcheck,
// cmd/characterize -audit, the scripts/ci.sh gate); Quick executes a
// bounded slice cheap enough for a liveness probe (stashd's
// GET /healthz?deep=1, under the per-request timeout). Invariant
// failures are reported as Violations in the Result; only context
// cancellation and infrastructure failures surface as errors.
package audit

import (
	"context"
	"fmt"
	"strings"
)

// Invariant families.
const (
	FamilyPhysical     = "physical"
	FamilyConservation = "conservation"
	FamilyDeterminism  = "determinism"
)

// Violation is one failed invariant check.
type Violation struct {
	// Family is the invariant family (FamilyPhysical,
	// FamilyConservation, FamilyDeterminism).
	Family string

	// Check is the short, stable identifier of the invariant.
	Check string

	// Detail explains the failure with the observed values.
	Detail string
}

// String renders the violation as "family/check: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Family, v.Check, v.Detail)
}

// Result accumulates an audit's outcome: how many individual checks
// ran and which of them failed.
type Result struct {
	// Checks counts every invariant assertion evaluated.
	Checks int

	// Violations holds the failed assertions, in execution order.
	Violations []Violation
}

// Ok reports whether every check passed.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Strings renders the violations, one line each, in execution order.
func (r *Result) Strings() []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.String()
	}
	return out
}

// String renders a one-line human summary, with violations listed on
// following lines when present.
func (r *Result) String() string {
	if r.Ok() {
		return fmt.Sprintf("audit: %d checks, all invariants hold", r.Checks)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d checks, %d violated:", r.Checks, len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// check records one assertion: ok counts as a pass, !ok appends a
// violation built from the format arguments.
func (r *Result) check(family, name string, ok bool, format string, args ...any) {
	r.Checks++
	if !ok {
		r.Violations = append(r.Violations, Violation{Family: family, Check: name, Detail: fmt.Sprintf(format, args...)})
	}
}

// merge folds another result into r.
func (r *Result) merge(o *Result) {
	r.Checks += o.Checks
	r.Violations = append(r.Violations, o.Violations...)
}

// ProfileCell is one (model, batch, instance) workload the physical
// audit profiles end to end.
type ProfileCell struct {
	Model    string
	Batch    int
	Instance string
}

// Options tunes an audit run. The zero value uses the defaults below.
type Options struct {
	// Iterations is the profiling window per scenario (default
	// DefaultIterations). The invariants hold at any window, so the
	// audit uses a small one for speed.
	Iterations int

	// Seed feeds the provisioner (default 1). Determinism checks rerun
	// at this fixed seed.
	Seed int64

	// Parallelism bounds the audit's own worker pools (0 or negative =
	// GOMAXPROCS, 1 = serial), matching core.WithParallelism.
	Parallelism int

	// Profiles is the physical audit's workload matrix; nil uses
	// DefaultProfileCells (Quick: QuickProfileCells).
	Profiles []ProfileCell

	// Experiments lists registry IDs for the determinism audit; nil
	// uses the full registry (Quick: QuickExperiments).
	Experiments []string
}

// DefaultIterations is the audit's profiling window: small, because
// every invariant is window-independent.
const DefaultIterations = 6

// quickIterations is the bounded slice's window (GET /healthz?deep=1).
const quickIterations = 4

// DefaultProfileCells is the full physical matrix: multi-GPU NVLink
// and PCIe machines, a network split, a single-GPU instance (no step
// 5), and an OOM-expected cell that exercises the memory-model
// consistency check.
func DefaultProfileCells() []ProfileCell {
	return []ProfileCell{
		{Model: "resnet18", Batch: 32, Instance: "p3.16xlarge"},
		{Model: "vgg11", Batch: 32, Instance: "p3.8xlarge"},
		{Model: "resnet50", Batch: 32, Instance: "p2.8xlarge"},
		{Model: "shufflenet_v2", Batch: 32, Instance: "p2.xlarge"},
		{Model: "bert-large", Batch: 64, Instance: "p3.2xlarge"}, // expected OOM
	}
}

// QuickProfileCells is the bounded slice's matrix: one multi-GPU cell
// (all four stalls populated) plus the OOM-consistency cell.
func QuickProfileCells() []ProfileCell {
	return []ProfileCell{
		{Model: "resnet18", Batch: 32, Instance: "p3.8xlarge"},
		{Model: "bert-large", Batch: 64, Instance: "p3.2xlarge"}, // expected OOM
	}
}

// QuickExperiments is the bounded slice's registry sample: one
// simulation-free table and one cheap forEach-swept figure, so the
// byte-stability checks cover both rendering paths without the cost of
// a full profiler-backed grid (the full Run covers those).
func QuickExperiments() []string {
	return []string{"table2", "fig7"}
}

func (o Options) normalize(quick bool) Options {
	if o.Iterations < 1 {
		o.Iterations = DefaultIterations
		if quick {
			o.Iterations = quickIterations
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism < 0 {
		o.Parallelism = 0
	}
	if o.Profiles == nil {
		o.Profiles = DefaultProfileCells()
		if quick {
			o.Profiles = QuickProfileCells()
		}
	}
	if o.Experiments == nil {
		if quick {
			o.Experiments = QuickExperiments()
		} else {
			o.Experiments = registryIDs()
		}
	}
	return o
}

// Run executes the full invariant suite: the physical profile matrix,
// scheduler-counter conservation (including a concurrent exercise with
// cancelled contexts), and registry determinism. Violations land in
// the Result; the returned error is non-nil only for context
// cancellation or an infrastructure failure that prevented auditing.
func Run(ctx context.Context, opts Options) (*Result, error) {
	return run(ctx, opts.normalize(false))
}

// Quick executes the bounded audit slice: a two-cell physical matrix,
// the conservation checks, and a two-artifact determinism pass. It is
// sized for stashd's GET /healthz?deep=1 probe, which runs it under
// the per-request timeout on every call.
func Quick(ctx context.Context, opts Options) (*Result, error) {
	return run(ctx, opts.normalize(true))
}

func run(ctx context.Context, opts Options) (*Result, error) {
	res := &Result{}

	phys, err := auditPhysical(ctx, opts, res)
	if err != nil {
		return nil, err
	}
	if err := auditConservation(ctx, opts, phys, res); err != nil {
		return nil, err
	}
	if err := auditDeterminism(ctx, opts, res); err != nil {
		return nil, err
	}
	if err := auditBlame(ctx, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}
