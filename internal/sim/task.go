package sim

import "time"

// Task is a simulated thread of control expressed as run-to-completion
// continuations instead of a coroutine: each step is an ordinary event
// callback that runs, schedules its successor (After, Signal.OnFire, or
// Engine.Schedule directly), and returns. Tasks never park a goroutine,
// so stepping one costs an event dispatch — no Go-scheduler handoffs —
// and, with a long-lived step closure, no allocations.
//
// A Task and a Process are interchangeable from the engine's point of
// view: Spawn enqueues the first step exactly where Go enqueues a
// process's first resume, a continuation registered with Signal.OnFire
// wakes exactly where an Await-parked process wakes, and End releases
// the engine's liveness accounting exactly where a process body's return
// does. Converting a hot loop from a Process to a Task therefore leaves
// the event sequence — and every simulated timestamp — bit-identical.
//
// Use a Task for hot inner loops; keep the Process API where complex
// control flow reads better as straight-line code.
type Task struct {
	eng    *Engine
	name   string
	done   bool
	doneSg *Signal // lazily created; most tasks are never joined
}

// Spawn starts a new task: first is scheduled to run at the current
// virtual time, after already-queued events at this instant — the same
// slot a process body spawned by Go would first run in. The task counts
// as live (for deadlock detection) until End is called.
func (e *Engine) Spawn(name string, first func()) *Task {
	t := &Task{eng: e, name: name}
	e.live++
	e.Schedule(0, first)
	return t
}

// Engine returns the engine this task runs on.
func (t *Task) Engine() *Engine { return t.eng }

// Name returns the task name given to Spawn.
func (t *Task) Name() string { return t.name }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return t.eng.now }

// After schedules fn to run after d of virtual time — the continuation
// analogue of Process.Sleep, with the remainder of the step chained
// through fn instead of resuming below a blocking call.
func (t *Task) After(d time.Duration, fn func()) Event {
	return t.eng.Schedule(d, fn)
}

// Done reports whether End has been called.
func (t *Task) Done() bool { return t.done }

// End marks the task complete, releasing it from deadlock accounting and
// firing its completion signal. Calling End again is a no-op.
func (t *Task) End() {
	if t.done {
		return
	}
	t.done = true
	t.eng.live--
	if t.doneSg != nil {
		t.doneSg.Fire()
	}
}

// Completion returns a signal that fires when the task ends. Await it (or
// register OnFire) to join the task.
func (t *Task) Completion() *Signal {
	if t.doneSg == nil {
		t.doneSg = NewSignal(t.eng)
		if t.done {
			t.doneSg.Fire()
		}
	}
	return t.doneSg
}
