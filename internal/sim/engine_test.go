package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Errorf("Now = %v, want 0", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev)      // double cancel is a no-op
	e.Cancel(Event{}) // zero handle is a no-op
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(time.Second, func() {
		e.ScheduleAt(5*time.Second, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5*time.Second {
		t.Errorf("fired at %v, want 5s", at)
	}
}

func TestScheduleAtPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(3*time.Second, func() {
		e.ScheduleAt(time.Second, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 3*time.Second {
		t.Errorf("fired at %v, want clamp to 3s", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 4 {
		t.Errorf("fired %v, want all 4", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, chain)
		}
	}
	e.Schedule(0, chain)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Errorf("Now = %v, want 99ms", e.Now())
	}
}

// Property: dispatch order equals sorted order of scheduled times, with
// scheduling order breaking ties.
func TestQuickDispatchOrderIsSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		count := int(n%64) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		firedCount := 0
		var evs []Event
		for i := 0; i < count; i++ {
			evs = append(evs, e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() { firedCount++ }))
		}
		cancelled := 0
		for _, ev := range evs {
			if rng.Intn(2) == 0 {
				e.Cancel(ev)
				cancelled++
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		return firedCount == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
