package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw event-loop throughput.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, chain)
		}
	}
	e.Schedule(0, chain)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessSwitch measures the goroutine handoff cost of a
// process park/resume cycle.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("sleeper", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures a 8-way barrier round.
func BenchmarkBarrier(b *testing.B) {
	e := NewEngine()
	bar := NewBarrier(e, 8)
	for i := 0; i < 8; i++ {
		e.Go("w", func(p *Process) {
			for r := 0; r < b.N; r++ {
				bar.Wait(p)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
