package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw event-loop throughput.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, chain)
		}
	}
	e.Schedule(0, chain)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessSwitch measures the goroutine handoff cost of a
// process park/resume cycle.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("sleeper", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTaskSwitch measures the same sleep loop as
// BenchmarkProcessSwitch expressed as a continuation task: one event
// dispatch per step, no goroutine handoffs, no allocations.
func BenchmarkTaskSwitch(b *testing.B) {
	e := NewEngine()
	var task *Task
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, step)
			return
		}
		task.End()
	}
	task = e.Spawn("sleeper", step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures a 8-way barrier round.
func BenchmarkBarrier(b *testing.B) {
	e := NewEngine()
	bar := NewBarrier(e, 8)
	for i := 0; i < 8; i++ {
		e.Go("w", func(p *Process) {
			for r := 0; r < b.N; r++ {
				bar.Wait(p)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
